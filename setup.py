"""Setup shim for environments without the ``wheel`` package.

Allows ``pip install -e . --no-build-isolation`` (and legacy
``--no-use-pep517`` installs) to work offline; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
