#!/usr/bin/env python
"""Check that every file under docs/ is linked from README.md.

The docs tree is only useful if it is discoverable from the front
page; CI runs this so a new docs page cannot land unlinked. Exits
non-zero listing any unlinked files.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path


def unlinked_docs(repo_root: Path) -> list:
    readme = (repo_root / "README.md").read_text()
    linked = set(re.findall(r"\]\(((?:\./)?docs/[^)#]+)\)", readme))
    missing = []
    for page in sorted((repo_root / "docs").rglob("*")):
        if page.is_dir():
            continue
        relative = page.relative_to(repo_root).as_posix()
        if relative not in linked and f"./{relative}" not in linked:
            missing.append(relative)
    return missing


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    if not (repo_root / "docs").is_dir():
        print("no docs/ directory", file=sys.stderr)
        return 1
    missing = unlinked_docs(repo_root)
    if missing:
        for path in missing:
            print(f"NOT LINKED from README.md: {path}", file=sys.stderr)
        return 1
    print("docs check: every docs/ file is linked from README.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
