#!/usr/bin/env python
"""Check documentation linkage both ways.

1. Every file under docs/ is linked from README.md — the docs tree is
   only useful if it is discoverable from the front page, so a new
   docs page cannot land unlinked.
2. Every repo-relative markdown link in README.md and docs/*.md
   resolves to an existing file — a renamed or deleted page cannot
   leave dangling references behind.

CI runs this; exits non-zero listing any violation.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Markdown inline links: capture the target inside ](...), dropping
#: any #fragment. External schemes are filtered out afterwards.
_LINK = re.compile(r"\]\(([^)#\s]+)(?:#[^)]*)?\)")


def unlinked_docs(repo_root: Path) -> list:
    readme = (repo_root / "README.md").read_text()
    linked = set(re.findall(r"\]\(((?:\./)?docs/[^)#]+)\)", readme))
    missing = []
    for page in sorted((repo_root / "docs").rglob("*")):
        if page.is_dir():
            continue
        relative = page.relative_to(repo_root).as_posix()
        if relative not in linked and f"./{relative}" not in linked:
            missing.append(relative)
    return missing


def broken_links(repo_root: Path) -> list:
    """(source, target) pairs for repo-relative links that don't resolve."""
    sources = [repo_root / "README.md"] + sorted((repo_root / "docs").glob("*.md"))
    broken = []
    for source in sources:
        base = source.parent
        for target in _LINK.findall(source.read_text()):
            if "://" in target or target.startswith("mailto:"):
                continue
            if not (base / target).exists():
                broken.append((source.relative_to(repo_root).as_posix(), target))
    return broken


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    if not (repo_root / "docs").is_dir():
        print("no docs/ directory", file=sys.stderr)
        return 1
    failed = False
    for path in unlinked_docs(repo_root):
        print(f"NOT LINKED from README.md: {path}", file=sys.stderr)
        failed = True
    for source, target in broken_links(repo_root):
        print(f"BROKEN LINK in {source}: {target}", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(
        "docs check: every docs/ file is linked from README.md "
        "and every relative link resolves"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
