#!/usr/bin/env python
"""Profile a named experiment under cProfile and report hot functions.

Usage::

    python tools/profile_run.py fig2                 # top 25 by cumulative
    python tools/profile_run.py fig3 --top 40 --sort tottime
    python tools/profile_run.py smoke --json prof.json
    python tools/profile_run.py fleet-compare --cell dimetrodon+migrate

Runs the experiment exactly as ``python -m repro.cli`` would (fast
config, serial runner, cache disabled so the simulations actually
execute), wraps it in :mod:`cProfile`, and prints the top-N entries.
With ``--json`` the same rows are written machine-readable, which is
handy for diffing before/after an optimisation.

``--cell NAME`` (fleet-compare only) profiles one technique's rack
cell in isolation instead of the whole experiment — the grid is
embarrassingly parallel, so single-cell cost is what an optimisation
pass actually targets.

See docs/performance.md for how this fits the perf workflow.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import sys
from pathlib import Path

# Allow running as a plain script from a fresh checkout.
try:  # pragma: no cover - import shim
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - import shim
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cli import EXPERIMENTS, make_runner, run_experiment
from repro.errors import ConfigurationError

SORT_KEYS = ("cumulative", "tottime", "ncalls")


def profile_experiment(name: str, *, seed: int = 0, full: bool = False) -> pstats.Stats:
    """Run experiment ``name`` under cProfile and return its stats."""
    runner = make_runner(jobs=1, use_cache=False)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        run_experiment(name, seed=seed, full=full, runner=runner)
    finally:
        profiler.disable()
    return pstats.Stats(profiler)


def profile_cell(cell: str, *, seed: int = 0, full: bool = False) -> pstats.Stats:
    """Profile one fleet-compare technique's rack cell in isolation.

    ``cell`` is a technique name from
    :func:`repro.fleet.compare.techniques`; the cell is built through
    the same spec path the experiment submits to the batch runner, and
    executed in-process so every simulated event is in the profile.
    """
    from repro.experiments import fast_config, full_config
    from repro.fleet.compare import technique_specs
    from repro.runtime.parallel import execute_spec
    from repro.workloads.webserver import QOS_TOLERABLE

    config = full_config(seed) if full else fast_config(seed)
    warmup = 5.0
    roster, specs = technique_specs(
        config,
        machines=64 if config.characterization_duration >= 300.0 else 4,
        duration=warmup + config.measure_window + QOS_TOLERABLE,
        warmup=warmup,
        p=0.65,
        idle_quantum=0.050,
    )
    by_name = {t.name: spec for t, spec in zip(roster, specs)}
    if cell not in by_name:
        raise ConfigurationError(
            f"unknown technique cell {cell!r} "
            f"(known: {', '.join(t.name for t in roster)})"
        )
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        execute_spec(by_name[cell])
    finally:
        profiler.disable()
    return pstats.Stats(profiler)


def stats_rows(stats: pstats.Stats, *, sort: str, top: int) -> list:
    """The top-N profile entries as JSON-ready dicts."""
    stats.sort_stats(sort)
    rows = []
    for func in stats.fcn_list[:top]:  # populated by sort_stats
        cc, nc, tt, ct, _callers = stats.stats[func]
        filename, line, funcname = func
        rows.append(
            {
                "function": f"{filename}:{line}({funcname})",
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime_s": tt,
                "cumtime_s": ct,
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment to profile")
    parser.add_argument("--seed", type=int, default=0, help="experiment RNG seed")
    parser.add_argument("--full", action="store_true", help="paper-faithful durations instead of the fast config")
    parser.add_argument("--top", type=int, default=25, help="number of entries to report")
    parser.add_argument("--sort", choices=SORT_KEYS, default="cumulative", help="profile sort key")
    parser.add_argument("--json", type=Path, default=None, help="also write the rows as JSON here")
    parser.add_argument(
        "--cell",
        metavar="NAME",
        default=None,
        help="profile a single rack cell of fleet-compare (a technique "
        "name, e.g. 'dimetrodon+migrate') instead of the whole grid",
    )
    args = parser.parse_args(argv)

    if args.cell is not None and args.experiment != "fleet-compare":
        print(
            f"error: --cell profiles one fleet-compare technique cell; "
            f"it does not apply to {args.experiment!r}",
            file=sys.stderr,
        )
        return 2
    if args.cell is not None:
        try:
            stats = profile_cell(args.cell, seed=args.seed, full=args.full)
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        stats = profile_experiment(args.experiment, seed=args.seed, full=args.full)

    out = io.StringIO()
    stats.stream = out
    stats.sort_stats(args.sort).print_stats(args.top)
    print(out.getvalue())

    if args.json is not None:
        payload = {
            "experiment": args.experiment,
            "cell": args.cell,
            "seed": args.seed,
            "full": args.full,
            "sort": args.sort,
            "total_time_s": stats.total_tt,
            "rows": stats_rows(stats, sort=args.sort, top=args.top),
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"profile rows written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
