"""Smoke + shape tests for the per-figure experiment entry points.

Durations and grids are cut down hard; the full-size versions run in
``benchmarks/``.  What is asserted here is structure and the robust
directional shapes, not the calibrated magnitudes.
"""

import numpy as np
import pytest

from repro.experiments import fast_config
from repro.experiments.figures import (
    fig1_power_trace,
    fig2_temperature_timeseries,
    fig3_efficiency,
    fig5_per_thread_control,
    fig6_webserver_qos,
)

CFG = fast_config()


# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig1():
    return fig1_power_trace(CFG, work_per_thread=1.0, p=0.5, idle_quantum=0.1)


def test_fig1_dimetrodon_slower(fig1):
    assert fig1.completion_dim > 1.5 * fig1.completion_race


def test_fig1_energy_parity(fig1):
    """§2.2: equal windows, equal energy (within a few percent)."""
    assert fig1.energy_dim / fig1.energy_race == pytest.approx(1.0, abs=0.05)


def test_fig1_power_levels_staircase(fig1):
    levels = fig1.power_levels
    assert len(levels) == 5
    assert all(b > a for a, b in zip(levels, levels[1:]))


def test_fig1_race_trace_is_flat_then_idle(fig1):
    watts = fig1.power_race
    # While running: near the top level; after completion: near idle.
    assert watts[:40].mean() > 45.0
    assert watts[-5:].mean() < 20.0


def test_fig1_dimetrodon_trace_varies(fig1):
    # The injected trace bounces between staircase levels.
    active = fig1.power_dim[: int(len(fig1.power_dim) * 0.5)]
    assert active.std() > 5.0


def test_fig1_render(fig1):
    text = fig1.render()
    assert "Figure 1" in text
    assert "race-to-idle" in text


# ----------------------------------------------------------------------
# Figure 2
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig2():
    return fig2_temperature_timeseries(CFG, ps=(0.0, 0.5), duration=60.0)


def test_fig2_injection_lowers_curve(fig2):
    assert fig2.final_rise[0.5] < 0.6 * fig2.final_rise[0.0]


def test_fig2_probabilistic_ripple(fig2):
    """§3.4: fluctuations come from the probabilistic implementation."""
    assert fig2.ripple_std[0.5] > fig2.ripple_std[0.0]


def test_fig2_series_shape(fig2):
    times, rise = fig2.series[0.0]
    assert len(times) == len(rise)
    assert rise[0] == pytest.approx(0.0, abs=0.3)
    assert rise[-1] > 15.0


def test_fig2_render(fig2):
    assert "Figure 2" in fig2.render()


# ----------------------------------------------------------------------
# Figure 3 (tiny grid)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig3():
    return fig3_efficiency(CFG, ps=(0.5,), ls_ms=(5.0, 100.0))


def test_fig3_short_quanta_more_efficient(fig3):
    curve = fig3.curve(0.5)
    assert curve[0][0] == 5.0
    assert curve[0][1] > curve[1][1]


def test_fig3_efficiencies_above_one(fig3):
    assert all(eff > 1.0 for _, eff in fig3.curve(0.5))


def test_fig3_render(fig3):
    text = fig3.render()
    assert "p=0.5" in text
    assert "L [ms]" in text


# ----------------------------------------------------------------------
# Figure 5 (reduced)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig5():
    return fig5_per_thread_control(
        CFG, configs=((0.75, 0.1),), duration=60.0
    )


def test_fig5_per_thread_protects_cool_process(fig5):
    per_thread = dict(fig5.series("per-thread"))
    global_policy = dict(fig5.series("global"))
    assert list(per_thread.values())[0] > 0.97
    assert list(global_policy.values())[0] < 0.9


def test_fig5_both_modes_reduce_temperature(fig5):
    for pt in fig5.points:
        assert pt.temp_reduction > 0.3


def test_fig5_render(fig5):
    assert "Figure 5" in fig5.render()


# ----------------------------------------------------------------------
# Figure 6 (reduced)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig6():
    return fig6_webserver_qos(
        CFG, configs=((0.5, 0.05), (0.65, 0.1)), duration=60.0
    )


def test_fig6_baseline_load_and_rise(fig6):
    assert 0.15 < fig6.offered_load_per_core < 0.3
    assert 3.0 < fig6.baseline_rise < 10.0


def test_fig6_moderate_injection_keeps_qos(fig6):
    moderate = min(fig6.points, key=lambda q: q.temp_reduction)
    assert moderate.temp_reduction > 0.15
    assert moderate.qos_good > 0.95
    assert moderate.qos_tolerable > 0.95


def test_fig6_aggressive_injection_collapses_qos(fig6):
    aggressive = max(fig6.points, key=lambda q: q.temp_reduction)
    assert aggressive.qos_good < 0.5


def test_fig6_tolerable_never_below_good(fig6):
    for pt in fig6.points:
        assert pt.qos_tolerable >= pt.qos_good - 1e-9


def test_fig6_render(fig6):
    assert "Figure 6" in fig6.render()
