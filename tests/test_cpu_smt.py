"""Tests for SMT (hardware thread contexts) support."""

import pytest

from repro.cpu import Chip, CState
from repro.errors import ConfigurationError
from repro.experiments import Machine, fast_config
from repro.sched import ThreadState
from repro.workloads import CpuBurn, FiniteCpuBurn


# ----------------------------------------------------------------------
# Core context machinery
# ----------------------------------------------------------------------
def test_chip_smt_validation():
    with pytest.raises(ConfigurationError):
        Chip(smt=0)
    with pytest.raises(ConfigurationError):
        Chip(smt=3)


def test_core_context_count():
    chip = Chip(num_cores=2, smt=2)
    assert all(core.smt == 2 for core in chip.cores)
    assert len(chip.cores[0].context_threads) == 2


def test_core_busy_while_any_context_runs():
    chip = Chip(num_cores=1, smt=2)
    core = chip.cores[0]
    core.set_context_running(0, "a", 1.0, now=0.0)
    core.set_context_running(1, "b", 1.0, now=0.0)
    assert core.running
    assert core.busy_contexts == 2
    core.set_context_idle(0, now=1.0)
    assert core.running  # context 1 still busy
    assert core.cstate_at(2.0) is CState.C0
    core.set_context_idle(1, now=2.0)
    assert not core.running
    assert core.idle_since == 2.0


def test_core_rejects_bad_context():
    chip = Chip(num_cores=1, smt=1)
    with pytest.raises(ConfigurationError):
        chip.cores[0].set_context_running(1, None, 1.0, 0.0)


def test_hinted_idle_requires_all_contexts_hinted():
    chip = Chip(num_cores=1, smt=2)
    core = chip.cores[0]
    core.set_context_running(0, "a", 1.0, 0.0)
    core.set_context_running(1, "b", 1.0, 0.0)
    core.set_context_idle(0, now=1.0, hinted=False)
    core.set_context_idle(1, now=1.0, hinted=True)
    # Mixed hints -> conservative (natural) threshold.
    natural = chip.cstate_params.natural_promotion_threshold
    assert core.idle_threshold == pytest.approx(
        natural + chip.cstate_params.c1e_entry_latency
    )
    # Both hinted -> fast threshold.
    core.set_context_running(0, "a", 1.0, 2.0)
    core.set_context_idle(0, now=3.0, hinted=True)
    fast = chip.cstate_params.c1e_promotion_threshold
    assert core.idle_threshold == pytest.approx(
        fast + chip.cstate_params.c1e_entry_latency
    )


def test_smt_activity_scaling():
    chip = Chip(num_cores=1, smt=2)
    core = chip.cores[0]
    core.set_context_running(0, "a", 1.0, 0.0)
    assert chip.core_activity(core) == pytest.approx(1.0)
    core.set_context_running(1, "b", 1.0, 0.0)
    factor = chip.power_model.params.smt_activity_factor
    assert chip.core_activity(core) == pytest.approx(2.0 * factor)
    assert chip.core_activity(core) < 1.5  # far less than double


def test_smt_speed_contention():
    chip = Chip(smt=2)
    solo = chip.speed_factor(1.0, core=chip.cores[0], smt_contention=False)
    shared = chip.speed_factor(1.0, core=chip.cores[0], smt_contention=True)
    assert shared == pytest.approx(solo * chip.power_model.params.smt_speed_factor)


# ----------------------------------------------------------------------
# Per-core DVFS override
# ----------------------------------------------------------------------
def test_per_core_operating_point():
    chip = Chip()
    low = chip.dvfs_table.min_point
    chip.set_core_operating_point(0, low)
    assert chip.point_for(chip.cores[0]) is low
    assert chip.point_for(chip.cores[1]) is chip.dvfs_table.max_point
    chip.set_core_operating_point(0, None)
    assert chip.point_for(chip.cores[0]) is chip.dvfs_table.max_point


def test_per_core_point_rejects_foreign():
    from repro.cpu import OperatingPoint

    chip = Chip()
    with pytest.raises(ConfigurationError):
        chip.set_core_operating_point(0, OperatingPoint(3e9, 1.4))


def test_per_core_point_changes_speed():
    chip = Chip()
    chip.set_core_operating_point(0, chip.dvfs_table.min_point)
    slow = chip.speed_factor(1.0, core=chip.cores[0])
    fast = chip.speed_factor(1.0, core=chip.cores[1])
    assert slow == pytest.approx(0.708 * fast, rel=0.01)


# ----------------------------------------------------------------------
# Scheduler on SMT
# ----------------------------------------------------------------------
def smt_machine(co_schedule=False):
    return Machine(fast_config().scaled(smt=2), co_schedule_smt=co_schedule)


def test_scheduler_has_slot_per_context():
    machine = smt_machine()
    assert len(machine.scheduler.slots) == 8
    pairs = {(slot.core.index, slot.context) for slot in machine.scheduler.slots}
    assert len(pairs) == 8


def test_smt_throughput_exceeds_four_contexts():
    machine = smt_machine()
    threads = [machine.scheduler.spawn(CpuBurn()) for _ in range(8)]
    machine.run(10.0)
    total = sum(t.stats.work_done for t in threads)
    # 8 contexts at ~0.62 speed each: ~4.9 work/s, more than 4 cores
    # alone but far below 8.
    assert 44.0 < total < 52.0


def test_smt_single_thread_runs_full_speed():
    machine = smt_machine()
    t = machine.scheduler.spawn(FiniteCpuBurn(1.0))
    machine.run(2.0)
    assert t.stats.exit_time < 1.02  # no sibling: no contention penalty


def test_naive_injection_rarely_reaches_deep_state():
    machine = smt_machine(co_schedule=False)
    machine.control.set_global_policy(0.5, 0.025)
    for _ in range(8):
        machine.scheduler.spawn(CpuBurn())
    machine.run(20.0)
    deep = sum(core.residency.get(CState.C1E) for core in machine.chip.cores)
    busy = sum(core.residency.get(CState.C0) for core in machine.chip.cores)
    assert deep < 0.1 * busy


def test_co_scheduled_injection_halts_whole_cores():
    machine = smt_machine(co_schedule=True)
    machine.control.set_global_policy(0.5, 0.025)
    for _ in range(8):
        machine.scheduler.spawn(CpuBurn())
    machine.run(20.0)
    assert machine.scheduler.stats.co_scheduled_idles > 100
    deep = sum(core.residency.get(CState.C1E) for core in machine.chip.cores)
    naive = smt_machine(co_schedule=False)
    naive.control.set_global_policy(0.5, 0.025)
    for _ in range(8):
        naive.scheduler.spawn(CpuBurn())
    naive.run(20.0)
    naive_deep = sum(core.residency.get(CState.C1E) for core in naive.chip.cores)
    assert deep > 4 * naive_deep


def test_co_scheduling_preempts_but_does_not_pin_sibling():
    machine = smt_machine(co_schedule=True)
    machine.control.set_global_policy(0.5, 0.025)
    threads = [machine.scheduler.spawn(CpuBurn()) for _ in range(8)]
    machine.run(5.0)
    assert machine.scheduler.stats.forced_preemptions > 0
    # Preempted siblings go back READY (runnable elsewhere), not PINNED;
    # at most one pinned thread per injected context.
    pinned = sum(1 for t in threads if t.state is ThreadState.PINNED)
    injected_slots = sum(1 for s in machine.scheduler.slots if s.injected)
    assert pinned <= injected_slots


def test_smt_work_is_conserved_under_co_scheduling():
    machine = smt_machine(co_schedule=True)
    machine.control.set_global_policy(0.25, 0.01)
    threads = [machine.scheduler.spawn(FiniteCpuBurn(0.5)) for _ in range(8)]
    while any(t.alive for t in threads) and machine.now < 60.0:
        machine.run(0.5)
    for t in threads:
        assert not t.alive
        assert t.stats.work_done == pytest.approx(0.5, abs=1e-9)
