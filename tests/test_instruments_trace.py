"""Tests for scheduler event tracing."""

import pytest

from repro.errors import AnalysisError
from repro.experiments import Machine, fast_config
from repro.instruments import SchedEvent, SchedulerTracer
from repro.workloads import DutyCycledBurn, FiniteCpuBurn


def traced_machine():
    machine = Machine(fast_config())
    tracer = SchedulerTracer()
    machine.scheduler.event_listeners.append(tracer)
    return machine, tracer


def test_no_listeners_no_overhead_path():
    machine = Machine(fast_config())
    machine.scheduler.spawn(FiniteCpuBurn(0.2))
    machine.run(1.0)  # must simply not crash without listeners
    assert machine.scheduler.event_listeners == []


def test_run_and_exit_events():
    machine, tracer = traced_machine()
    machine.scheduler.spawn(FiniteCpuBurn(0.25), name="t")
    machine.run(1.0)
    counts = tracer.counts()
    assert counts["run"] == 3  # three 100 ms slices
    assert counts["slice_end"] == 3
    assert counts["exit"] == 1
    assert counts["idle"] >= 1


def test_injection_events():
    machine, tracer = traced_machine()
    machine.control.set_global_policy(0.5, 0.05, deterministic=True)
    machine.scheduler.spawn(FiniteCpuBurn(0.3))
    machine.run(2.0)
    counts = tracer.counts()
    assert counts.get("inject", 0) >= 2
    assert counts.get("inject", 0) == counts.get("inject_end", 0)


def test_events_carry_location_and_thread():
    machine, tracer = traced_machine()
    thread = machine.scheduler.spawn(FiniteCpuBurn(0.15), name="probe")
    machine.run(1.0)
    run_events = tracer.of_kind("run")
    assert run_events
    event = run_events[0]
    assert event.thread == "probe"
    assert event.tid == thread.tid
    assert event.core is not None
    assert event.context == 0


def test_for_thread_filter():
    machine, tracer = traced_machine()
    a = machine.scheduler.spawn(FiniteCpuBurn(0.15), name="a")
    machine.scheduler.spawn(FiniteCpuBurn(0.15), name="b")
    machine.run(1.0)
    mine = tracer.for_thread(a.tid)
    assert mine
    assert all(e.tid == a.tid for e in mine)


def test_wake_events_from_sleep_cycle():
    machine, tracer = traced_machine()
    machine.scheduler.spawn(DutyCycledBurn(burn_time=0.1, sleep_time=0.2, iterations=3))
    machine.run(2.0)
    # Timed wakes route through _load_and_queue, not wake(); the
    # tracer still sees the run/slice_end churn of each iteration.
    assert tracer.counts()["run"] >= 3


def test_timeline_rendering():
    machine, tracer = traced_machine()
    machine.scheduler.spawn(FiniteCpuBurn(0.15), name="probe")
    machine.run(1.0)
    text = tracer.timeline(limit=10)
    assert "run" in text
    assert "core0" in text
    assert "probe" in text


def test_timeline_empty_window():
    tracer = SchedulerTracer()
    assert "no events" in tracer.timeline()


def test_timeline_shows_thread_id_zero():
    tracer = SchedulerTracer()
    tracer(SchedEvent(time=0.0, kind="run", core=0, tid=0))
    tracer(SchedEvent(time=0.1, kind="run", core=0, tid=7))
    text = tracer.timeline()
    assert "tid0" in text  # tid 0 is a real thread, not "no thread"
    assert "tid7" in text


def test_event_cap():
    tracer = SchedulerTracer(max_events=2)
    for i in range(5):
        tracer(SchedEvent(time=float(i), kind="run"))
    assert len(tracer.events) == 2
    assert tracer.dropped == 3


def test_tracer_validation():
    with pytest.raises(AnalysisError):
        SchedulerTracer(max_events=0)
