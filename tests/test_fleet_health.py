"""Tests for fleet-level health monitoring: per-machine monitors on the
batched rack, rollups, and seeded noisy-sensor determinism."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import Machine, fast_config
from repro.fleet import FleetMachine
from repro.health import FleetHealth, HealthParams, HealthState
from repro.workloads import CpuBurn


def _hot_fleet(machines=2, *, params=None, seed=0, duration=8.0):
    """A small rack running cpuburn on every core, monitored."""
    cfg = fast_config(seed)
    fleet = FleetMachine(cfg, machines=machines)
    health = fleet.attach_health(params)
    for node in fleet.nodes:
        for _ in range(cfg.num_cores):
            node.scheduler.spawn(CpuBurn())
    fleet.run(duration)
    health.stop()
    health.finalize()
    return fleet, health


def test_attach_health_monitors_every_machine():
    fleet, health = _hot_fleet(machines=2)
    assert isinstance(health, FleetHealth)
    assert len(health) == 2
    assert health is fleet.health
    assert [m.tracker.machine for m in health.monitors] == [0, 1]
    # cpuburn on every core heats well past the default +5.5 C critical
    # rise, so both machines alert.
    assert health.critical_alerts >= 2
    assert health.machines_since_boot(HealthState.CRITICAL) == 2
    assert health.time_in_critical > 0.0
    assert health.worst_excursion > fleet.idle_mean_temp


def test_attach_health_twice_raises():
    fleet = FleetMachine(fast_config(0), machines=1)
    fleet.attach_health()
    with pytest.raises(ConfigurationError):
        fleet.attach_health()


def test_cool_thresholds_mean_zero_alerts():
    params = HealthParams(warning_rise=80.0, critical_rise=90.0)
    _, health = _hot_fleet(machines=1, params=params, duration=4.0)
    assert health.alerts == 0
    assert health.events() == []
    assert health.time_in_warning == 0.0
    assert health.time_in_critical == 0.0
    assert health.machines_since_boot(HealthState.WARNING) == 0


def test_rollups_sum_per_machine_trackers():
    _, health = _hot_fleet(machines=3, duration=6.0)
    trackers = [m.tracker for m in health.monitors]
    assert health.alerts == sum(t.alerts for t in trackers)
    assert health.critical_alerts == sum(t.critical_alerts for t in trackers)
    assert health.recoveries == sum(t.recoveries for t in trackers)
    assert health.time_in_critical == pytest.approx(
        sum(t.time_in_critical for t in trackers)
    )
    events = health.events()
    assert len(events) == sum(len(t.events) for t in trackers)
    assert all(a.time <= b.time for a, b in zip(events, events[1:]))


def test_summary_carries_config_and_totals():
    params = HealthParams(warning_rise=2.0, critical_rise=4.0, period=0.5)
    fleet, health = _hot_fleet(machines=2, params=params, duration=5.0)
    summary = health.summary()
    config = summary["config"]
    assert config["warning_rise_c"] == 2.0
    assert config["period_s"] == 0.5
    assert config["machines"] == 2
    assert config["thresholds"]["critical_c"] == pytest.approx(
        fleet.idle_mean_temp + 4.0
    )
    assert summary["totals"]["alerts"] == health.alerts
    assert len(summary["machines_detail"]) == 2
    # The compact form drops the per-machine detail (scenarios grid).
    assert "machines_detail" not in health.summary(per_machine=False)


def test_controller_info_lands_in_summary():
    _, health = _hot_fleet(machines=1, duration=3.0)
    health.set_controller_info({"kind": "alert-driven", "trip_temp_c": 40.0})
    assert health.summary()["config"]["controller"]["kind"] == "alert-driven"


# ======================================================================
# Seeded noisy-sensor determinism
# ======================================================================
NOISY = HealthParams(noisy=True, noise_std=0.4)


def _event_key(event):
    return (event.time, event.machine, event.state, event.previous, event.temperature)


def test_noisy_monitors_same_seed_identical_alert_streams():
    """Noisy sensors draw from per-machine seeded streams: two racks
    built from the same config produce bit-identical alert streams."""
    _, first = _hot_fleet(machines=2, params=NOISY, seed=3, duration=6.0)
    _, second = _hot_fleet(machines=2, params=NOISY, seed=3, duration=6.0)
    assert [_event_key(e) for e in first.events()] == [
        _event_key(e) for e in second.events()
    ]
    assert first.summary() == second.summary()


def test_noisy_monitor_reads_do_not_perturb_templog():
    """The monitor's noise draws come from a dedicated RNG stream, so
    attaching monitors leaves the logged temperature samples (and their
    sensor noise) bit-identical to an unmonitored rack."""
    cfg = fast_config(0)

    def run(monitored):
        fleet = FleetMachine(cfg, machines=1)
        if monitored:
            fleet.attach_health(NOISY)
        node = fleet.nodes[0]
        for _ in range(cfg.num_cores):
            node.scheduler.spawn(CpuBurn())
        fleet.run(5.0)
        return node.templog.samples

    assert np.array_equal(run(monitored=False), run(monitored=True))


# ======================================================================
# Single-server Machine.attach_health
# ======================================================================
def test_machine_attach_health():
    cfg = fast_config(0)
    machine = Machine(cfg)
    monitor = machine.attach_health(HealthParams(warning_rise=1.0, critical_rise=2.0))
    assert machine.health is monitor
    with pytest.raises(ConfigurationError):
        machine.attach_health()
    for _ in range(cfg.num_cores):
        machine.scheduler.spawn(CpuBurn())
    machine.run(6.0)
    monitor.stop()
    monitor.finalize()
    assert monitor.tracker.critical_alerts >= 1
    assert monitor.tracker.time_in_critical > 0.0
    assert monitor.thresholds.warning == pytest.approx(machine.idle_mean_temp + 1.0)
