"""Tests for the idle injector (the scheduler hook)."""

import pytest

from repro.core import (
    DeterministicInjectionPolicy,
    IdleInjector,
    IdleMode,
    NoInjectionPolicy,
    PolicyTable,
)
from repro.sched import Thread, ThreadKind
from repro.workloads import CpuBurn


def make_thread(kind=ThreadKind.USER):
    return Thread(CpuBurn(), kind=kind)


def test_default_injector_never_injects():
    injector = IdleInjector()
    thread = make_thread()
    assert injector.decide(thread, 0.0) is None
    assert injector.stats.injections == 0
    assert injector.stats.decisions == 1


def test_injection_decision_carries_length_and_mode():
    injector = IdleInjector(mode=IdleMode.HALT)
    injector.set_thread_policy(
        make_thread(), DeterministicInjectionPolicy(0.5, 0.025)
    )  # unrelated thread
    thread = make_thread()
    injector.set_thread_policy(thread, DeterministicInjectionPolicy(0.9, 0.025))
    decision = None
    for _ in range(3):
        decision = injector.decide(thread, 0.0) or decision
    assert decision is not None
    assert decision.length == 0.025
    assert decision.mode is IdleMode.HALT


def test_kernel_threads_exempt_by_default():
    table = PolicyTable(default=DeterministicInjectionPolicy(0.9, 0.01))
    injector = IdleInjector(table)
    kernel = make_thread(kind=ThreadKind.KERNEL)
    for _ in range(10):
        assert injector.decide(kernel, 0.0) is None
    # Exempt decisions are not even counted against the policy.
    assert injector.stats.decisions == 0


def test_kernel_exemption_can_be_disabled():
    table = PolicyTable(default=DeterministicInjectionPolicy(0.9, 0.01))
    injector = IdleInjector(table, exempt_kernel_threads=False)
    kernel = make_thread(kind=ThreadKind.KERNEL)
    decisions = [injector.decide(kernel, 0.0) for _ in range(10)]
    assert any(d is not None for d in decisions)


def test_stats_accumulate():
    table = PolicyTable(default=DeterministicInjectionPolicy(0.5, 0.02))
    injector = IdleInjector(table)
    thread = make_thread()
    for _ in range(10):
        injector.decide(thread, 0.0)
    assert injector.stats.decisions == 10
    assert injector.stats.injections == 5
    assert injector.stats.injected_time == pytest.approx(5 * 0.02)
    assert injector.stats.injection_fraction == 0.5


def test_injection_fraction_empty():
    assert IdleInjector().stats.injection_fraction == 0.0


def test_exempt_helper():
    injector = IdleInjector(PolicyTable(default=DeterministicInjectionPolicy(0.9, 0.01)))
    thread = make_thread()
    injector.exempt(thread)
    assert all(injector.decide(thread, 0.0) is None for _ in range(10))


def test_set_default_policy():
    injector = IdleInjector()
    injector.set_default_policy(DeterministicInjectionPolicy(0.5, 0.01))
    thread = make_thread()
    decisions = [injector.decide(thread, 0.0) for _ in range(4)]
    assert sum(d is not None for d in decisions) == 2
