"""Property-based invariants of the scheduler under random scenarios.

Hypothesis drives random mixes of workloads and injection settings;
each run must preserve the bookkeeping invariants no matter what.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import CState
from repro.experiments import Machine, fast_config
from repro.sched import ThreadState
from repro.workloads import CpuBurn, DutyCycledBurn, FiniteCpuBurn

RUN_FOR = 3.0


def build_machine(seed, p, l_ms, deterministic, smt, co_schedule):
    machine = Machine(
        fast_config(seed).scaled(smt=smt), co_schedule_smt=co_schedule
    )
    if p > 0:
        machine.control.set_global_policy(p, l_ms / 1e3, deterministic=deterministic)
    return machine


workload_strategy = st.lists(
    st.sampled_from(["burn", "finite", "duty"]), min_size=1, max_size=6
)


def spawn_all(machine, kinds):
    threads = []
    for kind in kinds:
        if kind == "burn":
            workload = CpuBurn()
        elif kind == "finite":
            workload = FiniteCpuBurn(0.7)
        else:
            workload = DutyCycledBurn(burn_time=0.3, sleep_time=0.4)
        threads.append(machine.scheduler.spawn(workload))
    return threads


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 1000),
    p=st.sampled_from([0.0, 0.25, 0.5, 0.9]),
    l_ms=st.sampled_from([1.0, 10.0, 100.0]),
    deterministic=st.booleans(),
    kinds=workload_strategy,
    smt=st.sampled_from([1, 2]),
    co_schedule=st.booleans(),
)
def test_scheduler_invariants_property(seed, p, l_ms, deterministic, kinds, smt, co_schedule):
    machine = build_machine(seed, p, l_ms, deterministic, smt, co_schedule)
    threads = spawn_all(machine, kinds)
    machine.run(RUN_FOR)

    # 1. Residency on every core accounts for exactly the elapsed time.
    for core in machine.chip.cores:
        assert core.residency.total() == pytest.approx(RUN_FOR, rel=1e-9)

    # 2. No thread occupies two contexts at once, and every RUNNING
    # thread occupies exactly one.
    occupancy = {}
    for slot in machine.scheduler.slots:
        if slot.current is not None:
            occupancy.setdefault(slot.current.tid, 0)
            occupancy[slot.current.tid] += 1
    assert all(count == 1 for count in occupancy.values())
    for thread in threads:
        if thread.state is ThreadState.RUNNING:
            assert occupancy.get(thread.tid) == 1
        else:
            assert thread.tid not in occupancy

    # 3. Work is conserved: no thread does more work than wall time
    # allows, and total work never exceeds context-seconds.
    for thread in threads:
        assert thread.stats.work_done <= RUN_FOR + 1e-9
    total = sum(t.stats.work_done for t in threads)
    assert total <= RUN_FOR * len(machine.scheduler.slots) + 1e-9

    # 4. Finite threads never exceed their demand.
    for thread, kind in zip(threads, kinds):
        if kind == "finite":
            assert thread.stats.work_done <= 0.7 + 1e-9
            if not thread.alive:
                assert thread.stats.work_done == pytest.approx(0.7, abs=1e-9)

    # 5. Injected time only exists when a policy is active.
    injected = sum(t.stats.injected_count for t in threads)
    if p == 0.0:
        assert injected == 0

    # 6. PINNED threads are never on the runqueue.
    for thread in threads:
        if thread.state is ThreadState.PINNED:
            assert thread not in machine.scheduler.runqueue

    # 7. The simulated energy is positive and finite.
    energy = machine.energy(0.0, RUN_FOR)
    assert np.isfinite(energy)
    assert energy > 0


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 1000),
    p=st.sampled_from([0.25, 0.75]),
    kinds=workload_strategy,
)
def test_temperatures_stay_physical_property(seed, p, kinds):
    """Temperatures remain between ambient and a sane silicon bound."""
    machine = build_machine(seed, p, 10.0, False, 1, False)
    spawn_all(machine, kinds)
    machine.run(RUN_FOR)
    samples = machine.templog.samples
    assert np.all(samples >= machine.network.ambient_temp - 1e-6)
    assert np.all(samples < 120.0)
