"""Tests for the telemetry spine: registry semantics, cross-worker
aggregation, hot-path wiring, and manifest round-trips."""

import json

import pytest

from repro.errors import TelemetryError
from repro.experiments import fast_config
from repro.runtime import ParallelRunner, ResultCache, characterization_spec
from repro.telemetry import (
    MANIFEST_SCHEMA_VERSION,
    MetricsRegistry,
    RunManifest,
    git_describe,
    isolated,
    registry,
    set_registry,
)

CFG = fast_config()
SHORT = 4.0


def short_specs(n=3):
    return [
        characterization_spec(CFG, p=0.1 * (i + 1), idle_quantum=0.01, duration=SHORT)
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
def test_counter_increments_and_rejects_decrease():
    reg = MetricsRegistry()
    counter = reg.counter("a.b")
    counter.inc()
    counter.inc(2)
    counter.inc(0.5)  # float counters (injected_time, virtual_time)
    assert reg.value("a.b") == 3.5
    with pytest.raises(TelemetryError):
        counter.inc(-1)


def test_same_name_returns_same_metric():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TelemetryError, match="already registered"):
        reg.gauge("x")


def test_gauge_set_and_merge_takes_max():
    reg = MetricsRegistry()
    gauge = reg.gauge("g")
    assert gauge.snapshot() is None
    gauge.set(3)
    gauge.merge(7)
    gauge.merge(None)
    gauge.merge(5)
    assert gauge.snapshot() == 7


def test_timer_context_accumulates():
    reg = MetricsRegistry()
    timer = reg.timer("t")
    with timer.time():
        pass
    with timer.time():
        pass
    assert timer.count == 2
    assert timer.total >= 0.0
    with pytest.raises(TelemetryError):
        timer.add(-1.0)


def test_histogram_summary_and_merge():
    a, b = MetricsRegistry(), MetricsRegistry()
    for v in (1.0, 3.0):
        a.histogram("h").observe(v)
    b.histogram("h").observe(8.0)
    a.merge(b.snapshot())
    h = a.histogram("h")
    assert (h.count, h.sum, h.min, h.max) == (3, 12.0, 1.0, 8.0)
    assert h.mean == 4.0
    with pytest.raises(TelemetryError):
        MetricsRegistry().histogram("empty").mean


def test_scope_prefixes_names():
    reg = MetricsRegistry()
    scope = reg.scope("sim.engine")
    scope.counter("events").inc(5)
    scope.scope("deep").counter("x").inc()
    assert reg.value("sim.engine.events") == 5
    assert reg.value("sim.engine.deep.x") == 1


def test_snapshot_merge_roundtrip_equals_original():
    reg = MetricsRegistry()
    reg.counter("c").inc(4)
    reg.gauge("g").set(2.5)
    reg.timer("t").add(0.25)
    reg.histogram("h").observe(9)
    snap = reg.snapshot()
    json.dumps(snap)  # must be JSON-serialisable as-is
    other = MetricsRegistry()
    other.merge(snap)
    assert other.snapshot() == snap


def test_merge_rejects_unknown_kind():
    with pytest.raises(TelemetryError, match="unknown metric kind"):
        MetricsRegistry().merge({"x": {"kind": "sparkline", "value": 1}})


def test_counters_view_is_flat_and_sorted():
    reg = MetricsRegistry()
    reg.counter("b").inc(2)
    reg.counter("a").inc(1)
    reg.gauge("z").set(9)
    assert reg.counters() == {"a": 1, "b": 2}


def test_isolated_swaps_and_restores():
    before = registry()
    with isolated() as fresh:
        assert registry() is fresh
        assert fresh is not before
        fresh.counter("inner").inc()
    assert registry() is before
    assert "inner" not in before


def test_isolated_restores_on_exception():
    before = registry()
    with pytest.raises(RuntimeError):
        with isolated():
            raise RuntimeError("boom")
    assert registry() is before


def test_set_registry_returns_previous():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        assert registry() is fresh
    finally:
        set_registry(previous)


# ----------------------------------------------------------------------
# Hot-path wiring
# ----------------------------------------------------------------------
def test_simulation_publishes_engine_scheduler_injector_thermal_metrics():
    from repro.experiments.runner import run_characterization

    with isolated() as reg:
        result = run_characterization(CFG, p=0.5, idle_quantum=0.01, duration=SHORT)
    assert reg.value("sim.engine.events") > 0
    assert reg.value("sim.engine.virtual_time") == pytest.approx(SHORT)
    assert reg.value("sched.scheduler.dispatches") > 0
    assert reg.value("core.injector.decisions") > 0
    assert reg.value("core.injector.injections") > 0
    assert reg.value("core.injector.injected_time") == pytest.approx(
        result.details["injected_quanta"] * 0.01
    )
    assert reg.value("thermal.rcnetwork.advances") > 0
    assert reg.value("thermal.rcnetwork.substeps") >= reg.value(
        "thermal.rcnetwork.advances"
    )
    assert reg.timer("sim.engine.run_wall").total > 0


# ----------------------------------------------------------------------
# Cross-worker aggregation
# ----------------------------------------------------------------------
def test_pool_aggregation_equals_serial_aggregation(tmp_path):
    """The acceptance criterion: every counter a --jobs N batch merges
    from its workers must exactly equal the serial batch's counters."""
    specs = short_specs(3)
    with isolated() as serial_reg:
        serial_runner = ParallelRunner(jobs=1, cache=ResultCache(tmp_path / "a"))
        serial_runner.run(specs)
    with isolated() as pool_reg:
        pool_runner = ParallelRunner(jobs=2, cache=ResultCache(tmp_path / "b"))
        pool_runner.run(specs)

    serial, pool = serial_reg.counters(), pool_reg.counters()
    assert set(serial) == set(pool)
    assert serial == pool  # bit-identical counts, injections included
    assert serial["runtime.runner.executed"] == 3
    # Timers differ in wall time but must agree on the number of runs.
    assert serial_reg.timer("runtime.run_wall").count == 3
    assert pool_reg.timer("runtime.run_wall").count == 3


def test_cache_hits_counted_in_runner_registry(tmp_path):
    specs = short_specs(2)
    with isolated() as reg:
        ParallelRunner(cache=ResultCache(tmp_path)).run(specs)
        ParallelRunner(cache=ResultCache(tmp_path)).run(specs)
    assert reg.value("runtime.runner.executed") == 2
    assert reg.value("runtime.runner.cache_hits") == 2
    assert reg.value("runtime.cache.hits") == 2
    assert reg.value("runtime.cache.misses") == 2
    assert reg.value("runtime.cache.stores") == 2
    # Cached replays simulate nothing: engine events counted only once.
    with isolated() as replay:
        ParallelRunner(cache=ResultCache(tmp_path)).run(specs)
    assert replay.value("sim.engine.events") is None


def test_failed_attempts_do_not_double_count(tmp_path):
    from repro.runtime import RunSpec, register_executor

    def flaky_with_metrics(config, *, marker):
        import pathlib

        registry().counter("test.flaky_work").inc()
        path = pathlib.Path(marker)
        if not path.exists():
            path.write_text("attempted")
            raise RuntimeError("transient failure")
        return 42

    register_executor("test_flaky_metrics", flaky_with_metrics)
    spec = RunSpec(
        kind="test_flaky_metrics", config=None, params={"marker": str(tmp_path / "m")}
    )
    with isolated() as reg:
        runner = ParallelRunner(jobs=1)
        assert runner.run([spec]) == [42]
    # The failed attempt's increment was discarded with its registry.
    assert reg.value("test.flaky_work") == 1
    assert reg.value("runtime.runner.failures") == 1
    assert reg.value("runtime.runner.retries") == 1


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------
def sample_manifest() -> RunManifest:
    return RunManifest(
        experiments=["smoke"],
        seed=0,
        config_hash="c" * 64,
        code_fingerprint="f" * 64,
        jobs=2,
        git="abc1234",
        created="2026-08-06T00:00:00+00:00",
        timings={"smoke": 1.25},
        runner={"submitted": 5, "executed": 5, "cache_hits": 0},
        cache={"hits": 0, "misses": 5},
        metrics={"sim.engine.events": {"kind": "counter", "value": 10}},
    )


def test_manifest_roundtrip(tmp_path):
    path = tmp_path / "out" / "manifest.json"
    original = sample_manifest()
    original.write(path)
    assert RunManifest.load(path) == original
    # No temp file left behind by the atomic write.
    assert [p.name for p in path.parent.iterdir()] == ["manifest.json"]


def test_manifest_load_rejects_bad_inputs(tmp_path):
    with pytest.raises(TelemetryError, match="cannot read"):
        RunManifest.load(tmp_path / "missing.json")

    garbled = tmp_path / "garbled.json"
    garbled.write_text("{ not json")
    with pytest.raises(TelemetryError, match="not valid JSON"):
        RunManifest.load(garbled)

    not_object = tmp_path / "list.json"
    not_object.write_text("[1, 2]")
    with pytest.raises(TelemetryError, match="not a JSON object"):
        RunManifest.load(not_object)

    payload = json.loads(sample_manifest().to_json())
    stale = tmp_path / "stale.json"
    payload["schema"] = MANIFEST_SCHEMA_VERSION + 1
    stale.write_text(json.dumps(payload))
    with pytest.raises(TelemetryError, match="schema"):
        RunManifest.load(stale)

    payload = json.loads(sample_manifest().to_json())
    payload["surprise"] = True
    unknown = tmp_path / "unknown.json"
    unknown.write_text(json.dumps(payload))
    with pytest.raises(TelemetryError, match="unknown fields"):
        RunManifest.load(unknown)

    payload = json.loads(sample_manifest().to_json())
    del payload["seed"]
    missing = tmp_path / "short.json"
    missing.write_text(json.dumps(payload))
    with pytest.raises(TelemetryError, match="missing fields"):
        RunManifest.load(missing)


def test_git_describe_in_repo_and_outside(tmp_path):
    # This checkout is a git repository, so a description exists...
    assert isinstance(git_describe(), str)
    # ...and a bare tmp dir yields None rather than an error.
    assert git_describe(tmp_path) is None


def test_manifest_schema_v2_health_section(tmp_path):
    """Schema 2 added the structured health section; it round-trips and
    defaults to empty for health-free runs."""
    assert MANIFEST_SCHEMA_VERSION == 2
    assert sample_manifest().health == {}
    manifest = sample_manifest()
    manifest.health = {
        "fleet": {
            "baseline": {
                "config": {"warning_rise_c": 3.5},
                "totals": {"alerts": 4, "time_in_critical_s": 18.0},
            }
        }
    }
    path = tmp_path / "health.json"
    manifest.write(path)
    loaded = RunManifest.load(path)
    assert loaded == manifest
    assert loaded.health["fleet"]["baseline"]["totals"]["alerts"] == 4
