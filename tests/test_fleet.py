"""Tests for the fleet layer: batched physics equivalence, the load
balancer, telemetry additivity, and the CLI experiment."""

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, supports_runner
from repro.cpu.power import FleetCoefficients, PowerCoefficients
from repro.errors import ConfigurationError
from repro.experiments import Machine, fast_config
from repro.fleet import (
    FleetMachine,
    RoundRobinBalancer,
    ThermalBalancer,
    fleet_compare_experiment,
    fleet_experiment,
)
from repro.fleet.scheduling import MigrationPolicy, build_policy
from repro.sim.rng import RngRegistry
from repro.telemetry.registry import isolated
from repro.workloads import CpuBurn
from repro.workloads.webserver import Request, WebServer


def _drive_burn(machine_like, *, threads=2, p=0.5, quantum=0.010):
    for _ in range(threads):
        machine_like.scheduler.spawn(CpuBurn())
    machine_like.control.set_global_policy(p, quantum)


# ======================================================================
# Equivalence with the standalone machine
# ======================================================================
def test_fleet_of_one_bit_matches_standalone():
    """A 1-machine fleet is the *same* simulation as Machine(config):
    identical event stream, identical physics pieces, identical floats."""
    cfg = fast_config(0)

    solo = Machine(cfg)
    _drive_burn(solo)
    solo.run(6.0)

    fleet = FleetMachine(cfg, machines=1)
    node = fleet.nodes[0]
    _drive_burn(node)
    fleet.run(6.0)

    assert np.array_equal(solo.templog.times, node.templog.times)
    assert np.array_equal(solo.templog.samples, node.templog.samples)
    assert np.array_equal(solo.integrator.temps, fleet.integrator.temps[0])
    assert np.array_equal(solo.idle_core_temps, fleet.idle_core_temps)
    assert solo.powermeter.energy(0.0, 6.0) == node.energy(0.0, 6.0)
    assert solo.total_work_done() == node.total_work_done()


def test_fleet_matches_independent_serial_runs():
    """N-machine fleet == N standalone runs (seeds seed+j) within the
    repo-wide 1e-9 °C tolerance; event-level outputs match exactly."""
    cfg = fast_config(0)
    n = 3

    fleet = FleetMachine(cfg, machines=n)
    fleet_servers = [
        WebServer(node.scheduler, node.rng.stream("web")) for node in fleet.nodes
    ]
    for node in fleet.nodes:
        node.control.set_global_policy(0.5, 0.010)
    fleet.run(5.0)

    for j in range(n):
        solo = Machine(cfg.with_seed(cfg.seed + j))
        server = WebServer(solo.scheduler, solo.rng.stream("web"))
        solo.control.set_global_policy(0.5, 0.010)
        solo.run(5.0)

        node = fleet.nodes[j]
        assert np.max(np.abs(solo.templog.samples - node.templog.samples)) <= 1e-9
        assert np.max(np.abs(solo.integrator.temps - fleet.integrator.temps[j])) <= 1e-9
        # Scheduling is physics-independent, so the request streams are
        # not merely close — they are the same events.
        assert [r.rid for r in server.log.requests] == [
            r.rid for r in fleet_servers[j].log.requests
        ]
        assert [r.completed for r in server.log.requests] == [
            r.completed for r in fleet_servers[j].log.requests
        ]
        assert solo.total_work_done() == node.total_work_done()


def test_node_accessors_and_fleet_aggregates():
    cfg = fast_config(0)
    fleet = FleetMachine(cfg, machines=2)
    for node in fleet.nodes:
        node.scheduler.spawn(CpuBurn())
    fleet.run(3.0)

    node = fleet.nodes[0]
    assert node.core_temps.shape == (cfg.num_cores,)
    assert node.temp_rise_over_idle(2.0) > 0.0
    assert fleet.mean_core_temp_over_window(2.0) > fleet.idle_mean_temp
    assert fleet.total_energy() == pytest.approx(
        sum(node.energy() for node in fleet.nodes)
    )
    assert fleet.total_work_done() > 0.0
    assert fleet.now == pytest.approx(3.0)


def test_fleet_requires_at_least_one_machine():
    with pytest.raises(ConfigurationError):
        FleetMachine(fast_config(0), machines=0)


# ======================================================================
# Coefficient stacking
# ======================================================================
def _coefficients(base=5.0, coef=0.1, ref=45.0, slope=12.0, cap=4.0):
    return PowerCoefficients(
        base=np.full(3, base),
        leak_coef=np.full(3, coef),
        leak_ref_temp=ref,
        leak_t_slope=slope,
        leak_exp_cap=cap,
    )


def test_fleet_coefficients_stack_and_identity_reuse():
    columns = [_coefficients(base=5.0 + j) for j in range(4)]
    stack = FleetCoefficients.from_coefficients(columns)
    assert stack.num_machines == 4
    assert stack.base.shape == (3, 4)
    assert stack.matches(columns)
    assert not stack.matches(list(reversed(columns)))
    assert not stack.matches(columns[:3])


def test_fleet_coefficients_reject_heterogeneous_leakage():
    columns = [_coefficients(), _coefficients(slope=13.0)]
    with pytest.raises(ConfigurationError):
        FleetCoefficients.from_coefficients(columns)


# ======================================================================
# Load balancer
# ======================================================================
def test_round_robin_balancer_spreads_requests_evenly():
    cfg = fast_config(0)
    fleet = FleetMachine(cfg, machines=3)
    servers = [
        WebServer(node.scheduler, node.rng.stream("web"), external_arrivals=True)
        for node in fleet.nodes
    ]
    balancer = RoundRobinBalancer(
        fleet,
        servers,
        rate=3 * servers[0].arrival_rate,
        rng=RngRegistry(cfg.seed).stream("fleet-balancer"),
    )
    fleet.run(5.0)
    balancer.stop()

    assert balancer.total_routed > 0
    assert max(balancer.routed) - min(balancer.routed) <= 1
    for server, routed in zip(servers, balancer.routed):
        assert len(server.log.requests) == routed


def test_balancer_validates_inputs():
    cfg = fast_config(0)
    fleet = FleetMachine(cfg, machines=2)
    servers = [
        WebServer(node.scheduler, node.rng.stream("web"), external_arrivals=True)
        for node in fleet.nodes
    ]
    rng = RngRegistry(cfg.seed).stream("fleet-balancer")
    with pytest.raises(ConfigurationError):
        RoundRobinBalancer(fleet, servers[:1], rate=10.0, rng=rng)
    with pytest.raises(ConfigurationError):
        RoundRobinBalancer(fleet, servers, rate=0.0, rng=rng)


# ======================================================================
# Telemetry
# ======================================================================
def test_fleet_telemetry_counts_chip_substeps_additively():
    """fleet.substeps counts chip-substeps: an N-machine fleet reports
    exactly the sum of the N equivalent standalone machines' substeps."""
    cfg = fast_config(0)
    n = 2

    standalone_substeps = 0
    for j in range(n):
        with isolated() as reg:
            solo = Machine(cfg.with_seed(cfg.seed + j))
            _drive_burn(solo)
            solo.run(4.0)
            standalone_substeps += reg.value("thermal.rcnetwork.substeps", 0)

    with isolated() as reg:
        fleet = FleetMachine(cfg, machines=n)
        for node in fleet.nodes:
            _drive_burn(node)
        fleet.run(4.0)
        assert reg.value("fleet.machines") == n
        assert reg.value("fleet.substeps", 0) == standalone_substeps
        assert reg.value("fleet.batched_advances", 0) > 0
        assert reg.value("fleet.segments", 0) > 0
        assert reg.value("fleet.drains", 0) > 0
        wall = reg.value("fleet.advance_wall")
        assert wall["total"] > 0.0 and wall["count"] > 0


# ======================================================================
# The CLI experiment
# ======================================================================
def test_fleet_experiment_registered_as_batch():
    assert "fleet" in EXPERIMENTS
    _, func = EXPERIMENTS["fleet"]
    assert func is fleet_experiment
    assert supports_runner(func)


def test_fleet_experiment_smoke():
    result = fleet_experiment(
        fast_config(0), machines=2, duration=8.0, warmup=1.0
    )
    assert result.machines == 2
    assert result.baseline.requests > 0
    assert result.injected.requests > 0
    assert result.baseline_rise > 0.0
    assert result.chip_substeps_per_s > 0.0
    assert result.policy == "round-robin"
    assert result.baseline.peak_temp >= result.baseline.mean_temp
    rendered = result.render()
    assert "baseline" in rendered and "dimetrodon" in rendered
    assert "round-robin" in rendered


# ======================================================================
# Scheduling policies over the fleet (repro.fleet.scheduling)
# ======================================================================
def _external_servers(fleet):
    return [
        WebServer(node.scheduler, node.rng.stream("web"), external_arrivals=True)
        for node in fleet.nodes
    ]


def test_single_machine_fleet_policies_degenerate_gracefully():
    """N=1: every balancer routes everything to machine 0, and the
    migration policy can never find a distinct target."""
    cfg = fast_config(0)
    fleet = FleetMachine(cfg, machines=1)
    servers = _external_servers(fleet)
    rng = RngRegistry(cfg.seed).stream("fleet-balancer")
    balancer = ThermalBalancer(fleet, servers, rate=servers[0].arrival_rate, rng=rng)
    migration = MigrationPolicy(fleet, servers, period=0.5)
    fleet.run(4.0)
    balancer.stop()
    migration.stop()

    assert balancer.routed == [balancer.total_routed]
    assert balancer.total_routed > 0
    assert len(servers[0].log.requests) == balancer.total_routed
    assert migration.migrations == 0
    assert migration.blocked_cycles > 0


def test_policy_bundle_rejects_server_count_mismatch():
    cfg = fast_config(0)
    fleet = FleetMachine(cfg, machines=2)
    servers = _external_servers(fleet)
    rng = RngRegistry(cfg.seed).stream("fleet-balancer")
    with pytest.raises(ConfigurationError):
        build_policy("coolest", fleet, servers[:1], rate=10.0, rng=rng)
    with pytest.raises(ConfigurationError):
        build_policy("migrate", fleet, [], rate=10.0, rng=rng)


def test_idle_machine_accepts_migrated_request_mid_substep():
    """A machine whose run queue is completely empty receives a
    migrated request in the middle of a physics substep: the delivery
    must close its gap, wake a blocked worker, and serve the request —
    without the request appearing in the target's own log."""
    cfg = fast_config(0)
    fleet = FleetMachine(cfg, machines=2)
    servers = _external_servers(fleet)
    # Machine 0 works (so the fleet has real substep traffic); machine
    # 1 does nothing at all until the hand-off lands at t=2.
    fleet.nodes[0].scheduler.spawn(CpuBurn())
    stray = Request(rid=999, arrival=2.0, service_time=0.2)
    fleet.nodes[1].simview.schedule(2.0, servers[1].accept_migrated, stray)
    fleet.run(5.0)

    assert stray.completed is not None
    assert 2.0 < stray.completed < 5.0
    assert all(r is not stray for r in servers[1].log.requests)
    # Serving it produced heat on the otherwise idle machine.
    assert fleet.nodes[1].total_work_done() == pytest.approx(
        stray.service_time, rel=0.01
    )


def test_fleet_migration_telemetry_is_additive():
    """fleet.migrations equals the sum of the per-machine source
    counters and the policy's own event history."""
    with isolated() as reg:
        cfg = fast_config(0)
        fleet = FleetMachine(cfg, machines=2)
        servers = [
            WebServer(
                node.scheduler,
                node.rng.stream("web"),
                external_arrivals=True,
                service_mean=0.5,
                num_workers=1,
            )
            for node in fleet.nodes
        ]
        for k in range(20):
            fleet.nodes[0].simview.schedule(0.01 * k, servers[0].submit_request)
        policy = MigrationPolicy(fleet, servers, period=0.5, min_delta=0.05)
        fleet.run(6.0)
        policy.stop()

        assert policy.migrations > 0
        total = reg.value("fleet.migrations")
        per_machine = sum(
            reg.value(f"fleet.migrations.m{j}", 0) for j in range(2)
        )
        assert total == per_machine == policy.migrations


def test_fleet_experiment_with_migration_policy():
    result = fleet_experiment(
        fast_config(0), machines=2, duration=8.0, warmup=1.0, policy="migrate"
    )
    assert result.policy == "migrate"
    assert result.baseline.migrations >= 0
    assert result.injected.migrations >= 0
    assert "migrate" in result.render()


def test_fleet_compare_experiment_smoke():
    result = fleet_compare_experiment(
        fast_config(0), machines=2, duration=8.0, warmup=1.0
    )
    names = [row.technique.name for row in result.rows]
    assert names[0] == "baseline"
    assert {"dimetrodon", "dvfs-min", "tcc-50", "heat-and-run", "migrate"} <= set(
        names
    )
    assert len(result.tradeoffs()) == len(result.rows) - 1
    # Something must be Pareto-efficient, and it can't be the baseline.
    assert result.pareto_names()
    assert "baseline" not in result.pareto_names()
    rendered = result.render()
    assert "technique" in rendered and "pareto" in rendered
    # DVFS at the minimum point must actually cool the rack.
    by_name = {row.technique.name: row for row in result.rows}
    assert by_name["dvfs-min"].run.mean_temp < by_name["baseline"].run.mean_temp
    assert by_name["dimetrodon"].run.mean_temp < by_name["baseline"].run.mean_temp


def test_fleet_compare_registered_as_batch():
    assert "fleet-compare" in EXPERIMENTS
    _, func = EXPERIMENTS["fleet-compare"]
    assert func is fleet_compare_experiment
    assert supports_runner(func)
