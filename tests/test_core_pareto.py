"""Tests for Pareto extraction and the T(r)=α·r^β fit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    TradeoffPoint,
    crossover_reduction,
    fit_power_law,
    interpolate_boundary,
    pareto_boundary,
)
from repro.errors import AnalysisError


def pt(r, t, **params):
    return TradeoffPoint(temp_reduction=r, throughput_reduction=t, params=params)


# ----------------------------------------------------------------------
# TradeoffPoint
# ----------------------------------------------------------------------
def test_efficiency():
    assert pt(0.4, 0.2).efficiency == pytest.approx(2.0)
    assert pt(0.4, 0.0).efficiency == float("inf")
    assert pt(0.0, 0.0).efficiency == 0.0


# ----------------------------------------------------------------------
# Boundary extraction
# ----------------------------------------------------------------------
def test_boundary_empty():
    assert pareto_boundary([]) == []


def test_boundary_removes_dominated():
    points = [pt(0.5, 0.2), pt(0.4, 0.3), pt(0.3, 0.1)]
    boundary = pareto_boundary(points)
    # (0.4, 0.3) is dominated by (0.5, 0.2); (0.3, 0.1) survives.
    assert [(q.temp_reduction, q.throughput_reduction) for q in boundary] == [
        (0.3, 0.1),
        (0.5, 0.2),
    ]


def test_boundary_sorted_and_monotone():
    rng = np.random.default_rng(0)
    points = [pt(float(r), float(t)) for r, t in rng.random((100, 2))]
    boundary = pareto_boundary(points)
    rs = [q.temp_reduction for q in boundary]
    ts = [q.throughput_reduction for q in boundary]
    assert rs == sorted(rs)
    assert ts == sorted(ts)


def test_boundary_single_point():
    only = pt(0.2, 0.1)
    assert pareto_boundary([only]) == [only]


@settings(max_examples=40, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.floats(0, 1), st.floats(0, 1)), min_size=1, max_size=40
    )
)
def test_boundary_nondominated_property(data):
    points = [pt(r, t) for r, t in data]
    boundary = pareto_boundary(points)
    for chosen in boundary:
        for other in points:
            dominates = (
                other.temp_reduction >= chosen.temp_reduction
                and other.throughput_reduction < chosen.throughput_reduction
            ) or (
                other.temp_reduction > chosen.temp_reduction
                and other.throughput_reduction <= chosen.throughput_reduction
            )
            assert not dominates


# ----------------------------------------------------------------------
# Power-law fit
# ----------------------------------------------------------------------
def test_fit_recovers_known_constants():
    rs = np.linspace(0.02, 0.7, 30)
    points = [pt(float(r), float(1.1 * r**1.5)) for r in rs]
    fit = fit_power_law(points)
    assert fit.alpha == pytest.approx(1.1, abs=0.02)
    assert fit.beta == pytest.approx(1.5, abs=0.02)
    assert fit.rms_residual < 1e-6
    assert fit.n_points == len([r for r in rs if r <= 0.75])


def test_fit_predict():
    rs = np.linspace(0.02, 0.7, 20)
    points = [pt(float(r), float(0.9 * r**1.2)) for r in rs]
    fit = fit_power_law(points)
    assert fit.predict(0.5) == pytest.approx(0.9 * 0.5**1.2, rel=1e-3)


def test_fit_respects_r_max():
    rs = np.linspace(0.02, 0.95, 30)
    points = [pt(float(r), float(r)) for r in rs]
    fit = fit_power_law(points, r_max=0.5)
    assert all(r <= 0.5 for r in rs[: fit.n_points])


def test_fit_requires_enough_points():
    with pytest.raises(AnalysisError):
        fit_power_law([pt(0.1, 0.05), pt(0.2, 0.1)])


def test_fit_describe():
    rs = np.linspace(0.05, 0.7, 10)
    fit = fit_power_law([pt(float(r), float(r**1.3)) for r in rs])
    assert "T(r)" in fit.describe()


# ----------------------------------------------------------------------
# Interpolation and crossover
# ----------------------------------------------------------------------
def test_interpolate_boundary():
    points = [pt(0.1, 0.05), pt(0.3, 0.2), pt(0.5, 0.5)]
    assert interpolate_boundary(points, 0.2) == pytest.approx(0.125)
    assert interpolate_boundary(points, 0.05) is None
    assert interpolate_boundary(points, 0.6) is None
    assert interpolate_boundary([], 0.2) is None


def test_crossover_found():
    # Technique A cheap at small r, expensive at large; B the opposite.
    a = [pt(r, 1.2 * r**1.8) for r in np.linspace(0.05, 0.9, 30)]
    b = [pt(r, 0.66 * r) for r in np.linspace(0.05, 0.9, 30)]
    crossover = crossover_reduction(a, b)
    # 1.2 r^1.8 == 0.66 r at r ~ (0.55)^(1/0.8) ~ 0.473.
    assert crossover == pytest.approx(0.473, abs=0.03)


def test_crossover_none_when_dominated():
    a = [pt(r, 0.5 * r) for r in np.linspace(0.1, 0.9, 20)]
    b = [pt(r, 0.9 * r) for r in np.linspace(0.1, 0.9, 20)]
    assert crossover_reduction(a, b) is None


def test_crossover_none_without_overlap():
    a = [pt(0.1, 0.05), pt(0.2, 0.1)]
    b = [pt(0.5, 0.3), pt(0.7, 0.5)]
    assert crossover_reduction(a, b) is None
