"""Tests for the closed-loop thermal setpoint controller."""

import pytest

from repro.core import ControllerGains, ThermalSetpointController
from repro.errors import ConfigurationError
from repro.experiments import Machine, fast_config
from repro.workloads import CpuBurn


def build(machine, setpoint, **kwargs):
    return ThermalSetpointController(
        machine.sim,
        machine.control,
        lambda: float(machine.core_temps.max()),
        setpoint=setpoint,
        **kwargs,
    )


def test_controller_validation():
    machine = Machine(fast_config())
    with pytest.raises(ConfigurationError):
        build(machine, 50.0, period=0.0)
    with pytest.raises(ConfigurationError):
        build(machine, 50.0, idle_quantum=-1.0)
    with pytest.raises(ConfigurationError):
        build(machine, 50.0, p_max=1.5)


def test_controller_idles_hot_workload_to_setpoint():
    machine = Machine(fast_config())
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    # Unconstrained cpuburn settles around 52-55 C; ask for much cooler.
    controller = build(machine, 44.0, idle_quantum=0.02, period=0.5)
    machine.run(120.0)
    final_temp = machine.mean_core_temp_over_window(10.0)
    assert abs(final_temp - 44.0) < 1.5
    assert controller.p > 0.05
    assert controller.settled(window=10, tolerance=1.5)


def test_controller_stays_off_when_cool():
    machine = Machine(fast_config())
    # No workload: temperatures sit at the idle baseline.
    controller = build(machine, 60.0, period=0.5)
    machine.run(20.0)
    assert controller.p == 0.0
    assert not controller.settled()  # mean far below setpoint


def test_controller_history_records_samples():
    machine = Machine(fast_config())
    controller = build(machine, 50.0, period=1.0)
    machine.run(5.5)
    assert len(controller.history) == 5
    sample = controller.history[0]
    assert sample.time == pytest.approx(1.0)
    assert sample.temperature > 0


def test_controller_stop():
    machine = Machine(fast_config())
    controller = build(machine, 50.0, period=1.0)
    machine.run(2.5)
    controller.stop()
    machine.run(5.0)
    assert len(controller.history) == 2


def test_controller_p_clamped():
    machine = Machine(fast_config())
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    controller = build(
        machine,
        0.0,  # impossible setpoint: far below idle temperature
        period=0.5,
        gains=ControllerGains(kp=1.0, ki=0.5),
        p_max=0.9,
    )
    machine.run(20.0)
    assert controller.p <= 0.9
