"""Tests for the Thread abstraction and burst lifecycle."""

import pytest

from repro.errors import SchedulerError, WorkloadError
from repro.sched import Thread, ThreadKind, ThreadState
from repro.workloads import BLOCK, Burst, SyntheticWorkload
from repro.workloads.base import Workload


def test_thread_ids_unique():
    a = Thread(SyntheticWorkload(items=[]))
    b = Thread(SyntheticWorkload(items=[]))
    assert a.tid != b.tid


def test_default_name_and_kind():
    t = Thread(SyntheticWorkload(items=[]))
    assert str(t.tid) in t.name
    assert t.kind is ThreadKind.USER
    assert t.state is ThreadState.NEW


def test_advance_burst_run():
    t = Thread(SyntheticWorkload(items=[Burst(cpu_time=1.0)]))
    assert t.advance_burst() == "run"
    assert t.remaining_work == 1.0
    assert t.current_burst.cpu_time == 1.0


def test_advance_burst_exit():
    t = Thread(SyntheticWorkload(items=[]))
    assert t.advance_burst() == "exit"


def test_advance_burst_block():
    t = Thread(SyntheticWorkload(items=[BLOCK, Burst(cpu_time=1.0)]))
    assert t.advance_burst() == "block"
    assert t.advance_burst() == "run"


def test_advance_burst_rejects_garbage():
    class Bad(Workload):
        def next_burst(self):
            return 42

    t = Thread(Bad())
    with pytest.raises(SchedulerError):
        t.advance_burst()


def test_complete_burst_fires_callback():
    seen = []
    burst = Burst(cpu_time=1.0, on_complete=seen.append)
    t = Thread(SyntheticWorkload(items=[burst]))
    t.advance_burst()
    t.complete_burst(now=3.5)
    assert seen == [3.5]
    assert t.stats.bursts_completed == 1
    assert t.current_burst is None


def test_complete_burst_without_burst_raises():
    t = Thread(SyntheticWorkload(items=[]))
    with pytest.raises(SchedulerError):
        t.complete_burst(now=0.0)


def test_runnable_and_alive_flags():
    t = Thread(SyntheticWorkload(items=[]))
    assert t.alive
    t.state = ThreadState.READY
    assert t.runnable
    t.state = ThreadState.EXITED
    assert not t.alive
    assert not t.runnable


def test_burst_validation():
    with pytest.raises(WorkloadError):
        Burst(cpu_time=0.0)
    with pytest.raises(WorkloadError):
        Burst(cpu_time=1.0, sleep_time=-1.0)


def test_synthetic_workload_repeat():
    w = SyntheticWorkload(items=[Burst(cpu_time=1.0)], repeat=True)
    assert isinstance(w.next_burst(), Burst)
    assert isinstance(w.next_burst(), Burst)


def test_synthetic_workload_exhausts():
    w = SyntheticWorkload(items=[Burst(cpu_time=1.0)])
    assert isinstance(w.next_burst(), Burst)
    assert w.next_burst() is None


def test_block_sentinel_is_singleton():
    from repro.workloads.base import _BlockSentinel

    assert _BlockSentinel() is BLOCK
    assert repr(BLOCK) == "BLOCK"
