"""Tests for experiment configuration presets."""

import pytest

from repro.experiments import default_config, fast_config, full_config


def test_full_config_paper_timing():
    cfg = full_config()
    assert cfg.characterization_duration == 300.0
    assert cfg.measure_window == 30.0
    assert cfg.quantum == 0.100  # 4.4BSD fixed timeslice


def test_fast_config_compresses_transients():
    fast = fast_config()
    full = full_config()
    assert fast.characterization_duration < full.characterization_duration
    assert fast.thermal.sink_capacitance < full.thermal.sink_capacitance
    # Resistances (steady state) identical.
    assert fast.thermal.sink_to_ambient == full.thermal.sink_to_ambient
    assert fast.thermal.core_to_spreader == full.thermal.core_to_spreader


def test_fast_config_sink_time_constant():
    assert fast_config().thermal.sink_time_constant < 25.0
    assert full_config().thermal.sink_time_constant > 50.0


def test_default_config_env_switch():
    assert default_config(env={}).characterization_duration == pytest.approx(100.0)
    assert default_config(env={"REPRO_FULL": "1"}).characterization_duration == 300.0
    assert default_config(env={"REPRO_FULL": "0"}).characterization_duration == pytest.approx(100.0)


def test_with_seed():
    cfg = fast_config(seed=1).with_seed(9)
    assert cfg.seed == 9


def test_scaled_override():
    cfg = fast_config().scaled(quantum=0.05)
    assert cfg.quantum == 0.05
    assert cfg.num_cores == 4
