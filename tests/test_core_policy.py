"""Tests for injection policies and the policy table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BernoulliInjectionPolicy,
    DeterministicInjectionPolicy,
    NoInjectionPolicy,
    PolicyTable,
    validate_probability,
    validate_quantum,
)
from repro.errors import ConfigurationError
from repro.sim import RngRegistry


def rng():
    return RngRegistry(seed=11).stream("policy")


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_probability_bounds():
    assert validate_probability(0.0) == 0.0
    assert validate_probability(0.999) == 0.999
    with pytest.raises(ConfigurationError):
        validate_probability(1.0)  # p=1 would starve the thread forever
    with pytest.raises(ConfigurationError):
        validate_probability(-0.1)


def test_quantum_bounds():
    assert validate_quantum(0.001) == 0.001
    with pytest.raises(ConfigurationError):
        validate_quantum(0.0)
    with pytest.raises(ConfigurationError):
        validate_quantum(-1.0)


# ----------------------------------------------------------------------
# NoInjectionPolicy
# ----------------------------------------------------------------------
def test_no_injection_never_injects():
    policy = NoInjectionPolicy()
    assert not any(policy.should_inject(1) for _ in range(100))
    assert policy.p == 0.0


# ----------------------------------------------------------------------
# Bernoulli
# ----------------------------------------------------------------------
def test_bernoulli_rate_matches_p():
    policy = BernoulliInjectionPolicy(0.3, 0.01, rng())
    hits = sum(policy.should_inject(1) for _ in range(20000))
    assert 0.28 < hits / 20000 < 0.32


def test_bernoulli_zero_p_never_injects():
    policy = BernoulliInjectionPolicy(0.0, 0.01, rng())
    assert not any(policy.should_inject(1) for _ in range(100))


def test_bernoulli_deterministic_per_seed():
    a = BernoulliInjectionPolicy(0.5, 0.01, RngRegistry(3).stream("x"))
    b = BernoulliInjectionPolicy(0.5, 0.01, RngRegistry(3).stream("x"))
    assert [a.should_inject(1) for _ in range(50)] == [
        b.should_inject(1) for _ in range(50)
    ]


def test_bernoulli_validates_arguments():
    with pytest.raises(ConfigurationError):
        BernoulliInjectionPolicy(1.0, 0.01, rng())
    with pytest.raises(ConfigurationError):
        BernoulliInjectionPolicy(0.5, 0.0, rng())


# ----------------------------------------------------------------------
# Deterministic
# ----------------------------------------------------------------------
def test_deterministic_exact_fraction():
    policy = DeterministicInjectionPolicy(0.25, 0.01)
    decisions = [policy.should_inject(1) for _ in range(1000)]
    assert sum(decisions) == 250


def test_deterministic_pattern_for_half():
    policy = DeterministicInjectionPolicy(0.5, 0.01)
    decisions = [policy.should_inject(7) for _ in range(8)]
    # Alternating: credit 0.5 (no), 1.0 (yes), 0.5 (no), ...
    assert decisions == [False, True, False, True, False, True, False, True]


def test_deterministic_no_clustering():
    """Runs of consecutive injections are bounded (unlike Bernoulli)."""
    policy = DeterministicInjectionPolicy(0.75, 0.01)
    decisions = [policy.should_inject(1) for _ in range(400)]
    assert sum(decisions) == 300
    longest_gap = max(
        len(chunk) for chunk in "".join("x" if d else "." for d in decisions).split("x")
    )
    assert longest_gap <= 2  # at p=.75 never more than ~1/(1-p) quanta apart


def test_deterministic_credit_is_per_thread():
    policy = DeterministicInjectionPolicy(0.5, 0.01)
    a = [policy.should_inject(1) for _ in range(4)]
    b = [policy.should_inject(2) for _ in range(4)]
    assert a == b  # thread 2's credit is independent of thread 1's


@settings(max_examples=30, deadline=None)
@given(p=st.floats(min_value=0.01, max_value=0.95))
def test_deterministic_longrun_fraction_property(p):
    policy = DeterministicInjectionPolicy(p, 0.01)
    n = 2000
    hits = sum(policy.should_inject(1) for _ in range(n))
    assert abs(hits / n - p) < 0.01


# ----------------------------------------------------------------------
# PolicyTable
# ----------------------------------------------------------------------
def test_table_default_policy():
    table = PolicyTable()
    assert isinstance(table.lookup(42), NoInjectionPolicy)


def test_table_per_thread_override():
    table = PolicyTable()
    override = DeterministicInjectionPolicy(0.5, 0.02)
    table.set_thread_policy(7, override)
    assert table.lookup(7) is override
    assert isinstance(table.lookup(8), NoInjectionPolicy)


def test_table_clear_returns_to_default():
    default = DeterministicInjectionPolicy(0.25, 0.01)
    table = PolicyTable(default=default)
    table.set_thread_policy(7, DeterministicInjectionPolicy(0.9, 0.1))
    table.clear_thread_policy(7)
    assert table.lookup(7) is default


def test_table_exempt_thread():
    table = PolicyTable(default=DeterministicInjectionPolicy(0.9, 0.1))
    table.exempt_thread(7)
    assert isinstance(table.lookup(7), NoInjectionPolicy)
    assert table.lookup(8).p == 0.9


def test_table_set_default():
    table = PolicyTable()
    new = DeterministicInjectionPolicy(0.3, 0.01)
    table.set_default(new)
    assert table.lookup(1) is new


def test_policy_describe():
    policy = DeterministicInjectionPolicy(0.5, 0.025)
    assert "p=0.5" in policy.describe()
    assert "25" in policy.describe()
