"""Windowed SLO scoring: unit behavior and the recombination property.

The Hypothesis properties pin the conventions the scorer shares with
``RequestLog.arrived_in``: half-open windows partition the scoring
span, so per-window counts recombine *exactly* to whole-run totals,
boundary arrivals land in exactly one window, and empty windows are
no-data (excluded from every aggregate) rather than perfect.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import SloReport, WindowScore, score_windows
from repro.errors import AnalysisError
from repro.workloads import QOS_GOOD, QOS_TOLERABLE, Request, RequestLog

SPAN = 60.0


def make_request(rid, arrival, response):
    """response=None means never answered."""
    return Request(
        rid=rid,
        arrival=arrival,
        service_time=0.01,
        completed=None if response is None else arrival + response,
    )


# A request: arrival anywhere in the span (including exactly on window
# edges, via the integer strategy), answered within good / tolerable /
# late, or never answered.
arrivals = st.one_of(
    st.floats(0.0, SPAN, exclude_max=True, allow_nan=False),
    st.integers(0, int(SPAN) - 1).map(float),  # exact edge hits
)
responses = st.one_of(
    st.none(),
    st.floats(0.0, QOS_GOOD, allow_nan=False),
    st.floats(QOS_GOOD + 1e-6, QOS_TOLERABLE, allow_nan=False),
    st.floats(QOS_TOLERABLE + 1e-6, 60.0, allow_nan=False),
)
request_lists = st.lists(st.tuples(arrivals, responses), max_size=80).map(
    lambda pairs: [make_request(i, a, r) for i, (a, r) in enumerate(pairs)]
)
window_lengths = st.sampled_from([1.0, 3.0, 7.0, 10.0, 13.5, 60.0, 100.0])


@settings(max_examples=60, deadline=None)
@given(requests=request_lists, window=window_lengths)
def test_window_counts_recombine_to_whole_run_totals(requests, window):
    """Summing per-window counts over a partition gives exactly the
    whole-run numbers computed without any windowing."""
    report = score_windows(requests, start=0.0, end=SPAN, window=window)
    answered = [r for r in requests if r.response_time is not None]
    assert report.total_arrivals == len(requests)
    assert report.total_good == sum(
        1 for r in answered if r.response_time <= QOS_GOOD
    )
    assert report.total_tolerable == sum(
        1 for r in answered if r.response_time <= QOS_TOLERABLE
    )
    assert report.total_failed == report.total_arrivals - report.total_tolerable
    # And the aggregate fraction equals RequestLog's whole-run score.
    whole_run = RequestLog(requests=list(requests)).qos_fraction(
        QOS_GOOD, start=0.0, end=SPAN
    )
    if requests:
        assert report.good_fraction == pytest.approx(whole_run)
    else:
        assert report.good_fraction is None
        assert math.isnan(whole_run)


@settings(max_examples=60, deadline=None)
@given(requests=request_lists, window=window_lengths)
def test_boundary_arrivals_land_in_exactly_one_window(requests, window):
    """Half-open windows: every request in the span is counted once,
    even when its arrival sits exactly on a window edge."""
    report = score_windows(requests, start=0.0, end=SPAN, window=window)
    for request in requests:
        holders = [
            w for w in report.windows if w.start <= request.arrival < w.end
        ]
        assert len(holders) == 1
    # The windows tile the span with no gap or overlap.
    assert report.windows[0].start == 0.0
    assert report.windows[-1].end == SPAN
    for left, right in zip(report.windows, report.windows[1:]):
        assert left.end == right.start


@settings(max_examples=60, deadline=None)
@given(requests=request_lists, window=window_lengths)
def test_empty_windows_are_excluded_from_aggregates(requests, window):
    """An empty window's fractions are None and it never contributes to
    worst-window, violation time, or the totals."""
    report = score_windows(requests, start=0.0, end=SPAN, window=window)
    for w in report.windows:
        if w.empty:
            assert w.good_fraction is None
            assert w.tolerable_fraction is None
            assert w.failed_fraction is None
            assert w.response_percentiles == {}
    assert all(not w.empty for w in report.scored_windows())
    worst = report.worst_window()
    if worst is not None:
        assert not worst.empty
    empty_span = sum(w.end - w.start for w in report.windows if w.empty)
    # Even if every non-empty window violates, empty ones never count.
    assert report.time_in_violation(min_good=1.1) <= SPAN - empty_span
    # Serialization stays strict JSON: None, never NaN.
    json.dumps(report.series(), allow_nan=False)
    json.dumps(report.summary(), allow_nan=False)


# ----------------------------------------------------------------------
# Unit behavior
# ----------------------------------------------------------------------
def test_score_windows_validation():
    with pytest.raises(AnalysisError):
        score_windows([], start=0.0, end=10.0, window=0.0)
    with pytest.raises(AnalysisError):
        score_windows([], start=10.0, end=10.0, window=1.0)
    with pytest.raises(AnalysisError):
        score_windows(
            [], start=0.0, end=10.0, window=1.0,
            good_threshold=5.0, tolerable_threshold=3.0,
        )


def test_last_window_truncates_at_end():
    report = score_windows([], start=0.0, end=10.0, window=4.0)
    assert [(w.start, w.end) for w in report.windows] == [
        (0.0, 4.0),
        (4.0, 8.0),
        (8.0, 10.0),
    ]


def test_unanswered_requests_fail_but_skip_percentiles():
    requests = [
        make_request(1, 1.0, 0.5),   # good
        make_request(2, 1.5, 4.0),   # tolerable only
        make_request(3, 2.0, None),  # never answered -> failed
    ]
    report = score_windows(requests, start=0.0, end=10.0, window=10.0)
    (w,) = report.windows
    assert (w.arrivals, w.good, w.tolerable, w.failed, w.answered) == (3, 1, 2, 1, 2)
    assert w.response_percentiles["p50"] == pytest.approx(2.25)
    assert report.good_fraction == pytest.approx(1 / 3)


def test_worst_window_and_violation_time():
    requests = [make_request(1, 1.0, 0.5)] + [
        make_request(10 + i, 11.0 + 0.1 * i, 10.0) for i in range(5)
    ]
    report = score_windows(requests, start=0.0, end=30.0, window=10.0)
    worst = report.worst_window()
    assert worst.start == 10.0
    assert worst.good_fraction == 0.0
    assert report.time_in_violation(min_good=0.95) == pytest.approx(10.0)
    assert report.worst_window(metric="tolerable").start == 10.0
    with pytest.raises(AnalysisError):
        report.worst_window(metric="latency")


def test_all_empty_report_has_no_data():
    report = score_windows([], start=0.0, end=20.0, window=5.0)
    assert report.good_fraction is None
    assert report.worst_window() is None
    assert report.time_in_violation() == 0.0
    summary = report.summary()
    assert summary["arrivals"] == 0
    assert summary["empty_windows"] == summary["windows"] == 4
    json.dumps(summary, allow_nan=False)


def test_series_columns_align_with_windows():
    requests = [make_request(1, 0.5, 0.1), make_request(2, 7.0, 0.2)]
    report = score_windows(requests, start=0.0, end=9.0, window=3.0)
    series = report.series()
    assert len(series["start"]) == len(report.windows) == 3
    assert series["arrivals"] == [1, 0, 1]
    assert series["good_fraction"] == [1.0, None, 1.0]
    assert series["p95_response"][1] is None


def test_window_score_is_immutable():
    w = WindowScore(start=0.0, end=1.0, arrivals=0, good=0, tolerable=0, answered=0)
    with pytest.raises(AttributeError):
        w.arrivals = 3


def test_report_is_reusable_dataclass():
    report = SloReport(
        windows=[], good_threshold=QOS_GOOD,
        tolerable_threshold=QOS_TOLERABLE, window_length=1.0,
    )
    assert report.total_arrivals == 0
