"""Unit tests for coroutine-style processes and periodic tasks."""

import pytest

from repro.errors import SimulationError
from repro.sim import PeriodicTask, Process, Simulator


def test_process_runs_until_generator_returns():
    sim = Simulator()
    log = []

    def body():
        for _ in range(3):
            log.append(sim.now)
            yield 1.0

    proc = Process(sim, body())
    sim.run()
    assert log == [0.0, 1.0, 2.0]
    assert proc.finished


def test_process_start_delay():
    sim = Simulator()
    log = []

    def body():
        log.append(sim.now)
        yield 0.5
        log.append(sim.now)

    Process(sim, body(), start_delay=2.0)
    sim.run()
    assert log == [2.0, 2.5]


def test_process_stop_cancels_future_resumes():
    sim = Simulator()
    log = []

    def body():
        while True:
            log.append(sim.now)
            yield 1.0

    proc = Process(sim, body())
    sim.schedule(2.5, proc.stop)
    sim.run(until=10.0)
    assert log == [0.0, 1.0, 2.0]
    assert proc.finished


def test_process_stop_is_idempotent():
    sim = Simulator()

    def body():
        yield 1.0

    proc = Process(sim, body())
    proc.stop()
    proc.stop()
    sim.run()
    assert proc.finished


def test_process_negative_delay_raises():
    sim = Simulator()

    def body():
        yield -1.0

    Process(sim, body())
    with pytest.raises(SimulationError):
        sim.run()


def test_periodic_task_fires_at_period():
    sim = Simulator()
    times = []
    PeriodicTask(sim, 1.0, lambda: times.append(sim.now))
    sim.run(until=3.5)
    assert times == [1.0, 2.0, 3.0]


def test_periodic_task_phase():
    sim = Simulator()
    times = []
    PeriodicTask(sim, 1.0, lambda: times.append(sim.now), phase=0.0)
    sim.run(until=2.5)
    assert times == [0.0, 1.0, 2.0]


def test_periodic_task_cancel():
    sim = Simulator()
    times = []
    task = PeriodicTask(sim, 1.0, lambda: times.append(sim.now))
    sim.schedule(2.5, task.cancel)
    sim.run(until=10.0)
    assert times == [1.0, 2.0]


def test_periodic_task_cancel_from_callback():
    sim = Simulator()
    times = []
    task_holder = {}

    def fire():
        times.append(sim.now)
        if len(times) == 2:
            task_holder["task"].cancel()

    task_holder["task"] = PeriodicTask(sim, 1.0, fire)
    sim.run(until=10.0)
    assert times == [1.0, 2.0]


def test_periodic_task_invalid_period():
    sim = Simulator()
    with pytest.raises(SimulationError):
        PeriodicTask(sim, 0.0, lambda: None)
