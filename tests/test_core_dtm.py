"""Tests for the reactive (worst-case) DTM baseline."""

import pytest

from repro.core import ReactiveThrottleController
from repro.errors import ConfigurationError
from repro.experiments import Machine, fast_config
from repro.workloads import CpuBurn


def build(machine, trip, **kwargs):
    return ReactiveThrottleController(
        machine.sim,
        machine.chip,
        lambda: float(machine.core_temps.max()),
        trip_temp=trip,
        **kwargs,
    )


def test_validation():
    machine = Machine(fast_config())
    with pytest.raises(ConfigurationError):
        build(machine, 50.0, hysteresis=-1.0)
    with pytest.raises(ConfigurationError):
        build(machine, 50.0, period=0.0)


def test_stays_off_below_trip():
    machine = Machine(fast_config())
    controller = build(machine, trip=60.0)
    machine.run(10.0)  # idle machine, ~33 C
    assert not controller.throttling
    assert controller.current_duty == 1.0
    assert controller.stats.engagements == 0
    assert machine.chip.tcc.duty == 1.0


def test_engages_and_bounds_temperature():
    machine = Machine(fast_config())
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    # Unconstrained cpuburn would settle around 53-55 C; trip at 46.
    controller = build(machine, trip=46.0, period=0.1)
    machine.run(100.0)
    assert controller.stats.engagements >= 1
    final = machine.mean_core_temp_over_window(10.0)
    assert final < 48.0  # bounded near the trip point
    assert machine.chip.tcc.duty < 1.0


def test_reactive_dtm_does_not_lower_average_below_trip():
    """The §1 contrast: worst-case DTM clamps at the emergency level
    instead of lowering average-case temperatures."""
    machine = Machine(fast_config())
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    controller = build(machine, trip=46.0, period=0.1)
    machine.run(100.0)
    final = machine.mean_core_temp_over_window(10.0)
    # It rides just under the trip; it does not push far below it.
    assert final > 42.0


def test_releases_when_load_disappears():
    machine = Machine(fast_config())
    threads = [machine.scheduler.spawn(CpuBurn()) for _ in range(4)]
    controller = build(machine, trip=46.0, period=0.1)
    machine.run(60.0)
    assert controller.throttling
    for t in threads:
        machine.scheduler.terminate(t)
    machine.run(60.0)
    assert not controller.throttling
    assert machine.chip.tcc.duty == 1.0


def test_stop_freezes_controller():
    machine = Machine(fast_config())
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    controller = build(machine, trip=46.0, period=0.1)
    machine.run(5.0)
    controller.stop()
    count = controller.stats.samples_total
    machine.run(5.0)
    assert controller.stats.samples_total == count


def test_history_records_actions():
    machine = Machine(fast_config())
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    controller = build(machine, trip=44.0, period=0.1)
    machine.run(60.0)
    assert controller.history
    duties = [e.duty for e in controller.history]
    assert min(duties) < 1.0


# ======================================================================
# Time-weighted throttle accounting
# ======================================================================
def test_throttle_stats_account_and_to_dict():
    from repro.core.dtm import ThrottleStats

    stats = ThrottleStats()
    stats.account(1.0, 5.0)  # unthrottled dwell
    stats.account(0.5, 2.0)
    stats.account(0.5, 1.0)
    stats.account(0.25, 0.5)
    stats.account(0.25, 0.0)  # zero dwell is a no-op
    assert stats.time_throttled == pytest.approx(3.5)
    assert stats.duty_dwell == {1.0: 5.0, 0.5: 3.0, 0.25: 0.5}
    with pytest.raises(ConfigurationError):
        stats.account(0.5, -1.0)
    payload = stats.to_dict()
    assert payload["time_throttled_s"] == pytest.approx(3.5)
    assert payload["duty_dwell_s"] == {"0.25": 0.5, "0.5": 3.0, "1": 5.0}


def test_reactive_controller_time_weighted_dwell():
    machine = Machine(fast_config())
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    controller = build(machine, trip=46.0, period=0.1)
    machine.run(60.0)
    controller.stop()
    controller.finalize(machine.now)
    stats = controller.stats
    assert stats.time_throttled > 0.0
    # Dwell partitions the whole run (controller started at t=0).
    assert sum(stats.duty_dwell.values()) == pytest.approx(machine.now)
    # Finalize is idempotent: closing again adds nothing.
    controller.finalize(machine.now)
    assert sum(stats.duty_dwell.values()) == pytest.approx(machine.now)


# ======================================================================
# AlertDrivenController (monitor-driven reactive DTM)
# ======================================================================
def _monitored_machine(*, warning_rise=1.5, critical_rise=3.0, period=0.5):
    from repro.health import HealthParams

    machine = Machine(fast_config())
    monitor = machine.attach_health(
        HealthParams(
            warning_rise=warning_rise,
            critical_rise=critical_rise,
            period=period,
        )
    )
    return machine, monitor


def test_alert_driven_controller_engages_on_critical_only():
    from repro.core import AlertDrivenController
    from repro.health import HealthState

    machine, monitor = _monitored_machine()
    controller = AlertDrivenController(machine.chip, monitor)
    # The default ladder drops the no-op 100% rung: the first
    # engagement must actually modulate the clock.
    assert all(s.duty < 1.0 for s in controller.ladder)
    machine.run(5.0)  # idle: never critical
    assert not controller.throttling
    assert controller.stats.engagements == 0

    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    machine.run(60.0)
    assert controller.stats.engagements >= 1
    assert controller.stats.samples_over_trip >= 1
    assert machine.chip.tcc.duty < 1.0 or monitor.state is not HealthState.CRITICAL


def test_alert_driven_controller_descends_while_critical_persists():
    from repro.core import AlertDrivenController

    machine, monitor = _monitored_machine(critical_rise=2.0)
    controller = AlertDrivenController(machine.chip, monitor)
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    machine.run(60.0)
    # Persistent criticality walks the ladder down through >1 duty.
    throttled_duties = {e.duty for e in controller.history if e.duty < 1.0}
    assert len(throttled_duties) >= 2


def test_alert_driven_controller_releases_on_recovery():
    from repro.core import AlertDrivenController
    from repro.health import HealthState

    machine, monitor = _monitored_machine(critical_rise=2.5)
    controller = AlertDrivenController(machine.chip, monitor)
    threads = [machine.scheduler.spawn(CpuBurn()) for _ in range(4)]
    machine.run(40.0)
    assert controller.throttling
    for t in threads:
        machine.scheduler.terminate(t)
    machine.run(40.0)
    # The machine cooled below critical - hysteresis: full release.
    assert monitor.state is not HealthState.CRITICAL
    assert not controller.throttling
    assert machine.chip.tcc.duty == 1.0
    # Release is a single jump to TCC_OFF, not a notch-by-notch climb.
    releases = [e for e in controller.history if e.duty == 1.0]
    assert releases


def test_alert_driven_controller_params_for_manifest():
    from repro.core import AlertDrivenController

    machine, monitor = _monitored_machine(period=0.5)
    controller = AlertDrivenController(machine.chip, monitor)
    params = controller.params()
    assert params["kind"] == "alert-driven"
    assert params["trip_temp_c"] == pytest.approx(monitor.thresholds.critical)
    assert params["release_temp_c"] == pytest.approx(
        monitor.thresholds.critical - monitor.thresholds.hysteresis
    )
    assert params["monitor_period_s"] == 0.5
    assert 1.0 not in params["ladder_duties"]


def test_alert_driven_controller_dwell_matches_critical_time():
    """Time-weighted accounting: the controller throttles exactly while
    the monitor holds CRITICAL (within one monitor period of slack at
    each transition)."""
    from repro.core import AlertDrivenController

    machine, monitor = _monitored_machine(critical_rise=2.0, period=0.5)
    controller = AlertDrivenController(machine.chip, monitor)
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    machine.run(30.0)
    monitor.stop()
    monitor.finalize()
    controller.finalize(machine.now)
    critical = monitor.tracker.time_in_critical
    assert critical > 0.0
    assert controller.stats.time_throttled == pytest.approx(critical, abs=1.0)
