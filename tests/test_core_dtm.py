"""Tests for the reactive (worst-case) DTM baseline."""

import pytest

from repro.core import ReactiveThrottleController
from repro.errors import ConfigurationError
from repro.experiments import Machine, fast_config
from repro.workloads import CpuBurn


def build(machine, trip, **kwargs):
    return ReactiveThrottleController(
        machine.sim,
        machine.chip,
        lambda: float(machine.core_temps.max()),
        trip_temp=trip,
        **kwargs,
    )


def test_validation():
    machine = Machine(fast_config())
    with pytest.raises(ConfigurationError):
        build(machine, 50.0, hysteresis=-1.0)
    with pytest.raises(ConfigurationError):
        build(machine, 50.0, period=0.0)


def test_stays_off_below_trip():
    machine = Machine(fast_config())
    controller = build(machine, trip=60.0)
    machine.run(10.0)  # idle machine, ~33 C
    assert not controller.throttling
    assert controller.current_duty == 1.0
    assert controller.stats.engagements == 0
    assert machine.chip.tcc.duty == 1.0


def test_engages_and_bounds_temperature():
    machine = Machine(fast_config())
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    # Unconstrained cpuburn would settle around 53-55 C; trip at 46.
    controller = build(machine, trip=46.0, period=0.1)
    machine.run(100.0)
    assert controller.stats.engagements >= 1
    final = machine.mean_core_temp_over_window(10.0)
    assert final < 48.0  # bounded near the trip point
    assert machine.chip.tcc.duty < 1.0


def test_reactive_dtm_does_not_lower_average_below_trip():
    """The §1 contrast: worst-case DTM clamps at the emergency level
    instead of lowering average-case temperatures."""
    machine = Machine(fast_config())
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    controller = build(machine, trip=46.0, period=0.1)
    machine.run(100.0)
    final = machine.mean_core_temp_over_window(10.0)
    # It rides just under the trip; it does not push far below it.
    assert final > 42.0


def test_releases_when_load_disappears():
    machine = Machine(fast_config())
    threads = [machine.scheduler.spawn(CpuBurn()) for _ in range(4)]
    controller = build(machine, trip=46.0, period=0.1)
    machine.run(60.0)
    assert controller.throttling
    for t in threads:
        machine.scheduler.terminate(t)
    machine.run(60.0)
    assert not controller.throttling
    assert machine.chip.tcc.duty == 1.0


def test_stop_freezes_controller():
    machine = Machine(fast_config())
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    controller = build(machine, trip=46.0, period=0.1)
    machine.run(5.0)
    controller.stop()
    count = controller.stats.samples_total
    machine.run(5.0)
    assert controller.stats.samples_total == count


def test_history_records_actions():
    machine = Machine(fast_config())
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    controller = build(machine, trip=44.0, period=0.1)
    machine.run(60.0)
    assert controller.history
    duties = [e.duty for e in controller.history]
    assert min(duties) < 1.0
