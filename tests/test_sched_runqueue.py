"""Tests for the multi-level feedback runqueue."""

import pytest

from repro.errors import SchedulerError
from repro.sched import MultiLevelFeedbackQueue, Thread, ThreadState
from repro.workloads import CpuBurn


def make_thread(name="t"):
    thread = Thread(CpuBurn(), name=name)
    thread.state = ThreadState.READY
    return thread


def test_empty_queue():
    q = MultiLevelFeedbackQueue()
    assert len(q) == 0
    assert q.dequeue() is None


def test_fifo_within_level():
    q = MultiLevelFeedbackQueue()
    a, b, c = make_thread("a"), make_thread("b"), make_thread("c")
    for t in (a, b, c):
        q.enqueue(t)
    assert q.dequeue() is a
    assert q.dequeue() is b
    assert q.dequeue() is c


def test_higher_level_goes_first():
    q = MultiLevelFeedbackQueue()
    low = make_thread("low")
    low.queue_level = 2
    high = make_thread("high")
    high.queue_level = 0
    q.enqueue(low)
    q.enqueue(high)
    assert q.dequeue() is high
    assert q.dequeue() is low


def test_enqueue_requires_ready_state():
    q = MultiLevelFeedbackQueue()
    t = Thread(CpuBurn())
    assert t.state is ThreadState.NEW
    with pytest.raises(SchedulerError):
        q.enqueue(t)


def test_double_enqueue_rejected():
    q = MultiLevelFeedbackQueue()
    t = make_thread()
    q.enqueue(t)
    with pytest.raises(SchedulerError):
        q.enqueue(t)


def test_contains_and_len():
    q = MultiLevelFeedbackQueue()
    a, b = make_thread("a"), make_thread("b")
    q.enqueue(a)
    assert a in q
    assert b not in q
    assert len(q) == 1


def test_remove():
    q = MultiLevelFeedbackQueue()
    a, b = make_thread("a"), make_thread("b")
    q.enqueue(a)
    q.enqueue(b)
    assert q.remove(a) is True
    assert a not in q
    assert q.dequeue() is b
    assert q.remove(a) is False


def test_dequeue_clears_membership():
    q = MultiLevelFeedbackQueue()
    a = make_thread()
    q.enqueue(a)
    q.dequeue()
    assert a not in q
    q.enqueue(a)  # re-enqueue allowed after dequeue
    assert a in q


def test_quantum_expiry_lowers_priority():
    q = MultiLevelFeedbackQueue(num_levels=3)
    t = make_thread()
    assert t.queue_level == 0
    q.on_quantum_expired(t)
    assert t.queue_level == 1
    q.on_quantum_expired(t)
    q.on_quantum_expired(t)
    assert t.queue_level == 2  # clamped at the lowest level


def test_wakeup_boosts_to_top():
    q = MultiLevelFeedbackQueue()
    t = make_thread()
    t.queue_level = 3
    q.on_wakeup(t)
    assert t.queue_level == 0


def test_level_clamping_on_enqueue():
    q = MultiLevelFeedbackQueue(num_levels=2)
    t = make_thread()
    t.queue_level = 7
    q.enqueue(t)
    assert t.queue_level == 1


def test_iteration_order():
    q = MultiLevelFeedbackQueue()
    a, b = make_thread("a"), make_thread("b")
    b.queue_level = 1
    q.enqueue(b)
    q.enqueue(a)
    assert [t.name for t in q] == ["a", "b"]


def test_needs_at_least_one_level():
    with pytest.raises(SchedulerError):
        MultiLevelFeedbackQueue(num_levels=0)
