"""Tests for trace-driven workloads."""

import pytest

from repro.errors import WorkloadError
from repro.experiments import Machine, fast_config
from repro.sim import RngRegistry
from repro.workloads import (
    Burst,
    RequestTrace,
    TraceWorkload,
    synthesize_bursty_trace,
    trace_utilization,
)


def test_trace_replays_in_order():
    trace = [(0.5, 1.0), (0.25, 0.0)]
    w = TraceWorkload(trace)
    first = w.next_burst()
    assert isinstance(first, Burst)
    assert first.cpu_time == 0.5
    assert first.sleep_time == 1.0
    second = w.next_burst()
    assert second.cpu_time == 0.25
    assert w.next_burst() is None
    assert w.replayed_entries == 2


def test_trace_loops():
    w = TraceWorkload([(0.1, 0.1)], loop=True)
    for _ in range(5):
        assert isinstance(w.next_burst(), Burst)
    assert w.replayed_entries == 5


def test_trace_validation():
    with pytest.raises(WorkloadError):
        TraceWorkload([])
    with pytest.raises(WorkloadError):
        TraceWorkload([(0.0, 1.0)])
    with pytest.raises(WorkloadError):
        TraceWorkload([(1.0, -1.0)])


def test_trace_utilization():
    assert trace_utilization([(1.0, 1.0)]) == pytest.approx(0.5)
    assert trace_utilization([(1.0, 0.0)]) == pytest.approx(1.0)


def test_synthesized_trace_hits_target_utilization():
    rng = RngRegistry(7).stream("trace")
    trace = synthesize_bursty_trace(rng, duration=500.0, utilization=0.3)
    assert trace_utilization(trace) == pytest.approx(0.3, abs=0.05)
    assert sum(c + g for c, g in trace) >= 500.0


def test_synthesize_validation():
    rng = RngRegistry(7).stream("trace")
    with pytest.raises(WorkloadError):
        synthesize_bursty_trace(rng, duration=10.0, utilization=0.0)
    with pytest.raises(WorkloadError):
        synthesize_bursty_trace(rng, duration=0.0, utilization=0.5)


def test_synthesize_rejects_zero_burst_cv():
    # burst_cv=0 used to divide by zero computing the gamma shape; a
    # deterministic burst length is out of the model's domain and must
    # say so instead of crashing.
    rng = RngRegistry(7).stream("trace")
    with pytest.raises(WorkloadError):
        synthesize_bursty_trace(rng, duration=10.0, utilization=0.5, burst_cv=0.0)
    with pytest.raises(WorkloadError):
        synthesize_bursty_trace(rng, duration=10.0, utilization=0.5, burst_cv=-1.0)


def test_trace_workload_runs_on_machine():
    machine = Machine(fast_config())
    rng = machine.rng.stream("trace")
    trace = synthesize_bursty_trace(rng, duration=30.0, utilization=0.4, mean_burst=0.2)
    thread = machine.scheduler.spawn(TraceWorkload(trace))
    machine.run(30.0)
    busy_fraction = thread.stats.work_done / 30.0
    assert busy_fraction == pytest.approx(0.4, abs=0.08)


# ----------------------------------------------------------------------
# Request-arrival traces
# ----------------------------------------------------------------------
def test_request_trace_validation():
    with pytest.raises(WorkloadError):
        RequestTrace(())
    with pytest.raises(WorkloadError):
        RequestTrace((-1.0, 2.0))
    with pytest.raises(WorkloadError):
        RequestTrace((2.0, 1.0))
    # Batched (simultaneous) arrivals are legal.
    assert len(RequestTrace((1.0, 1.0, 2.0))) == 3


def test_request_trace_gaps_and_round_trip():
    trace = RequestTrace((0.5, 2.0, 2.0, 3.5))
    assert list(trace.gaps()) == pytest.approx([0.5, 1.5, 0.0, 1.5])
    assert trace.duration == 3.5
    rebuilt = RequestTrace.from_gaps(trace.gaps())
    assert rebuilt.times == pytest.approx(trace.times)
    with pytest.raises(WorkloadError):
        RequestTrace.from_gaps([1.0, -0.5])


def test_request_trace_windows_are_half_open():
    trace = RequestTrace((0.0, 1.0, 2.0, 2.0, 3.0))
    assert trace.count_in(0.0, 2.0) == 2  # 2.0 excluded
    assert trace.count_in(2.0, 4.0) == 3  # both 2.0s included
    assert trace.count_in(0.0, 2.0) + trace.count_in(2.0, 4.0) == len(trace)
    assert trace.mean_rate(0.0, 5.0) == pytest.approx(1.0)
    with pytest.raises(WorkloadError):
        trace.mean_rate(3.0, 3.0)


def test_injection_slows_trace_replay():
    def run(p):
        machine = Machine(fast_config())
        trace = [(0.2, 0.05)] * 120
        thread = machine.scheduler.spawn(TraceWorkload(trace))
        if p:
            machine.control.set_global_policy(p, 0.05, deterministic=True)
        machine.run(25.0)
        return thread.workload.replayed_entries

    assert run(0.75) < run(0.0)
