"""Tests for trace-driven workloads."""

import pytest

from repro.errors import WorkloadError
from repro.experiments import Machine, fast_config
from repro.sim import RngRegistry
from repro.workloads import Burst, TraceWorkload, synthesize_bursty_trace, trace_utilization


def test_trace_replays_in_order():
    trace = [(0.5, 1.0), (0.25, 0.0)]
    w = TraceWorkload(trace)
    first = w.next_burst()
    assert isinstance(first, Burst)
    assert first.cpu_time == 0.5
    assert first.sleep_time == 1.0
    second = w.next_burst()
    assert second.cpu_time == 0.25
    assert w.next_burst() is None
    assert w.replayed_entries == 2


def test_trace_loops():
    w = TraceWorkload([(0.1, 0.1)], loop=True)
    for _ in range(5):
        assert isinstance(w.next_burst(), Burst)
    assert w.replayed_entries == 5


def test_trace_validation():
    with pytest.raises(WorkloadError):
        TraceWorkload([])
    with pytest.raises(WorkloadError):
        TraceWorkload([(0.0, 1.0)])
    with pytest.raises(WorkloadError):
        TraceWorkload([(1.0, -1.0)])


def test_trace_utilization():
    assert trace_utilization([(1.0, 1.0)]) == pytest.approx(0.5)
    assert trace_utilization([(1.0, 0.0)]) == pytest.approx(1.0)


def test_synthesized_trace_hits_target_utilization():
    rng = RngRegistry(7).stream("trace")
    trace = synthesize_bursty_trace(rng, duration=500.0, utilization=0.3)
    assert trace_utilization(trace) == pytest.approx(0.3, abs=0.05)
    assert sum(c + g for c, g in trace) >= 500.0


def test_synthesize_validation():
    rng = RngRegistry(7).stream("trace")
    with pytest.raises(WorkloadError):
        synthesize_bursty_trace(rng, duration=10.0, utilization=0.0)
    with pytest.raises(WorkloadError):
        synthesize_bursty_trace(rng, duration=0.0, utilization=0.5)


def test_trace_workload_runs_on_machine():
    machine = Machine(fast_config())
    rng = machine.rng.stream("trace")
    trace = synthesize_bursty_trace(rng, duration=30.0, utilization=0.4, mean_burst=0.2)
    thread = machine.scheduler.spawn(TraceWorkload(trace))
    machine.run(30.0)
    busy_fraction = thread.stats.work_done / 30.0
    assert busy_fraction == pytest.approx(0.4, abs=0.08)


def test_injection_slows_trace_replay():
    def run(p):
        machine = Machine(fast_config())
        trace = [(0.2, 0.05)] * 120
        thread = machine.scheduler.spawn(TraceWorkload(trace))
        if p:
            machine.control.set_global_policy(p, 0.05, deterministic=True)
        machine.run(25.0)
        return thread.workload.replayed_entries

    assert run(0.75) < run(0.0)
