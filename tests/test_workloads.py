"""Tests for the workload generators (cpuburn, SPEC, mixes)."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.workloads import (
    Burst,
    CpuBurn,
    DutyCycledBurn,
    FiniteCpuBurn,
    SpecWorkload,
    TABLE1_FIT,
    TABLE1_RISE_PERCENT,
    activity_for_rise,
    all_benchmarks,
    spec_profile,
)


# ----------------------------------------------------------------------
# cpuburn
# ----------------------------------------------------------------------
def test_cpuburn_is_maximal_activity():
    burn = CpuBurn()
    assert burn.activity == 1.0
    assert burn.cpu_fraction == 1.0
    assert burn.name == "cpuburn"


def test_cpuburn_never_ends():
    burn = CpuBurn(chunk=5.0)
    for _ in range(10):
        burst = burn.next_burst()
        assert isinstance(burst, Burst)
        assert burst.cpu_time == 5.0
        assert burst.sleep_time == 0.0


def test_cpuburn_validates_chunk():
    with pytest.raises(WorkloadError):
        CpuBurn(chunk=0.0)


def test_finite_cpuburn_emits_once():
    burn = FiniteCpuBurn(7.0)
    burst = burn.next_burst()
    assert burst.cpu_time == 7.0
    assert burn.next_burst() is None


def test_finite_cpuburn_validates():
    with pytest.raises(WorkloadError):
        FiniteCpuBurn(0.0)


def test_duty_cycled_burn_pattern():
    cool = DutyCycledBurn(burn_time=6.0, sleep_time=60.0)
    burst = cool.next_burst()
    assert burst.cpu_time == 6.0
    assert burst.sleep_time == 60.0


def test_duty_cycled_burn_iteration_limit():
    cool = DutyCycledBurn(burn_time=1.0, sleep_time=1.0, iterations=2)
    for _ in range(2):
        burst = cool.next_burst()
        burst.on_complete(0.0)
    assert cool.completed_iterations == 2
    assert cool.next_burst() is None


def test_duty_cycled_validates():
    with pytest.raises(WorkloadError):
        DutyCycledBurn(burn_time=0.0)
    with pytest.raises(WorkloadError):
        DutyCycledBurn(burn_time=1.0, sleep_time=-1.0)


# ----------------------------------------------------------------------
# SPEC profiles
# ----------------------------------------------------------------------
def test_table1_constants_present():
    assert set(TABLE1_RISE_PERCENT) == {
        "cpuburn",
        "calculix",
        "namd",
        "dealII",
        "bzip2",
        "gcc",
        "astar",
    }
    assert TABLE1_FIT["cpuburn"] == (1.092, 1.541)


def test_all_benchmarks_sorted_hottest_first():
    names = all_benchmarks()
    assert names[0] == "calculix"
    assert names[-1] == "astar"
    rises = [TABLE1_RISE_PERCENT[n] for n in names]
    assert rises == sorted(rises, reverse=True)


def test_spec_profile_activity_ordering():
    """Hotter benchmarks require larger activity factors."""
    activities = [spec_profile(n).activity for n in all_benchmarks()]
    assert activities == sorted(activities, reverse=True)
    assert all(0.0 < a <= 1.0 for a in activities)


def test_spec_profile_cpuburn_is_unity():
    assert spec_profile("cpuburn").activity == 1.0


def test_spec_profile_cached():
    assert spec_profile("astar") is spec_profile("astar")


def test_spec_profile_unknown():
    with pytest.raises(ConfigurationError):
        spec_profile("nonexistent")


def test_spec_workload_carries_profile():
    w = SpecWorkload("gcc")
    assert w.name == "gcc"
    assert w.activity == spec_profile("gcc").activity
    assert isinstance(w.next_burst(), Burst)


def test_activity_for_rise_calibration():
    """The calibrated activity reproduces the requested rise fraction."""
    from repro.cpu import Chip
    from repro.thermal import build_network, default
    from repro.workloads.spec import _steady_busy_temp, _steady_idle_temp

    chip = Chip()
    network = build_network(default(), chip.num_cores)
    idle = _steady_idle_temp(chip, network)
    full_rise = _steady_busy_temp(1.0, chip, network) - idle
    activity = activity_for_rise(0.8, chip=chip)
    achieved = _steady_busy_temp(activity, chip, network) - idle
    assert achieved / full_rise == pytest.approx(0.8, abs=0.01)


def test_activity_for_rise_validates():
    with pytest.raises(ConfigurationError):
        activity_for_rise(0.0)
    with pytest.raises(ConfigurationError):
        activity_for_rise(1.5)


# ----------------------------------------------------------------------
# Mixes
# ----------------------------------------------------------------------
def test_hot_cool_mix_structure():
    from repro.experiments import Machine, fast_config
    from repro.workloads import build_hot_cool_mix

    machine = Machine(fast_config())
    mix = build_hot_cool_mix(machine.scheduler, hot_count=4, burn_time=1.0, sleep_time=2.0)
    assert len(mix.hot_threads) == 4
    assert mix.cool_thread.name == "cool"
    assert len(mix.all_threads) == 5
    assert all(t.workload.name == "calculix" for t in mix.hot_threads)
    machine.run(4.0)
    assert mix.cool_workload.completed_iterations >= 1
