"""Tests for idle-injection power capping."""

import pytest

from repro.core import PowerCapController
from repro.errors import ConfigurationError
from repro.experiments import Machine, fast_config
from repro.workloads import CpuBurn


def build(machine, cap, **kwargs):
    return PowerCapController(
        machine.sim,
        machine.control,
        machine.powermeter,
        cap_watts=cap,
        **kwargs,
    )


def test_validation():
    machine = Machine(fast_config())
    with pytest.raises(ConfigurationError):
        build(machine, 0.0)
    with pytest.raises(ConfigurationError):
        build(machine, 50.0, idle_quantum=0.0)


def test_cap_is_enforced_under_full_load():
    machine = Machine(fast_config())
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    # Unconstrained package power is ~65-75 W; cap at 45 W.
    controller = build(machine, 45.0, idle_quantum=0.01)
    machine.run(100.0)
    assert controller.compliance(tolerance=2.0, skip=40) > 0.9
    assert 38.0 < controller.mean_power(skip=40) < 47.0
    assert controller.p > 0.1


def test_cap_inactive_when_under_cap():
    machine = Machine(fast_config())
    controller = build(machine, 45.0)  # idle machine burns ~14 W
    machine.run(20.0)
    assert controller.p == 0.0
    assert controller.compliance() == 1.0


def test_short_quanta_retain_throughput_at_same_cap():
    """The §4 conjecture (Gandhi et al. rearchitected with short
    quanta): at an identical power cap the package temperature is set
    by the cap itself, and the benefit of shorter idle quanta shows up
    as *retained throughput* — less energy is wasted on the leakage
    ripple of long on/off cycles, so more of the capped watts do work."""

    def run(idle_quantum):
        machine = Machine(fast_config())
        for _ in range(4):
            machine.scheduler.spawn(CpuBurn())
        controller = build(machine, 48.0, idle_quantum=idle_quantum)
        machine.run(100.0)
        return machine.total_work_done(), machine.mean_core_temp_over_window(), controller

    work_short, temp_short, ctl_short = run(0.005)
    work_long, temp_long, ctl_long = run(0.100)
    # Both hold the cap...
    assert ctl_short.compliance(tolerance=2.5, skip=40) > 0.85
    assert ctl_long.compliance(tolerance=2.5, skip=40) > 0.85
    # ...at essentially the same temperature (same watts, same heat)...
    assert temp_short == pytest.approx(temp_long, abs=1.0)
    # ...but short quanta deliver measurably more work.
    assert work_short > work_long * 1.005


def test_history_and_stop():
    machine = Machine(fast_config())
    controller = build(machine, 45.0, period=1.0)
    machine.run(5.5)
    assert len(controller.history) == 5
    controller.stop()
    machine.run(5.0)
    assert len(controller.history) == 5


def test_mean_power_empty():
    machine = Machine(fast_config())
    controller = build(machine, 45.0)
    assert controller.compliance() == 0.0
    assert controller.mean_power() != controller.mean_power()  # NaN
