"""Tests for the reliability and cooling-cost analysis models."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import BOLTZMANN_EV, CoolingModel, ReliabilityModel
from repro.errors import ConfigurationError


# ----------------------------------------------------------------------
# Reliability (Arrhenius)
# ----------------------------------------------------------------------
def test_acceleration_is_one_at_reference():
    model = ReliabilityModel(reference_temp=55.0)
    assert model.acceleration_factor(55.0) == pytest.approx(1.0)
    assert model.mttf_factor(55.0) == pytest.approx(1.0)


def test_hotter_is_worse():
    model = ReliabilityModel()
    assert model.acceleration_factor(65.0) > 1.0
    assert model.mttf_factor(65.0) < 1.0
    assert model.acceleration_factor(45.0) < 1.0


def test_arrhenius_magnitude():
    """Rule of thumb: ~10 C hotter roughly halves electromigration MTTF."""
    model = ReliabilityModel(activation_energy_ev=0.7, reference_temp=55.0)
    factor = model.mttf_factor(65.0)
    assert 0.4 < factor < 0.6


def test_acceleration_matches_closed_form():
    model = ReliabilityModel(activation_energy_ev=0.7, reference_temp=50.0)
    t, t_ref = 60.0 + 273.15, 50.0 + 273.15
    expected = math.exp((0.7 / BOLTZMANN_EV) * (1 / t_ref - 1 / t))
    assert model.acceleration_factor(60.0) == pytest.approx(expected)


def test_mean_acceleration_over_trace():
    model = ReliabilityModel(reference_temp=55.0)
    trace = [55.0, 55.0, 65.0]
    expected = (1.0 + 1.0 + model.acceleration_factor(65.0)) / 3.0
    assert model.mean_acceleration(trace) == pytest.approx(expected)


def test_mttf_improvement_from_cooling():
    model = ReliabilityModel()
    hot = [55.0] * 10
    cooled = [48.0] * 10
    improvement = model.mttf_improvement(hot, cooled)
    assert improvement > 1.3  # 7 C cooler buys real lifetime


def test_reliability_validation():
    with pytest.raises(ConfigurationError):
        ReliabilityModel(activation_energy_ev=0.0)
    with pytest.raises(ConfigurationError):
        ReliabilityModel().mean_acceleration([])


@settings(max_examples=40, deadline=None)
@given(t1=st.floats(20.0, 90.0), t2=st.floats(20.0, 90.0))
def test_acceleration_monotone_property(t1, t2):
    model = ReliabilityModel()
    low, high = min(t1, t2), max(t1, t2)
    assert model.acceleration_factor(low) <= model.acceleration_factor(high) + 1e-12


# ----------------------------------------------------------------------
# Cooling cost
# ----------------------------------------------------------------------
def test_cooling_power_zero_heat():
    assert CoolingModel().cooling_power(0.0) == 0.0


def test_cooling_power_at_design_load():
    model = CoolingModel(linear=0.2, quadratic_at_design=0.3, design_load=100.0)
    # At design load: 0.2*100 + (0.3/100)*100^2 = 20 + 30 = 50 W.
    assert model.cooling_power(100.0) == pytest.approx(50.0)
    assert model.cooling_ratio(100.0) == pytest.approx(0.5)


def test_cooling_burden_grows_with_load():
    model = CoolingModel()
    assert model.cooling_ratio(100.0) > model.cooling_ratio(50.0)


def test_savings_superlinear():
    """Shaving 10 W off a hot machine saves more cooling power than
    shaving 10 W off a cool one (the quadratic chiller term)."""
    model = CoolingModel()
    hot_savings = model.savings(100.0, 90.0)
    cool_savings = model.savings(40.0, 30.0)
    assert hot_savings > cool_savings


def test_annual_energy():
    model = CoolingModel()
    kwh = model.annual_energy_kwh(100.0)
    assert kwh == pytest.approx(50.0 * 8766.0 / 1000.0)


def test_cooling_validation():
    with pytest.raises(ConfigurationError):
        CoolingModel(design_load=0.0)
    with pytest.raises(ConfigurationError):
        CoolingModel(linear=-0.1)
    with pytest.raises(ConfigurationError):
        CoolingModel().cooling_power(-1.0)
