"""Tests for simulated temperature sensors."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim import RngRegistry
from repro.thermal import SensorBank, TemperatureSensor


def test_ideal_sensor_reads_exact_value():
    sensor = TemperatureSensor(0, quantization=0.0)
    assert sensor.read([42.37]) == 42.37


def test_quantization_rounds_to_grid():
    sensor = TemperatureSensor(0, quantization=1.0)
    assert sensor.read([42.37]) == 42.0
    assert sensor.read([42.51]) == 43.0


def test_quantization_half_degree():
    sensor = TemperatureSensor(0, quantization=0.5)
    assert sensor.read([42.30]) == 42.5


def test_sensor_reads_its_own_node():
    sensor = TemperatureSensor(2, quantization=0.0)
    assert sensor.read([10.0, 20.0, 30.0]) == 30.0


def test_noise_requires_rng():
    with pytest.raises(ConfigurationError):
        TemperatureSensor(0, noise_std=0.5)


def test_negative_noise_rejected():
    with pytest.raises(ConfigurationError):
        TemperatureSensor(0, noise_std=-1.0)


def test_noisy_sensor_is_deterministic_per_seed():
    rng_a = RngRegistry(seed=3).stream("sensor")
    rng_b = RngRegistry(seed=3).stream("sensor")
    a = TemperatureSensor(0, quantization=0.0, noise_std=0.3, rng=rng_a)
    b = TemperatureSensor(0, quantization=0.0, noise_std=0.3, rng=rng_b)
    assert [a.read([50.0]) for _ in range(5)] == [b.read([50.0]) for _ in range(5)]


def test_noisy_sensor_statistics():
    rng = RngRegistry(seed=1).stream("sensor")
    sensor = TemperatureSensor(0, quantization=0.0, noise_std=0.25, rng=rng)
    reads = np.array([sensor.read([50.0]) for _ in range(4000)])
    assert abs(reads.mean() - 50.0) < 0.05
    assert 0.2 < reads.std() < 0.3


def test_bank_ideal_reads_all_nodes():
    bank = SensorBank.ideal([0, 1, 2])
    reads = bank.read([1.5, 2.5, 3.5, 99.0])
    assert np.allclose(reads, [1.5, 2.5, 3.5])


def test_bank_coretemp_quantizes():
    rng = RngRegistry(seed=5).stream("sensor")
    bank = SensorBank.coretemp([0, 1], rng, noise_std=0.0)
    reads = bank.read([41.2, 43.8])
    assert np.allclose(reads, [41.0, 44.0])


def test_empty_bank_rejected():
    with pytest.raises(ConfigurationError):
        SensorBank([])
