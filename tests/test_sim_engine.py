"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start_time=5.0)
    assert sim.now == 5.0


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for name in "abcde":
        sim.schedule(1.0, order.append, name)
    sim.run()
    assert order == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]
    assert sim.now == 1.5


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run(until=4.0)
    assert sim.now == 4.0
    # The event at t=10 is still pending.
    assert sim.peek_next_time() == 10.0


def test_run_until_includes_boundary_events():
    sim = Simulator()
    fired = []
    sim.schedule(4.0, fired.append, 1)
    sim.run(until=4.0)
    assert fired == [1]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    event.cancel()
    sim.run()
    assert fired == [2]


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()
    assert not event.pending


def test_pending_property_lifecycle():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    assert event.pending
    sim.run()
    assert not event.pending


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule(-0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_events_can_schedule_events():
    sim = Simulator()
    times = []

    def chain(n):
        times.append(sim.now)
        if n > 0:
            sim.schedule(1.0, chain, n - 1)

    sim.schedule(0.0, chain, 3)
    sim.run()
    assert times == [0.0, 1.0, 2.0, 3.0]


def test_advance_listener_sees_every_interval():
    sim = Simulator()
    intervals = []
    sim.add_advance_listener(lambda t0, t1: intervals.append((t0, t1)))
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.5, lambda: None)
    sim.run(until=4.0)
    assert intervals == [(0.0, 1.0), (1.0, 2.5), (2.5, 4.0)]


def test_advance_listener_not_called_for_zero_gap():
    sim = Simulator()
    intervals = []
    sim.add_advance_listener(lambda t0, t1: intervals.append((t0, t1)))
    sim.schedule(1.0, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert intervals == [(0.0, 1.0)]


def test_event_count():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.event_count == 5


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_step_dispatches_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "x")
    sim.schedule(2.0, fired.append, "y")
    assert sim.step() is True
    assert fired == ["x"]
    assert sim.now == 1.0


def test_run_until_before_now_raises():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_peek_next_time_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.peek_next_time() == 2.0


def test_run_pops_exactly_one_heap_entry_per_event():
    """The run loop inspects the heap head in place: after a full run
    the heap is drained and every live event was dispatched once."""
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i), fired.append, i)
    cancelled = sim.schedule(3.5, fired.append, "dead")
    cancelled.cancel()
    sim.run()
    assert fired == list(range(10))
    assert sim.event_count == 10
    assert sim._heap == []


def test_step_skips_cancelled_and_dispatches_next():
    sim = Simulator()
    fired = []
    dead = sim.schedule(1.0, fired.append, "dead")
    sim.schedule(1.0, fired.append, "live")
    dead.cancel()
    assert sim.step() is True
    assert fired == ["live"]
    # Only cancelled entries left -> step reports an empty queue.
    sim.schedule(2.0, fired.append, "dead2").cancel()
    assert sim.step() is False
    assert fired == ["live"]


def test_run_until_leaves_cancelled_future_events_unpopped():
    sim = Simulator()
    event = sim.schedule(10.0, lambda: None)
    event.cancel()
    sim.run(until=5.0)
    # The cancelled entry sits beyond `until`; peek prunes it lazily.
    assert sim.now == 5.0
    assert sim.peek_next_time() is None
