"""Equivalence and caching tests for the vectorized thermal/power path.

The fast path has three layers, each pinned against its scalar oracle:

- power: :meth:`Chip.power_coefficients` vs :meth:`Chip.power_vector`
  (≤1e-12 W per node over randomized chip states);
- integration: :meth:`ThermalIntegrator.advance_coefficients` vs
  :meth:`ThermalIntegrator.advance` (≤1e-9 °C over long intervals);
- simulation: ``Machine(fast_physics=True)`` vs the scalar machine over
  a fig2-style 60 s run (≤1e-9 °C on every logged sample).

Plus the supporting machinery: the bounded expm LRU, the chip's
segment-reuse epoch logic, and their telemetry counters.
"""

import numpy as np
import pytest

from repro.cpu.chip import Chip
from repro.cpu.cstates import CState
from repro.cpu.tcc import TCC_OFF, setpoints
from repro.errors import ConfigurationError
from repro.experiments import Machine, fast_config
from repro.telemetry import isolated
from repro.thermal.floorplan import build_network
from repro.thermal.params import ThermalParams
from repro.thermal.rcnetwork import ThermalIntegrator, ThermalNetwork
from repro.workloads import CpuBurn

POWER_TOL_W = 1e-12
TEMP_TOL_C = 1e-9


def _random_chip(rng: np.random.Generator) -> Chip:
    """A chip in a random power-relevant state at t = 0."""
    num_cores = int(rng.integers(1, 7))
    smt = int(rng.integers(1, 3))
    chip = Chip(num_cores=num_cores, smt=smt, c1e_enabled=bool(rng.integers(0, 2)))

    # Chip-wide DVFS, random per-core overrides, random TCC duty.
    points = chip.dvfs_table.points
    chip.set_operating_point(points[int(rng.integers(0, len(points)))])
    for i in range(num_cores):
        if rng.random() < 0.3:
            chip.set_core_operating_point(i, points[int(rng.integers(0, len(points)))])
    if rng.random() < 0.5:
        ladder = setpoints(8)
        chip.set_tcc(ladder[int(rng.integers(0, len(ladder)))])

    for core in chip.cores:
        choice = rng.random()
        if choice < 0.4:  # running
            core.set_running(object(), float(rng.uniform(0.0, 1.2)), 0.0)
            if smt == 2 and rng.random() < 0.5:
                core.set_context_running(1, object(), float(rng.uniform(0.0, 1.2)), 0.0)
        elif choice < 0.7:  # freshly idle: still C1 at t=0
            core.set_idle(-1e-4)
        else:  # long idle: promoted (C1E when enabled)
            core.set_idle(-100.0)
    return chip


def test_power_coefficients_match_scalar_property_sweep():
    """Randomized sweep over C-states, DVFS, TCC, SMT, and temperatures:
    the affine-exponential decomposition reproduces the scalar power
    model to ≤1e-12 W per node."""
    rng = np.random.default_rng(0)
    for _ in range(60):
        chip = _random_chip(rng)
        cstates, power_fn = chip.power_function(time=0.0)
        coefficients = chip.power_coefficients(cstates)
        n = chip.num_cores + 2
        # Include hot outliers so the exponential's cap is exercised.
        temps = rng.uniform(25.0, 95.0, size=n)
        if rng.random() < 0.3:
            temps[int(rng.integers(0, n))] = 160.0
        diff = np.abs(coefficients.evaluate(temps) - power_fn(temps))
        assert float(diff.max()) <= POWER_TOL_W, (cstates, diff.max())


def test_fused_terms_match_evaluate():
    """The folded inner-loop form (reference temperature baked into the
    prefactor) agrees with the documented evaluate() formula."""
    rng = np.random.default_rng(1)
    chip = _random_chip(rng)
    cstates, _ = chip.power_function(time=0.0)
    coefficients = chip.power_coefficients(cstates)
    inv_slope, arg_cap, scaled_coef = coefficients.fused_terms()
    temps = rng.uniform(20.0, 170.0, size=chip.num_cores + 2)
    folded = coefficients.base + scaled_coef * np.exp(
        np.minimum(temps * inv_slope, arg_cap)
    )
    assert np.max(np.abs(folded - coefficients.evaluate(temps))) <= 1e-10


def test_advance_coefficients_matches_scalar_advance():
    chip = Chip(num_cores=4)
    for i, core in enumerate(chip.cores):
        if i % 2 == 0:
            core.set_running(object(), 1.0, 0.0)
        else:
            core.set_idle(-100.0)
    network = build_network(ThermalParams(), 4)
    temps0 = np.full(network.num_nodes, 55.0)
    _, power_fn = chip.power_function(time=0.0)
    _, coefficients = chip.power_segment(0.0)

    scalar = ThermalIntegrator(network, temps0.copy(), max_substep=5e-3)
    fused = ThermalIntegrator(network, temps0.copy(), max_substep=5e-3)
    r_scalar = scalar.advance(10.0, power_fn)
    r_fused = fused.advance_coefficients(10.0, coefficients)

    assert np.max(np.abs(scalar.temps - fused.temps)) <= TEMP_TOL_C
    assert r_fused.energy == pytest.approx(r_scalar.energy, rel=1e-9)
    assert r_fused.average_power == pytest.approx(r_scalar.average_power, rel=1e-9)


def test_advance_coefficients_zero_and_negative_duration():
    chip = Chip(num_cores=2)
    for core in chip.cores:
        core.set_running(object(), 1.0, 0.0)
    network = build_network(ThermalParams(), 2)
    integ = ThermalIntegrator(network, np.full(network.num_nodes, 50.0))
    _, coefficients = chip.power_segment(0.0)
    _, power_fn = chip.power_function(time=0.0)

    result = integ.advance_coefficients(0.0, coefficients)
    assert result.energy == 0.0
    assert result.average_power == pytest.approx(float(power_fn(integ.temps).sum()))
    with pytest.raises(ConfigurationError):
        integ.advance_coefficients(-1.0, coefficients)


# ----------------------------------------------------------------------
# expm LRU cache
# ----------------------------------------------------------------------
def _tiny_network(cache_size: int) -> ThermalNetwork:
    return ThermalNetwork(
        capacitances=[1.0, 2.0],
        conductances=np.array([[0.0, 0.5], [0.5, 0.0]]),
        ambient_conductances=[0.0, 1.0],
        ambient_temp=25.0,
        expm_cache_size=cache_size,
    )


def test_expm_cache_is_bounded_with_lru_eviction():
    with isolated() as registry:
        network = _tiny_network(2)
        network.step_kernel(0.1)
        network.step_kernel(0.2)
        network.step_kernel(0.1)  # refresh 0.1 -> 0.2 is now LRU
        network.step_kernel(0.3)  # evicts 0.2
        assert network.expm_cache_len == 2
        network.step_kernel(0.1)  # still cached
        assert registry.value("thermal.rcnetwork.expm_cache.misses") == 3
        assert registry.value("thermal.rcnetwork.expm_cache.hits") == 2
        assert registry.value("thermal.rcnetwork.expm_cache.evictions") == 1
        # 0.2 was evicted: asking again is a miss and evicts 0.3 (LRU).
        network.step_kernel(0.2)
        assert registry.value("thermal.rcnetwork.expm_cache.misses") == 4
        assert network.expm_cache_len == 2


def test_expm_cache_size_validated():
    with pytest.raises(ConfigurationError):
        _tiny_network(0)


def test_scalar_and_fused_paths_share_step_kernels():
    with isolated() as registry:
        network = _tiny_network(8)
        integ = ThermalIntegrator(network, np.array([40.0, 30.0]), max_substep=1e-2)
        integ.advance(0.1, lambda temps: np.array([1.0, 0.0]))
        misses_after_scalar = registry.value("thermal.rcnetwork.expm_cache.misses")
        from repro.cpu.power import PowerCoefficients

        coefficients = PowerCoefficients(
            base=np.array([1.0, 0.0]),
            leak_coef=np.zeros(2),
            leak_ref_temp=58.0,
            leak_t_slope=11.5,
            leak_exp_cap=0.7,
        )
        integ.advance_coefficients(0.1, coefficients)
        # Same substep length: the fused path reuses the scalar's kernel.
        assert (
            registry.value("thermal.rcnetwork.expm_cache.misses")
            == misses_after_scalar
        )
        assert registry.value("thermal.rcnetwork.expm_cache.hits") >= 1


# ----------------------------------------------------------------------
# Chip segment reuse
# ----------------------------------------------------------------------
def test_power_segment_reuses_until_state_epoch_changes():
    with isolated() as registry:
        chip = Chip(num_cores=2)
        for core in chip.cores:
            core.set_running(object(), 1.0, 0.0)

        c1, k1 = chip.power_segment(0.0)
        c2, k2 = chip.power_segment(0.25)
        assert k2 is k1 and c2 == c1
        assert registry.value("cpu.chip.power_segments.rebuilds") == 1
        assert registry.value("cpu.chip.power_segments.reuses") == 1

        chip.cores[0].set_running(object(), 0.5, 0.3)  # activity change
        _, k3 = chip.power_segment(0.35)
        assert k3 is not k2
        assert registry.value("cpu.chip.power_segments.rebuilds") == 2

        chip.set_tcc(setpoints(8)[3])  # chip-wide state change
        _, k4 = chip.power_segment(0.4)
        assert k4 is not k3
        assert registry.value("cpu.chip.power_segments.rebuilds") == 3


def test_power_segment_invalidates_at_cstate_promotion():
    chip = Chip(num_cores=1)
    chip.cores[0].set_idle(0.0)
    promo = chip.cores[0].promotion_time()
    assert promo is not None

    before, k_before = chip.power_segment(promo * 0.5)
    assert before[0] is CState.C1
    after, k_after = chip.power_segment(promo * 1.5)
    assert after[0] is CState.C1E
    assert k_after is not k_before
    # The promoted segment is stable from there on.
    again, k_again = chip.power_segment(promo * 2.0)
    assert k_again is k_after


def test_power_segment_never_reused_backwards():
    chip = Chip(num_cores=1)
    chip.cores[0].set_idle(0.0)
    promo = chip.cores[0].promotion_time()
    chip.power_segment(promo * 1.5)
    # A query before the segment's build time must not reuse it.
    states, _ = chip.power_segment(promo * 0.5)
    assert states[0] is CState.C1


def test_tcc_affects_coefficients():
    chip = Chip(num_cores=1)
    chip.cores[0].set_running(object(), 1.0, 0.0)
    _, k_off = chip.power_segment(0.0)
    chip.set_tcc(setpoints(8)[0])  # deepest duty cycle
    _, k_tcc = chip.power_segment(0.0)
    assert k_tcc.base[0] < k_off.base[0]
    assert chip.tcc is not TCC_OFF


# ----------------------------------------------------------------------
# End to end
# ----------------------------------------------------------------------
def test_end_to_end_fast_physics_matches_scalar():
    """A fig2-style 60 s run: the default (fused, segment-reusing)
    machine reproduces the scalar-oracle machine's logged temperatures
    to 1e-9 °C and its energy accounting to 1e-9 relative."""

    def build(fast: bool) -> Machine:
        machine = Machine(fast_config(seed=0), fast_physics=fast)
        machine.control.set_global_policy(0.5, 0.100)
        for _ in range(4):
            machine.scheduler.spawn(CpuBurn())
        return machine

    scalar = build(False)
    fused = build(True)
    scalar.run(60.0)
    fused.run(60.0)

    assert scalar.templog.samples.shape == fused.templog.samples.shape
    assert np.max(np.abs(scalar.templog.samples - fused.templog.samples)) <= TEMP_TOL_C
    assert fused.energy(0.0, 60.0) == pytest.approx(
        scalar.energy(0.0, 60.0), rel=1e-9
    )
    assert np.max(np.abs(scalar.core_temps - fused.core_temps)) <= TEMP_TOL_C
