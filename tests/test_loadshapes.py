"""Tests for rate-over-time load shapes and arrival processes."""

import itertools

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim import RngRegistry
from repro.workloads import (
    ConstantLoad,
    DiurnalLoad,
    MergedArrivals,
    ParetoBurstArrivals,
    PoissonArrivals,
    RequestTrace,
    StepLoad,
    TraceArrivals,
    synthesize_request_trace,
)


def arrivals_before(process, rng, horizon):
    """Materialize a process's arrival times up to ``horizon``."""
    times = []
    elapsed = 0.0
    for gap in process.gaps(rng):
        assert gap >= 0.0
        elapsed += gap
        if elapsed >= horizon:
            break
        times.append(elapsed)
    return times


# ----------------------------------------------------------------------
# Shapes
# ----------------------------------------------------------------------
def test_constant_load():
    shape = ConstantLoad(40.0)
    assert shape.rate(0.0) == shape.rate(1e6) == 40.0
    assert shape.peak_rate() == 40.0
    assert shape.mean_rate(0.0, 10.0) == 40.0
    with pytest.raises(WorkloadError):
        ConstantLoad(0.0)


def test_diurnal_load_cycles():
    shape = DiurnalLoad(40.0, amplitude=0.5, period=100.0)
    assert shape.rate(0.0) == pytest.approx(40.0)
    assert shape.rate(25.0) == pytest.approx(60.0)  # crest at quarter period
    assert shape.rate(75.0) == pytest.approx(20.0)  # trough
    assert shape.peak_rate() == pytest.approx(60.0)
    # Amplitude 1 bottoms out at exactly zero, never negative.
    full = DiurnalLoad(40.0, amplitude=1.0, period=100.0)
    assert full.rate(75.0) == pytest.approx(0.0, abs=1e-9)
    with pytest.raises(WorkloadError):
        DiurnalLoad(40.0, amplitude=1.5)
    with pytest.raises(WorkloadError):
        DiurnalLoad(40.0, period=0.0)


def test_step_load_surge_window_is_half_open():
    shape = StepLoad(10.0, 50.0, start=5.0, duration=3.0)
    assert shape.rate(4.999) == 10.0
    assert shape.rate(5.0) == 50.0  # start included
    assert shape.rate(7.999) == 50.0
    assert shape.rate(8.0) == 10.0  # end excluded
    assert shape.peak_rate() == 50.0
    with pytest.raises(WorkloadError):
        StepLoad(0.0, 0.0, start=0.0, duration=1.0)
    with pytest.raises(WorkloadError):
        StepLoad(10.0, 50.0, start=0.0, duration=0.0)


def test_shape_composition_and_scaling():
    combined = ConstantLoad(10.0) + DiurnalLoad(20.0, amplitude=0.5, period=100.0)
    assert combined.rate(0.0) == pytest.approx(30.0)
    assert combined.peak_rate() >= max(combined.rate(t) for t in np.linspace(0, 200, 400))
    scaled = 0.5 * ConstantLoad(10.0)
    assert scaled.rate(3.0) == pytest.approx(5.0)
    assert scaled.peak_rate() == pytest.approx(5.0)
    # Nested compositions flatten rather than recurse.
    triple = combined + ConstantLoad(1.0)
    assert len(triple.shapes) == 3
    with pytest.raises(WorkloadError):
        ConstantLoad(10.0) * -1.0


def test_peak_rate_is_an_envelope():
    shapes = [
        DiurnalLoad(40.0, amplitude=0.7, period=50.0, phase=13.0),
        StepLoad(5.0, 80.0, start=10.0, duration=5.0),
        0.3 * DiurnalLoad(40.0, amplitude=0.7, period=50.0)
        + StepLoad(5.0, 80.0, start=10.0, duration=5.0),
    ]
    for shape in shapes:
        peak = shape.peak_rate()
        for t in np.linspace(0.0, 200.0, 801):
            assert shape.rate(float(t)) <= peak + 1e-9


# ----------------------------------------------------------------------
# Poisson arrivals (thinning)
# ----------------------------------------------------------------------
def test_homogeneous_poisson_hits_the_rate():
    rng = RngRegistry(3).stream("shape")
    times = arrivals_before(PoissonArrivals(ConstantLoad(40.0)), rng, 200.0)
    assert len(times) == pytest.approx(40.0 * 200.0, rel=0.05)


def test_thinning_tracks_a_step_surge():
    rng = RngRegistry(4).stream("shape")
    process = PoissonArrivals(StepLoad(10.0, 100.0, start=100.0, duration=50.0))
    times = np.asarray(arrivals_before(process, rng, 300.0))
    before = np.sum(times < 100.0) / 100.0
    inside = np.sum((times >= 100.0) & (times < 150.0)) / 50.0
    after = np.sum(times >= 150.0) / 150.0
    assert before == pytest.approx(10.0, rel=0.2)
    assert inside == pytest.approx(100.0, rel=0.1)
    assert after == pytest.approx(10.0, rel=0.2)


def test_thinning_tracks_a_diurnal_cycle():
    rng = RngRegistry(5).stream("shape")
    shape = DiurnalLoad(40.0, amplitude=0.8, period=200.0)
    times = np.asarray(arrivals_before(PoissonArrivals(shape), rng, 200.0))
    crest = np.sum((times >= 30.0) & (times < 70.0)) / 40.0
    trough = np.sum((times >= 130.0) & (times < 170.0)) / 40.0
    assert crest > 2.5 * trough  # ~72 vs ~8 req/s
    assert crest == pytest.approx(shape.mean_rate(30.0, 70.0), rel=0.15)


def test_poisson_rejects_zero_peak():
    with pytest.raises(WorkloadError):
        PoissonArrivals(0.0 * ConstantLoad(10.0))


# ----------------------------------------------------------------------
# Pareto bursts
# ----------------------------------------------------------------------
def test_pareto_burst_validation():
    with pytest.raises(WorkloadError):
        ParetoBurstArrivals(burst_rate=0.0, mean_burst_size=10)
    with pytest.raises(WorkloadError):
        ParetoBurstArrivals(burst_rate=1.0, mean_burst_size=0.5)
    with pytest.raises(WorkloadError):
        ParetoBurstArrivals(burst_rate=1.0, mean_burst_size=10, alpha=1.0)
    with pytest.raises(WorkloadError):
        ParetoBurstArrivals(burst_rate=1.0, mean_burst_size=10, in_burst_rate=0.0)


def test_pareto_bursts_hit_the_long_run_rate():
    process = ParetoBurstArrivals(
        burst_rate=0.5, mean_burst_size=20.0, alpha=2.5, in_burst_rate=500.0
    )
    assert process.mean_rate() == pytest.approx(10.0)
    rng = RngRegistry(6).stream("bursts")
    times = arrivals_before(process, rng, 2000.0)
    # Heavy-tailed sizes converge slowly; a generous tolerance still
    # catches an off-by-alpha scale error (which would be ~2x off).
    assert len(times) / 2000.0 == pytest.approx(10.0, rel=0.25)


def test_pareto_bursts_are_bunched():
    process = ParetoBurstArrivals(
        burst_rate=0.2, mean_burst_size=30.0, alpha=1.8, in_burst_rate=1000.0
    )
    rng = RngRegistry(7).stream("bursts")
    gaps = list(itertools.islice(process.gaps(rng), 500))
    tiny = sum(1 for g in gaps if g < 0.01)
    assert tiny > len(gaps) / 2  # most gaps are intra-burst spacing


# ----------------------------------------------------------------------
# Trace replay and merging
# ----------------------------------------------------------------------
def test_trace_arrivals_replays_exactly():
    trace = RequestTrace((1.0, 2.5, 2.5, 4.0))
    rng = RngRegistry(8).stream("replay")
    times = arrivals_before(TraceArrivals(trace), rng, 10.0)
    assert times == pytest.approx([1.0, 2.5, 2.5, 4.0])


def test_trace_arrivals_loops():
    trace = RequestTrace((1.0, 2.0))
    rng = RngRegistry(8).stream("replay")
    times = arrivals_before(TraceArrivals(trace, loop=True), rng, 7.0)
    assert times == pytest.approx([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    with pytest.raises(WorkloadError):
        TraceArrivals(RequestTrace((0.0,)), loop=True)


def test_merged_arrivals_superpose():
    merged = MergedArrivals(
        PoissonArrivals(ConstantLoad(20.0)), PoissonArrivals(ConstantLoad(30.0))
    )
    rng = RngRegistry(9).stream("merge")
    times = arrivals_before(merged, rng, 400.0)
    assert len(times) == pytest.approx(50.0 * 400.0, rel=0.05)
    assert all(b >= a for a, b in zip(times, times[1:]))  # merged in order
    with pytest.raises(WorkloadError):
        MergedArrivals()


def test_merged_arrivals_is_deterministic_per_seed():
    def sample():
        merged = MergedArrivals(
            TraceArrivals(RequestTrace((1.0, 3.0))),
            PoissonArrivals(ConstantLoad(5.0)),
        )
        return arrivals_before(merged, RngRegistry(11).stream("merge"), 20.0)

    assert sample() == sample()


# ----------------------------------------------------------------------
# Freezing shapes into traces
# ----------------------------------------------------------------------
def test_synthesize_request_trace_round_trip():
    rng = RngRegistry(12).stream("freeze")
    trace = synthesize_request_trace(rng, duration=50.0, shape=ConstantLoad(20.0))
    assert len(trace) == pytest.approx(1000, rel=0.2)
    assert trace.duration < 50.0
    assert trace.mean_rate(0.0, 50.0) == pytest.approx(20.0, rel=0.2)
    # Replay reproduces the frozen times bit-identically, twice.
    replay = TraceArrivals(trace)
    other = RngRegistry(99).stream("unused")
    assert arrivals_before(replay, other, 50.0) == list(trace.times)
    assert arrivals_before(replay, other, 50.0) == list(trace.times)


def test_synthesize_request_trace_validation():
    rng = RngRegistry(12).stream("freeze")
    with pytest.raises(WorkloadError):
        synthesize_request_trace(rng, duration=0.0, shape=ConstantLoad(1.0))
    with pytest.raises(WorkloadError):
        synthesize_request_trace(rng, duration=10.0)  # neither shape nor process
    with pytest.raises(WorkloadError):
        synthesize_request_trace(
            rng,
            duration=10.0,
            shape=ConstantLoad(1.0),
            process=PoissonArrivals(ConstantLoad(1.0)),
        )
    with pytest.raises(WorkloadError):
        # ~1 arrival per 1000s in a 0.001s run: effectively never.
        synthesize_request_trace(rng, duration=0.001, shape=ConstantLoad(0.001))
