"""Chaos tests for the hardened batch runtime.

The headline contract: a sweep with one crashing, one hanging, and one
cache-poisoned run still yields results bit-identical to a clean
serial sweep — under worker pools, --resume, and --keep-going — and
the failure report names exactly the injected faults, nothing else.
"""

import dataclasses
import multiprocessing
import os
import pathlib
import signal
import time

import pytest

from repro.errors import ExecutionError
from repro.experiments import fast_config
from repro.experiments.reporting import format_failure_report
from repro.faults import CORRUPT, FaultPlan, FaultSpec
from repro.runtime import (
    ParallelRunner,
    ResultCache,
    RetryPolicy,
    RunSpec,
    SweepJournal,
    characterization_spec,
    register_executor,
)
from repro.telemetry import isolated

CFG = fast_config()
SHORT = 4.0  # seconds of simulated time (wall clock: tens of ms)
DEADLINE = 2.0  # generous vs. a real short run, tiny vs. a 60 s hang

#: A fast policy: same attempt budget as the default, near-zero waits.
FAST_RETRIES = RetryPolicy(max_attempts=2, backoff_base=0.01, backoff_max=0.05)


def short_specs(n=5):
    return [
        characterization_spec(CFG, p=0.1 * (i + 1), idle_quantum=0.01, duration=SHORT)
        for i in range(n)
    ]


# Custom executors for the fast, simulation-free paths.  Module-level so
# fork workers inherit the registrations.
def _value(config, *, value):
    return value


def _sleep(config, *, seconds):
    time.sleep(seconds)
    return "done"


def _bad_input(config):
    raise ValueError("deterministic bad input")


def _die_once(config, *, marker):
    path = pathlib.Path(marker)
    if not path.exists():
        path.write_text("died")
        os._exit(3)  # hard worker death: no exception, no result
    return "survived"


register_executor("test_value", _value)
register_executor("test_sleep", _sleep)
register_executor("test_bad_input", _bad_input)
register_executor("test_die_once", _die_once)


# ----------------------------------------------------------------------
# The fault matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [1, 2])
def test_fault_matrix_results_bit_identical_to_clean_serial(tmp_path, jobs):
    """One crash, one hang, one poisoned cache entry — same numbers."""
    specs = short_specs(5)
    with isolated() as clean_registry:
        clean = ParallelRunner(jobs=1).run(specs)
        clean_events = clean_registry.value("sim.engine.events")

    plan = FaultPlan.parse("crash@1,hang@2:60,poison@3")
    journal_path = tmp_path / "journal.jsonl"
    with isolated() as chaos_registry:
        journal = SweepJournal(journal_path)
        runner = ParallelRunner(
            jobs=jobs,
            cache=ResultCache(tmp_path / "cache"),
            journal=journal,
            keep_going=True,
            timeout=DEADLINE,
            retry_policy=FAST_RETRIES,
            fault_plan=plan,
            start_method="fork",
        )
        chaotic = runner.run(specs)
        journal.close()
        chaos_events = chaos_registry.value("sim.engine.events")

    # Every surviving run (here: all of them) is bit-identical.
    assert [dataclasses.asdict(r) for r in chaotic] == [
        dataclasses.asdict(r) for r in clean
    ]
    # Failed attempts' telemetry is discarded, so the merged counters
    # match a clean sweep exactly — retries never double-count.
    assert chaos_events == clean_events

    # The failure report names exactly the injected faults.
    observed = {(f.index, f.error_type, f.classification) for f in runner.failure_report.failures}
    assert observed == {
        (1, "InjectedFaultError", "transient"),
        (2, "RunTimeoutError", "timeout"),
    }
    assert all(f.recovered for f in runner.failure_report.failures)
    assert runner.failure_report.fatal == []

    m = runner.metrics
    assert m.executed == 5 and m.completed == 5
    assert m.failures == 2 and m.retries == 2
    assert m.timeouts == 1 and m.abandoned == 0
    assert SweepJournal.completed_in(journal_path) == {s.key for s in specs}

    # --resume against the same journal+cache: the poisoned entry is
    # quarantined and re-executed; everything else is a replay.
    resumed_journal = SweepJournal(journal_path, resume=True)
    cache = ResultCache(tmp_path / "cache")
    resumed = ParallelRunner(jobs=jobs, cache=cache, journal=resumed_journal)
    replayed = resumed.run(specs)
    resumed_journal.close()
    assert [dataclasses.asdict(r) for r in replayed] == [
        dataclasses.asdict(r) for r in clean
    ]
    assert resumed.metrics.replayed == 4
    assert resumed.metrics.executed == 1  # only the poisoned run
    assert cache.stats.quarantined == 1


def test_fault_report_renders_for_humans(tmp_path):
    runner = ParallelRunner(
        jobs=1,
        keep_going=True,
        retry_policy=FAST_RETRIES,
        fault_plan=FaultPlan.parse("crash@0"),
    )
    runner.run([RunSpec(kind="test_value", config=None, params={"value": 9})])
    text = format_failure_report(runner.failure_report)
    assert "InjectedFaultError" in text
    assert "recovered" in text
    assert format_failure_report(ParallelRunner().failure_report) == (
        "failure report: no failed attempts"
    )


# ----------------------------------------------------------------------
# Permanent errors fail fast
# ----------------------------------------------------------------------
def test_permanent_error_fails_fast_with_original_traceback():
    runner = ParallelRunner(jobs=1, retry_policy=FAST_RETRIES)
    with pytest.raises(ExecutionError, match="deterministic bad input"):
        runner.run([RunSpec(kind="test_bad_input", config=None)])
    assert runner.metrics.retries == 0  # no wasted second simulation
    assert runner.metrics.permanent_failures == 1
    assert runner.metrics.failures == 1


def test_permanent_error_fails_fast_in_the_pool():
    runner = ParallelRunner(jobs=2, retry_policy=FAST_RETRIES, start_method="fork")
    specs = [
        RunSpec(kind="test_bad_input", config=None),
        RunSpec(kind="test_value", config=None, params={"value": 1}),
    ]
    with pytest.raises(ExecutionError, match="permanent"):
        runner.run(specs)
    assert runner.metrics.retries == 0
    assert runner.metrics.permanent_failures == 1
    assert multiprocessing.active_children() == []


def test_keep_going_abandons_the_bad_run_and_finishes_the_rest():
    runner = ParallelRunner(jobs=1, keep_going=True, retry_policy=FAST_RETRIES)
    results = runner.run(
        [
            RunSpec(kind="test_value", config=None, params={"value": 1}),
            RunSpec(kind="test_bad_input", config=None),
            RunSpec(kind="test_value", config=None, params={"value": 2}),
        ]
    )
    assert results == [1, None, 2]
    assert runner.metrics.abandoned == 1
    assert runner.failure_report.fatal_indices == [1]
    assert "ABANDONED" in format_failure_report(runner.failure_report)


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
def test_serial_deadline_interrupts_an_in_process_hang():
    runner = ParallelRunner(
        jobs=1, timeout=0.2, retry_policy=RetryPolicy(max_attempts=1)
    )
    start = time.monotonic()
    with pytest.raises(ExecutionError, match="deadline"):
        runner.run([RunSpec(kind="test_sleep", config=None, params={"seconds": 60.0})])
    assert time.monotonic() - start < 30.0  # interrupted, not slept out
    assert runner.metrics.timeouts == 1


def test_pooled_deadline_kills_the_hung_worker():
    runner = ParallelRunner(
        jobs=2,
        timeout=1.0,
        retry_policy=RetryPolicy(max_attempts=1),
        keep_going=True,
        start_method="fork",
    )
    results = runner.run(
        [
            RunSpec(kind="test_value", config=None, params={"value": 3}),
            RunSpec(kind="test_sleep", config=None, params={"seconds": 60.0}),
        ]
    )
    assert results == [3, None]
    assert runner.metrics.timeouts == 1
    assert runner.metrics.abandoned == 1
    assert runner.failure_report.fatal[0].error_type == "RunTimeoutError"
    assert runner.failure_report.fatal[0].classification == "timeout"
    assert multiprocessing.active_children() == []  # no leaked worker


# ----------------------------------------------------------------------
# Payload integrity and hard worker death
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [1, 2])
def test_corrupt_payload_is_detected_and_retried(jobs):
    corrupted = RunSpec(
        kind="test_value",
        config=None,
        params={"value": 5},
        fault=FaultSpec(kind=CORRUPT, run_index=0),
    )
    clean = RunSpec(kind="test_value", config=None, params={"value": 6})
    runner = ParallelRunner(jobs=jobs, retry_policy=FAST_RETRIES, start_method="fork")
    assert runner.run([corrupted, clean]) == [5, 6]
    assert runner.metrics.failures == 1
    assert runner.metrics.retries == 1
    recovered = runner.failure_report.recovered
    assert [f.error_type for f in recovered] == ["CorruptResultError"]
    assert recovered[0].classification == "transient"


def test_hard_worker_death_is_transient_and_retried(tmp_path):
    specs = [
        RunSpec(
            kind="test_die_once", config=None, params={"marker": str(tmp_path / "m")}
        ),
        RunSpec(kind="test_value", config=None, params={"value": 1}),
    ]
    runner = ParallelRunner(jobs=2, retry_policy=FAST_RETRIES, start_method="fork")
    assert runner.run(specs) == ["survived", 1]
    assert runner.metrics.retries == 1
    assert [f.error_type for f in runner.failure_report.recovered] == ["WorkerDied"]


# ----------------------------------------------------------------------
# Interrupts
# ----------------------------------------------------------------------
def test_keyboard_interrupt_terminates_pool_and_flushes_journal(tmp_path):
    """SIGINT mid-sweep: workers die, the journal keeps what finished,
    and the interrupt propagates so the caller can resume later."""
    journal_path = tmp_path / "journal.jsonl"
    journal = SweepJournal(journal_path)
    quick = RunSpec(kind="test_value", config=None, params={"value": 1})
    slow = RunSpec(kind="test_sleep", config=None, params={"seconds": 60.0})

    def interrupt_after_first_completion(event):
        os.kill(os.getpid(), signal.SIGINT)

    runner = ParallelRunner(
        jobs=2,
        journal=journal,
        progress=interrupt_after_first_completion,
        start_method="fork",
    )
    with pytest.raises(KeyboardInterrupt):
        runner.run([quick, slow])
    journal.close()
    # The completed run was journaled before the interrupt hit...
    assert SweepJournal.completed_in(journal_path) == {quick.key}
    # ...and the hung worker did not outlive the batch.
    assert multiprocessing.active_children() == []
