"""Tests for thermal parameter presets and derived properties."""

import numpy as np
import pytest

from repro.thermal import ThermalParams, build_network, default, fast


def test_ambient_includes_case_rise():
    params = ThermalParams(room_temp=25.2, case_air_rise=4.0)
    assert params.ambient_temp == pytest.approx(29.2)


def test_sink_time_constant():
    params = default()
    assert params.sink_time_constant == pytest.approx(
        params.sink_capacitance / params.sink_to_ambient
    )
    # Calibration: tens of seconds (paper: stabilisation within ~300 s
    # once leakage feedback stretches it).
    assert 30.0 < params.sink_time_constant < 120.0


def test_core_time_constant_is_fast():
    """Cores must cool 'exponentially quickly within a short time
    window' (§3.4): a die time constant of a few tens of ms."""
    assert 0.005 < default().core_time_constant < 0.1


def test_fast_mode_preserves_steady_state():
    slow_net = build_network(default(), 4)
    fast_net = build_network(fast(), 4)
    power = np.zeros(6)
    power[:4] = 15.0
    assert np.allclose(
        slow_net.steady_state(power), fast_net.steady_state(power), atol=1e-9
    )


def test_fast_mode_compresses_transients():
    assert fast().sink_time_constant < default().sink_time_constant / 4


def test_default_network_time_scale_separation():
    """Die, spreader, and sink time constants are well separated, which
    is what makes short idle quanta efficient and long ones not."""
    taus = build_network(default(), 4).time_constants()
    assert taus[-1] / taus[0] > 1000.0
