"""Tests for heat-and-run style thermal migration."""

import numpy as np
import pytest

from repro.core import ThermalMigrationPolicy
from repro.errors import ConfigurationError
from repro.experiments import Machine, fast_config
from repro.workloads import CpuBurn


def build(machine, **kwargs):
    return ThermalMigrationPolicy(
        machine.sim,
        machine.scheduler,
        lambda: machine.core_temps,
        **kwargs,
    )


def pinned_burns(machine, cores):
    threads = []
    for core in cores:
        thread = machine.scheduler.spawn(CpuBurn(), name=f"hot-{core}")
        thread.affinity = core
        threads.append(thread)
    return threads


def test_validation():
    machine = Machine(fast_config())
    with pytest.raises(ConfigurationError):
        build(machine, period=0.0)
    with pytest.raises(ConfigurationError):
        build(machine, min_delta=-1.0)


def test_no_migration_when_idle():
    machine = Machine(fast_config())
    policy = build(machine)
    machine.run(10.0)
    assert policy.migrations == 0
    assert policy.blocked_periods == 0


def test_migrates_hot_thread_to_cool_core():
    machine = Machine(fast_config())
    threads = pinned_burns(machine, [0])
    policy = build(machine, period=2.0, min_delta=0.5)
    machine.run(30.0)
    assert policy.migrations >= 2
    first = policy.history[0]
    assert first.source_core == 0
    assert first.target_core != 0
    assert first.source_temp > first.target_temp
    # The thread keeps making progress across migrations.
    assert threads[0].stats.work_done > 25.0


def test_migration_spreads_heat():
    """Rotating one hot thread across cores lowers the peak core
    temperature relative to pinning it (the heat-and-run effect)."""

    def run(migrate):
        machine = Machine(fast_config())
        pinned_burns(machine, [0, 1])
        policy = build(machine, period=1.0, min_delta=0.5) if migrate else None
        machine.run(100.0)
        per_core = machine.templog.per_core_mean_over_window(15.0)
        return float(per_core.max()), policy

    pinned_peak, _ = run(False)
    migrated_peak, policy = run(True)
    assert policy.migrations > 10
    assert migrated_peak < pinned_peak - 0.5


def test_fully_burdened_machine_blocks_migration():
    """§3.6: migration 'may be ineffective on fully-burdened machines'."""
    machine = Machine(fast_config())
    pinned_burns(machine, [0, 1, 2, 3])
    policy = build(machine, period=1.0)
    machine.run(20.0)
    assert policy.migrations == 0
    assert policy.blocked_periods >= 15


def test_stop_halts_migrations():
    machine = Machine(fast_config())
    pinned_burns(machine, [0])
    policy = build(machine, period=1.0, min_delta=0.1)
    machine.run(5.0)
    count = policy.migrations
    policy.stop()
    machine.run(10.0)
    assert policy.migrations == count


def test_min_delta_gates_migration():
    machine = Machine(fast_config())
    pinned_burns(machine, [0])
    policy = build(machine, period=1.0, min_delta=100.0)  # unreachable delta
    machine.run(10.0)
    assert policy.migrations == 0
