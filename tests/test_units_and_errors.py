"""Tests for unit helpers, errors, and the reporting module."""

import pytest

from repro import errors, units
from repro.experiments.reporting import format_series, format_table, percent


# ----------------------------------------------------------------------
# units
# ----------------------------------------------------------------------
def test_time_constants():
    assert units.MS == 1e-3
    assert units.US == 1e-6
    assert units.MINUTE == 60.0


def test_conversions():
    assert units.ms(25) == 0.025
    assert units.to_ms(0.025) == 25.0
    assert units.us(40) == pytest.approx(4e-5)


def test_frequency_constants():
    assert units.GHZ == 1e9
    assert units.MHZ == 1e6


def test_temperature_conversions():
    assert units.celsius_to_kelvin(0.0) == 273.15
    assert units.kelvin_to_celsius(units.celsius_to_kelvin(42.0)) == pytest.approx(42.0)


# ----------------------------------------------------------------------
# errors
# ----------------------------------------------------------------------
def test_error_hierarchy():
    for exc in (
        errors.SimulationError,
        errors.ConfigurationError,
        errors.SchedulerError,
        errors.WorkloadError,
        errors.AnalysisError,
    ):
        assert issubclass(exc, errors.ReproError)
        assert issubclass(exc, Exception)


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def test_format_table_alignment():
    text = format_table(["a", "long_header"], [[1, 2.5], [10, 3.25]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "long_header" in lines[0]
    assert set(lines[1]) <= {"-", " "}


def test_format_table_rejects_mismatched_row_widths():
    from repro.errors import AnalysisError

    with pytest.raises(AnalysisError, match=r"3 cells.*2 headers.*\[1, 2, 3\]"):
        format_table(["a", "b"], [[1, 2], [1, 2, 3]])
    with pytest.raises(AnalysisError, match="1 cells"):
        format_table(["a", "b"], [[1]])


def test_format_table_title():
    text = format_table(["x"], [[1]], title="My Title")
    assert text.splitlines()[0] == "My Title"


def test_format_table_float_rendering():
    text = format_table(["v"], [[float("nan")], [12345.6], [0.5]])
    assert "nan" in text
    assert "12346" in text
    assert "0.500" in text


def test_format_series_downsamples():
    xs = list(range(100))
    ys = [2 * x for x in xs]
    text = format_series("s", xs, ys, max_points=10)
    assert text.startswith("s: ")
    assert text.count("(") <= 13


def test_format_series_empty():
    assert "empty" in format_series("s", [], [])


def test_percent():
    assert percent(0.125) == "12.5%"
