"""Tests for the crash-safe sweep journal behind --resume."""

import json

from repro.runtime import SweepJournal

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64


def test_record_done_round_trips(tmp_path):
    path = tmp_path / "journal.jsonl"
    with SweepJournal(path) as journal:
        journal.record_done(KEY_A, "run")
        journal.record_done(KEY_B, "cache")
    entries = SweepJournal.read_entries(path)
    assert entries == [
        {"status": "done", "key": KEY_A, "source": "run"},
        {"status": "done", "key": KEY_B, "source": "cache"},
    ]
    assert SweepJournal.completed_in(path) == {KEY_A, KEY_B}


def test_record_done_is_idempotent_per_key(tmp_path):
    path = tmp_path / "journal.jsonl"
    with SweepJournal(path) as journal:
        journal.record_done(KEY_A, "run")
        journal.record_done(KEY_A, "cache")  # same key again: no-op
    assert len(SweepJournal.read_entries(path)) == 1


def test_fresh_open_truncates_a_stale_journal(tmp_path):
    path = tmp_path / "journal.jsonl"
    with SweepJournal(path) as journal:
        journal.record_done(KEY_A, "run")
    # A non-resume sweep must not inherit the previous sweep's records.
    fresh = SweepJournal(path)
    assert fresh.replayable == frozenset()
    assert SweepJournal.completed_in(path) == frozenset()
    fresh.close()


def test_resume_loads_replayable_and_keeps_records(tmp_path):
    path = tmp_path / "journal.jsonl"
    with SweepJournal(path) as journal:
        journal.record_done(KEY_A, "run")
        journal.record_done(KEY_B, "run")
    resumed = SweepJournal(path, resume=True)
    assert resumed.replayable == {KEY_A, KEY_B}
    # New completions extend completed_keys but never replayable (it is
    # the snapshot of what was already durable when the sweep started).
    resumed.record_done(KEY_C, "run")
    assert resumed.completed_keys == {KEY_A, KEY_B, KEY_C}
    assert resumed.replayable == {KEY_A, KEY_B}
    resumed.close()
    assert SweepJournal.completed_in(path) == {KEY_A, KEY_B, KEY_C}


def test_resume_tolerates_a_truncated_tail_line(tmp_path):
    """The one crash artefact the append protocol admits: a final line
    cut off between write() and fsync().  It must cost exactly that
    run, not the whole journal."""
    path = tmp_path / "journal.jsonl"
    with SweepJournal(path) as journal:
        journal.record_done(KEY_A, "run")
        journal.record_done(KEY_B, "run")
    text = path.read_text()
    path.write_text(text[: len(text) - 20])  # chop into the last record
    resumed = SweepJournal(path, resume=True)
    assert resumed.replayable == {KEY_A}
    resumed.close()


def test_failures_are_journaled_but_not_replayable(tmp_path):
    path = tmp_path / "journal.jsonl"
    with SweepJournal(path) as journal:
        journal.record_done(KEY_A, "run")
        journal.record_failure(KEY_B, "ConfigurationError", "bad p")
    entries = SweepJournal.read_entries(path)
    assert entries[1] == {
        "status": "failed",
        "key": KEY_B,
        "error_type": "ConfigurationError",
        "message": "bad p",
    }
    # A failed run is not done: a resumed sweep re-executes it.
    resumed = SweepJournal(path, resume=True)
    assert resumed.replayable == {KEY_A}
    resumed.close()


def test_each_append_is_durable_on_disk_immediately(tmp_path):
    """Records must be readable before close() — that is the whole
    point of a crash-safe journal."""
    path = tmp_path / "journal.jsonl"
    journal = SweepJournal(path)
    journal.record_done(KEY_A, "run")
    assert SweepJournal.completed_in(path) == {KEY_A}  # no close needed
    journal.close()


def test_read_entries_on_missing_file_is_empty():
    assert SweepJournal.read_entries("/no/such/journal.jsonl") == []
    assert SweepJournal.completed_in("/no/such/journal.jsonl") == frozenset()


def test_read_entries_skips_non_object_lines(tmp_path):
    path = tmp_path / "journal.jsonl"
    path.write_text(
        json.dumps({"status": "done", "key": KEY_A, "source": "run"})
        + "\n[1, 2]\n\nnot json at all\n"
    )
    entries = SweepJournal.read_entries(path)
    assert len(entries) == 1
    assert entries[0]["key"] == KEY_A


def test_opening_never_creates_the_file_until_first_record(tmp_path):
    path = tmp_path / "sub" / "journal.jsonl"
    journal = SweepJournal(path)
    assert not path.exists()  # lazy, like the cache directory
    journal.record_done(KEY_A, "run")
    assert path.exists()
    journal.close()
