"""Tests for the multicore chip model."""

import numpy as np
import pytest

from repro.cpu import Chip, CState, CStateParams, PowerParams, TccSetting
from repro.errors import ConfigurationError


@pytest.fixture
def chip():
    return Chip(num_cores=4)


def test_chip_defaults(chip):
    assert chip.num_cores == 4
    assert chip.operating_point is chip.dvfs_table.max_point
    assert chip.tcc.duty == 1.0
    for core in chip.cores:
        assert not core.running


def test_core_running_transitions(chip):
    core = chip.cores[0]
    core.set_running(object(), activity=0.8, now=1.0)
    assert core.running
    assert core.cstate_at(5.0) is CState.C0
    core.set_idle(now=2.0)
    assert not core.running
    assert core.idle_since == 2.0


def test_cstate_promotion_timeline_hinted(chip):
    core = chip.cores[0]
    core.set_idle(now=10.0, hinted=True)
    threshold = (
        chip.cstate_params.c1e_promotion_threshold
        + chip.cstate_params.c1e_entry_latency
    )
    assert core.cstate_at(10.0 + threshold / 2) is CState.C1
    assert core.cstate_at(10.0 + threshold * 1.01) is CState.C1E
    assert core.promotion_time() == pytest.approx(10.0 + threshold)


def test_cstate_promotion_timeline_natural(chip):
    """Natural idle promotes later than scheduler-hinted idle."""
    core = chip.cores[0]
    core.set_idle(now=10.0)
    threshold = (
        chip.cstate_params.natural_promotion_threshold
        + chip.cstate_params.c1e_entry_latency
    )
    assert core.cstate_at(10.0 + threshold / 2) is CState.C1
    assert core.cstate_at(10.0 + threshold * 1.01) is CState.C1E
    hinted_threshold = chip.cstate_params.c1e_promotion_threshold
    assert threshold > hinted_threshold


def test_running_core_has_no_promotion(chip):
    core = chip.cores[0]
    core.set_running(None, 1.0, now=0.0)
    assert core.promotion_time() is None
    assert core.wake_latency(5.0) == 0.0


def test_wake_latency_depends_on_depth(chip):
    core = chip.cores[0]
    core.set_idle(now=0.0)
    shallow = core.wake_latency(0.0005)
    deep = core.wake_latency(1.0)
    assert deep > shallow > 0.0


def test_c1e_disabled_keeps_cores_shallow():
    chip = Chip(num_cores=2, c1e_enabled=False)
    core = chip.cores[0]
    core.set_idle(now=0.0)
    assert chip.effective_cstate(core, 10.0) is CState.C1
    assert chip.cstate_breakpoints(0.0, 10.0) == []


def test_cstate_breakpoints_for_idle_cores(chip):
    chip.cores[0].set_idle(now=0.0, hinted=True)
    chip.cores[1].set_running(None, 1.0, now=0.0)
    chip.cores[2].set_idle(now=0.5, hinted=True)
    chip.cores[3].set_idle(now=-10.0)  # promoted long ago
    threshold = (
        chip.cstate_params.c1e_promotion_threshold
        + chip.cstate_params.c1e_entry_latency
    )
    points = chip.cstate_breakpoints(0.0, 1.0)
    assert points == [pytest.approx(threshold), pytest.approx(0.5 + threshold)]


def test_breakpoints_exclude_interval_edges(chip):
    chip.cores[0].set_idle(now=0.0)
    threshold = chip.cores[0].promotion_time()
    assert chip.cstate_breakpoints(threshold, threshold + 1.0) == []


def test_power_vector_layout(chip):
    temps = np.full(6, 40.0)
    states = [CState.C0, CState.C1E, CState.C1E, CState.C1E]
    chip.cores[0].set_running(None, 1.0, now=0.0)
    power = chip.power_vector(states, temps)
    assert power.shape == (6,)
    assert power[0] > power[1] > 0.0
    assert power[4] == chip.power_model.params.uncore_power
    assert power[5] == 0.0


def test_power_vector_uses_per_core_temps(chip):
    states = [CState.C1E] * 4
    cool = chip.power_vector(states, np.array([30.0, 30, 30, 30, 30, 30]))
    hot = chip.power_vector(states, np.array([60.0, 30, 30, 30, 30, 30]))
    assert hot[0] > cool[0]
    assert hot[1] == pytest.approx(cool[1])


def test_power_function_freezes_cstates(chip):
    chip.cores[0].set_running(None, 1.0, now=0.0)
    for core in chip.cores[1:]:
        core.set_idle(now=-1.0)
    cstates, fn = chip.power_function(time=0.0)
    assert cstates == [CState.C0, CState.C1E, CState.C1E, CState.C1E]
    temps = np.full(6, 45.0)
    assert np.allclose(fn(temps), chip.power_vector(cstates, temps))


def test_speed_factor_full_speed(chip):
    assert chip.speed_factor() == 1.0


def test_speed_factor_dvfs(chip):
    chip.set_operating_point(chip.dvfs_table.min_point)
    assert chip.speed_factor(1.0) == pytest.approx(
        chip.dvfs_table.speed_scale(chip.dvfs_table.min_point)
    )


def test_speed_factor_memory_bound_insensitive_to_dvfs(chip):
    chip.set_operating_point(chip.dvfs_table.min_point)
    # Fully memory-bound work does not slow down with frequency.
    assert chip.speed_factor(0.0) == pytest.approx(1.0)
    # Mixed work slows less than CPU-bound work.
    assert chip.speed_factor(0.5) > chip.speed_factor(1.0)


def test_speed_factor_tcc(chip):
    chip.set_tcc(TccSetting(duty=0.25))
    assert chip.speed_factor(1.0) == pytest.approx(0.25)


def test_speed_factor_validates_cpu_fraction(chip):
    with pytest.raises(ConfigurationError):
        chip.speed_factor(1.5)


def test_set_operating_point_rejects_foreign_point(chip):
    from repro.cpu import OperatingPoint

    with pytest.raises(ConfigurationError):
        chip.set_operating_point(OperatingPoint(3e9, 1.3))


def test_record_residency(chip):
    states = [CState.C0, CState.C1, CState.C1E, CState.C0]
    chip.record_residency(states, 2.0)
    assert chip.cores[0].residency.get(CState.C0) == 2.0
    assert chip.cores[1].residency.get(CState.C1) == 2.0
    assert chip.cores[2].residency.get(CState.C1E) == 2.0


def test_chip_needs_a_core():
    with pytest.raises(ConfigurationError):
        Chip(num_cores=0)


def test_custom_power_params():
    chip = Chip(PowerParams(core_dynamic_max=5.0))
    assert chip.power_model.params.core_dynamic_max == 5.0
