"""Unit tests for deterministic named RNG streams."""

import numpy as np

from repro.sim import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(seed=42).stream("inject")
    b = RngRegistry(seed=42).stream("inject")
    assert np.array_equal(a.random(16), b.random(16))


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("inject")
    b = RngRegistry(seed=2).stream("inject")
    assert not np.array_equal(a.random(16), b.random(16))


def test_different_names_are_independent():
    reg = RngRegistry(seed=42)
    a = reg.stream("inject").random(16)
    b = reg.stream("arrivals").random(16)
    assert not np.array_equal(a, b)


def test_stream_is_cached_and_cumulative():
    reg = RngRegistry(seed=42)
    first = reg.stream("x").random(4)
    second = reg.stream("x").random(4)
    # Same underlying generator: draws continue, not restart.
    assert not np.array_equal(first, second)
    fresh = RngRegistry(seed=42).stream("x").random(8)
    assert np.allclose(np.concatenate([first, second]), fresh)


def test_consumption_in_one_stream_does_not_shift_another():
    reg_a = RngRegistry(seed=7)
    reg_b = RngRegistry(seed=7)
    reg_a.stream("noise").random(1000)  # extra consumption
    a = reg_a.stream("arrivals").random(8)
    b = reg_b.stream("arrivals").random(8)
    assert np.array_equal(a, b)


def test_spawn_derives_independent_registry():
    base = RngRegistry(seed=42)
    child1 = base.spawn(1)
    child2 = base.spawn(2)
    assert child1.seed != child2.seed
    a = child1.stream("x").random(8)
    b = child2.stream("x").random(8)
    assert not np.array_equal(a, b)


def test_seed_property():
    assert RngRegistry(seed=9).seed == 9
