"""Tests for the assembled machine (physics co-simulation)."""

import numpy as np
import pytest

from repro.cpu import CState
from repro.experiments import ExperimentConfig, Machine, fast_config, full_config
from repro.workloads import CpuBurn, FiniteCpuBurn


def test_machine_starts_at_idle_equilibrium():
    machine = Machine(fast_config())
    temps = machine.core_temps
    assert np.allclose(temps, machine.idle_core_temps, atol=1e-6)
    # Idle baseline: low thirties for this calibration.
    assert 30.0 < machine.idle_mean_temp < 38.0


def test_machine_idle_stays_at_equilibrium():
    machine = Machine(fast_config())
    machine.run(20.0)
    assert np.allclose(machine.core_temps, machine.idle_core_temps, atol=0.2)


def test_cpuburn_heats_to_calibrated_rise():
    machine = Machine(fast_config())
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    machine.run(80.0)
    rise = machine.temp_rise_over_idle()
    # Calibration target: ~20 C rise over idle (paper's Figure 2 axis).
    assert 16.0 < rise < 25.0


def test_heating_is_monotone_through_transient():
    machine = Machine(fast_config())
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    machine.run(40.0)
    series = machine.templog.samples.mean(axis=1)
    diffs = np.diff(series)
    # Allow tiny numerical wiggles, but the transient must trend upward.
    assert (diffs > -0.05).all()
    assert series[-1] > series[0] + 10.0


def test_energy_accounting_consistent_with_power_trace():
    machine = Machine(fast_config())
    for _ in range(2):
        machine.scheduler.spawn(FiniteCpuBurn(1.0))
    machine.run(5.0)
    energy = machine.energy(0.0, 5.0)
    assert energy == pytest.approx(machine.powermeter.energy(), rel=1e-9)
    mean_power = energy / 5.0
    assert 10.0 < mean_power < 80.0


def test_power_sane_bounds_under_full_load():
    machine = Machine(fast_config())
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    machine.run(60.0)
    steady_power = machine.powermeter.average_power(50.0, 60.0)
    # Calibration: cpuburn package power ~ 65-80 W.
    assert 60.0 < steady_power < 85.0


def test_idle_power_calibration():
    machine = Machine(fast_config())
    machine.run(10.0)
    idle_power = machine.powermeter.average_power(5.0, 10.0)
    # All-idle package power in the mid-teens (paper's trace: ~15-20 W).
    assert 10.0 < idle_power < 22.0


def test_c1e_disable_ablation_runs_hotter_idle():
    base = Machine(fast_config())
    base.run(5.0)
    ablated = Machine(fast_config().scaled(c1e_enabled=False))
    ablated.run(5.0)
    p_base = base.powermeter.average_power(2.0, 5.0)
    p_ablated = ablated.powermeter.average_power(2.0, 5.0)
    assert p_ablated > p_base + 2.0


def test_noisy_sensors_quantize():
    machine = Machine(fast_config().scaled(noisy_sensors=True))
    machine.run(3.0)
    samples = machine.templog.samples
    assert np.allclose(samples, np.round(samples))


def test_seed_reproducibility():
    def run(seed):
        machine = Machine(fast_config(seed))
        machine.control.set_global_policy(0.5, 0.01)
        for _ in range(4):
            machine.scheduler.spawn(CpuBurn())
        machine.run(10.0)
        return machine.templog.samples.copy(), machine.total_work_done()

    temps_a, work_a = run(3)
    temps_b, work_b = run(3)
    temps_c, work_c = run(4)
    assert np.array_equal(temps_a, temps_b)
    assert work_a == work_b
    assert not np.array_equal(temps_a, temps_c)


def test_full_config_differs_only_in_time_scale():
    fast_machine = Machine(fast_config())
    full_machine = Machine(full_config())
    # Same steady-state physics: idle temperatures agree.
    assert fast_machine.idle_mean_temp == pytest.approx(
        full_machine.idle_mean_temp, abs=0.1
    )


def test_now_property_tracks_clock():
    machine = Machine(fast_config())
    machine.run(2.5)
    assert machine.now == pytest.approx(2.5)
    machine.run(1.0)
    assert machine.now == pytest.approx(3.5)
