"""Tests for repro.fleet.scheduling: thermal placement, costed
migration, the policy registry, and the determinism guarantees the
package is built around (sampled reads never perturb physics)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.experiments import fast_config
from repro.fleet import FleetMachine, RoundRobinBalancer
from repro.fleet.scheduling import (
    POLICY_NAMES,
    ZERO_COST,
    CacheAwareMigrationPolicy,
    MigrationCostModel,
    MigrationPolicy,
    PolicyBundle,
    ThermalBalancer,
    build_policy,
    sampled_machine_temps,
)
from repro.sim.rng import RngRegistry
from repro.telemetry.registry import isolated
from repro.workloads.webserver import Request, WebServer


def _servers(fleet, **kwargs):
    return [
        WebServer(
            node.scheduler, node.rng.stream("web"), external_arrivals=True, **kwargs
        )
        for node in fleet.nodes
    ]


def _balancer_rng(cfg):
    return RngRegistry(cfg.seed).stream("fleet-balancer")


def _flooded_rack(
    policy_cls=MigrationPolicy, *, machines=2, requests=20, **policy_kwargs
):
    """A rack with all load dumped on machine 0: long requests, one
    worker, so a deep ready queue persists and machine 0 runs hot while
    the others stay at idle temperature — the migration showcase."""
    cfg = fast_config(0)
    fleet = FleetMachine(cfg, machines=machines)
    servers = _servers(fleet, service_mean=0.5, num_workers=1)
    for k in range(requests):
        fleet.nodes[0].simview.schedule(0.01 * k, servers[0].submit_request)
    policy_kwargs.setdefault("period", 0.5)
    policy_kwargs.setdefault("min_delta", 0.05)
    policy = policy_cls(fleet, servers, **policy_kwargs)
    return fleet, servers, policy


# ======================================================================
# Placement: ThermalBalancer
# ======================================================================
def test_coolest_first_routes_to_coolest_machine():
    cfg = fast_config(0)
    fleet = FleetMachine(cfg, machines=3)
    servers = _servers(fleet)
    temps = np.array([50.0, 40.0, 60.0])
    balancer = ThermalBalancer(
        fleet,
        servers,
        rate=10.0,
        rng=_balancer_rng(cfg),
        temperature_source=lambda: temps,
    )
    assert balancer.select() == 1
    assert balancer.select() == 1  # still coolest; no tie, no cycling


def test_threshold_strategy_round_robins_the_cool_bucket():
    cfg = fast_config(0)
    fleet = FleetMachine(cfg, machines=4)
    servers = _servers(fleet)
    temps = np.array([45.0, 70.0, 46.0, 47.0])  # machine 1 is hot
    balancer = ThermalBalancer(
        fleet,
        servers,
        rate=10.0,
        rng=_balancer_rng(cfg),
        strategy="threshold",
        threshold=50.0,
        temperature_source=lambda: temps,
    )
    # Cool bucket {0, 2, 3} cycles; the hot machine never appears.
    assert [balancer.select() for _ in range(6)] == [0, 2, 3, 0, 2, 3]
    # Whole rack hot: degrade to coolest-first instead of refusing.
    temps[:] = [71.0, 70.0, 72.0, 73.0]
    assert balancer.select() == 1


def test_thermal_balancer_validates_configuration():
    cfg = fast_config(0)
    fleet = FleetMachine(cfg, machines=2)
    servers = _servers(fleet)
    rng = _balancer_rng(cfg)
    with pytest.raises(ConfigurationError):
        ThermalBalancer(fleet, servers, rate=10.0, rng=rng, strategy="warmest")
    with pytest.raises(ConfigurationError):
        ThermalBalancer(fleet, servers, rate=10.0, rng=rng, strategy="threshold")
    balancer = ThermalBalancer(
        fleet, servers, rate=10.0, rng=rng, temperature_source=lambda: [1.0]
    )
    with pytest.raises(ConfigurationError):
        balancer.select()  # source width != machine count


def test_sampled_temps_fall_back_to_idle_before_first_sample():
    cfg = fast_config(0)
    fleet = FleetMachine(cfg, machines=2)
    idle = float(np.mean(fleet.idle_core_temps))
    assert sampled_machine_temps(fleet) == pytest.approx([idle, idle])


# ----------------------------------------------------------------------
# Property-based: select() invariants over arbitrary temperature fields
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def select_rig():
    """One reusable 4-machine rack whose balancer reads a mutable
    temperature array (the simulation itself never runs)."""
    cfg = fast_config(0)
    fleet = FleetMachine(cfg, machines=4)
    servers = _servers(fleet)
    temps = np.zeros(4)
    coolest = ThermalBalancer(
        fleet,
        servers,
        rate=10.0,
        rng=_balancer_rng(cfg),
        temperature_source=lambda: temps,
    )
    threshold = ThermalBalancer(
        fleet,
        servers,
        rate=10.0,
        rng=_balancer_rng(cfg),
        strategy="threshold",
        threshold=55.0,
        temperature_source=lambda: temps,
    )
    return temps, coolest, threshold


temps_lists = st.lists(
    st.floats(min_value=20.0, max_value=90.0, allow_nan=False), min_size=4, max_size=4
)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(field=temps_lists)
def test_coolest_first_always_selects_a_minimum(select_rig, field):
    temps, coolest, _ = select_rig
    temps[:] = field
    chosen = coolest.select()
    assert temps[chosen] == pytest.approx(temps.min(), abs=1e-9)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(field=temps_lists)
def test_threshold_never_selects_a_hot_machine_when_a_cool_one_exists(
    select_rig, field
):
    temps, _, threshold = select_rig
    temps[:] = field
    chosen = threshold.select()
    if np.any(temps <= 55.0):
        assert temps[chosen] <= 55.0
    else:
        assert temps[chosen] == pytest.approx(temps.min(), abs=1e-9)


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_uniform_temperatures_cycle_round_robin(select_rig, seed):
    temps, coolest, _ = select_rig
    temps[:] = 40.0 + seed  # any uniform field
    coolest._next = 0
    assert [coolest.select() for _ in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


# ======================================================================
# The acceptance guarantee: thermal policy == round-robin, bitwise,
# under uniform temperatures and zero migration
# ======================================================================
def _run_rack(cfg, balancer_factory, *, machines=3, duration=6.0):
    fleet = FleetMachine(cfg, machines=machines)
    servers = _servers(fleet)
    balancer = balancer_factory(fleet, servers)
    fleet.run(duration)
    balancer.stop()
    return fleet, servers, balancer


@pytest.mark.parametrize("seed", [0, 3])
def test_uniform_thermal_balancer_bit_matches_round_robin(seed):
    """ThermalBalancer over a uniform temperature field + a migration
    policy that can never fire is the *same simulation* as a
    RoundRobinBalancer rack: identical routing, identical request
    streams, identical temperature floats.  This is what makes the
    policies safe: their reads are sampled, so their presence does not
    perturb the physics substep structure."""
    cfg = fast_config(seed)
    rate = 3 * (440 / 11.0)

    def make_rr(fleet, servers):
        return RoundRobinBalancer(
            fleet, servers, rate=rate, rng=_balancer_rng(cfg)
        )

    def make_thermal(fleet, servers):
        balancer = ThermalBalancer(
            fleet,
            servers,
            rate=rate,
            rng=_balancer_rng(cfg),
            temperature_source=lambda: np.zeros(fleet.num_machines),
        )
        # A zero-cost migration manager polling every 0.25 s whose
        # min_delta can never be met: pure read-only load.
        balancer._shadow = MigrationPolicy(
            fleet,
            servers,
            period=0.25,
            min_delta=1e9,
            cost_model=ZERO_COST,
        )
        return balancer

    rr_fleet, rr_servers, rr = _run_rack(cfg, make_rr)
    th_fleet, th_servers, th = _run_rack(cfg, make_thermal)

    assert th.routed == rr.routed
    assert th._shadow.migrations == 0
    assert th._shadow.blocked_cycles > 0
    for rr_node, th_node in zip(rr_fleet.nodes, th_fleet.nodes):
        assert np.array_equal(rr_node.templog.times, th_node.templog.times)
        assert np.array_equal(rr_node.templog.samples, th_node.templog.samples)
    assert np.array_equal(rr_fleet.integrator.temps, th_fleet.integrator.temps)
    for rr_server, th_server in zip(rr_servers, th_servers):
        assert [r.rid for r in rr_server.log.requests] == [
            r.rid for r in th_server.log.requests
        ]
        assert [r.completed for r in rr_server.log.requests] == [
            r.completed for r in th_server.log.requests
        ]


# ======================================================================
# Migration mechanics
# ======================================================================
def test_migration_moves_work_hot_to_cool_only():
    fleet, servers, policy = _flooded_rack()
    fleet.run(6.0)
    policy.stop()

    assert policy.migrations > 0
    # The flood lands on machine 0, so that is where migration starts.
    assert policy.history[0].source == 0 and policy.history[0].target == 1
    for event in policy.history:
        # Coolest-first targeting: never towards a hotter machine, and
        # always clearing the configured gap.
        assert event.source_temp - event.target_temp >= policy.min_delta
        assert event.source != event.target


def test_requests_are_conserved_across_migration():
    """Every request stays accounted for by object identity: logged
    once at its origin, and after the run it is either completed, still
    queued somewhere, or in service on one of the workers."""
    fleet, servers, policy = _flooded_rack(requests=24)
    fleet.run(6.0)
    policy.stop()

    assert policy.migrations > 0
    logged = [r for s in servers for r in s.log.requests]
    assert len(logged) == 24  # origin log neither loses nor duplicates
    assert len({id(r) for r in logged}) == 24

    queued = [r for s in servers for r in s.ready_requests]
    assert len({id(r) for r in queued}) == len(queued)  # no double-queueing
    completed = [r for r in logged if r.completed is not None]
    unaccounted = [
        r
        for r in logged
        if r.completed is None and not any(r is q for q in queued)
    ]
    # Legal limbo: in service (one slot per worker), in the kernel
    # stage (one per machine), or migrated and still on the wire (the
    # run can end between donation and delivery — at most one donation
    # batch per source machine).
    migrated_ids = {id(event.request) for event in policy.history}
    in_flight = [r for r in unaccounted if id(r) in migrated_ids]
    in_service = [r for r in unaccounted if id(r) not in migrated_ids]
    assert len(in_service) <= sum(len(s.workers) for s in servers) + len(servers)
    assert len(in_flight) <= policy.max_moves * len(servers) + sum(
        len(s.workers) for s in servers
    )
    for event in policy.history:
        assert any(event.request is r for r in logged)
    assert len(completed) > 0


def test_migrated_requests_complete_on_an_idle_machine():
    """Machine 1 starts with an empty run queue mid-substep; delivery
    through its sim view must close its physics gap and wake a blocked
    worker, so donated work actually completes there."""
    fleet, servers, policy = _flooded_rack(requests=24)
    fleet.run(8.0)
    policy.stop()

    migrated = {id(event.request) for event in policy.history}
    assert migrated
    done_on_target = [
        r
        for s in servers
        for r in s.log.requests
        if id(r) in migrated and r.completed is not None
    ]
    assert done_on_target  # the cool machine really served them
    # And the target machine did physical work: it left idle temperature.
    assert sampled_machine_temps(fleet)[1] > float(
        np.mean(fleet.idle_core_temps)
    )


def test_zero_cost_migration_charges_nothing():
    with isolated() as reg:
        fleet, servers, policy = _flooded_rack(cost_model=ZERO_COST)
        fleet.run(6.0)
        policy.stop()
        assert policy.migrations > 0
        assert policy.total_cost_seconds == 0.0
        assert reg.value("fleet.migration_cost_ms") == 0
        for event in policy.history:
            assert event.cost_seconds == 0.0


def test_migration_cost_inflates_service_time_and_counters():
    model = MigrationCostModel(transfer_latency=0.002, warmup_penalty=0.15)
    with isolated() as reg:
        fleet, servers, policy = _flooded_rack(cost_model=model)
        fleet.run(6.0)
        policy.stop()
        assert policy.migrations > 0
        once = [
            e
            for e in policy.history
            if sum(1 for o in policy.history if o.request is e.request) == 1
        ]
        assert once
        for event in once:
            # cost was computed from the pre-inflation service time
            original = (event.cost_seconds - model.transfer_latency) / (
                model.warmup_penalty
            )
            assert event.request.service_time == pytest.approx(
                original * (1.0 + model.warmup_penalty)
            )
        assert reg.value("fleet.migration_cost_ms") == pytest.approx(
            policy.total_cost_seconds * 1e3
        )


def test_cache_aware_policy_holds_work_when_benefit_is_too_small():
    _, _, eager = _flooded_rack(
        CacheAwareMigrationPolicy, degrees_per_cost_second=1e-6
    )
    eager.fleet.run(6.0)
    eager.stop()
    _, _, reluctant = _flooded_rack(
        CacheAwareMigrationPolicy, degrees_per_cost_second=1e9
    )
    reluctant.fleet.run(6.0)
    reluctant.stop()

    assert eager.migrations > 0
    assert reluctant.migrations == 0
    assert reluctant.blocked_cycles > 0
    assert eager.migrations >= reluctant.migrations


def test_migration_policy_validates_configuration():
    cfg = fast_config(0)
    fleet = FleetMachine(cfg, machines=2)
    servers = _servers(fleet)
    with pytest.raises(ConfigurationError):
        MigrationPolicy(fleet, servers[:1])
    with pytest.raises(ConfigurationError):
        MigrationPolicy(fleet, servers, period=0.0)
    with pytest.raises(ConfigurationError):
        MigrationPolicy(fleet, servers, min_delta=-1.0)
    with pytest.raises(ConfigurationError):
        MigrationPolicy(fleet, servers, max_moves=0)
    with pytest.raises(ConfigurationError):
        MigrationCostModel(transfer_latency=-1.0)
    with pytest.raises(ConfigurationError):
        CacheAwareMigrationPolicy(fleet, servers, degrees_per_cost_second=0.0)


# ----------------------------------------------------------------------
# Property-based: cost model and donation
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(
    latency=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    penalty=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    service=st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
)
def test_cost_model_properties(latency, penalty, service):
    model = MigrationCostModel(transfer_latency=latency, warmup_penalty=penalty)
    request = Request(rid=1, arrival=0.0, service_time=service)
    cost = model.cost_seconds(request)
    assert cost >= latency
    assert cost == pytest.approx(latency + penalty * service)
    assert model.is_free == (latency == 0.0 and penalty == 0.0)
    assert ZERO_COST.cost_seconds(request) == 0.0


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    services=st.lists(
        st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
        min_size=0,
        max_size=12,
    ),
    max_requests=st.integers(min_value=1, max_value=12),
    cutoff=st.floats(min_value=0.0, max_value=1.0),
)
def test_donate_queued_properties(select_rig, services, max_requests, cutoff):
    """donate_queued pops newest-first, never exceeds its budget, stops
    at the first refusal, and conserves the queue (donated + remaining
    is a permutation of the original)."""
    _, balancer, _ = select_rig
    server = balancer.servers[0]
    server.ready_requests.clear()
    original = [
        Request(rid=i, arrival=0.0, service_time=s) for i, s in enumerate(services)
    ]
    server.ready_requests.extend(original)

    donated = server.donate_queued(max_requests, accept=lambda r: r.service_time <= cutoff)
    remaining = list(server.ready_requests)

    assert len(donated) <= max_requests
    assert len(donated) + len(remaining) == len(original)
    assert {id(r) for r in donated} | {id(r) for r in remaining} == {
        id(r) for r in original
    }
    # Newest-first: donations are a reversed suffix of the original queue.
    if donated:
        suffix = original[-len(donated):]
        assert [id(r) for r in donated] == [id(r) for r in reversed(suffix)]
        assert all(r.service_time <= cutoff for r in donated)
    # FIFO head preserved for the work kept.
    assert remaining == original[: len(remaining)]
    server.ready_requests.clear()


# ======================================================================
# Registry
# ======================================================================
def test_registry_rejects_unknown_policy_names():
    cfg = fast_config(0)
    fleet = FleetMachine(cfg, machines=2)
    servers = _servers(fleet)
    with pytest.raises(ConfigurationError) as excinfo:
        build_policy(
            "warmest-first", fleet, servers, rate=10.0, rng=_balancer_rng(cfg)
        )
    for name in POLICY_NAMES:
        assert name in str(excinfo.value)


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_registry_builds_every_policy(name):
    cfg = fast_config(0)
    with isolated() as reg:
        fleet = FleetMachine(cfg, machines=2)
        health = fleet.attach_health()
        servers = _servers(fleet)
        bundle = build_policy(
            name, fleet, servers, rate=10.0, rng=_balancer_rng(cfg), health=health
        )
        assert isinstance(bundle, PolicyBundle)
        assert bundle.name == name
        expects_migration = name in ("migrate", "cache-aware")
        assert (bundle.migration is not None) == expects_migration
        assert bundle.migrations == 0
        assert bundle.migration_cost_seconds == 0.0
        expects_controllers = name == "alert-reactive"
        assert bool(bundle.controllers) == expects_controllers
        assert bundle.throttle_engagements == 0
        assert bundle.time_throttled_seconds == 0.0
        # The uniform counter set exists whatever the policy.
        assert reg.value("fleet.migrations") == 0
        assert reg.value("fleet.migration_cost_ms") == 0
        bundle.stop()


def test_registry_threshold_policy_sits_above_idle():
    cfg = fast_config(0)
    fleet = FleetMachine(cfg, machines=2)
    servers = _servers(fleet)
    bundle = build_policy(
        "threshold", fleet, servers, rate=10.0, rng=_balancer_rng(cfg)
    )
    assert isinstance(bundle.balancer, ThermalBalancer)
    assert bundle.balancer.threshold > float(np.mean(fleet.idle_core_temps))
    bundle.stop()


# ======================================================================
# Performance (excluded from tier-1; CI runs -m "slow or perf")
# ======================================================================
@pytest.mark.perf
def test_thermal_policy_overhead_is_bounded():
    """Sampled-telemetry placement + migration polling must not
    meaningfully slow the rack down: the policy stack reads cached
    sensor values, so a thermally scheduled run stays within 2.5x of
    the round-robin run's wall clock (generous bound for CI noise)."""
    import time

    cfg = fast_config(0)

    def timed(policy_name):
        started = time.perf_counter()
        fleet = FleetMachine(cfg, machines=3)
        servers = _servers(fleet)
        bundle = build_policy(
            policy_name,
            fleet,
            servers,
            rate=3 * servers[0].arrival_rate,
            rng=_balancer_rng(cfg),
        )
        fleet.run(6.0)
        bundle.stop()
        return time.perf_counter() - started

    timed("round-robin")  # warm caches/JIT-able paths
    baseline = timed("round-robin")
    thermal = timed("coolest")
    migrate = timed("migrate")
    assert thermal <= 2.5 * baseline + 0.25
    assert migrate <= 2.5 * baseline + 0.25
