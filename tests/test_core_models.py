"""Tests for the paper's analytical throughput and energy models (§2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    idle_quanta_per_execution,
    predicted_energy,
    predicted_idle_fraction,
    predicted_runtime,
    predicted_throughput_factor,
)
from repro.errors import ConfigurationError


def test_idle_quanta_per_execution_examples():
    """§2.2: 'if we idle with probability 75%, then 3 out of 4 times t
    is scheduled we will idle instead'."""
    assert idle_quanta_per_execution(0.75) == pytest.approx(3.0)
    assert idle_quanta_per_execution(0.5) == pytest.approx(1.0)
    assert idle_quanta_per_execution(0.0) == 0.0


def test_predicted_runtime_doubles_at_half():
    """§2.2: p=50% with L equal to the quantum doubles the runtime."""
    assert predicted_runtime(10.0, 0.1, 0.5, 0.1) == pytest.approx(20.0)


def test_predicted_runtime_formula():
    # R=5, q=0.1 -> S=50; p=.25 -> 1/3 idle per exec; L=.05.
    expected = 5.0 + 50 * (1.0 / 3.0) * 0.05
    assert predicted_runtime(5.0, 0.1, 0.25, 0.05) == pytest.approx(expected)


def test_zero_p_is_identity():
    assert predicted_runtime(7.0, 0.1, 0.0, 0.05) == 7.0
    assert predicted_throughput_factor(0.1, 0.0, 0.05) == 1.0
    assert predicted_idle_fraction(0.1, 0.0, 0.05) == 0.0


def test_throughput_factor_consistent_with_runtime():
    factor = predicted_throughput_factor(0.1, 0.6, 0.03)
    runtime = predicted_runtime(4.0, 0.1, 0.6, 0.03)
    assert factor == pytest.approx(4.0 / runtime)


def test_idle_fraction_complement():
    assert predicted_idle_fraction(0.1, 0.5, 0.1) == pytest.approx(0.5)


def test_energy_identity():
    """§2.2: 'The two policies consume the same amount of total energy.'"""
    prediction = predicted_energy(
        7.0, 0.1, 0.5, 0.05, active_power=55.0, idle_power=15.0
    )
    assert prediction.race_to_idle == pytest.approx(prediction.dimetrodon)
    assert prediction.ratio == pytest.approx(1.0)


def test_energy_values():
    # D = 7 + 70*1*0.05 = 10.5; idle time 3.5 s.
    prediction = predicted_energy(
        7.0, 0.1, 0.5, 0.05, active_power=55.0, idle_power=15.0
    )
    assert prediction.race_to_idle == pytest.approx(7 * 55 + 3.5 * 15)


def test_validation_errors():
    with pytest.raises(ConfigurationError):
        predicted_runtime(0.0, 0.1, 0.5, 0.05)
    with pytest.raises(ConfigurationError):
        predicted_runtime(1.0, -0.1, 0.5, 0.05)
    with pytest.raises(ConfigurationError):
        predicted_runtime(1.0, 0.1, 1.0, 0.05)
    with pytest.raises(ConfigurationError):
        predicted_throughput_factor(0.1, 0.5, 0.0)
    with pytest.raises(ConfigurationError):
        predicted_energy(1.0, 0.1, 0.5, 0.05, active_power=0.0, idle_power=1.0)


@settings(max_examples=60, deadline=None)
@given(
    total=st.floats(0.5, 100.0),
    p=st.floats(0.0, 0.97),
    quantum=st.floats(0.01, 0.2),
    idle=st.floats(0.001, 0.2),
)
def test_runtime_monotone_in_p_property(total, p, quantum, idle):
    base = predicted_runtime(total, quantum, p, idle)
    more = predicted_runtime(total, quantum, min(p + 0.01, 0.98), idle)
    assert more >= base
    assert base >= total


@settings(max_examples=60, deadline=None)
@given(
    total=st.floats(0.5, 100.0),
    p=st.floats(0.01, 0.97),
    quantum=st.floats(0.01, 0.2),
    idle=st.floats(0.001, 0.2),
    u=st.floats(10.0, 100.0),
    m=st.floats(0.0, 30.0),
)
def test_energy_identity_property(total, p, quantum, idle, u, m):
    prediction = predicted_energy(total, quantum, p, idle, active_power=u, idle_power=m)
    assert prediction.race_to_idle == pytest.approx(prediction.dimetrodon, rel=1e-9)
