"""Tests for the retry policy: classification, attempt budget, backoff."""

import pytest

from repro.errors import (
    ConfigurationError,
    ExecutionError,
    RunTimeoutError,
    SimulationError,
)
from repro.runtime import (
    PERMANENT,
    PERMANENT_ERROR_TYPES,
    TIMEOUT,
    TRANSIENT,
    RetryPolicy,
)
from repro.runtime.policy import error_lineage


# ----------------------------------------------------------------------
# Classification
# ----------------------------------------------------------------------
def test_deliberate_validation_errors_are_permanent():
    policy = RetryPolicy()
    assert policy.classify(ConfigurationError("bad p")) == PERMANENT
    assert policy.classify(SimulationError("negative time")) == PERMANENT
    assert policy.classify(TypeError("unexpected keyword")) == PERMANENT
    assert policy.classify(ValueError("bad literal")) == PERMANENT


def test_unclassified_errors_are_transient():
    policy = RetryPolicy()
    assert policy.classify(RuntimeError("worker blew up")) == TRANSIENT
    assert policy.classify(OSError("pipe broke")) == TRANSIENT
    assert policy.classify(MemoryError()) == TRANSIENT


def test_timeouts_classify_as_timeout_not_permanent():
    # RunTimeoutError derives from ExecutionError, which is not in the
    # permanent set — a hung run might succeed on a fresh attempt.
    policy = RetryPolicy()
    assert policy.classify(RunTimeoutError("deadline")) == TIMEOUT
    assert policy.should_retry(TIMEOUT, attempt=1)


def test_subclasses_classify_through_the_mro():
    class BadParameter(ValueError):
        pass

    policy = RetryPolicy()
    assert policy.classify(BadParameter("p out of range")) == PERMANENT
    assert "ValueError" in error_lineage(BadParameter("x"))


def test_classify_accepts_a_lineage_tuple():
    """Worker failures cross the process boundary as name tuples."""
    policy = RetryPolicy()
    assert policy.classify(("ConfigurationError", "ReproError", "Exception")) == PERMANENT
    assert policy.classify(("WorkerDied",)) == TRANSIENT
    assert (
        policy.classify(("RunTimeoutError", "ExecutionError", "ReproError", "Exception"))
        == TIMEOUT
    )


def test_error_lineage_walks_mro_without_object():
    lineage = error_lineage(ConfigurationError("x"))
    assert lineage[0] == "ConfigurationError"
    assert "ReproError" in lineage
    assert "object" not in lineage


def test_custom_permanent_types_override_the_default():
    policy = RetryPolicy(permanent_types=frozenset({"RuntimeError"}))
    assert policy.classify(RuntimeError("now deterministic")) == PERMANENT
    assert policy.classify(ConfigurationError("now transient")) == TRANSIENT


def test_default_permanent_set_covers_repro_and_python_errors():
    assert "ConfigurationError" in PERMANENT_ERROR_TYPES
    assert "TypeError" in PERMANENT_ERROR_TYPES
    assert "RuntimeError" not in PERMANENT_ERROR_TYPES
    assert "ExecutionError" not in PERMANENT_ERROR_TYPES


# ----------------------------------------------------------------------
# Attempt budget
# ----------------------------------------------------------------------
def test_permanent_errors_never_retry():
    policy = RetryPolicy(max_attempts=5)
    assert not policy.should_retry(PERMANENT, attempt=1)


def test_transient_errors_retry_up_to_max_attempts():
    policy = RetryPolicy(max_attempts=3)
    assert policy.should_retry(TRANSIENT, attempt=1)
    assert policy.should_retry(TRANSIENT, attempt=2)
    assert not policy.should_retry(TRANSIENT, attempt=3)


def test_single_attempt_policy_never_retries():
    policy = RetryPolicy(max_attempts=1)
    assert not policy.should_retry(TRANSIENT, attempt=1)
    assert not policy.should_retry(TIMEOUT, attempt=1)


# ----------------------------------------------------------------------
# Backoff
# ----------------------------------------------------------------------
def test_backoff_is_exponential_and_capped():
    policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5, jitter=0.0)
    assert policy.backoff(1) == pytest.approx(0.1)
    assert policy.backoff(2) == pytest.approx(0.2)
    assert policy.backoff(3) == pytest.approx(0.4)
    assert policy.backoff(4) == pytest.approx(0.5)  # capped
    assert policy.backoff(10) == pytest.approx(0.5)


def test_backoff_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(backoff_base=1.0, backoff_factor=1.0, jitter=0.25)
    a = policy.backoff(1, key="run-a")
    b = policy.backoff(1, key="run-b")
    # Reproducible per (key, attempt)...
    assert a == policy.backoff(1, key="run-a")
    # ...de-correlated across keys...
    assert a != b
    # ...and bounded by the jitter fraction.
    for delay in (a, b):
        assert 1.0 <= delay <= 1.25


def test_backoff_attempt_is_one_based():
    with pytest.raises(ConfigurationError):
        RetryPolicy().backoff(0)


def test_policy_validates_its_parameters():
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(backoff_base=-1.0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(jitter=1.5)


def test_timeout_error_is_an_execution_error():
    # So callers that catch ExecutionError keep catching deadline kills.
    assert issubclass(RunTimeoutError, ExecutionError)
