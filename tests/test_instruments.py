"""Tests for the power meter, temperature log, and statistics helpers."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.instruments import (
    PowerMeter,
    TemperatureLog,
    efficiency,
    relative_reduction,
    summarize,
    throughput_reduction,
)
from repro.sim import RngRegistry, Simulator


# ----------------------------------------------------------------------
# PowerMeter
# ----------------------------------------------------------------------
def test_energy_accumulates_segments():
    meter = PowerMeter()
    meter.record_segment(0.0, 1.0, 50.0)
    meter.record_segment(1.0, 2.0, 20.0)
    assert meter.energy() == pytest.approx(90.0)
    assert meter.num_segments == 2


def test_energy_window_prorates():
    meter = PowerMeter()
    meter.record_segment(0.0, 2.0, 10.0)
    meter.record_segment(2.0, 2.0, 30.0)
    assert meter.energy(1.0, 3.0) == pytest.approx(10.0 + 30.0)
    assert meter.energy(0.5, 1.5) == pytest.approx(10.0)


def test_energy_empty():
    assert PowerMeter().energy() == 0.0


def test_average_power():
    meter = PowerMeter()
    meter.record_segment(0.0, 4.0, 25.0)
    assert meter.average_power(0.0, 4.0) == pytest.approx(25.0)
    with pytest.raises(AnalysisError):
        meter.average_power(1.0, 1.0)


def test_iter_segments():
    from repro.instruments import PowerSegment

    meter = PowerMeter()
    meter.record_segment(0.0, 1.0, 50.0)
    meter.record_segment(1.0, 0.5, 20.0)
    segments = list(meter.iter_segments())
    assert segments == [
        PowerSegment(start=0.0, duration=1.0, power=50.0),
        PowerSegment(start=1.0, duration=0.5, power=20.0),
    ]


def test_zero_duration_segment_ignored():
    meter = PowerMeter()
    meter.record_segment(0.0, 0.0, 99.0)
    assert meter.num_segments == 0


def test_resample_constant_power():
    meter = PowerMeter()
    meter.record_segment(0.0, 1.0, 40.0)
    times, watts = meter.resample(0.25)
    assert len(times) == 4
    assert np.allclose(watts, 40.0)


def test_resample_step_change():
    meter = PowerMeter()
    meter.record_segment(0.0, 0.5, 10.0)
    meter.record_segment(0.5, 0.5, 30.0)
    times, watts = meter.resample(0.5)
    assert np.allclose(watts, [10.0, 30.0])
    # A window straddling the step averages the two.
    times2, watts2 = meter.resample(1.0)
    assert np.allclose(watts2, [20.0])


def test_resample_energy_preserved():
    rng = np.random.default_rng(1)
    meter = PowerMeter()
    t = 0.0
    for _ in range(200):
        duration = float(rng.uniform(0.001, 0.05))
        meter.record_segment(t, duration, float(rng.uniform(10, 80)))
        t += duration
    period = 0.01
    times, watts = meter.resample(period)
    assert watts.sum() * period == pytest.approx(meter.energy(0, times[-1] + period / 2), rel=1e-6)


def test_resample_validation():
    meter = PowerMeter()
    with pytest.raises(AnalysisError):
        meter.resample(0.0)
    assert meter.resample(1.0)[0].size == 0


def test_clamp_gain_error_applied():
    rng = RngRegistry(5).stream("clamp")
    meter = PowerMeter(clamp_gain_error=0.05, rng=rng)
    assert meter.gain != 1.0
    meter.record_segment(0.0, 1.0, 50.0)
    _, watts = meter.resample(1.0)
    assert watts[0] == pytest.approx(50.0 * meter.gain)
    # Exact energy accounting is NOT affected by clamp gain.
    assert meter.energy() == pytest.approx(50.0)


def test_clamp_needs_rng():
    with pytest.raises(AnalysisError):
        PowerMeter(clamp_gain_error=0.05)


# ----------------------------------------------------------------------
# TemperatureLog
# ----------------------------------------------------------------------
def test_templog_samples_on_period():
    sim = Simulator()
    values = iter(range(100))
    log = TemperatureLog(sim, lambda: np.array([float(next(values))]), period=1.0)
    sim.run(until=3.5)
    assert list(log.times) == [0.0, 1.0, 2.0, 3.0]
    assert log.samples.shape == (4, 1)


def test_templog_window_mean():
    sim = Simulator()
    log = TemperatureLog(sim, lambda: np.array([sim.now, 2 * sim.now]), period=1.0)
    sim.run(until=10.0)
    # Samples at 0..10; window of 2 s -> samples at 8, 9, 10.
    assert log.mean_over_window(2.0) == pytest.approx((9 + 18) / 2)
    per_core = log.per_core_mean_over_window(2.0)
    assert per_core[0] == pytest.approx(9.0)
    assert per_core[1] == pytest.approx(18.0)


def test_templog_core_series():
    sim = Simulator()
    log = TemperatureLog(sim, lambda: np.array([1.0, 2.0]), period=0.5)
    sim.run(until=1.0)
    assert np.allclose(log.core_series(1), [2.0, 2.0, 2.0])


def test_templog_stop():
    sim = Simulator()
    log = TemperatureLog(sim, lambda: np.array([1.0]), period=1.0)
    sim.run(until=2.0)
    log.stop()
    sim.schedule(5.0, lambda: None)
    sim.run()
    assert len(log.times) == 3


def test_templog_errors():
    sim = Simulator()
    with pytest.raises(AnalysisError):
        TemperatureLog(sim, lambda: np.array([1.0]), period=0.0)
    with pytest.raises(AnalysisError):
        TemperatureLog(sim, lambda: np.array([1.0]), period=1.0, num_cores=0)
    log = TemperatureLog(sim, lambda: np.array([1.0]), period=1.0)
    with pytest.raises(AnalysisError):
        log.mean_over_window(1.0)  # no samples yet


def test_templog_empty_log_has_declared_width():
    sim = Simulator()
    log = TemperatureLog(sim, lambda: np.array([1.0, 2.0]), period=1.0, num_cores=2)
    assert log.samples.shape == (0, 2)
    # Without a declared width the empty array is (0, 0), as before.
    bare = TemperatureLog(sim, lambda: np.array([1.0, 2.0]), period=1.0)
    assert bare.samples.shape == (0, 0)


def test_templog_empty_core_series_raises_analysis_error():
    """core_series on an empty log used to die with a bare IndexError
    from the (0, 0) samples array."""
    sim = Simulator()
    log = TemperatureLog(sim, lambda: np.array([1.0, 2.0]), period=1.0, num_cores=2)
    with pytest.raises(AnalysisError, match="no temperature samples"):
        log.core_series(0)


def test_templog_core_out_of_range_raises_analysis_error():
    sim = Simulator()
    log = TemperatureLog(sim, lambda: np.array([1.0, 2.0]), period=1.0)
    sim.run(until=1.0)
    assert log.num_cores == 2  # learned from the first sample
    with pytest.raises(AnalysisError, match="out of range"):
        log.core_series(2)


# ----------------------------------------------------------------------
# stats helpers
# ----------------------------------------------------------------------
def test_relative_reduction_paper_example():
    """§3.4's worked example: 60 -> 50 over an idle floor of 40 is 50%."""
    assert relative_reduction(60.0, 50.0, 40.0) == pytest.approx(0.5)


def test_relative_reduction_validates_span():
    with pytest.raises(AnalysisError):
        relative_reduction(40.0, 39.0, 40.0)


def test_throughput_reduction():
    assert throughput_reduction(100.0, 80.0) == pytest.approx(0.2)
    with pytest.raises(AnalysisError):
        throughput_reduction(0.0, 1.0)


def test_efficiency_helper():
    assert efficiency(0.4, 0.2) == pytest.approx(2.0)
    assert efficiency(0.1, 0.0) == float("inf")
    assert efficiency(0.0, 0.0) == 0.0


def test_summarize():
    summary = summarize([1.0, 2.0, 3.0])
    assert summary["mean"] == pytest.approx(2.0)
    assert summary["n"] == 3
    assert summary["min"] == 1.0
    assert summary["max"] == 3.0
    with pytest.raises(AnalysisError):
        summarize([])


def test_templog_buffer_growth_past_initial_capacity():
    """More samples than the initial buffer capacity (64): the log grows
    geometrically and keeps every sample in order."""
    sim = Simulator()
    log = TemperatureLog(sim, lambda: np.array([sim.now, -sim.now]), period=1.0)
    sim.run(until=199.0)
    assert log.samples.shape == (200, 2)
    assert np.array_equal(log.times, np.arange(200.0))
    assert np.array_equal(log.core_series(0), np.arange(200.0))
    assert np.array_equal(log.core_series(1), -np.arange(200.0))


def test_templog_window_mean_cache_invalidated_by_new_samples():
    sim = Simulator()
    log = TemperatureLog(sim, lambda: np.array([sim.now]), period=1.0)
    sim.run(until=5.0)
    first = log.mean_over_window(2.0)  # samples at 3, 4, 5
    assert first == pytest.approx(4.0)
    # Repeated queries hit the cache and stay equal.
    assert log.mean_over_window(2.0) == first
    sim.run(until=7.0)
    assert log.mean_over_window(2.0) == pytest.approx(6.0)


def test_templog_cached_window_mean_is_a_copy():
    sim = Simulator()
    log = TemperatureLog(sim, lambda: np.array([1.0, 3.0]), period=1.0)
    sim.run(until=4.0)
    per_core = log.per_core_mean_over_window(2.0)
    per_core[:] = 99.0  # mutating the returned array must not poison the cache
    assert log.per_core_mean_over_window(2.0)[0] == pytest.approx(1.0)


def test_templog_ragged_sample_raises_analysis_error():
    sim = Simulator()
    widths = iter([2, 2, 3])
    log = TemperatureLog(sim, lambda: np.zeros(next(widths)), period=1.0)
    with pytest.raises(AnalysisError, match="ragged"):
        sim.run(until=2.0)
