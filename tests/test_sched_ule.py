"""Tests for the ULE-flavoured runqueue and the §3.1 generality claim."""

import pytest

from repro.core.models import predicted_runtime
from repro.errors import SchedulerError
from repro.experiments import Machine, fast_config
from repro.sched import Thread, ThreadState, UleRunqueue
from repro.workloads import CpuBurn, DutyCycledBurn, FiniteCpuBurn


def ready(name="t", affinity=None):
    thread = Thread(CpuBurn(), name=name)
    thread.state = ThreadState.READY
    thread.affinity = affinity
    return thread


# ----------------------------------------------------------------------
# Queue mechanics
# ----------------------------------------------------------------------
def test_validation():
    with pytest.raises(SchedulerError):
        UleRunqueue(num_cores=0)


def test_enqueue_dequeue_roundtrip():
    q = UleRunqueue(num_cores=2)
    t = ready()
    q.enqueue(t)
    assert t in q
    assert len(q) == 1
    assert q.dequeue(0) is t
    assert len(q) == 0


def test_requires_ready_state_and_no_double_enqueue():
    q = UleRunqueue(num_cores=2)
    t = Thread(CpuBurn())
    with pytest.raises(SchedulerError):
        q.enqueue(t)
    t.state = ThreadState.READY
    q.enqueue(t)
    with pytest.raises(SchedulerError):
        q.enqueue(t)


def test_cache_affinity_placement():
    """A thread re-enqueues on the CPU it last ran on."""
    q = UleRunqueue(num_cores=4)
    t = ready()
    q.enqueue(t)
    assert q.dequeue(2) is t  # ran on CPU 2 (may have stolen this once)
    steals_before = q.steals
    t.state = ThreadState.READY
    q.enqueue(t)
    # Re-enqueued on its home CPU: CPU 2 gets it without stealing.
    assert q.dequeue(2) is t
    assert q.steals == steals_before


def test_work_stealing():
    q = UleRunqueue(num_cores=2)
    a, b = ready("a"), ready("b")
    q.enqueue(a)
    q.enqueue(b)
    # Drain both from CPU 1: at least one must be stolen from CPU 0.
    got = {q.dequeue(1), q.dequeue(1)}
    assert got == {a, b}
    assert q.steals >= 1


def test_affinity_respected_even_when_stealing():
    q = UleRunqueue(num_cores=2)
    pinned = ready("pinned", affinity=0)
    q.enqueue(pinned)
    assert q.dequeue(1) is None  # CPU 1 may not steal a CPU-0 thread
    assert q.dequeue(0) is pinned


def test_interactive_threads_jump_batch_backlog():
    q = UleRunqueue(num_cores=1)
    batch = ready("batch")
    q.on_quantum_expired(batch)
    q.enqueue(batch)
    sleeper = ready("sleeper")
    q.on_wakeup(sleeper)
    q.enqueue(sleeper)
    assert q.dequeue(0) is sleeper


def test_remove():
    q = UleRunqueue(num_cores=2)
    t = ready()
    q.enqueue(t)
    assert q.remove(t) is True
    assert q.remove(t) is False
    assert len(q) == 0


def test_iteration():
    q = UleRunqueue(num_cores=2)
    a, b = ready("a"), ready("b")
    q.enqueue(a)
    q.enqueue(b)
    assert {t.name for t in q} == {"a", "b"}


# ----------------------------------------------------------------------
# The §3.1 footnote: "the mechanism generalizes to ULE"
# ----------------------------------------------------------------------
def ule_machine():
    return Machine(fast_config().scaled(scheduler_queue="ule"))


def test_machine_builds_with_ule():
    machine = ule_machine()
    assert isinstance(machine.scheduler.runqueue, UleRunqueue)


def test_unknown_queue_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        Machine(fast_config().scaled(scheduler_queue="cfs"))


def test_ule_runs_parallel_threads():
    machine = ule_machine()
    threads = [machine.scheduler.spawn(FiniteCpuBurn(1.0)) for _ in range(4)]
    machine.run(2.0)
    assert all(not t.alive for t in threads)
    assert max(t.stats.exit_time for t in threads) < 1.05


def test_dimetrodon_model_holds_under_ule():
    """Idle injection behaves identically under ULE: D(t) still holds."""
    machine = ule_machine()
    machine.control.set_global_policy(0.5, 0.05, deterministic=True)
    t = machine.scheduler.spawn(FiniteCpuBurn(1.0))
    while t.alive and machine.now < 10.0:
        machine.run(0.5)
    predicted = predicted_runtime(1.0, machine.config.quantum, 0.5, 0.05)
    assert predicted - 0.06 <= t.stats.exit_time <= predicted * 1.01


def test_ule_and_bsd_reach_same_temperatures():
    """The thermal outcome is queue-discipline independent for the
    symmetric cpuburn workload."""

    def run(queue):
        machine = Machine(fast_config().scaled(scheduler_queue=queue))
        machine.control.set_global_policy(0.5, 0.025)
        for _ in range(4):
            machine.scheduler.spawn(CpuBurn())
        machine.run(60.0)
        return machine.mean_core_temp_over_window(10.0)

    assert run("ule") == pytest.approx(run("bsd"), abs=1.0)


def test_ule_sleep_wake_cycle():
    machine = ule_machine()
    workload = DutyCycledBurn(burn_time=0.2, sleep_time=0.3, iterations=3)
    t = machine.scheduler.spawn(workload)
    machine.run(3.0)
    assert workload.completed_iterations == 3
