"""Smoke + shape tests for Table 1 and the §3.3 validations (reduced)."""

import pytest

from repro.experiments import fast_config
from repro.experiments.tables import (
    table1_spec_workloads,
    validate_energy_model,
    validate_throughput_model,
)

CFG = fast_config()


# ----------------------------------------------------------------------
# Throughput validation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def throughput():
    return validate_throughput_model(
        CFG, total_cpu=3.0, ps=(0.5,), ls_ms=(50.0, 100.0), repetitions=2
    )


def test_throughput_validation_close_to_model(throughput):
    """§3.3: measured throughput within a few % of D(t)."""
    for row in throughput.rows:
        assert abs(row.deviation) < 0.06
    assert abs(throughput.mean_deviation) < 0.04


def test_throughput_validation_render(throughput):
    text = throughput.render()
    assert "D(t)" in text
    assert "mean deviation" in text


# ----------------------------------------------------------------------
# Energy validation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def energy():
    return validate_energy_model(CFG, total_cpu=3.0, ps=(0.5,), ls_ms=(100.0,))


def test_energy_validation_near_parity(energy):
    """§3.3: Dimetrodon within a few % of race-to-idle energy."""
    for row in energy.rows:
        assert row.ratio == pytest.approx(1.0, abs=0.06)


def test_energy_validation_render(energy):
    assert "race" in energy.render()


# ----------------------------------------------------------------------
# Table 1 (two benchmarks, tiny grid)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def table1():
    return table1_spec_workloads(
        CFG,
        benchmarks=("calculix", "astar"),
        ps=(0.5, 0.75),
        ls_ms=(5.0, 25.0),
        fit_r_max=0.6,
    )


def test_table1_has_cpuburn_row_first(table1):
    assert table1.rows[0].workload == "cpuburn"
    assert table1.rows[0].rise_percent == pytest.approx(100.0)


def test_table1_rise_ordering(table1):
    rows = {row.workload: row for row in table1.rows}
    assert rows["calculix"].rise_percent > rows["astar"].rise_percent
    # astar is the cool outlier; its rise lands well below cpuburn's.
    assert rows["astar"].rise_percent < 90.0


def test_table1_fits_are_superlinear(table1):
    """All workloads fit beta > 1: small reductions are cheap."""
    for row in table1.rows:
        assert row.beta > 1.0
        assert 0.5 < row.alpha < 2.0


def test_table1_paper_reference_columns(table1):
    rows = {row.workload: row for row in table1.rows}
    assert rows["calculix"].paper_alpha == 1.282
    assert rows["astar"].paper_beta == 1.416


def test_table1_render(table1):
    text = table1.render()
    assert "Table 1" in text
    assert "calculix" in text
