"""Integration tests for the scheduler on the assembled machine."""

import numpy as np
import pytest

from repro.cpu import CState
from repro.experiments import Machine, fast_config
from repro.sched import Thread, ThreadKind, ThreadState
from repro.workloads import Burst, CpuBurn, DutyCycledBurn, FiniteCpuBurn, SyntheticWorkload


@pytest.fixture
def machine():
    return Machine(fast_config())


def run_until_exit(machine, threads, cap=300.0):
    while any(t.alive for t in threads) and machine.now < cap:
        machine.run(0.5)
    assert all(not t.alive for t in threads), "threads did not finish"


# ----------------------------------------------------------------------
# Basic execution
# ----------------------------------------------------------------------
def test_single_thread_runs_to_completion(machine):
    t = machine.scheduler.spawn(FiniteCpuBurn(1.0))
    run_until_exit(machine, [t])
    assert t.state is ThreadState.EXITED
    assert t.stats.work_done == pytest.approx(1.0, abs=1e-9)
    # Wall time = work + per-dispatch overheads, so barely above 1 s.
    assert 1.0 <= t.stats.exit_time < 1.01


def test_four_threads_run_in_parallel(machine):
    threads = [machine.scheduler.spawn(FiniteCpuBurn(1.0)) for _ in range(4)]
    run_until_exit(machine, threads)
    # All four cores busy simultaneously: finish in ~1 s, not ~4 s.
    assert max(t.stats.exit_time for t in threads) < 1.05


def test_five_threads_share_four_cores(machine):
    threads = [machine.scheduler.spawn(FiniteCpuBurn(1.0)) for _ in range(5)]
    run_until_exit(machine, threads)
    # 5 seconds of work on 4 cores: at least 1.25 s of wall time.
    assert max(t.stats.exit_time for t in threads) >= 1.25
    total = sum(t.stats.work_done for t in threads)
    assert total == pytest.approx(5.0, abs=1e-9)


def test_quantum_slicing_counts(machine):
    t = machine.scheduler.spawn(FiniteCpuBurn(1.0))
    run_until_exit(machine, [t])
    # R/q = 1.0/0.1 = 10 dispatches.
    assert t.stats.scheduled_count == 10
    assert t.stats.preemptions == 9  # the final slice completes the burst


def test_work_conservation_under_load(machine):
    threads = [machine.scheduler.spawn(CpuBurn()) for _ in range(4)]
    machine.run(10.0)
    total = sum(t.stats.work_done for t in threads)
    # No more work than wall-time x cores; overheads make it slightly less.
    assert total <= 40.0
    assert total > 39.5


def test_first_run_timestamp(machine):
    t = machine.scheduler.spawn(FiniteCpuBurn(0.5))
    machine.run(1.0)
    assert t.stats.first_run == pytest.approx(0.0, abs=1e-6)


def test_exit_listener_fires(machine):
    exits = []
    machine.scheduler.exit_listeners.append(lambda t, now: exits.append((t.name, now)))
    t = machine.scheduler.spawn(FiniteCpuBurn(0.3), name="short")
    run_until_exit(machine, [t])
    assert len(exits) == 1
    assert exits[0][0] == "short"
    assert exits[0][1] == pytest.approx(t.stats.exit_time)


# ----------------------------------------------------------------------
# Sleep / block
# ----------------------------------------------------------------------
def test_duty_cycled_thread_sleeps(machine):
    workload = DutyCycledBurn(burn_time=0.5, sleep_time=1.0, iterations=3)
    t = machine.scheduler.spawn(workload)
    run_until_exit(machine, [t], cap=20.0)
    assert workload.completed_iterations == 3
    # 3 x (0.5 burn + 1.0 sleep), last sleep included before exit check.
    assert 3.4 < t.stats.exit_time < 4.7
    assert t.stats.work_done == pytest.approx(1.5, abs=1e-9)


def test_blocked_thread_waits_for_wake(machine):
    from repro.workloads import BLOCK

    workload = SyntheticWorkload(items=[BLOCK, Burst(cpu_time=0.2)])
    t = machine.scheduler.spawn(workload)
    machine.run(1.0)
    assert t.state is ThreadState.BLOCKED
    machine.scheduler.wake(t)
    machine.run(1.0)
    assert t.state is ThreadState.EXITED
    assert t.stats.work_done == pytest.approx(0.2, abs=1e-9)


def test_wake_is_noop_for_non_blocked(machine):
    t = machine.scheduler.spawn(FiniteCpuBurn(5.0))
    machine.run(0.25)
    state_before = t.state
    machine.scheduler.wake(t)
    assert t.state is state_before


def test_cores_idle_when_no_work(machine):
    machine.run(1.0)
    for core in machine.chip.cores:
        assert core.cstate_at(machine.now) is not CState.C0
    # All accounted time is idle.
    residency = machine.chip.cores[0].residency
    assert residency.get(CState.C0) == 0.0
    assert residency.total() == pytest.approx(1.0, rel=1e-6)


def test_residency_sums_to_elapsed(machine):
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    machine.run(5.0)
    for core in machine.chip.cores:
        assert core.residency.total() == pytest.approx(5.0, rel=1e-9)


# ----------------------------------------------------------------------
# Injection behaviour
# ----------------------------------------------------------------------
def test_injection_slows_thread_deterministically(machine):
    from repro.core.models import predicted_runtime

    machine.control.set_global_policy(0.5, 0.05, deterministic=True)
    t = machine.scheduler.spawn(FiniteCpuBurn(1.0))
    run_until_exit(machine, [t], cap=30.0)
    predicted = predicted_runtime(1.0, machine.config.quantum, 0.5, 0.05)
    # The deterministic credit policy loses up to one idle quantum at
    # the sequence start relative to the Bernoulli expectation.
    assert predicted - 0.06 <= t.stats.exit_time <= predicted * 1.01
    assert t.stats.injected_count in (9, 10)


def test_injection_counts_and_time(machine):
    machine.control.set_global_policy(0.75, 0.02, deterministic=True)
    t = machine.scheduler.spawn(FiniteCpuBurn(0.5))
    run_until_exit(machine, [t], cap=30.0)
    # Roughly 3 idles per execution quantum (start-transient loses a few).
    assert 11 <= t.stats.injected_count <= 15
    assert t.stats.injected_time == pytest.approx(t.stats.injected_count * 0.02)


def test_pinned_thread_not_stolen_by_other_core(machine):
    """While an idle quantum is injected, no other core may run the
    pinned thread — the paper's pinning requirement (§3.1)."""
    machine.control.set_global_policy(0.9, 0.1, deterministic=True)
    t = machine.scheduler.spawn(FiniteCpuBurn(0.5))

    seen_double_run = []

    def check():
        running_on = [
            slot.core.index
            for slot in machine.scheduler.slots
            if slot.current is t
        ]
        if len(running_on) > 1:
            seen_double_run.append(running_on)

    from repro.sim import PeriodicTask

    PeriodicTask(machine.sim, 0.001, check)
    machine.run(5.0)
    assert not seen_double_run


def test_kernel_threads_exempt(machine):
    machine.control.set_global_policy(0.9, 0.05, deterministic=True)
    kernel = Thread(FiniteCpuBurn(0.5), kind=ThreadKind.KERNEL)
    machine.scheduler.add_thread(kernel)
    run_until_exit(machine, [kernel], cap=10.0)
    assert kernel.stats.injected_count == 0
    assert kernel.stats.exit_time < 0.6


def test_per_thread_policy_targets_one_thread(machine):
    hot = machine.scheduler.spawn(FiniteCpuBurn(0.5), name="hot")
    cool = machine.scheduler.spawn(FiniteCpuBurn(0.5), name="cool")
    machine.control.set_thread_policy(hot, 0.75, 0.05, deterministic=True)
    run_until_exit(machine, [hot, cool], cap=20.0)
    assert hot.stats.injected_count > 0
    assert cool.stats.injected_count == 0
    assert cool.stats.exit_time < hot.stats.exit_time


def test_injected_idle_reaches_deep_state(machine):
    machine.control.set_global_policy(0.5, 0.05, deterministic=True)
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    machine.run(10.0)
    deep = sum(core.residency.get(CState.C1E) for core in machine.chip.cores)
    shallow = sum(core.residency.get(CState.C1) for core in machine.chip.cores)
    assert deep > 4 * shallow  # idle quanta are predominantly C1E


def test_spin_mode_stays_in_c0():
    from repro.core import IdleMode

    machine = Machine(fast_config(), idle_mode=IdleMode.SPIN)
    machine.control.set_global_policy(0.5, 0.05, deterministic=True)
    for _ in range(4):
        machine.scheduler.spawn(CpuBurn())
    machine.run(5.0)
    for core in machine.chip.cores:
        assert core.residency.get(CState.C1E) == 0.0
        assert core.residency.get(CState.C0) == pytest.approx(5.0, rel=1e-6)


def test_spin_mode_still_cools():
    """A nop loop burns less than cpuburn, so injection cools even
    without idle states (§2.1)."""
    from repro.core import IdleMode

    def run(mode):
        machine = Machine(fast_config(), idle_mode=mode)
        machine.control.set_global_policy(0.75, 0.05, deterministic=True)
        for _ in range(4):
            machine.scheduler.spawn(CpuBurn())
        machine.run(60.0)
        return machine.mean_core_temp_over_window(10.0)

    baseline = Machine(fast_config())
    for _ in range(4):
        baseline.scheduler.spawn(CpuBurn())
    baseline.run(60.0)
    hot = baseline.mean_core_temp_over_window(10.0)

    spin = run(IdleMode.SPIN)
    halt = run(IdleMode.HALT)
    assert spin < hot - 1.0  # spinning cools some
    assert halt < spin  # halting cools more


def test_scheduler_rejects_double_add(machine):
    t = machine.scheduler.spawn(FiniteCpuBurn(0.1))
    from repro.errors import SchedulerError

    with pytest.raises(SchedulerError):
        machine.scheduler.add_thread(t)


def test_terminate_running_thread(machine):
    t = machine.scheduler.spawn(CpuBurn())
    machine.run(0.55)
    assert t.state is ThreadState.RUNNING
    machine.scheduler.terminate(t)
    machine.run(0.2)  # honoured at the next slice boundary
    assert t.state is ThreadState.EXITED
    assert t.stats.exit_time < 0.75
    # The core goes idle afterwards.
    machine.run(0.5)
    assert all(slot.current is None for slot in machine.scheduler.slots)


def test_terminate_sleeping_thread(machine):
    workload = DutyCycledBurn(burn_time=0.2, sleep_time=10.0)
    t = machine.scheduler.spawn(workload)
    machine.run(1.0)
    assert t.state is ThreadState.SLEEPING
    machine.scheduler.terminate(t)
    assert t.state is ThreadState.EXITED
    machine.run(15.0)  # the stale wake event must not resurrect it
    assert t.state is ThreadState.EXITED
    assert workload.completed_iterations == 1


def test_terminate_ready_thread(machine):
    threads = [machine.scheduler.spawn(CpuBurn()) for _ in range(5)]
    machine.run(0.25)
    waiting = [t for t in threads if t.state is ThreadState.READY]
    assert waiting
    victim = waiting[0]
    machine.scheduler.terminate(victim)
    assert victim.state is ThreadState.EXITED
    assert victim not in machine.scheduler.runqueue


def test_terminate_pinned_thread(machine):
    machine.control.set_global_policy(0.9, 0.5, deterministic=True)
    t = machine.scheduler.spawn(CpuBurn())
    machine.run(0.3)
    assert t.state is ThreadState.PINNED
    machine.scheduler.terminate(t)
    machine.run(2.0)  # the injection-end event must not re-enqueue it
    assert t.state is ThreadState.EXITED


def test_terminate_is_idempotent(machine):
    t = machine.scheduler.spawn(FiniteCpuBurn(0.1))
    machine.run(0.5)
    assert t.state is ThreadState.EXITED
    exit_time = t.stats.exit_time
    machine.scheduler.terminate(t)
    assert t.stats.exit_time == exit_time


def test_terminate_fires_exit_listener(machine):
    exits = []
    machine.scheduler.exit_listeners.append(lambda th, now: exits.append(th.name))
    t = machine.scheduler.spawn(CpuBurn(), name="victim")
    machine.run(0.25)
    machine.scheduler.terminate(t)
    machine.run(0.2)
    assert exits == ["victim"]


def test_public_preempt_requeues_thread(machine):
    hog = machine.scheduler.spawn(CpuBurn())
    machine.run(0.55)  # mid-slice
    slot = machine.scheduler.running_on(hog)
    assert slot is not None
    work_before = hog.stats.work_done
    assert machine.scheduler.preempt(hog) is True
    # Partial progress of the interrupted slice was accounted.
    assert hog.stats.work_done > work_before
    assert machine.scheduler.stats.forced_preemptions == 1
    # The thread is immediately redispatched (it is the only work).
    assert machine.scheduler.running_on(hog) is not None


def test_preempt_non_running_thread_returns_false(machine):
    sleeper = machine.scheduler.spawn(DutyCycledBurn(burn_time=0.1, sleep_time=5.0))
    machine.run(0.5)
    assert machine.scheduler.preempt(sleeper) is False


def test_running_on_none_for_idle_thread(machine):
    t = machine.scheduler.spawn(FiniteCpuBurn(0.1))
    machine.run(1.0)
    assert machine.scheduler.running_on(t) is None


def test_preempt_conserves_work(machine):
    t = machine.scheduler.spawn(FiniteCpuBurn(0.5))
    machine.sim.schedule(0.25, lambda: machine.scheduler.preempt(t))
    machine.run(2.0)
    assert not t.alive
    assert t.stats.work_done == pytest.approx(0.5, abs=1e-9)


def test_scheduler_validates_quantum():
    from repro.errors import SchedulerError
    from repro.sched import Scheduler
    from repro.cpu import Chip
    from repro.sim import Simulator

    with pytest.raises(SchedulerError):
        Scheduler(Simulator(), Chip(), quantum=0.0)
    with pytest.raises(SchedulerError):
        Scheduler(Simulator(), Chip(), context_switch_cost=-1.0)
