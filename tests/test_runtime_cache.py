"""Tests for the on-disk result cache: round-trips, misses, corruption."""

import json

import pytest

from repro.experiments import (
    CharacterizationResult,
    FiniteRunResult,
    fast_config,
    run_characterization,
)
from repro.runtime import ResultCache


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def sample_characterization() -> CharacterizationResult:
    return CharacterizationResult(
        workload="cpuburn",
        p=0.5,
        idle_quantum=0.01,
        duration=10.0,
        mean_temp=40.123456789012345,
        temp_rise=8.1,
        idle_temp=32.0,
        work=17.9,
        energy=523.25,
        details={"injected_quanta": 12.0, "injection_fraction": 0.21},
    )


def sample_finite() -> FiniteRunResult:
    return FiniteRunResult(
        p=0.25,
        idle_quantum=0.05,
        total_cpu=2.0,
        runtimes=[2.0, 2.1, 2.05, 1.95],
        energy=100.5,
        window=2.1,
        mean_schedules=20.0,
    )


def test_roundtrip_characterization_is_bit_identical(cache):
    original = sample_characterization()
    cache.put("a" * 64, original)
    loaded = cache.get("a" * 64)
    assert loaded == original  # dataclass equality covers every field
    assert loaded.mean_temp == original.mean_temp  # float exactness
    assert cache.stats.hits == 1
    assert cache.stats.stores == 1


def test_roundtrip_finite_run(cache):
    original = sample_finite()
    cache.put("b" * 64, original)
    loaded = cache.get("b" * 64)
    assert loaded == original
    assert loaded.mean_runtime == original.mean_runtime


def test_roundtrip_of_real_run_result(cache):
    cfg = fast_config()
    original = run_characterization(cfg, p=0.5, idle_quantum=0.01, duration=5.0)
    cache.put("c" * 64, original)
    assert cache.get("c" * 64) == original


def test_missing_key_is_a_miss(cache):
    assert cache.get("0" * 64) is None
    assert cache.stats.misses == 1


def test_corrupt_entry_is_a_miss_not_an_error(cache):
    key = "d" * 64
    cache.put(key, sample_characterization())
    cache.path(key).write_text("{ truncated garbage")
    assert cache.get(key) is None
    assert cache.stats.corrupt == 1
    assert cache.stats.misses == 0  # distinguished from a true miss


def test_corrupt_entry_is_quarantined_not_reparsed(cache):
    """The garbage is moved aside for post-mortems; the next lookup is
    an honest miss, so the run re-executes instead of re-hitting the
    same corrupt file forever."""
    key = "d" * 64
    cache.put(key, sample_characterization())
    cache.path(key).write_text("{ truncated garbage")
    assert cache.get(key) is None
    assert cache.stats.quarantined == 1
    quarantine = cache.path(key).with_name(cache.path(key).name + ".corrupt")
    assert quarantine.exists()
    assert quarantine.read_text() == "{ truncated garbage"
    assert not cache.path(key).exists()
    # Second lookup: a plain miss, not another corruption event.
    assert cache.get(key) is None
    assert cache.stats.corrupt == 1
    assert cache.stats.misses == 1
    # A fresh store for the same key works normally afterwards.
    cache.put(key, sample_characterization())
    assert cache.get(key) is not None


def test_schema_stale_entry_is_not_quarantined(cache):
    """An old-schema entry is valid data for an old build; leave it."""
    key = "e" * 64
    cache.put(key, sample_characterization())
    payload = json.loads(cache.path(key).read_text())
    payload["schema"] = -1
    cache.path(key).write_text(json.dumps(payload))
    assert cache.get(key) is None
    assert cache.stats.quarantined == 0
    assert cache.path(key).exists()


def test_clear_sweeps_quarantined_files(cache):
    key = "d" * 64
    cache.put(key, sample_characterization())
    cache.path(key).write_text("garbage")
    cache.get(key)  # quarantines
    cache.put("a" * 64, sample_finite())
    assert len(cache) == 1  # quarantine does not count as an entry
    assert cache.clear() == 1
    quarantine = cache.path(key).with_name(cache.path(key).name + ".corrupt")
    assert not quarantine.exists()


def test_unrebuildable_payload_counts_as_corrupt(cache):
    key = "1" * 64
    cache.put(key, sample_characterization())
    payload = json.loads(cache.path(key).read_text())
    payload["result"]["no_such_field"] = 1.0
    cache.path(key).write_text(json.dumps(payload))
    assert cache.get(key) is None
    assert cache.stats.corrupt == 1


def test_schema_mismatch_is_a_miss(cache):
    key = "e" * 64
    cache.put(key, sample_characterization())
    payload = json.loads(cache.path(key).read_text())
    payload["schema"] = -1
    cache.path(key).write_text(json.dumps(payload))
    assert cache.get(key) is None
    assert cache.stats.schema_stale == 1
    assert cache.stats.corrupt == 0
    assert cache.stats.misses == 0
    assert cache.stats.total_misses == 1


def test_len_and_clear(cache):
    cache.put("f" * 64, sample_characterization())
    cache.put("a" * 64, sample_finite())
    assert len(cache) == 2
    assert cache.clear() == 2
    assert len(cache) == 0


def test_tmp_stragglers_not_counted_and_swept_by_clear(cache):
    """A run killed mid-store leaves a .tmp-*.json behind; it must not
    count as an entry (pathlib's glob matches dotfiles) and clear()
    must sweep it up without counting it."""
    key = "f" * 64
    cache.put(key, sample_characterization())
    straggler = cache.path(key).parent / ".tmp-killed-run.json"
    straggler.write_text('{"partial": ')
    assert len(cache) == 1
    assert cache.clear() == 1
    assert not straggler.exists()
    assert len(cache) == 0


def test_telemetry_counters_track_lookup_outcomes(tmp_path):
    from repro.telemetry import isolated

    with isolated() as reg:
        cache = ResultCache(tmp_path / "cache")
        cache.put("a" * 64, sample_characterization())
        cache.get("a" * 64)  # hit
        cache.get("0" * 64)  # miss
        cache.path("b" * 64).parent.mkdir(parents=True)
        cache.path("b" * 64).write_text("garbage")
        cache.get("b" * 64)  # corrupt
    assert reg.value("runtime.cache.stores") == 1
    assert reg.value("runtime.cache.hits") == 1
    assert reg.value("runtime.cache.misses") == 1
    assert reg.value("runtime.cache.corrupt") == 1
    assert reg.value("runtime.cache.quarantined") == 1
    assert reg.value("runtime.cache.schema_stale") == 0


def test_uncacheable_type_raises(cache):
    with pytest.raises(TypeError):
        cache.put("9" * 64, object())
