"""Tests for rack cells: the fleet experiments' batchable unit of work.

Covers the cache-key contract (every cell parameter and the fleet code
fingerprint participate; the physics fingerprint alone does not pick up
fleet edits), the JSON cache codec round trip, and the equivalence
guarantees: runner path == direct call, pooled == serial, cached
replay == fresh execution with zero simulations.
"""

import dataclasses

import pytest

from repro.errors import ExecutionError
from repro.experiments import fast_config
from repro.fleet.cells import (
    RACK_CELL_KIND,
    RackCellResult,
    rack_cell_spec,
    require_cells,
    run_cells,
    run_rack_cell,
)
from repro.health import HealthParams
from repro.runtime import ParallelRunner, ResultCache, fleet_fingerprint
from repro.runtime.hashing import FLEET_MODULES, PHYSICS_MODULES
from repro.runtime.parallel import execute_spec

#: One tiny rack cell: enough simulated time for a QoS window
#: (warmup 1s + scoring span + 5s drain) but cheap enough to run
#: several times per test module.
CELL = dict(machines=1, duration=8.0, warmup=1.0, p=0.5, idle_quantum=0.05)


@pytest.fixture(scope="module")
def config():
    return fast_config(0)


# ======================================================================
# Cache-key sensitivity
# ======================================================================
def test_identical_cells_share_a_key(config):
    assert rack_cell_spec(config, **CELL).key == rack_cell_spec(config, **CELL).key


@pytest.mark.parametrize(
    "change",
    [
        {"p": 0.6},
        {"idle_quantum": 0.025},
        {"machines": 2},
        {"duration": 9.0},
        {"policy": "coolest"},
        {"shape": "diurnal", "rate": 40.0},
        {"health": HealthParams(warning_rise=2.0)},
        {"health_per_machine": False},
        {"slo_window": (1.0, 3.0, 1.0)},
        {"dvfs_min": True},
        {"tcc_duty": 0.5},
        {"heat_and_run": True},
    ],
)
def test_every_cell_parameter_changes_the_key(config, change):
    assert (
        rack_cell_spec(config, **CELL).key
        != rack_cell_spec(config, **{**CELL, **change}).key
    )


def test_seed_changes_the_key(config):
    other = fast_config(1)
    assert rack_cell_spec(config, **CELL).key != rack_cell_spec(other, **CELL).key


def test_fleet_code_edit_invalidates_rack_cells_only(config, monkeypatch):
    """A fleet-layer edit must change rack-cell keys without touching
    the figure sweeps', whose entries are far more expensive."""
    from repro.runtime import characterization_spec, hashing

    cell_before = rack_cell_spec(config, **CELL).key
    sweep_before = characterization_spec(config, p=0.5).key
    monkeypatch.setattr(hashing, "_fleet_fingerprint_cache", "0" * 64)
    assert rack_cell_spec(config, **CELL).key != cell_before
    assert characterization_spec(config, p=0.5).key == sweep_before


def test_fleet_fingerprint_is_distinct_from_physics(config):
    from repro.runtime import code_fingerprint

    assert fleet_fingerprint() != code_fingerprint()
    assert len(fleet_fingerprint()) == 64
    # The two module sets must not overlap: an edit belongs to exactly
    # one fingerprint, so it invalidates exactly one class of entries.
    assert not set(FLEET_MODULES) & set(PHYSICS_MODULES)
    assert rack_cell_spec(config, **CELL).extra_code == fleet_fingerprint()


# ======================================================================
# Execution and the cache codec
# ======================================================================
@pytest.fixture(scope="module")
def cell_result(config):
    return run_rack_cell(
        config, **CELL, shape="constant", rate=40.0, slo_window=(1.0, 3.0, 1.0)
    )


def test_run_rack_cell_measures_a_rack(cell_result):
    assert cell_result.run.requests > 0
    assert cell_result.run.mean_temp > cell_result.idle_mean_temp
    assert cell_result.substeps > 0
    assert cell_result.advance_wall_s > 0
    assert cell_result.slo is not None and len(cell_result.slo.windows) > 0
    assert cell_result.health is not None and "totals" in cell_result.health


def test_cell_result_is_plain_data(cell_result):
    """No numpy scalars anywhere: the JSON codec must round-trip the
    exact values, and ``json.dump`` rejects numpy types outright."""

    def check(value, path):
        if isinstance(value, dict):
            for key, item in value.items():
                check(item, f"{path}.{key}")
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                check(item, f"{path}[{i}]")
        elif value is not None:
            assert type(value) in (bool, int, float, str), (path, type(value))

    check(dataclasses.asdict(cell_result), "result")


def test_cache_round_trip_is_bit_identical(cell_result, tmp_path):
    cache = ResultCache(tmp_path)
    spec_key = "ab" * 32
    cache.put(spec_key, cell_result)
    loaded = cache.get(spec_key)
    assert isinstance(loaded, RackCellResult)
    assert loaded == cell_result
    assert cache.stats.hits == 1 and cache.stats.corrupt == 0


def _comparable(result):
    """A fresh run's wall seconds are nondeterministic (everything else
    is simulated); zero them so ``==`` compares simulation outcomes."""
    return dataclasses.replace(result, advance_wall_s=0.0)


def test_runner_path_equals_direct_call(config):
    spec = rack_cell_spec(config, **CELL)
    direct = execute_spec(spec)
    [via_runner] = ParallelRunner(jobs=1).run([spec])
    assert _comparable(direct) == _comparable(via_runner)
    [rerun] = run_cells(None, [spec])
    assert _comparable(rerun) == _comparable(direct)


def test_pooled_cells_match_serial(config):
    specs = [rack_cell_spec(config, **{**CELL, "p": p}) for p in (0.0, 0.5)]
    serial = ParallelRunner(jobs=1).run(specs)
    pooled = ParallelRunner(jobs=2).run(specs)
    assert [_comparable(r) for r in serial] == [_comparable(r) for r in pooled]


def test_cached_replay_executes_nothing(config, tmp_path):
    spec = rack_cell_spec(config, **CELL)
    warm = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
    [fresh] = warm.run([spec])
    assert warm.metrics.executed == 1 and warm.metrics.cache_stores == 1

    replay = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
    [cached] = replay.run([spec])
    assert replay.metrics.executed == 0 and replay.metrics.cache_hits == 1
    assert cached == fresh


def test_unknown_result_kind_is_schema_stale_not_corrupt(tmp_path):
    """An entry written by a process with more codecs loaded must not
    be quarantined: for this process it is stale, not garbage."""
    import json

    cache = ResultCache(tmp_path)
    key = "cd" * 32
    path = cache.path(key)
    path.parent.mkdir(parents=True)
    path.write_text(
        json.dumps({"schema": 1, "kind": "from-the-future", "result": {}})
    )
    assert cache.get(key) is None
    assert cache.stats.schema_stale == 1
    assert cache.stats.corrupt == 0 and cache.stats.quarantined == 0
    assert path.exists()  # still there for the process that can read it


def test_require_cells_raises_on_missing(config):
    with pytest.raises(ExecutionError, match="baseline"):
        require_cells("fleet", ["baseline", "injected"], [None, object()])
    require_cells("fleet", ["baseline"], [object()])  # present: no error


def test_rack_cell_executor_is_registered():
    from repro.runtime.parallel import _resolve_executor

    assert _resolve_executor(RACK_CELL_KIND) is run_rack_cell
