"""Tests for DVFS operating points and TCC clock modulation."""

import pytest

from repro.cpu import DvfsTable, OperatingPoint, TCC_OFF, TccSetting, setpoints, step_size, xeon_e5520_table
from repro.errors import ConfigurationError
from repro.units import GHZ, MHZ


# ----------------------------------------------------------------------
# DVFS
# ----------------------------------------------------------------------
def test_table_spans_paper_range():
    table = xeon_e5520_table()
    assert table.min_point.frequency == pytest.approx(1.60 * GHZ, rel=1e-3)
    assert table.max_point.frequency == pytest.approx(2.267 * GHZ, rel=1e-3)
    assert len(table) == 6


def test_steps_are_roughly_133mhz():
    table = xeon_e5520_table()
    freqs = [p.frequency for p in table]
    diffs = [b - a for a, b in zip(freqs, freqs[1:])]
    for diff in diffs:
        assert diff == pytest.approx(step_size(), rel=0.05)


def test_min_frequency_is_71_percent_of_max():
    """§3.2: 'a minimum of frequency of 1.6 GHz (71% of maximum)'."""
    table = xeon_e5520_table()
    assert table.speed_scale(table.min_point) == pytest.approx(0.708, abs=0.005)


def test_voltage_monotone_with_frequency():
    table = xeon_e5520_table()
    volts = [p.voltage for p in table]
    assert volts == sorted(volts)
    assert volts[0] == pytest.approx(1.08)
    assert volts[-1] == pytest.approx(1.20)


def test_voltage_curve_is_convex():
    """V(f) drops slowly near the top of the ladder and fast at the
    bottom — the shape behind Figure 4's shallow-step behaviour."""
    table = xeon_e5520_table()
    volts = [p.voltage for p in table]
    drops = [b - a for a, b in zip(volts, volts[1:])]
    # Steps near the top of the ladder change voltage less.
    assert drops[-1] < drops[0]


def test_dynamic_scale_is_f_v_squared():
    table = xeon_e5520_table()
    point = table.min_point
    expected = (point.frequency / table.max_point.frequency) * (
        point.voltage / table.max_point.voltage
    ) ** 2
    assert table.dynamic_scale(point) == pytest.approx(expected)
    assert table.dynamic_scale(table.max_point) == 1.0


def test_dynamic_scale_beats_linear():
    """VFS's power advantage: power drops faster than speed (Figure 4)."""
    table = xeon_e5520_table()
    for point in table:
        assert table.dynamic_scale(point) <= table.speed_scale(point) + 1e-12


def test_nearest_point():
    table = xeon_e5520_table()
    assert table.nearest(1.65 * GHZ).frequency == pytest.approx(1.60 * GHZ, rel=1e-3)
    assert table.nearest(2.5 * GHZ) is table.max_point


def test_operating_point_validation():
    with pytest.raises(ConfigurationError):
        OperatingPoint(frequency=-1.0, voltage=1.0)
    with pytest.raises(ConfigurationError):
        OperatingPoint(frequency=1e9, voltage=0.0)


def test_table_must_be_sorted():
    points = (
        OperatingPoint(2e9, 1.1),
        OperatingPoint(1e9, 0.9),
    )
    with pytest.raises(ConfigurationError):
        DvfsTable(points=points)


def test_point_label():
    point = OperatingPoint(2.26 * GHZ, 1.2)
    assert point.label == "2.26GHz@1.20V"


# ----------------------------------------------------------------------
# TCC
# ----------------------------------------------------------------------
def test_tcc_off_is_identity():
    assert TCC_OFF.dynamic_scale == 1.0
    assert TCC_OFF.speed_scale == 1.0


def test_tcc_setpoints_ladder():
    points = setpoints(8)
    assert len(points) == 8
    assert points[0].duty == pytest.approx(0.125)
    assert points[-1].duty == 1.0


def test_tcc_dynamic_scale():
    setting = TccSetting(duty=0.5, gated_dynamic_fraction=0.1)
    assert setting.dynamic_scale == pytest.approx(0.55)
    assert setting.speed_scale == 0.5


def test_tcc_power_worse_than_proportional():
    """TCC burns residual power while gated, so its power/speed ratio is
    always worse than 1 — the seed of its sub-1:1 trade-off."""
    for setting in setpoints(8)[:-1]:
        assert setting.dynamic_scale > setting.speed_scale


def test_tcc_validation():
    with pytest.raises(ConfigurationError):
        TccSetting(duty=0.0)
    with pytest.raises(ConfigurationError):
        TccSetting(duty=1.2)
    with pytest.raises(ConfigurationError):
        TccSetting(duty=0.5, gated_dynamic_fraction=1.0)
    with pytest.raises(ConfigurationError):
        setpoints(1)


def test_tcc_label():
    assert TccSetting(duty=0.25).label == "tcc-25.0%"
