"""Tests for cache-key hashing: canonicalisation, sensitivity, stability."""

import numpy as np
import pytest

from repro.core.injector import IdleMode
from repro.errors import ConfigurationError
from repro.experiments import fast_config
from repro.runtime import characterization_spec, code_fingerprint, freeze, spec_key
from repro.runtime.hashing import PHYSICS_MODULES


# ----------------------------------------------------------------------
# freeze
# ----------------------------------------------------------------------
def test_freeze_primitives_pass_through():
    assert freeze(None) is None
    assert freeze(True) is True
    assert freeze(3) == 3
    assert freeze(2.5) == 2.5
    assert freeze("x") == "x"


def test_freeze_dataclass_is_tagged_and_recursive():
    frozen = freeze(fast_config())
    assert frozen["__type__"] == "ExperimentConfig"
    assert frozen["seed"] == 0
    assert frozen["thermal"]["__type__"] == "ThermalParams"


def test_freeze_enum_and_numpy():
    assert freeze(IdleMode.HALT) == ["IdleMode", "HALT"]
    assert freeze(np.float64(1.5)) == 1.5
    assert freeze(np.array([1.0, 2.0])) == [1.0, 2.0]


def test_freeze_rejects_unhashable_values():
    with pytest.raises(ConfigurationError):
        freeze(lambda: None)


# ----------------------------------------------------------------------
# spec_key
# ----------------------------------------------------------------------
def test_key_is_deterministic_and_param_order_insensitive():
    cfg = fast_config()
    a = spec_key("characterization", cfg, {"p": 0.5, "idle_quantum": 0.01})
    b = spec_key("characterization", cfg, {"idle_quantum": 0.01, "p": 0.5})
    assert a == b
    assert len(a) == 64


def test_key_changes_with_any_input():
    cfg = fast_config()
    base = spec_key("characterization", cfg, {"p": 0.5})
    assert spec_key("finite_cpuburn", cfg, {"p": 0.5}) != base
    assert spec_key("characterization", cfg.with_seed(1), {"p": 0.5}) != base
    assert spec_key("characterization", cfg, {"p": 0.25}) != base
    assert (
        spec_key("characterization", cfg.scaled(num_cores=2), {"p": 0.5}) != base
    )


def test_runspec_key_matches_spec_key():
    cfg = fast_config()
    spec = characterization_spec(cfg, p=0.5, idle_quantum=0.01)
    assert spec.key == spec_key(
        "characterization", cfg, {"p": 0.5, "idle_quantum": 0.01}
    )


# ----------------------------------------------------------------------
# code fingerprint
# ----------------------------------------------------------------------
def test_code_fingerprint_is_stable_within_a_process():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64


def test_fingerprint_covers_simulation_but_not_runtime():
    """The runtime layer orchestrates runs but never changes their
    outcome, so editing it must not invalidate cached results."""
    assert "sim" in PHYSICS_MODULES
    assert "thermal" in PHYSICS_MODULES
    assert "experiments" in PHYSICS_MODULES
    assert "runtime" not in PHYSICS_MODULES
