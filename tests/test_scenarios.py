"""Tests for the ``scenarios`` experiment: shaped fleet arrivals,
windowed SLO scoring, and manifest artifacts."""

import json

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, run_experiment, supports_policy
from repro.errors import ConfigurationError
from repro.experiments import fast_config
from repro.fleet import (
    SCENARIO_SHAPES,
    FleetMachine,
    build_policy,
    build_scenario_arrivals,
    scenarios_experiment,
)
from repro.sim import RngRegistry
from repro.workloads import RequestTrace, TraceArrivals, WebServer


# ----------------------------------------------------------------------
# Shape registry
# ----------------------------------------------------------------------
def test_every_registered_shape_generates_arrivals():
    for name in SCENARIO_SHAPES:
        rng = RngRegistry(1).stream("trace")
        process = build_scenario_arrivals(
            name, rate=50.0, duration=20.0, rng=rng
        )
        times, elapsed = [], 0.0
        for gap in process.gaps(RngRegistry(2).stream("drive")):
            assert gap >= 0.0
            elapsed += gap
            if elapsed >= 20.0:
                break
            times.append(elapsed)
        assert len(times) > 50, name  # a 50 req/s shape is not silent


def test_unknown_shape_is_a_configuration_error():
    rng = RngRegistry(1).stream("trace")
    with pytest.raises(ConfigurationError):
        build_scenario_arrivals("sawtooth", rate=50.0, duration=20.0, rng=rng)


def test_trace_shape_is_frozen_per_seed():
    def make():
        rng = RngRegistry(5).stream("trace")
        return build_scenario_arrivals("trace", rate=50.0, duration=20.0, rng=rng)

    a, b = make(), make()
    assert a.trace.times == pytest.approx(b.trace.times)


# ----------------------------------------------------------------------
# Shaped arrivals through the fleet balancer
# ----------------------------------------------------------------------
def test_finite_trace_drives_exact_fleet_arrivals():
    """A finite trace at the balancer produces exactly its arrivals,
    at exactly its timestamps, pooled across the rack."""
    config = fast_config(0)
    fleet = FleetMachine(config, machines=2)
    servers = [
        WebServer(node.scheduler, node.rng.stream("web"), external_arrivals=True)
        for node in fleet.nodes
    ]
    trace = RequestTrace(tuple(np.linspace(0.5, 4.5, 41)))
    bundle = build_policy(
        "round-robin",
        fleet,
        servers,
        rate=80.0,
        rng=RngRegistry(config.seed).stream("fleet-balancer"),
        arrivals=TraceArrivals(trace),
    )
    fleet.run(6.0)
    bundle.stop()
    pooled = sorted(r.arrival for s in servers for r in s.log.requests)
    assert pooled == pytest.approx(list(trace.times))


# ----------------------------------------------------------------------
# The experiment
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_sweep():
    return scenarios_experiment(
        fast_config(0),
        shapes=("constant", "trace"),
        policies=("round-robin",),
        p_values=(0.6,),  # 0.0 is auto-included as the baseline
    )


def test_sweep_covers_the_grid(small_sweep):
    assert small_sweep.p_values == [0.0, 0.6]
    assert len(small_sweep.rows) == 2 * 1 * 2
    cells = {(row.shape, row.policy, row.p) for row in small_sweep.rows}
    assert ("trace", "round-robin", 0.0) in cells
    for shape in small_sweep.shapes:
        baseline = small_sweep.baseline_for(shape)
        assert baseline.p == 0.0


def test_sweep_scores_windows_consistently(small_sweep):
    for row in small_sweep.rows:
        # The windowed totals are the same requests the rack-level QoS
        # window counted (same span, same half-open convention).
        assert row.report.total_arrivals == row.run.requests
        assert len(row.report.windows) == 5
        assert row.report.windows[0].start == small_sweep.warmup


def test_injection_trades_heat_for_qos(small_sweep):
    for shape in small_sweep.shapes:
        baseline = small_sweep.baseline_for(shape)
        (injected,) = [
            r for r in small_sweep.shape_rows(shape) if r.p == 0.6
        ]
        assert injected.run.mean_temp < baseline.run.mean_temp
        points = small_sweep.tradeoffs(shape)
        assert len(points) == 1
        assert points[0].temp_reduction > 0


def test_render_includes_pareto_frontier(small_sweep):
    text = small_sweep.render()
    assert "Scenarios: 2 machines" in text
    assert "pareto[constant]" in text
    for shape in small_sweep.shapes:
        assert shape in text


def test_manifest_payload_is_strict_json(small_sweep):
    payload = small_sweep.manifest_payload()
    encoded = json.dumps(payload, allow_nan=False)  # raises on any NaN/Inf
    decoded = json.loads(encoded)
    assert decoded["shapes"] == ["constant", "trace"]
    assert len(decoded["runs"]) == len(small_sweep.rows)
    for run in decoded["runs"]:
        series = run["series"]
        assert len(series["start"]) == run["summary"]["windows"] == 5
        assert len(series["good_fraction"]) == 5
        for key in ("good_fraction", "tolerable_fraction", "failed_fraction"):
            assert run["summary"][key] is None or 0.0 <= run["summary"][key] <= 1.0
    assert set(decoded["pareto"]) == {"constant", "trace"}


def test_experiment_validates_inputs():
    config = fast_config(0)
    with pytest.raises(ConfigurationError):
        scenarios_experiment(config, policies=("warmest",))
    with pytest.raises(ConfigurationError):
        scenarios_experiment(config, duration=6.0, warmup=5.0)  # no scoring span
    with pytest.raises(ConfigurationError):
        scenarios_experiment(config, shapes=("sawtooth",))


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
def test_scenarios_is_registered_and_takes_a_policy():
    assert "scenarios" in EXPERIMENTS
    assert supports_policy(EXPERIMENTS["scenarios"][1])


def test_run_experiment_collects_manifest_payload(monkeypatch):
    from repro import cli

    class DummyResult:
        def render(self):
            return "dummy table"

        def manifest_payload(self):
            return {"answer": 42}

    monkeypatch.setitem(
        cli.EXPERIMENTS, "dummy", ("a stub", lambda config: DummyResult())
    )
    artifacts = {}
    text = run_experiment("dummy", seed=0, artifacts=artifacts)
    assert "dummy table" in text
    assert artifacts == {"dummy": {"answer": 42}}
    # Results without manifest_payload() simply contribute nothing.
    run_experiment("fig1", seed=0, artifacts=artifacts)
    assert set(artifacts) == {"dummy"}


def test_manifest_round_trips_artifacts(tmp_path):
    from repro.telemetry import RunManifest

    manifest = RunManifest(
        experiments=["scenarios"],
        seed=0,
        config_hash="0" * 64,
        code_fingerprint="1" * 64,
        artifacts={"scenarios": {"runs": [{"shape": "diurnal"}]}},
    )
    path = manifest.write(tmp_path / "m.json")
    loaded = RunManifest.load(path)
    assert loaded.artifacts["scenarios"]["runs"][0]["shape"] == "diurnal"


@pytest.mark.slow
def test_scenarios_cli_end_to_end_with_manifest(tmp_path, capsys):
    """`python -m repro scenarios --policy round-robin --metrics ...`
    writes the per-window SLO series into the manifest with no NaN."""
    from repro.cli import main
    from repro.telemetry import RunManifest

    manifest_path = tmp_path / "scenarios.json"
    assert (
        main(
            [
                "scenarios",
                "--policy",
                "round-robin",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--metrics",
                str(manifest_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Scenarios:" in out
    assert "pareto[" in out
    manifest = RunManifest.load(manifest_path)
    payload = manifest.artifacts["scenarios"]
    json.dumps(payload, allow_nan=False)
    assert payload["policies"] == ["round-robin"]
    assert len(payload["runs"]) == len(SCENARIO_SHAPES) * 3
    assert all(run["series"]["arrivals"] for run in payload["runs"])
    assert manifest.metrics["scenarios.racks"]["value"] == len(payload["runs"])
