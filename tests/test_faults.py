"""Tests for the fault-injection plans: parsing, resolution, actions."""

import time

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    CORRUPT,
    CORRUPT_PAYLOAD,
    CRASH,
    HANG,
    POISON,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    fire_execution_fault,
    garble_result,
    poison_cache_entry,
)


# ----------------------------------------------------------------------
# FaultSpec validation and firing
# ----------------------------------------------------------------------
def test_fault_spec_validates_kind_index_attempts():
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="explode", run_index=0)
    with pytest.raises(ConfigurationError):
        FaultSpec(kind=CRASH, run_index=-1)
    with pytest.raises(ConfigurationError):
        FaultSpec(kind=CRASH, run_index=0, attempts=())
    with pytest.raises(ConfigurationError):
        FaultSpec(kind=CRASH, run_index=0, attempts=(0,))
    with pytest.raises(ConfigurationError):
        FaultSpec(kind=HANG, run_index=0, hang_seconds=0.0)


def test_faults_fire_on_first_attempt_only_by_default():
    fault = FaultSpec(kind=CRASH, run_index=2)
    assert fault.fires_on(1)
    assert not fault.fires_on(2)  # the retry runs clean and recovers
    both = FaultSpec(kind=CRASH, run_index=2, attempts=(1, 2))
    assert both.fires_on(2)


def test_crash_fault_raises_injected_error():
    with pytest.raises(InjectedFaultError):
        fire_execution_fault(FaultSpec(kind=CRASH, run_index=0))


def test_injected_crash_is_not_a_repro_error():
    """It must classify transient, like the worker crashes it mimics."""
    from repro.errors import ReproError
    from repro.runtime import TRANSIENT, RetryPolicy

    assert not issubclass(InjectedFaultError, ReproError)
    assert RetryPolicy().classify(InjectedFaultError("x")) == TRANSIENT


def test_hang_fault_sleeps_for_its_duration():
    fault = FaultSpec(kind=HANG, run_index=0, hang_seconds=0.15)
    start = time.monotonic()
    fire_execution_fault(fault)
    assert time.monotonic() - start >= 0.15


def test_corrupt_fault_garbles_only_the_targeted_payload():
    corrupt = FaultSpec(kind=CORRUPT, run_index=0)
    assert garble_result(corrupt, {"real": 1}) == CORRUPT_PAYLOAD
    crash = FaultSpec(kind=CRASH, run_index=0)
    assert garble_result(crash, {"real": 1}) == {"real": 1}
    # And corrupt is a no-op at execution time (it acts on the result).
    fire_execution_fault(corrupt)


# ----------------------------------------------------------------------
# Plan parsing
# ----------------------------------------------------------------------
def test_parse_explicit_plan():
    plan = FaultPlan.parse("crash@1, hang@3:30, corrupt@2, poison@0")
    kinds = [(f.kind, f.run_index) for f in plan.faults]
    assert kinds == [(CRASH, 1), (HANG, 3), (CORRUPT, 2), (POISON, 0)]
    assert plan.faults[1].hang_seconds == 30.0
    assert plan.poison_targets == {0}
    assert plan.describe() == "crash@1,hang@3:30,corrupt@2,poison@0"


def test_parse_seeded_plan():
    plan = FaultPlan.parse("seed=7,crash=1,hang=2,hang_seconds=5")
    assert plan.seed == 7
    assert plan.crashes == 1
    assert plan.hangs == 2
    assert plan.hang_seconds == 5.0
    assert plan.faults == ()  # targets drawn only at resolve() time


@pytest.mark.parametrize(
    "text",
    [
        "",
        "crash",  # no @index
        "crash@x",  # non-integer index
        "boom@1",  # unknown kind
        "crash@1:30",  # :seconds on a non-hang fault
        "hang@1:fast",  # non-numeric duration
        "seed=7,explode=1",  # unknown seeded field
        "crash=1",  # seeded form without seed=
        "seed=abc",  # non-numeric seed
    ],
)
def test_parse_rejects_malformed_plans(text):
    with pytest.raises(ConfigurationError):
        FaultPlan.parse(text)


# ----------------------------------------------------------------------
# Resolution against a batch
# ----------------------------------------------------------------------
def test_explicit_plan_validates_indices_against_batch_size():
    plan = FaultPlan.parse("crash@4")
    assert plan.resolve(5) is plan
    with pytest.raises(ConfigurationError):
        plan.resolve(4)


def test_seeded_resolution_is_deterministic():
    plan = FaultPlan.seeded(7, crashes=1, hangs=1, poisons=1)
    a = plan.resolve(10)
    b = plan.resolve(10)
    assert a.faults == b.faults
    # Distinct targets, one per requested fault.
    indices = [f.run_index for f in a.faults]
    assert len(indices) == len(set(indices)) == 3
    assert all(0 <= i < 10 for i in indices)
    # A different seed picks (with near-certainty) different targets.
    other = FaultPlan.seeded(8, crashes=1, hangs=1, poisons=1).resolve(10)
    assert a.faults != other.faults


def test_seeded_resolution_depends_on_batch_size():
    plan = FaultPlan.seeded(7, crashes=2)
    small = plan.resolve(4)
    large = plan.resolve(100)
    assert all(f.run_index < 4 for f in small.faults)
    assert all(f.run_index < 100 for f in large.faults)


def test_seeded_plan_rejects_more_faults_than_runs():
    with pytest.raises(ConfigurationError):
        FaultPlan.seeded(1, crashes=3, hangs=3).resolve(5)


def test_seeded_hang_seconds_propagate_to_resolved_faults():
    plan = FaultPlan.seeded(7, hangs=1, hang_seconds=2.5).resolve(5)
    assert plan.faults[0].hang_seconds == 2.5


# ----------------------------------------------------------------------
# Lookup and cache poisoning
# ----------------------------------------------------------------------
def test_fault_for_returns_execution_faults_only():
    plan = FaultPlan.parse("crash@1,poison@2")
    assert plan.fault_for(1, attempt=1).kind == CRASH
    assert plan.fault_for(1, attempt=2) is None  # retry is clean
    assert plan.fault_for(0, attempt=1) is None
    assert plan.fault_for(2, attempt=1) is None  # poison is not executed


def test_poison_cache_entry_overwrites_a_stored_entry(tmp_path):
    from repro.experiments import CharacterizationResult
    from repro.runtime import ResultCache

    result = CharacterizationResult(
        workload="cpuburn",
        p=0.5,
        idle_quantum=0.01,
        duration=10.0,
        mean_temp=40.0,
        temp_rise=8.0,
        idle_temp=32.0,
        work=17.9,
        energy=523.25,
        details={},
    )
    cache = ResultCache(tmp_path)
    key = "a" * 64
    assert not poison_cache_entry(cache, key)  # nothing stored yet
    cache.put(key, result)
    assert poison_cache_entry(cache, key)
    # The poisoned entry must be detected, quarantined, and missed.
    assert cache.get(key) is None
    assert cache.stats.corrupt == 1
    assert cache.stats.quarantined == 1
