"""Tests for the SPECWeb-like web-serving workload."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments import Machine, fast_config
from repro.workloads import (
    QOS_GOOD,
    QOS_TOLERABLE,
    Request,
    RequestLog,
    RequestTrace,
    TraceArrivals,
    WebServer,
)


def build_server(machine, **kwargs):
    return WebServer(machine.scheduler, machine.rng.stream("web"), **kwargs)


# ----------------------------------------------------------------------
# RequestLog
# ----------------------------------------------------------------------
def test_request_response_time():
    r = Request(rid=1, arrival=2.0, service_time=0.01)
    assert r.response_time is None
    r.completed = 2.5
    assert r.response_time == pytest.approx(0.5)


def test_qos_fraction_counts_unanswered_as_failures():
    log = RequestLog(
        requests=[
            Request(1, 0.0, 0.01, completed=1.0),
            Request(2, 0.0, 0.01, completed=9.0),
            Request(3, 0.0, 0.01, completed=None),
        ]
    )
    assert log.qos_fraction(QOS_GOOD) == pytest.approx(1 / 3)
    assert log.qos_fraction(10.0) == pytest.approx(2 / 3)


def test_qos_fraction_empty_window_is_no_data():
    # A window with zero arrivals carries no data — NaN, not perfect
    # QoS (a diurnal trough must not inflate aggregates).
    assert math.isnan(RequestLog().qos_fraction(QOS_GOOD))
    log = RequestLog(requests=[Request(1, 5.0, 0.01, completed=5.1)])
    assert math.isnan(log.qos_fraction(QOS_GOOD, start=0.0, end=5.0))


def test_qos_window_filters_by_arrival():
    log = RequestLog(
        requests=[
            Request(1, 0.0, 0.01, completed=0.1),
            Request(2, 5.0, 0.01, completed=100.0),
        ]
    )
    assert log.qos_fraction(QOS_GOOD, start=0.0, end=1.0) == 1.0
    assert log.qos_fraction(QOS_GOOD, start=4.0, end=6.0) == 0.0


def test_arrival_windows_are_half_open():
    # A request at exactly a window edge belongs to the later window:
    # adjacent [0,w) and [w,2w) windows never double-count it.
    log = RequestLog(requests=[Request(1, 5.0, 0.01, completed=5.1)])
    assert log.arrived_in(0.0, 5.0) == []
    assert len(log.arrived_in(5.0, 10.0)) == 1
    total = len(log.arrived_in(0.0, 5.0)) + len(log.arrived_in(5.0, 10.0))
    assert total == 1


def test_mean_response_time():
    log = RequestLog(
        requests=[
            Request(1, 0.0, 0.01, completed=1.0),
            Request(2, 0.0, 0.01, completed=3.0),
        ]
    )
    assert log.mean_response_time() == pytest.approx(2.0)
    assert RequestLog().mean_response_time() == float("inf")


# ----------------------------------------------------------------------
# WebServer end-to-end
# ----------------------------------------------------------------------
def test_server_validates_parameters():
    machine = Machine(fast_config())
    with pytest.raises(ConfigurationError):
        build_server(machine, connections=0)
    with pytest.raises(ConfigurationError):
        build_server(machine, think_time=0.0)
    with pytest.raises(ConfigurationError):
        build_server(machine, service_mean=0.0)


def test_offered_load_in_paper_range():
    machine = Machine(fast_config())
    server = build_server(machine)
    # Paper: "approximately 15-25% load per core"; the default config
    # sits at the top of that band.
    assert 0.15 <= server.offered_load_per_core <= 0.26


def test_requests_complete_under_light_load():
    machine = Machine(fast_config())
    server = build_server(machine)
    machine.run(10.0)
    completed = [r for r in server.log.requests if r.completed is not None]
    assert len(completed) > 200  # ~40 req/s
    assert server.log.qos_fraction(QOS_GOOD, start=0.0, end=8.0) == 1.0
    # Response times are milliseconds under 25% load.
    assert server.log.mean_response_time(end=8.0) < 0.2


def test_kernel_stage_precedes_user_stage():
    machine = Machine(fast_config())
    server = build_server(machine)
    machine.run(5.0)
    kernel_work = machine.control.thread_info(server.kernel_thread).work_done
    assert kernel_work > 0
    # Kernel overhead per request matches the configured cost.
    completed = sum(1 for r in server.log.requests if r.completed is not None)
    assert kernel_work == pytest.approx(
        server.kernel_overhead * server.kernel_thread.stats.bursts_completed, rel=1e-6
    )
    assert server.kernel_thread.stats.bursts_completed >= completed


def test_arrival_process_replaces_poisson_loop():
    machine = Machine(fast_config())
    trace = RequestTrace((0.5, 1.0, 1.0, 2.5))
    server = build_server(machine, arrival_process=TraceArrivals(trace))
    machine.run(10.0)
    # Exactly the trace's arrivals, at its timestamps — and a finite
    # process simply stops generating once exhausted.
    assert [r.arrival for r in server.log.requests] == pytest.approx(list(trace.times))


def test_arrival_process_conflicts_with_external_arrivals():
    machine = Machine(fast_config())
    trace = TraceArrivals(RequestTrace((1.0,)))
    with pytest.raises(ConfigurationError):
        build_server(machine, external_arrivals=True, arrival_process=trace)


def test_stop_halts_arrivals():
    machine = Machine(fast_config())
    server = build_server(machine)
    machine.run(2.0)
    count = len(server.log.requests)
    server.stop()
    machine.run(2.0)
    assert len(server.log.requests) == count


def test_injection_degrades_latency_under_saturation():
    machine = Machine(fast_config())
    server = build_server(machine)
    machine.control.set_global_policy(0.75, 0.1)  # far past saturation
    machine.run(20.0)
    assert server.log.qos_fraction(QOS_GOOD, start=2.0, end=14.0) < 0.5


def test_injection_cools_web_workload():
    def run(p, quantum):
        machine = Machine(fast_config())
        server = build_server(machine)
        if p:
            machine.control.set_global_policy(p, quantum)
        machine.run(60.0)
        return machine.mean_core_temp_over_window(10.0), machine, server

    base_temp, base_machine, _ = run(0.0, 0.0)
    cool_temp, _, server = run(0.5, 0.05)
    assert base_temp - cool_temp > 0.5  # injection converts shallow idle
    # And QoS survives at this moderate setting.
    assert server.log.qos_fraction(QOS_TOLERABLE, start=2.0, end=50.0) > 0.95
