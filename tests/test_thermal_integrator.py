"""Tests for the exponential-Euler thermal integrator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.thermal import ThermalIntegrator, ThermalNetwork, build_network, default


def one_node_network(capacitance=2.0, conductance=0.5, ambient=20.0):
    return ThermalNetwork(
        capacitances=[capacitance],
        conductances=np.zeros((1, 1)),
        ambient_conductances=[conductance],
        ambient_temp=ambient,
    )


def constant_power(watts, n=1):
    vec = np.zeros(n)
    vec[0] = watts
    return lambda temps: vec


def test_initial_temps_default_to_ambient():
    net = one_node_network(ambient=33.0)
    integ = ThermalIntegrator(net)
    assert np.allclose(integ.temps, 33.0)


def test_matches_analytic_single_node_exponential():
    """T(t) = T_ss + (T0 - T_ss) exp(-t/RC), exact for constant power."""
    cap, cond, ambient, power = 2.0, 0.5, 20.0, 10.0
    net = one_node_network(cap, cond, ambient)
    integ = ThermalIntegrator(net, max_substep=0.05)
    integ.advance(3.0, constant_power(power))
    tau = cap / cond
    t_ss = ambient + power / cond
    expected = t_ss + (ambient - t_ss) * np.exp(-3.0 / tau)
    assert integ.temps[0] == pytest.approx(expected, rel=1e-9)


def test_result_independent_of_substep_for_constant_power():
    """Exponential Euler is exact for constant power: substep must not matter."""
    net = one_node_network()
    coarse = ThermalIntegrator(net, max_substep=1.0)
    fine = ThermalIntegrator(net, max_substep=0.001)
    coarse.advance(2.0, constant_power(7.0))
    fine.advance(2.0, constant_power(7.0))
    assert coarse.temps[0] == pytest.approx(fine.temps[0], rel=1e-10)


def test_advance_energy_accounting():
    net = one_node_network()
    integ = ThermalIntegrator(net)
    result = integ.advance(4.0, constant_power(10.0))
    assert result.energy == pytest.approx(40.0)
    assert result.average_power == pytest.approx(10.0)


def test_zero_duration_advance():
    net = one_node_network()
    integ = ThermalIntegrator(net)
    before = integ.temps.copy()
    result = integ.advance(0.0, constant_power(10.0))
    assert result.energy == 0.0
    assert np.array_equal(integ.temps, before)


def test_negative_duration_rejected():
    net = one_node_network()
    integ = ThermalIntegrator(net)
    with pytest.raises(ConfigurationError):
        integ.advance(-1.0, constant_power(1.0))


def test_invalid_substep_rejected():
    net = one_node_network()
    with pytest.raises(ConfigurationError):
        ThermalIntegrator(net, max_substep=0.0)


def test_split_advance_equals_single_advance():
    """Advancing 1 s twice equals advancing 2 s once (constant power)."""
    net = build_network(default(), num_cores=2)
    power = np.zeros(net.num_nodes)
    power[0] = 15.0
    fn = lambda temps: power
    a = ThermalIntegrator(net, max_substep=0.005)
    b = ThermalIntegrator(net, max_substep=0.005)
    a.advance(2.0, fn)
    b.advance(1.0, fn)
    b.advance(1.0, fn)
    assert np.allclose(a.temps, b.temps, atol=1e-9)


def test_converges_to_steady_state():
    net = one_node_network(capacitance=0.5, conductance=1.0, ambient=25.0)
    integ = ThermalIntegrator(net)
    integ.advance(20.0, constant_power(8.0))  # 40 time constants
    assert integ.temps[0] == pytest.approx(33.0, abs=1e-6)


def test_settle_linear_matches_steady_state():
    net = build_network(default(), num_cores=4)
    power = np.zeros(net.num_nodes)
    power[:4] = 12.0
    integ = ThermalIntegrator(net)
    settled = integ.settle(lambda temps: power)
    assert np.allclose(settled, net.steady_state(power), atol=1e-5)


def test_settle_with_temperature_feedback():
    """Settle handles convex (leakage-like) power and finds the fixed point."""
    net = one_node_network(capacitance=1.0, conductance=1.0, ambient=25.0)

    def power_fn(temps):
        return np.array([5.0 + 0.1 * (temps[0] - 25.0)])

    integ = ThermalIntegrator(net)
    settled = integ.settle(power_fn)
    # Fixed point: dT = 5 + 0.1 dT  =>  dT = 5 / 0.9.
    assert settled[0] == pytest.approx(25.0 + 5.0 / 0.9, abs=1e-4)


def test_leakage_feedback_raises_temperature():
    """Temperature-dependent power must settle hotter than constant power."""
    net = one_node_network(capacitance=1.0, conductance=1.0, ambient=25.0)
    constant = ThermalIntegrator(net)
    constant.advance(30.0, constant_power(5.0))
    feedback = ThermalIntegrator(net)
    feedback.advance(30.0, lambda t: np.array([5.0 + 0.2 * max(0.0, t[0] - 25.0)]))
    assert feedback.temps[0] > constant.temps[0] + 0.5


def test_cooling_is_fast_then_slow():
    """The die node loses most of its local rise within ~3 die taus."""
    net = build_network(default(), num_cores=4)
    power = np.zeros(net.num_nodes)
    power[0] = 15.0
    integ = ThermalIntegrator(net, max_substep=0.002)
    integ.settle(lambda t: power)
    hot = integ.temps.copy()
    zero = lambda t: np.zeros(net.num_nodes)
    integ.advance(0.1, zero)  # 100 ms of idle
    after_short = integ.temps[0]
    # The core-local component (core minus spreader) collapses quickly.
    local_before = hot[0] - hot[4]
    local_after = after_short - integ.temps[4]
    assert local_after < 0.2 * local_before


@settings(max_examples=25, deadline=None)
@given(
    power=st.floats(min_value=0.0, max_value=50.0),
    duration=st.floats(min_value=0.01, max_value=5.0),
)
def test_energy_equals_power_times_time_property(power, duration):
    net = one_node_network()
    integ = ThermalIntegrator(net)
    result = integ.advance(duration, constant_power(power))
    assert result.energy == pytest.approx(power * duration, rel=1e-9, abs=1e-12)


@settings(max_examples=25, deadline=None)
@given(power=st.floats(min_value=0.0, max_value=80.0))
def test_monotone_heating_property(power):
    """Under constant non-negative power from ambient, temperature never
    exceeds the steady state and never drops below ambient."""
    net = one_node_network()
    integ = ThermalIntegrator(net)
    t_ss = net.steady_state(np.array([power]))[0]
    for _ in range(10):
        integ.advance(0.5, constant_power(power))
        assert net.ambient_temp - 1e-9 <= integ.temps[0] <= t_ss + 1e-9
