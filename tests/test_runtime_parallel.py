"""Tests for the parallel runner: serial/parallel equivalence, ordering,
caching, and retry-once fault tolerance."""

import dataclasses

import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.experiments import fast_config
from repro.experiments.sweeps import sweep_dimetrodon
from repro.runtime import (
    ParallelRunner,
    ResultCache,
    RunSpec,
    characterization_spec,
    finite_cpuburn_spec,
    register_executor,
)

CFG = fast_config()
SHORT = 4.0  # seconds of simulated time; shapes don't matter here


def short_specs(n=3):
    return [
        characterization_spec(CFG, p=0.1 * (i + 1), idle_quantum=0.01, duration=SHORT)
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# Equivalence and ordering
# ----------------------------------------------------------------------
def test_parallel_results_bit_identical_to_serial():
    """jobs=4 must reproduce jobs=1 exactly, field for field."""
    specs = short_specs(4)
    serial = ParallelRunner(jobs=1).run(specs)
    parallel = ParallelRunner(jobs=4).run(specs)
    assert len(serial) == len(parallel) == 4
    for a, b in zip(serial, parallel):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


def test_sweep_identical_serial_vs_parallel():
    kwargs = dict(ps=(0.25, 0.75), ls_ms=(5.0, 25.0), duration=SHORT)
    serial = sweep_dimetrodon(CFG, runner=ParallelRunner(jobs=1), **kwargs)
    parallel = sweep_dimetrodon(CFG, runner=ParallelRunner(jobs=4), **kwargs)
    assert serial.baseline == parallel.baseline
    assert serial.runs == parallel.runs
    for a, b in zip(serial.points, parallel.points):
        assert a.temp_reduction == b.temp_reduction
        assert a.throughput_reduction == b.throughput_reduction
        assert a.params == b.params


def test_results_returned_in_submission_order():
    specs = short_specs(4)
    results = ParallelRunner(jobs=4).run(specs)
    for spec, result in zip(specs, results):
        assert result.p == spec.params["p"]


def test_finite_runs_through_pool():
    pairs = [(CFG, {"total_cpu": 0.5}), (CFG.with_seed(1), {"total_cpu": 0.5})]
    serial = ParallelRunner(jobs=1).run_finite_cpuburns(pairs)
    parallel = ParallelRunner(jobs=2).run_finite_cpuburns(pairs)
    assert [r.runtimes for r in serial] == [r.runtimes for r in parallel]


# ----------------------------------------------------------------------
# Caching
# ----------------------------------------------------------------------
def test_second_batch_served_entirely_from_cache(tmp_path):
    specs = short_specs(3)
    first = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
    results_first = first.run(specs)
    assert first.metrics.executed == 3
    assert first.metrics.cache_hits == 0
    assert first.metrics.cache_stores == 3

    second = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
    results_second = second.run(specs)
    assert second.metrics.executed == 0  # zero simulation runs
    assert second.metrics.cache_hits == 3
    assert results_second == results_first  # and bit-identical payloads


def test_cache_shared_between_serial_and_parallel(tmp_path):
    specs = short_specs(3)
    warm = ParallelRunner(jobs=4, cache=ResultCache(tmp_path))
    warm.run(specs)
    replay = ParallelRunner(jobs=1, cache=ResultCache(tmp_path))
    replay.run(specs)
    assert replay.metrics.executed == 0
    assert replay.metrics.cache_hits == 3


def test_different_params_do_not_collide(tmp_path):
    cache = ResultCache(tmp_path)
    runner = ParallelRunner(cache=cache)
    a = runner.run([characterization_spec(CFG, p=0.25, duration=SHORT)])[0]
    b = runner.run([characterization_spec(CFG, p=0.75, duration=SHORT)])[0]
    assert runner.metrics.executed == 2
    assert a.p == 0.25 and b.p == 0.75


# ----------------------------------------------------------------------
# Progress and metrics
# ----------------------------------------------------------------------
def test_progress_events_emitted_per_run(tmp_path):
    events = []
    specs = short_specs(2)
    ParallelRunner(cache=ResultCache(tmp_path), progress=events.append).run(specs)
    assert [e.source for e in events] == ["run", "run"]
    assert [e.done for e in events] == [1, 2]
    assert all(e.total == 2 for e in events)

    events.clear()
    ParallelRunner(cache=ResultCache(tmp_path), progress=events.append).run(specs)
    assert [e.source for e in events] == ["cache", "cache"]


def test_metrics_summary_mentions_counts(tmp_path):
    runner = ParallelRunner(cache=ResultCache(tmp_path))
    runner.run(short_specs(2))
    assert "2 executed" in runner.metrics.summary()
    assert "0 cached" in runner.metrics.summary()


# ----------------------------------------------------------------------
# Fault tolerance
# ----------------------------------------------------------------------
def _flaky(config, *, marker):
    """Fails on first invocation, succeeds once the marker exists."""
    import pathlib

    path = pathlib.Path(marker)
    if not path.exists():
        path.write_text("attempted")
        raise RuntimeError("transient worker failure")
    return 42


def _always_fail(config):
    raise RuntimeError("permanent failure")


def test_failed_run_is_retried_once_serial(tmp_path):
    register_executor("test_flaky", _flaky)
    runner = ParallelRunner(jobs=1)
    spec = RunSpec(kind="test_flaky", config=None, params={"marker": str(tmp_path / "m")})
    assert runner.run([spec]) == [42]
    assert runner.metrics.failures == 1
    assert runner.metrics.retries == 1
    assert runner.metrics.completed == 1


def test_failed_run_is_retried_once_parallel(tmp_path):
    register_executor("test_flaky", _flaky)
    flaky = RunSpec(kind="test_flaky", config=None, params={"marker": str(tmp_path / "m")})
    good = characterization_spec(CFG, p=0.5, duration=SHORT)
    # fork inherits the test-only executor registration in the workers.
    runner = ParallelRunner(jobs=2, start_method="fork")
    results = runner.run([flaky, good])
    assert results[0] == 42
    assert results[1].p == 0.5
    assert runner.metrics.retries == 1


def test_twice_failed_run_raises_with_worker_traceback():
    register_executor("test_always_fail", _always_fail)
    runner = ParallelRunner(jobs=1)
    with pytest.raises(ExecutionError, match="permanent failure"):
        runner.run([RunSpec(kind="test_always_fail", config=None)])


def test_unknown_kind_and_bad_jobs_rejected():
    with pytest.raises(ConfigurationError):
        ParallelRunner(jobs=0)
    runner = ParallelRunner()
    with pytest.raises(ExecutionError):
        # Unknown kinds fail on first execution and again on retry.
        runner.run([RunSpec(kind="no_such_kind", config=None)])


def test_empty_batch_is_a_noop():
    assert ParallelRunner(jobs=4).run([]) == []
