"""The example scripts must at least parse and import-check cleanly.

Full executions live outside the unit suite (they simulate 100 s each);
this guards against the examples rotting as the API evolves.
"""

import ast
import pathlib

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    # Every example is a runnable script with a main() guard.
    assert any(
        isinstance(node, ast.FunctionDef) and node.name == "main"
        for node in tree.body
    ), f"{path.name} lacks a main()"
    assert 'if __name__ == "__main__":' in path.read_text()


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every repro import in an example must resolve against the API."""
    import importlib

    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} does not exist"
                )


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_docstring(path):
    tree = ast.parse(path.read_text())
    doc = ast.get_docstring(tree)
    assert doc and len(doc) > 40, f"{path.name} needs a real docstring"
