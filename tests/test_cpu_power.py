"""Tests for the power model and its calibration targets."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import CState, PowerModel, PowerParams, xeon_e5520_table
from repro.errors import ConfigurationError


@pytest.fixture
def model():
    return PowerModel(PowerParams(), xeon_e5520_table())


def test_leakage_at_reference(model):
    point = model.dvfs.max_point
    assert model.leakage(model.params.leak_ref_temp, point) == pytest.approx(
        model.params.core_leakage_ref
    )


def test_leakage_grows_exponentially(model):
    point = model.dvfs.max_point
    t0 = model.params.leak_ref_temp
    slope = model.params.leak_t_slope
    assert model.leakage(t0 + 0.5 * slope, point) == pytest.approx(
        math.exp(0.5) * model.params.core_leakage_ref
    )


def test_leakage_saturates_beyond_cap(model):
    """Far above the calibrated range the exponential is capped, so
    configurations hotter than the paper's envelope stay bounded."""
    point = model.dvfs.max_point
    t0 = model.params.leak_ref_temp
    slope = model.params.leak_t_slope
    cap = model.params.leak_exp_cap
    at_cap = model.leakage(t0 + cap * slope, point)
    assert model.leakage(t0 + 10 * slope, point) == pytest.approx(at_cap)
    assert at_cap == pytest.approx(math.exp(cap) * model.params.core_leakage_ref)


def test_leakage_scales_with_voltage(model):
    hot = model.params.leak_ref_temp
    low = model.dvfs.min_point
    high = model.dvfs.max_point
    ratio = model.leakage(hot, low) / model.leakage(hot, high)
    assert ratio == pytest.approx(low.voltage / high.voltage)


def test_dynamic_scales_with_activity(model):
    point = model.dvfs.max_point
    full = model.dynamic(1.0, point)
    half = model.dynamic(0.5, point)
    assert half == pytest.approx(0.5 * full)
    assert full == pytest.approx(model.params.core_dynamic_max)


def test_dynamic_rejects_negative_activity(model):
    with pytest.raises(ConfigurationError):
        model.dynamic(-0.1, model.dvfs.max_point)


def test_cstate_power_ordering(model):
    """C0 > C1 > C1E at any given temperature."""
    point = model.dvfs.max_point
    for temp in (35.0, 45.0, 58.0):
        c0 = model.core_power(CState.C0, temp, point, activity=1.0)
        c1 = model.core_power(CState.C1, temp, point)
        c1e = model.core_power(CState.C1E, temp, point)
        assert c0 > c1 > c1e > 0.0


def test_c1e_leakage_factor(model):
    point = model.dvfs.max_point
    c1e = model.core_power(CState.C1E, 50.0, point)
    assert c1e == pytest.approx(
        model.params.c1e_leakage_factor * model.leakage(50.0, point)
    )


def test_package_power_calibration_cpuburn(model):
    """All-core cpuburn power must land near the paper's ~72 W."""
    power = model.package_power_estimate(4, 4, temp=55.0, point=model.dvfs.max_point)
    assert 62.0 < power < 82.0


def test_package_power_calibration_idle(model):
    """All-idle (C1E) package power must land near the paper's ~16-20 W."""
    power = model.package_power_estimate(0, 4, temp=34.0, point=model.dvfs.max_point)
    assert 13.0 < power < 21.0


def test_package_power_staircase(model):
    """Power steps monotonically with the number of active cores
    (Figure 1's four intermediate levels)."""
    point = model.dvfs.max_point
    levels = [
        model.package_power_estimate(k, 4, temp=50.0, point=point) for k in range(5)
    ]
    steps = [b - a for a, b in zip(levels, levels[1:])]
    assert all(s > 5.0 for s in steps)
    # Steps are equal: each core contributes the same delta.
    assert max(steps) - min(steps) < 1e-9


def test_dvfs_reduces_active_power(model):
    low = model.dvfs.min_point
    high = model.dvfs.max_point
    p_low = model.core_power(CState.C0, 50.0, low, activity=1.0)
    p_high = model.core_power(CState.C0, 50.0, high, activity=1.0)
    # Dynamic power scales f·V² but the leakage share only scales ~V,
    # so the total lands well below proportional-to-frequency.
    assert p_low < 0.80 * p_high
    dyn_low = model.dynamic(1.0, low)
    dyn_high = model.dynamic(1.0, high)
    assert dyn_low < 0.60 * dyn_high


def test_with_leakage_slope_ablation():
    params = PowerParams()
    modified = params.with_leakage_slope(30.0)
    assert modified.leak_t_slope == 30.0
    assert modified.core_dynamic_max == params.core_dynamic_max


def test_invalid_params_rejected():
    with pytest.raises(ConfigurationError):
        PowerParams(core_dynamic_max=0.0)
    with pytest.raises(ConfigurationError):
        PowerParams(leak_t_slope=-1.0)
    with pytest.raises(ConfigurationError):
        PowerParams(c1e_leakage_factor=1.5)


@settings(max_examples=40, deadline=None)
@given(
    temp=st.floats(min_value=20.0, max_value=90.0),
    activity=st.floats(min_value=0.0, max_value=1.0),
)
def test_power_positive_property(temp, activity):
    model = PowerModel(PowerParams(), xeon_e5520_table())
    for state in CState:
        power = model.core_power(state, temp, model.dvfs.max_point, activity=activity)
        assert power > 0.0


@settings(max_examples=40, deadline=None)
@given(t1=st.floats(20.0, 80.0), t2=st.floats(20.0, 80.0))
def test_leakage_monotone_in_temperature_property(t1, t2):
    model = PowerModel(PowerParams(), xeon_e5520_table())
    point = model.dvfs.max_point
    low, high = min(t1, t2), max(t1, t2)
    assert model.leakage(low, point) <= model.leakage(high, point) + 1e-12
