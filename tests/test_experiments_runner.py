"""Tests for characterization/finite runs and sweeps.

These use shortened durations: the shapes they assert are
steady-state-dominated and survive the compression.
"""

import pytest

from repro.core.pareto import pareto_boundary
from repro.cpu import TccSetting, xeon_e5520_table
from repro.experiments import fast_config, run_characterization, run_finite_cpuburn
from repro.experiments.sweeps import sweep_dimetrodon, sweep_tcc, sweep_vfs

CFG = fast_config()
SHORT = 40.0  # seconds of simulated time, enough for fast-mode steady state


def short_run(**kwargs):
    return run_characterization(CFG, duration=SHORT, **kwargs)


# ----------------------------------------------------------------------
# Characterization
# ----------------------------------------------------------------------
def test_baseline_characterization():
    result = short_run()
    assert result.p == 0.0
    assert result.workload == "cpuburn"
    assert result.temp_rise > 12.0
    assert result.work == pytest.approx(4 * SHORT, rel=0.01)
    assert result.details["injection_fraction"] == 0.0


def test_injection_reduces_both_temp_and_work():
    base = short_run()
    injected = short_run(p=0.5, idle_quantum=0.025, deterministic=True)
    assert injected.temp_rise < base.temp_rise
    assert injected.work < base.work
    # Idle fraction ~20%: work reduced accordingly.
    assert injected.work == pytest.approx(base.work * 0.8, rel=0.03)


def test_spec_workload_runs_cooler():
    burn = short_run()
    astar = short_run(workload="astar")
    assert astar.temp_rise < burn.temp_rise
    ratio = astar.temp_rise / burn.temp_rise
    # Steady-state calibration target is 0.717 (Table 1); a short run
    # truncates the feedback-dominated tail of cpuburn's transient, so
    # the measured ratio biases a little high.
    assert 0.70 < ratio < 0.88


def test_vfs_operating_point_run():
    base = short_run()
    slow = short_run(operating_point=xeon_e5520_table().min_point)
    assert slow.work == pytest.approx(base.work * 0.708, rel=0.02)
    assert slow.temp_rise < base.temp_rise


def test_tcc_run():
    base = short_run()
    gated = short_run(tcc=TccSetting(duty=0.5))
    assert gated.work == pytest.approx(base.work * 0.5, rel=0.02)
    assert gated.temp_rise < base.temp_rise


# ----------------------------------------------------------------------
# Finite runs
# ----------------------------------------------------------------------
def test_finite_run_baseline():
    result = run_finite_cpuburn(CFG, total_cpu=2.0)
    assert result.mean_runtime == pytest.approx(2.0, rel=0.01)
    assert result.mean_schedules == pytest.approx(20.0)
    assert len(result.runtimes) == 4


def test_finite_run_with_injection_slower():
    base = run_finite_cpuburn(CFG, total_cpu=2.0)
    injected = run_finite_cpuburn(
        CFG, total_cpu=2.0, p=0.5, idle_quantum=0.05, deterministic=True
    )
    assert injected.mean_runtime > base.mean_runtime * 1.3


def test_finite_run_window_extension():
    result = run_finite_cpuburn(CFG, total_cpu=1.0, window=5.0)
    assert result.window == 5.0
    assert result.energy > 0


def test_finite_run_rejects_bad_input():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        run_finite_cpuburn(CFG, total_cpu=0.0)


def test_characterization_rejects_non_positive_duration():
    """An explicit duration=0.0 is an error, not a request for the
    config default."""
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        run_characterization(CFG, duration=0.0)
    with pytest.raises(ConfigurationError):
        run_characterization(CFG, duration=-5.0)


def test_characterization_none_duration_uses_config_default():
    cfg = CFG.scaled(characterization_duration=SHORT)
    result = run_characterization(cfg)
    assert result.duration == SHORT


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
def test_dimetrodon_sweep_structure():
    sweep = sweep_dimetrodon(
        CFG, ps=(0.25, 0.75), ls_ms=(5.0, 50.0), duration=SHORT
    )
    assert len(sweep.points) == 4
    assert sweep.technique == "dimetrodon"
    for point in sweep.points:
        assert 0.0 <= point.temp_reduction <= 1.0
        assert 0.0 <= point.throughput_reduction <= 1.0
        assert {"p", "L_ms"} == set(point.params)


def test_dimetrodon_sweep_monotone_in_p():
    sweep = sweep_dimetrodon(CFG, ps=(0.25, 0.75), ls_ms=(25.0,), duration=SHORT)
    low, high = sweep.points
    assert high.temp_reduction > low.temp_reduction
    assert high.throughput_reduction > low.throughput_reduction


def test_vfs_sweep():
    table = xeon_e5520_table()
    sweep = sweep_vfs(CFG, points=[table.min_point], duration=SHORT)
    point = sweep.points[0]
    assert point.throughput_reduction == pytest.approx(0.292, abs=0.02)
    assert point.temp_reduction > 0.35


def test_tcc_sweep_is_sub_proportional():
    sweep = sweep_tcc(CFG, duties=[TccSetting(duty=0.5)], duration=SHORT)
    point = sweep.points[0]
    # p4tcc at 50% duty: throughput halves, temperature drops less.
    assert point.throughput_reduction == pytest.approx(0.5, abs=0.02)
    assert point.temp_reduction < point.throughput_reduction + 0.02


def test_pareto_of_sweep_prefers_short_quanta():
    """On the boundary at matched throughput, shorter L wins (Fig. 3)."""
    sweep = sweep_dimetrodon(CFG, ps=(0.5,), ls_ms=(5.0, 100.0), duration=SHORT)
    short, long = sweep.points
    assert short.params["L_ms"] == 5.0
    assert short.efficiency > long.efficiency
