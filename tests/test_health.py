"""Tests for the thermal health monitoring layer.

The Hypothesis property tests pin the hysteresis semantics the docs
promise: events fire only on state *transitions*, a latch re-arms only
below ``threshold − hysteresis``, the warning and critical latches are
independent, per-state dwell times partition the observed span, and the
since-boot flag set grows monotonically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.health import (
    AlertEvent,
    HealthMonitor,
    HealthParams,
    HealthState,
    HealthThresholds,
    HealthTracker,
    HysteresisClassifier,
    ThresholdLatch,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.telemetry.registry import isolated
from repro.thermal.sensors import SensorBank

#: Reference thresholds used throughout: warning 35, critical 40, 2 °C
#: hysteresis (re-arm at <33 and <38 respectively).
THRESHOLDS = HealthThresholds(warning=35.0, critical=40.0, hysteresis=2.0)

#: Readings spanning well below re-arm to well above critical.
temps = st.floats(min_value=20.0, max_value=55.0, allow_nan=False)
temp_seqs = st.lists(temps, min_size=1, max_size=60)


# ======================================================================
# ThresholdLatch / HysteresisClassifier
# ======================================================================
def test_latch_engages_at_threshold_and_rearms_below_band():
    latch = ThresholdLatch(40.0, 2.0)
    assert not latch.update(39.9)
    assert latch.update(40.0)  # >= threshold engages
    assert latch.update(38.0)  # inside the band: still engaged
    assert latch.update(39.9)
    assert not latch.update(37.9)  # < threshold - hysteresis re-arms
    assert latch.update(40.5)


@given(temp_seqs)
@settings(max_examples=200, deadline=None)
def test_latch_rearm_only_below_threshold_minus_hysteresis(seq):
    """Once engaged, the latch stays engaged for every reading in
    ``[threshold − hysteresis, ∞)`` — no chatter inside the band."""
    latch = ThresholdLatch(40.0, 2.0)
    previously_engaged = False
    for value in seq:
        engaged = latch.update(value)
        if previously_engaged and value >= 40.0 - 2.0:
            assert engaged
        if value >= 40.0:
            assert engaged
        if value < 40.0 - 2.0:
            assert not engaged
        previously_engaged = engaged


@given(temp_seqs)
@settings(max_examples=200, deadline=None)
def test_classifier_latches_are_independent(seq):
    """The classifier is exactly two independent latches: its state
    always equals what two standalone latches fed the same readings
    say (warning can stay engaged after critical re-arms and vice
    versa — the bands never interact)."""
    classifier = HysteresisClassifier(THRESHOLDS)
    warning = ThresholdLatch(THRESHOLDS.warning, THRESHOLDS.hysteresis)
    critical = ThresholdLatch(THRESHOLDS.critical, THRESHOLDS.hysteresis)
    for value in seq:
        state = classifier.classify(value)
        w, c = warning.update(value), critical.update(value)
        if c:
            assert state is HealthState.CRITICAL
        elif w:
            assert state is HealthState.WARNING
        else:
            assert state is HealthState.NOMINAL
        engaged = classifier.engaged_states()
        assert (HealthState.WARNING in engaged) == w
        assert (HealthState.CRITICAL in engaged) == c


def test_thresholds_validate():
    with pytest.raises(ConfigurationError):
        HealthThresholds(warning=40.0, critical=40.0)
    with pytest.raises(ConfigurationError):
        HealthThresholds(warning=35.0, critical=40.0, hysteresis=-1.0)
    assert THRESHOLDS.to_dict() == {
        "warning_c": 35.0,
        "critical_c": 40.0,
        "hysteresis_c": 2.0,
    }


# ======================================================================
# HealthTracker properties
# ======================================================================
@given(temp_seqs)
@settings(max_examples=200, deadline=None)
def test_events_only_on_transitions(seq):
    """observe() returns an event iff the state changed, and the event
    log chains exactly (each event's ``previous`` is the prior state)."""
    tracker = HealthTracker(THRESHOLDS)
    state = HealthState.NOMINAL
    returned = 0
    for i, value in enumerate(seq):
        event = tracker.observe(float(i + 1), value)
        if event is None:
            assert tracker.state is state
        else:
            returned += 1
            assert event.previous is state
            assert event.state is not state
            assert event.state is tracker.state
            state = event.state
    assert len(tracker.events) == returned
    for prev, nxt in zip(tracker.events, tracker.events[1:]):
        assert nxt.previous is prev.state


@given(temp_seqs, st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=60))
@settings(max_examples=200, deadline=None)
def test_dwell_times_partition_elapsed_span(seq, gaps):
    """After finalize, per-state dwell sums to exactly the observed
    span, whatever the (irregular) observation times were."""
    tracker = HealthTracker(THRESHOLDS, start_time=0.0)
    now = 0.0
    for value, gap in zip(seq, gaps):
        now += gap
        tracker.observe(now, value)
    end = now + 1.5
    tracker.finalize(end)
    tracker.finalize(end)  # idempotent
    assert sum(tracker.dwell.values()) == pytest.approx(end, abs=1e-9)
    assert tracker.elapsed == pytest.approx(end, abs=1e-9)
    assert tracker.time_in_warning == tracker.dwell[HealthState.WARNING]
    assert tracker.time_in_critical == tracker.dwell[HealthState.CRITICAL]


@given(temp_seqs)
@settings(max_examples=200, deadline=None)
def test_since_boot_flags_are_monotone(seq):
    """The since-boot set only ever grows, and a critical reading sets
    the warning flag too (severity is cumulative)."""
    tracker = HealthTracker(THRESHOLDS)
    seen = frozenset()
    for i, value in enumerate(seq):
        tracker.observe(float(i + 1), value)
        assert tracker.since_boot >= seen
        seen = tracker.since_boot
        if value >= THRESHOLDS.critical:
            assert HealthState.CRITICAL in seen
            assert HealthState.WARNING in seen
        if value >= THRESHOLDS.warning:
            assert HealthState.WARNING in seen


# ======================================================================
# HealthTracker scripted behaviour
# ======================================================================
def test_tracker_scripted_episode():
    """One warning→critical→recovery episode with exact bookkeeping."""
    t = HealthTracker(THRESHOLDS, machine=3, start_time=0.0)
    assert t.observe(1.0, 30.0) is None  # nominal
    warn = t.observe(2.0, 36.0)  # -> warning
    assert warn is not None and warn.state is HealthState.WARNING
    assert warn.escalation and warn.machine == 3
    assert t.observe(3.0, 39.0) is None  # still warning (below critical)
    crit = t.observe(4.0, 41.0)  # -> critical
    assert crit.state is HealthState.CRITICAL and crit.escalation
    assert t.observe(5.0, 38.5) is None  # inside critical band: holds
    back = t.observe(6.0, 36.0)  # re-armed critical, warning holds
    assert back.state is HealthState.WARNING and not back.escalation
    clear = t.observe(7.0, 30.0)  # -> nominal
    assert clear.state is HealthState.NOMINAL and not clear.escalation
    t.finalize(8.0)

    assert t.warning_alerts == 1
    assert t.critical_alerts == 1
    assert t.alerts == 2
    assert t.recoveries == 2
    assert t.worst_excursion == 41.0
    assert t.since_boot == frozenset({HealthState.WARNING, HealthState.CRITICAL})
    # Dwell: nominal [0,2)+[7,8), warning [2,4)+[6,7), critical [4,6).
    assert t.dwell[HealthState.NOMINAL] == pytest.approx(3.0)
    assert t.dwell[HealthState.WARNING] == pytest.approx(3.0)
    assert t.dwell[HealthState.CRITICAL] == pytest.approx(2.0)

    summary = t.summary()
    assert summary["alerts"] == {
        "warning": 1,
        "critical": 1,
        "recoveries": 2,
        "events": 4,
    }
    assert summary["since_boot"] == {"warning": True, "critical": True}
    assert summary["worst_excursion_c"] == 41.0
    assert summary["state"] == "nominal"


def test_tracker_rejects_time_going_backwards():
    t = HealthTracker(THRESHOLDS)
    t.observe(2.0, 30.0)
    with pytest.raises(SimulationError):
        t.observe(1.0, 30.0)
    with pytest.raises(SimulationError):
        t.finalize(1.0)


def test_alert_event_escalation_flag():
    up = AlertEvent(1.0, 0, HealthState.CRITICAL, HealthState.WARNING, 41.0)
    down = AlertEvent(2.0, 0, HealthState.WARNING, HealthState.CRITICAL, 37.0)
    assert up.escalation and not down.escalation


# ======================================================================
# HealthParams
# ======================================================================
def test_params_validation_and_thresholds():
    with pytest.raises(ConfigurationError):
        HealthParams(warning_rise=5.0, critical_rise=4.0)
    with pytest.raises(ConfigurationError):
        HealthParams(period=0.0)
    with pytest.raises(ConfigurationError):
        HealthParams(hysteresis=-0.5)
    with pytest.raises(ConfigurationError):
        HealthParams(quantization=-1.0)
    params = HealthParams()
    thresholds = params.thresholds(30.0)
    assert thresholds.warning == pytest.approx(33.5)
    assert thresholds.critical == pytest.approx(35.5)
    assert params.to_dict()["period_s"] == 1.0


def test_params_noisy_sensor_bank_needs_rng():
    params = HealthParams(noisy=True)
    with pytest.raises(ConfigurationError):
        params.sensor_bank([0, 1])
    rng = RngRegistry(0).stream("health-sensors")
    bank = params.sensor_bank([0, 1], rng)
    assert bank.read(np.array([30.2, 31.7])).shape == (2,)


def test_quantized_sensor_bank_is_deterministic():
    bank = SensorBank.quantized([0, 1], quantization=1.0)
    first = bank.read(np.array([30.4, 31.6]))
    second = bank.read(np.array([30.4, 31.6]))
    assert np.array_equal(first, second)
    assert np.array_equal(first, np.array([30.0, 32.0]))


# ======================================================================
# HealthMonitor (simulated daemon)
# ======================================================================
def _monitored_sim(temps_by_second, *, period=1.0):
    """A bare simulator whose 'machine' replays a scripted temperature
    trajectory (°C at t = 1, 2, ...)."""
    sim = Simulator()
    current = {"temps": np.array([temps_by_second[0]])}

    def step(i):
        def apply():
            current["temps"] = np.array([temps_by_second[i]])

        return apply

    for i in range(len(temps_by_second)):
        # Update just before the monitor samples at t = i + 1.
        sim.schedule(i + 1 - 0.5 * period, step(i))
    monitor = HealthMonitor(
        sim,
        SensorBank.ideal([0]),
        lambda: current["temps"],
        thresholds=THRESHOLDS,
        period=period,
        machine=7,
    )
    return sim, monitor


def test_monitor_emits_state_change_events_only():
    trajectory = [30.0, 36.0, 41.0, 41.0, 36.0, 30.0, 30.0]
    with isolated() as registry:
        sim, monitor = _monitored_sim(trajectory)
        events = []
        monitor.subscribe(events.append)
        samples = []
        monitor.add_sample_listener(lambda now, temp, state: samples.append(state))
        sim.run(until=len(trajectory) + 0.25)
        monitor.stop()
        monitor.finalize()

        assert [e.state for e in events] == [
            HealthState.WARNING,
            HealthState.CRITICAL,
            HealthState.WARNING,
            HealthState.NOMINAL,
        ]
        assert all(e.machine == 7 for e in events)
        assert events == monitor.events
        assert len(samples) == len(trajectory)
        assert monitor.state is HealthState.NOMINAL
        # Telemetry: additive counters in the shared health scope.
        assert registry.value("health.samples") == len(trajectory)
        assert registry.value("health.alerts") == 2
        assert registry.value("health.alerts.warning") == 1
        assert registry.value("health.alerts.critical") == 1
        assert registry.value("health.recoveries") == 2


def test_monitor_reads_through_quantized_sensors():
    """The monitor classifies the quantised reading, not the truth:
    34.6 °C rounds to 35 °C and trips the warning threshold."""
    sim = Simulator()
    monitor = HealthMonitor(
        sim,
        SensorBank.quantized([0], quantization=1.0),
        lambda: np.array([34.6]),
        thresholds=THRESHOLDS,
    )
    sim.run(until=1.5)
    monitor.stop()
    assert monitor.state is HealthState.WARNING
    assert monitor.tracker.worst_excursion == 35.0


def test_monitor_stop_halts_sampling():
    sim = Simulator()
    monitor = HealthMonitor(
        sim,
        SensorBank.ideal([0]),
        lambda: np.array([30.0]),
        thresholds=THRESHOLDS,
    )
    sim.run(until=2.5)
    monitor.stop()
    sim.run(until=10.0)
    assert monitor.tracker.samples == 2


def test_monitor_rejects_bad_period():
    with pytest.raises(ConfigurationError):
        HealthMonitor(
            Simulator(),
            SensorBank.ideal([0]),
            lambda: np.array([30.0]),
            thresholds=THRESHOLDS,
            period=0.0,
        )
