"""Tests for CPU affinity, priority-scaled policies, and per-core DVFS."""

import pytest

from repro.experiments import Machine, fast_config
from repro.workloads import CpuBurn, FiniteCpuBurn


# ----------------------------------------------------------------------
# Affinity
# ----------------------------------------------------------------------
def test_affine_thread_runs_only_on_its_core():
    machine = Machine(fast_config())
    thread = machine.scheduler.spawn(CpuBurn(), name="pinned")
    thread.affinity = 2
    seen_cores = set()
    machine.scheduler.event_listeners.append(
        lambda e: seen_cores.add(e.core) if e.kind == "run" and e.tid == thread.tid else None
    )
    machine.run(3.0)
    assert seen_cores == {2}


def test_unaffine_threads_fill_other_cores():
    machine = Machine(fast_config())
    pinned = machine.scheduler.spawn(CpuBurn())
    pinned.affinity = 0
    others = [machine.scheduler.spawn(FiniteCpuBurn(1.0)) for _ in range(3)]
    machine.run(2.0)
    # The three free threads finished in parallel on cores 1-3.
    assert all(t.stats.exit_time < 1.05 for t in others)


def test_affinity_to_busy_core_waits():
    machine = Machine(fast_config())
    hog = machine.scheduler.spawn(CpuBurn())
    hog.affinity = 0
    late = machine.scheduler.spawn(FiniteCpuBurn(0.5), name="late")
    late.affinity = 0
    machine.run(3.0)
    # Both share core 0: the finite thread takes ~2x its work to finish.
    assert late.stats.exit_time is None or late.stats.exit_time > 0.9
    # And cores 1-3 never ran anything.
    busy = sum(core.residency.get_busy() if hasattr(core, "get_busy") else 0 for core in [])
    for core in machine.chip.cores[1:]:
        from repro.cpu import CState

        assert core.residency.get(CState.C0) == 0.0


# ----------------------------------------------------------------------
# Priority-scaled policies
# ----------------------------------------------------------------------
def test_priority_scaling_maps_nice_to_p():
    machine = Machine(fast_config())
    low = machine.scheduler.spawn(CpuBurn(), name="background")
    low.nice = 19
    normal = machine.scheduler.spawn(CpuBurn(), name="normal")
    high = machine.scheduler.spawn(CpuBurn(), name="critical")
    high.nice = -19
    machine.control.apply_priority_scaled_policy(
        [low, normal, high], base_p=0.4, idle_quantum=0.01, deterministic=True
    )
    table = machine.injector.table
    p_low = table.lookup(low.tid).p
    p_norm = table.lookup(normal.tid).p
    p_high = table.lookup(high.tid).p
    assert p_low > p_norm > p_high
    assert p_norm == pytest.approx(0.4)
    assert p_low <= 0.97


def test_priority_scaling_behavioural():
    machine = Machine(fast_config())
    background = machine.scheduler.spawn(FiniteCpuBurn(0.5), name="bg")
    background.nice = 19
    critical = machine.scheduler.spawn(FiniteCpuBurn(0.5), name="crit")
    critical.nice = -19
    machine.control.apply_priority_scaled_policy(
        [background, critical], base_p=0.5, idle_quantum=0.05, deterministic=True
    )
    while any(t.alive for t in (background, critical)) and machine.now < 30:
        machine.run(0.5)
    assert critical.stats.exit_time < background.stats.exit_time
    assert critical.stats.injected_count < background.stats.injected_count


# ----------------------------------------------------------------------
# Per-core DVFS vs per-thread injection (the §2.1 comparison)
# ----------------------------------------------------------------------
def test_per_core_dvfs_slows_only_that_core():
    machine = Machine(fast_config())
    slow = machine.scheduler.spawn(FiniteCpuBurn(1.0), name="slowed")
    slow.affinity = 0
    fast = machine.scheduler.spawn(FiniteCpuBurn(1.0), name="fast")
    fast.affinity = 1
    machine.chip.set_core_operating_point(0, machine.chip.dvfs_table.min_point)
    machine.run(3.0)
    assert fast.stats.exit_time == pytest.approx(1.0, abs=0.02)
    assert slow.stats.exit_time == pytest.approx(1.0 / 0.708, abs=0.05)


def test_per_core_dvfs_cools_like_per_thread_injection():
    """Hypothetical per-core DVFS and per-thread injection both spare
    the co-located cool thread; injection needs no special hardware."""

    def run(mode):
        machine = Machine(fast_config())
        hot = machine.scheduler.spawn(CpuBurn(), name="hot")
        hot.affinity = 0
        cool = machine.scheduler.spawn(FiniteCpuBurn(20.0), name="cool")
        cool.affinity = 1
        if mode == "dvfs":
            machine.chip.set_core_operating_point(0, machine.chip.dvfs_table.min_point)
        elif mode == "inject":
            machine.control.set_thread_policy(hot, 0.6, 0.025, deterministic=True)
        machine.run(60.0)
        return machine.mean_core_temp_over_window(10.0), cool.stats.work_done

    base_temp, base_cool = run("none")
    dvfs_temp, dvfs_cool = run("dvfs")
    inject_temp, inject_cool = run("inject")
    # Both techniques cool the system...
    assert dvfs_temp < base_temp - 0.5
    assert inject_temp < base_temp - 0.5
    # ...while the cool thread's progress is untouched in all runs.
    assert dvfs_cool == pytest.approx(base_cool, rel=0.01)
    assert inject_cool == pytest.approx(base_cool, rel=0.01)
