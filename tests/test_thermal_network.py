"""Unit and property tests for the RC thermal network."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.thermal import ThermalNetwork, ThermalParams, build_network, default


def two_node_network(ambient=25.0):
    """A core (node 0) coupled to a sink (node 1) coupled to ambient."""
    conductances = np.array([[0.0, 2.0], [2.0, 0.0]])
    return ThermalNetwork(
        capacitances=[0.1, 10.0],
        conductances=conductances,
        ambient_conductances=[0.0, 4.0],
        ambient_temp=ambient,
        node_names=["core", "sink"],
    )


def test_zero_power_steady_state_is_ambient():
    net = two_node_network(ambient=30.0)
    temps = net.steady_state(np.zeros(2))
    assert np.allclose(temps, 30.0)


def test_steady_state_matches_hand_computation():
    net = two_node_network(ambient=25.0)
    # 8 W into the core: sink rise = 8/4 = 2 K, core rise = 2 + 8/2 = 6 K.
    temps = net.steady_state(np.array([8.0, 0.0]))
    assert temps[1] == pytest.approx(27.0)
    assert temps[0] == pytest.approx(31.0)


def test_steady_state_superposition():
    net = two_node_network()
    t1 = net.steady_state(np.array([5.0, 0.0])) - net.ambient_temp
    t2 = net.steady_state(np.array([0.0, 3.0])) - net.ambient_temp
    t12 = net.steady_state(np.array([5.0, 3.0])) - net.ambient_temp
    assert np.allclose(t1 + t2, t12)


def test_thermal_resistance_symmetry():
    net = build_network(default(), num_cores=4)
    # Reciprocity of the resistance matrix for a symmetric Laplacian.
    for i in range(net.num_nodes):
        for j in range(net.num_nodes):
            assert net.thermal_resistance(i, j) == pytest.approx(
                net.thermal_resistance(j, i)
            )


def test_node_index_lookup():
    net = build_network(default(), num_cores=2)
    assert net.node_index("core0") == 0
    assert net.node_index("spreader") == 2
    assert net.node_index("sink") == 3
    with pytest.raises(ConfigurationError):
        net.node_index("nope")


def test_time_constants_sorted_and_positive():
    net = build_network(default(), num_cores=4)
    taus = net.time_constants()
    assert np.all(taus > 0)
    assert np.all(np.diff(taus) >= 0)


def test_default_network_has_separated_time_scales():
    """Die must cool orders of magnitude faster than the heatsink."""
    net = build_network(default(), num_cores=4)
    taus = net.time_constants()
    assert taus[0] < 0.1  # die-scale: tens of ms
    assert taus[-1] > 30.0  # sink-scale: tens of seconds


def test_propagator_cached():
    net = two_node_network()
    a = net.propagator(0.005)
    b = net.propagator(0.005)
    assert a is b


def test_propagator_semigroup_property():
    """expm(A(h1+h2)) == expm(A h1) @ expm(A h2)."""
    net = two_node_network()
    e1 = net.propagator(0.003)
    e2 = net.propagator(0.007)
    e3 = net.propagator(0.010)
    assert np.allclose(e1 @ e2, e3)


def test_rejects_asymmetric_conductances():
    with pytest.raises(ConfigurationError):
        ThermalNetwork(
            capacitances=[1.0, 1.0],
            conductances=np.array([[0.0, 1.0], [2.0, 0.0]]),
            ambient_conductances=[1.0, 0.0],
            ambient_temp=25.0,
        )


def test_rejects_nonpositive_capacitance():
    with pytest.raises(ConfigurationError):
        ThermalNetwork(
            capacitances=[0.0, 1.0],
            conductances=np.zeros((2, 2)),
            ambient_conductances=[1.0, 1.0],
            ambient_temp=25.0,
        )


def test_rejects_no_ambient_path():
    with pytest.raises(ConfigurationError):
        ThermalNetwork(
            capacitances=[1.0],
            conductances=np.zeros((1, 1)),
            ambient_conductances=[0.0],
            ambient_temp=25.0,
        )


def test_rejects_negative_conductance():
    with pytest.raises(ConfigurationError):
        ThermalNetwork(
            capacitances=[1.0, 1.0],
            conductances=np.array([[0.0, -1.0], [-1.0, 0.0]]),
            ambient_conductances=[1.0, 0.0],
            ambient_temp=25.0,
        )


def test_rejects_bad_shapes():
    with pytest.raises(ConfigurationError):
        ThermalNetwork(
            capacitances=[1.0, 1.0],
            conductances=np.zeros((3, 3)),
            ambient_conductances=[1.0, 1.0],
            ambient_temp=25.0,
        )
    with pytest.raises(ConfigurationError):
        ThermalNetwork(
            capacitances=[1.0, 1.0],
            conductances=np.zeros((2, 2)),
            ambient_conductances=[1.0],
            ambient_temp=25.0,
        )


def test_build_network_node_order():
    net = build_network(default(), num_cores=3)
    assert net.node_names == ["core0", "core1", "core2", "spreader", "sink"]


def test_build_network_rejects_zero_cores():
    with pytest.raises(ConfigurationError):
        build_network(default(), num_cores=0)


@settings(max_examples=30, deadline=None)
@given(
    power=st.floats(min_value=0.0, max_value=200.0),
    ambient=st.floats(min_value=0.0, max_value=50.0),
)
def test_steady_state_above_ambient_property(power, ambient):
    """Any non-negative power leaves every node at or above ambient."""
    params = ThermalParams(room_temp=ambient, case_air_rise=0.0)
    net = build_network(params, num_cores=4)
    vec = np.zeros(net.num_nodes)
    vec[0] = power
    temps = net.steady_state(vec)
    assert np.all(temps >= ambient - 1e-9)


@settings(max_examples=30, deadline=None)
@given(power=st.floats(min_value=0.1, max_value=100.0))
def test_source_node_is_hottest_property(power):
    """The node receiving all the power is the hottest node."""
    net = build_network(default(), num_cores=4)
    vec = np.zeros(net.num_nodes)
    vec[2] = power
    temps = net.steady_state(vec)
    assert np.argmax(temps) == 2
