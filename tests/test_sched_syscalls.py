"""Tests for the Dimetrodon control ("syscall") surface."""

import pytest

from repro.core import BernoulliInjectionPolicy, DeterministicInjectionPolicy, NoInjectionPolicy
from repro.errors import ConfigurationError
from repro.experiments import Machine, fast_config
from repro.sched import DimetrodonControl, Scheduler
from repro.sim import Simulator
from repro.cpu import Chip
from repro.workloads import FiniteCpuBurn


@pytest.fixture
def machine():
    return Machine(fast_config())


def test_requires_injector():
    scheduler = Scheduler(Simulator(), Chip())  # no injector
    with pytest.raises(ConfigurationError):
        DimetrodonControl(scheduler)


def test_global_policy_bernoulli(machine):
    machine.control.set_global_policy(0.5, 0.025)
    policy = machine.injector.table.default
    assert isinstance(policy, BernoulliInjectionPolicy)
    assert policy.p == 0.5
    assert policy.idle_quantum == 0.025


def test_global_policy_deterministic(machine):
    machine.control.set_global_policy(0.5, 0.025, deterministic=True)
    assert isinstance(machine.injector.table.default, DeterministicInjectionPolicy)


def test_zero_p_makes_no_injection_policy(machine):
    machine.control.set_global_policy(0.0, 0.025)
    assert isinstance(machine.injector.table.default, NoInjectionPolicy)


def test_bernoulli_needs_rng():
    scheduler_machine = Machine(fast_config())
    control = DimetrodonControl(scheduler_machine.scheduler, rng=None)
    with pytest.raises(ConfigurationError):
        control.set_global_policy(0.5, 0.025)
    # Deterministic works without an RNG.
    control.set_global_policy(0.5, 0.025, deterministic=True)


def test_thread_policy_and_clear(machine):
    thread = machine.scheduler.spawn(FiniteCpuBurn(1.0))
    machine.control.set_thread_policy(thread, 0.75, 0.05)
    assert machine.injector.table.lookup(thread.tid).p == 0.75
    machine.control.clear_thread_policy(thread)
    assert machine.injector.table.lookup(thread.tid) is machine.injector.table.default


def test_exempt_thread(machine):
    thread = machine.scheduler.spawn(FiniteCpuBurn(1.0))
    machine.control.set_global_policy(0.9, 0.05)
    machine.control.exempt_thread(thread)
    assert isinstance(machine.injector.table.lookup(thread.tid), NoInjectionPolicy)


def test_disable(machine):
    machine.control.set_global_policy(0.9, 0.05)
    machine.control.disable()
    assert isinstance(machine.injector.table.default, NoInjectionPolicy)


def test_thread_info_snapshot(machine):
    thread = machine.scheduler.spawn(FiniteCpuBurn(0.3), name="probe")
    machine.run(1.0)
    info = machine.control.thread_info(thread)
    assert info.name == "probe"
    assert info.state == "exited"
    assert info.work_done == pytest.approx(0.3, abs=1e-9)
    assert info.scheduled_count == 3


def test_all_thread_info(machine):
    a = machine.scheduler.spawn(FiniteCpuBurn(0.2), name="a")
    b = machine.scheduler.spawn(FiniteCpuBurn(0.2), name="b")
    machine.run(1.0)
    info = machine.control.all_thread_info()
    assert set(info) == {a.tid, b.tid}
