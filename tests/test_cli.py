"""Tests for the command-line interface."""

import pytest

from repro.cli import (
    EXPERIMENTS,
    build_parser,
    main,
    make_runner,
    run_experiment,
    supports_runner,
)


def test_experiment_registry_covers_every_figure_and_table():
    assert {"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "table1"} <= set(EXPERIMENTS)
    assert "validate-throughput" in EXPERIMENTS
    assert "validate-energy" in EXPERIMENTS
    assert "smoke" in EXPERIMENTS


def test_parser_accepts_known_experiment():
    args = build_parser().parse_args(["fig1", "--seed", "3"])
    assert args.experiment == "fig1"
    assert args.seed == 3
    assert not args.full
    assert args.jobs == 1
    assert not args.no_cache


def test_parser_accepts_batch_flags(tmp_path):
    args = build_parser().parse_args(
        ["fig3", "--jobs", "4", "--cache-dir", str(tmp_path), "--no-cache"]
    )
    assert args.jobs == 4
    assert args.cache_dir == str(tmp_path)
    assert args.no_cache


def test_batch_experiments_accept_a_runner():
    batch = (
        "fig3",
        "fig4",
        "table1",
        "validate-throughput",
        "validate-energy",
        "smoke",
        "fleet",
        "fleet-compare",
        "scenarios",
    )
    for name in batch:
        assert supports_runner(EXPERIMENTS[name][1]), name
    for name in ("fig1", "fig2", "fig5", "fig6"):
        assert not supports_runner(EXPERIMENTS[name][1]), name


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig99"])


def test_list_prints_descriptions(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out
    assert "power trace" in out


def test_run_experiment_returns_rendered_text():
    text = run_experiment("fig1", seed=0)
    assert "Figure 1" in text
    assert "wall]" in text


def test_main_runs_single_experiment(capsys, tmp_path, monkeypatch):
    # fig1 takes no batch flags (they are rejected as a usage error),
    # so run from a temp cwd to keep the default cache dir out of the
    # repo tree.
    monkeypatch.chdir(tmp_path)
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out


def test_batch_flags_rejected_for_single_machine_experiments(capsys):
    # fig1/fig2/fig5/fig6 run every event on one simulated machine;
    # batch flags would be silently ignored there, so asking for them
    # is a usage error (exit 2), not a no-op.
    assert main(["fig1", "--jobs", "2"]) == 2
    captured = capsys.readouterr()
    assert "error:" in captured.err
    assert "--jobs" in captured.err
    assert "no effect" in captured.err
    assert "Traceback" not in captured.err + captured.out


def test_resume_and_cache_flags_rejected_for_single_machine(capsys, tmp_path):
    assert main(["fig5", "--resume"]) == 2
    assert "--resume" in capsys.readouterr().err
    assert main(["fig2", "--cache-dir", str(tmp_path)]) == 2
    assert "--cache-dir" in capsys.readouterr().err
    assert main(["fig6", "--keep-going", "--timeout", "5"]) == 2
    err = capsys.readouterr().err
    assert "--keep-going" in err and "--timeout" in err


def test_batch_flags_validator_exempts_all_and_batch_experiments():
    from repro.cli import validate_batch_flags

    args = build_parser().parse_args(["all", "--jobs", "4", "--keep-going"])
    validate_batch_flags("all", args)  # mixes both kinds: allowed
    args = build_parser().parse_args(["scenarios", "--jobs", "4", "--resume"])
    validate_batch_flags("scenarios", args)  # batch experiment: allowed


def test_smoke_experiment_uses_cache_on_second_run(capsys, tmp_path):
    cache_dir = str(tmp_path / "cache")
    assert main(["smoke", "--cache-dir", cache_dir]) == 0
    first = capsys.readouterr().out
    assert "5 executed, 0 cached" in first

    assert main(["smoke", "--cache-dir", cache_dir]) == 0
    second = capsys.readouterr().out
    assert "0 executed, 5 cached" in second
    # Cached replay reproduces the simulated numbers exactly (compare
    # the rendered table, not the wall-clock status line).
    assert first.splitlines()[:7] == second.splitlines()[:7]


def test_no_cache_flag_forces_execution(capsys, tmp_path):
    cache_dir = str(tmp_path / "cache")
    assert main(["smoke", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert main(["smoke", "--cache-dir", cache_dir, "--no-cache"]) == 0
    assert "5 executed, 0 cached" in capsys.readouterr().out


def test_progress_lines_include_live_counters(capsys, tmp_path):
    assert main(["smoke", "--cache-dir", str(tmp_path / "c"), "--progress"]) == 0
    err = capsys.readouterr().err
    assert "[5/5]" in err
    assert "| 5 executed, 0 cached" in err


def test_metrics_flag_writes_manifest(tmp_path):
    from repro.runtime import code_fingerprint
    from repro.telemetry import RunManifest

    manifest_path = tmp_path / "manifest.json"
    cache_dir = str(tmp_path / "cache")
    assert (
        main(["smoke", "--cache-dir", cache_dir, "--metrics", str(manifest_path)]) == 0
    )
    manifest = RunManifest.load(manifest_path)
    assert manifest.experiments == ["smoke"]
    assert manifest.seed == 0
    assert manifest.jobs == 1
    assert manifest.code_fingerprint == code_fingerprint()
    assert len(manifest.config_hash) == 64
    assert "smoke" in manifest.timings
    runner = manifest.runner
    assert runner["executed"] + runner["cache_hits"] == runner["submitted"] == 5
    assert manifest.cache["stores"] == 5
    assert manifest.metrics["sim.engine.events"]["value"] > 0
    assert manifest.metrics["core.injector.injections"]["value"] > 0

    # A cached replay's manifest accounts every run to the cache.
    replay_path = tmp_path / "replay.json"
    assert main(["smoke", "--cache-dir", cache_dir, "--metrics", str(replay_path)]) == 0
    replay = RunManifest.load(replay_path)
    assert replay.runner["executed"] == 0
    assert replay.runner["cache_hits"] == 5
    # Fresh registry per invocation: no carry-over between manifests.
    assert "sim.engine.events" not in replay.metrics


def test_manifest_metrics_identical_serial_vs_jobs2(tmp_path):
    """The headline guarantee: a --jobs 2 sweep's aggregated pool
    counters exactly match a serial sweep of the same config."""
    from repro.telemetry import RunManifest

    paths = []
    for jobs, tag in (("1", "serial"), ("2", "pool")):
        manifest_path = tmp_path / f"{tag}.json"
        code = main(
            [
                "smoke",
                "--jobs",
                jobs,
                "--cache-dir",
                str(tmp_path / tag),
                "--metrics",
                str(manifest_path),
            ]
        )
        assert code == 0
        paths.append(manifest_path)
    serial, pool = (RunManifest.load(p) for p in paths)
    serial_counters = {
        k: v["value"] for k, v in serial.metrics.items() if v["kind"] == "counter"
    }
    pool_counters = {
        k: v["value"] for k, v in pool.metrics.items() if v["kind"] == "counter"
    }
    assert serial_counters == pool_counters
    assert serial.runner == pool.runner


def test_make_runner_honours_flags(tmp_path):
    runner = make_runner(jobs=3, cache_dir=str(tmp_path), use_cache=True)
    assert runner.jobs == 3
    assert runner.cache is not None
    assert runner.journal is not None  # caching implies journaling
    runner.journal.close()
    uncached = make_runner(use_cache=False)
    assert uncached.cache is None
    assert uncached.journal is None


def test_parser_accepts_robustness_flags():
    args = build_parser().parse_args(
        [
            "smoke",
            "--timeout",
            "30",
            "--max-retries",
            "2",
            "--resume",
            "--keep-going",
            "--inject-faults",
            "crash@1",
        ]
    )
    assert args.timeout == 30.0
    assert args.max_retries == 2
    assert args.resume
    assert args.keep_going
    assert args.inject_faults == "crash@1"
    # And all of them default off.
    defaults = build_parser().parse_args(["smoke"])
    assert defaults.timeout is None
    assert defaults.max_retries == 1
    assert not defaults.resume
    assert not defaults.keep_going
    assert defaults.inject_faults is None


def test_make_runner_builds_retry_policy_and_fault_plan(tmp_path):
    runner = make_runner(
        cache_dir=str(tmp_path),
        use_cache=True,
        timeout=30.0,
        max_retries=3,
        keep_going=True,
        inject_faults="crash@1",
    )
    assert runner.timeout == 30.0
    assert runner.retry_policy.max_attempts == 4  # first try + 3 retries
    assert runner.keep_going
    assert runner.fault_plan.faults[0].kind == "crash"
    runner.journal.close()


def test_make_runner_rejects_bad_robustness_flags(tmp_path):
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        make_runner(max_retries=-1)
    with pytest.raises(ConfigurationError):
        make_runner(use_cache=False, resume=True)
    with pytest.raises(ConfigurationError):
        make_runner(cache_dir=str(tmp_path), use_cache=True, inject_faults="nope")


def test_main_reports_flag_conflicts_as_exit_2(capsys):
    assert main(["smoke", "--no-cache", "--resume"]) == 2
    assert "--resume needs the cache" in capsys.readouterr().err


def test_injected_crash_recovers_and_is_reported(capsys, tmp_path):
    """A seeded crash is retried transparently: same table as a clean
    run, exit 0, and the failure report names the injected fault."""
    cache_dir = str(tmp_path / "cache")
    assert main(["smoke", "--cache-dir", cache_dir]) == 0
    clean = capsys.readouterr().out

    chaos_dir = str(tmp_path / "chaos")
    assert main(["smoke", "--cache-dir", chaos_dir, "--inject-faults", "crash@1"]) == 0
    chaotic = capsys.readouterr().out
    assert chaotic.splitlines()[:7] == clean.splitlines()[:7]
    assert "InjectedFaultError" in chaotic
    assert "recovered" in chaotic


def test_abandoned_run_fails_the_invocation_under_keep_going(capsys, tmp_path):
    """--max-retries 0 turns the injected crash terminal; --keep-going
    finishes the sweep but the exit code still reports the loss."""
    code = main(
        [
            "smoke",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--max-retries",
            "0",
            "--keep-going",
            "--inject-faults",
            "crash@1",
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "ABANDONED" in out


def test_manifest_records_failures_and_resume(tmp_path):
    from repro.telemetry import RunManifest

    cache_dir = str(tmp_path / "cache")
    manifest_path = tmp_path / "manifest.json"
    assert (
        main(
            [
                "smoke",
                "--cache-dir",
                cache_dir,
                "--inject-faults",
                "crash@1",
                "--metrics",
                str(manifest_path),
            ]
        )
        == 0
    )
    manifest = RunManifest.load(manifest_path)
    assert manifest.resumed is False
    assert manifest.failures["attempts_failed"] == 1
    assert manifest.failures["recovered"] == 1
    assert manifest.failures["fatal"] == 0
    assert manifest.failures["failures"][0]["error_type"] == "InjectedFaultError"
    assert manifest.runner["retries"] == 1

    # A --resume invocation replays the journaled sweep entirely.
    resume_path = tmp_path / "resume.json"
    assert (
        main(
            ["smoke", "--cache-dir", cache_dir, "--resume", "--metrics", str(resume_path)]
        )
        == 0
    )
    resumed = RunManifest.load(resume_path)
    assert resumed.resumed is True
    assert resumed.failures is None
    runner = resumed.runner
    assert runner["executed"] == 0 and runner["cache_hits"] == 0
    assert runner["replayed"] == runner["submitted"] == 5


# ======================================================================
# Scheduling policy flag (--policy)
# ======================================================================
def test_parser_accepts_policy_flag():
    args = build_parser().parse_args(["fleet", "--policy", "coolest"])
    assert args.experiment == "fleet"
    assert args.policy == "coolest"
    assert build_parser().parse_args(["fleet"]).policy is None


def test_unknown_policy_is_a_configuration_error_not_a_traceback(capsys):
    assert main(["fleet", "--policy", "warmest-first"]) == 2
    captured = capsys.readouterr()
    assert "error:" in captured.err
    assert "unknown scheduling policy" in captured.err
    assert "round-robin" in captured.err  # the known names are listed
    assert "Traceback" not in captured.err + captured.out


def test_policy_flag_rejected_for_non_fleet_experiments(capsys):
    assert main(["fig1", "--policy", "coolest"]) == 2
    captured = capsys.readouterr()
    assert "error:" in captured.err
    assert "Traceback" not in captured.err + captured.out


def test_run_experiment_rejects_policy_for_non_fleet():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        run_experiment("fig1", seed=0, policy="coolest")


@pytest.mark.slow
def test_fleet_policies_end_to_end_with_manifests(tmp_path, capsys):
    """The acceptance run: `python -m repro fleet --policy <name>` for
    every registered policy, each writing a manifest that carries the
    migration counters and per-machine placement histogram."""
    from repro.fleet.scheduling import POLICY_NAMES
    from repro.telemetry import RunManifest

    for name in POLICY_NAMES:
        manifest_path = tmp_path / f"{name}.json"
        assert (
            main(
                [
                    "fleet",
                    "--policy",
                    name,
                    "--cache-dir",
                    str(tmp_path / "cache"),
                    "--metrics",
                    str(manifest_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"policy {name}" in out
        manifest = RunManifest.load(manifest_path)
        assert manifest.experiments == ["fleet"]
        assert "fleet.migrations" in manifest.metrics
        assert "fleet.migration_cost_ms" in manifest.metrics
        assert manifest.metrics["fleet.balancer.routed"]["value"] > 0
        placement = [
            manifest.metrics[key]["value"]
            for key in manifest.metrics
            if key.startswith("fleet.placement.m")
        ]
        assert sum(placement) == manifest.metrics["fleet.balancer.routed"]["value"]
        if name in ("migrate", "cache-aware"):
            assert manifest.metrics["fleet.migrations"]["value"] >= 0


# ----------------------------------------------------------------------
# Health monitoring flags
# ----------------------------------------------------------------------
def test_parser_accepts_health_flags():
    args = build_parser().parse_args(
        [
            "fleet",
            "--health-warning-rise",
            "2.0",
            "--health-critical-rise",
            "4.0",
            "--health-period",
            "0.5",
        ]
    )
    assert args.health_warning_rise == 2.0
    assert args.health_critical_rise == 4.0
    assert args.health_period == 0.5
    defaults = build_parser().parse_args(["fleet"])
    assert defaults.health_warning_rise is None
    assert defaults.health_critical_rise is None
    assert defaults.health_period is None


def test_health_params_from_args_builds_override_only_when_flagged():
    from repro.cli import health_params_from_args

    assert health_params_from_args(build_parser().parse_args(["fleet"])) is None
    params = health_params_from_args(
        build_parser().parse_args(["fleet", "--health-critical-rise", "9.0"])
    )
    assert params.critical_rise == 9.0
    assert params.warning_rise == 3.5  # untouched default


def test_supports_health_covers_monitored_experiments():
    from repro.cli import supports_health

    monitored = {
        name for name, (_, func) in EXPERIMENTS.items() if supports_health(func)
    }
    assert monitored == {"fig2", "fleet", "fleet-compare", "scenarios"}


def test_health_flags_rejected_for_unmonitored_experiments(capsys):
    assert main(["fig1", "--health-critical-rise", "9.0"]) == 2
    captured = capsys.readouterr()
    assert "error:" in captured.err
    assert "--health-" in captured.err
    assert "Traceback" not in captured.err + captured.out


def test_inverted_health_thresholds_are_a_configuration_error(capsys):
    assert (
        main(
            [
                "fleet",
                "--health-warning-rise",
                "9.0",
                "--health-critical-rise",
                "3.0",
            ]
        )
        == 2
    )
    captured = capsys.readouterr()
    assert "critical rise must exceed warning rise" in captured.err
    assert "Traceback" not in captured.err + captured.out


def test_fleet_manifest_carries_health_section(tmp_path, capsys):
    """`python -m repro fleet --metrics` records the structured health
    section: config + totals per rack, plus health.* telemetry."""
    from repro.telemetry import RunManifest

    manifest_path = tmp_path / "fleet.json"
    assert (
        main(
            [
                "fleet",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--metrics",
                str(manifest_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "alerts" in out and "crit [s]" in out
    manifest = RunManifest.load(manifest_path)
    health = manifest.health["fleet"]
    assert set(health) == {"baseline", "dimetrodon"}
    for rack in health.values():
        assert rack["config"]["thresholds"]["critical_c"] > 0
        assert rack["totals"]["alerts"] >= 0
    # The hot web baseline trips critical with default thresholds.
    assert health["baseline"]["totals"]["critical_alerts"] > 0
    assert health["baseline"]["totals"]["time_in_critical_s"] > 0
    assert manifest.metrics["health.samples"]["value"] > 0


def test_cool_thresholds_give_alert_free_manifest(tmp_path):
    """Raising the thresholds far above any reachable rise makes the
    same run alert-free (the CI monitor-smoke cool case)."""
    from repro.telemetry import RunManifest

    manifest_path = tmp_path / "cool.json"
    assert (
        main(
            [
                "fleet",
                "--health-warning-rise",
                "80",
                "--health-critical-rise",
                "90",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--metrics",
                str(manifest_path),
            ]
        )
        == 0
    )
    manifest = RunManifest.load(manifest_path)
    for rack in manifest.health["fleet"].values():
        assert rack["totals"]["alerts"] == 0
        assert rack["totals"]["time_in_critical_s"] == 0.0
        assert rack["config"]["warning_rise_c"] == 80.0
