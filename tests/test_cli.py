"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, run_experiment


def test_experiment_registry_covers_every_figure_and_table():
    assert {"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "table1"} <= set(EXPERIMENTS)
    assert "validate-throughput" in EXPERIMENTS
    assert "validate-energy" in EXPERIMENTS


def test_parser_accepts_known_experiment():
    args = build_parser().parse_args(["fig1", "--seed", "3"])
    assert args.experiment == "fig1"
    assert args.seed == 3
    assert not args.full


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig99"])


def test_list_prints_descriptions(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out
    assert "power trace" in out


def test_run_experiment_returns_rendered_text():
    text = run_experiment("fig1", seed=0)
    assert "Figure 1" in text
    assert "wall]" in text


def test_main_runs_single_experiment(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
