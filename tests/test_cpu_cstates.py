"""Tests for the C-state model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import CState, CStateParams, ResidencyCounter, exit_latency, idle_profile


def test_idle_profile_empty_for_zero_duration():
    assert idle_profile(0.0, CStateParams()) == []
    assert idle_profile(-1.0, CStateParams()) == []


def test_short_idle_stays_shallow():
    """Idle shorter than the promotion threshold never reaches C1E."""
    params = CStateParams(c1e_promotion_threshold=1.5e-3)
    pieces = idle_profile(1.0e-3, params)
    assert len(pieces) == 1
    assert pieces[0].state is CState.C1
    assert pieces[0].duration == pytest.approx(1.0e-3)


def test_long_idle_promotes_to_c1e():
    params = CStateParams(c1e_promotion_threshold=1.5e-3, c1e_entry_latency=40e-6)
    pieces = idle_profile(100e-3, params)
    assert [p.state for p in pieces] == [CState.C1, CState.C1E]
    assert pieces[0].duration == pytest.approx(1.54e-3)
    assert pieces[1].duration == pytest.approx(100e-3 - 1.54e-3)


def test_deep_fraction_grows_with_duration():
    """Longer idle quanta spend a larger fraction in the deep state —
    the mechanism behind the paper's ~1 ms optimal idle length."""
    params = CStateParams()

    def deep_fraction(duration):
        pieces = idle_profile(duration, params)
        deep = sum(p.duration for p in pieces if p.state is CState.C1E)
        return deep / duration

    assert deep_fraction(0.2e-3) == 0.0
    assert 0.0 < deep_fraction(1e-3) < deep_fraction(25e-3) < deep_fraction(100e-3)
    assert deep_fraction(100e-3) > 0.95


def test_exit_latency_per_state():
    params = CStateParams()
    assert exit_latency(CState.C0, params) == 0.0
    assert exit_latency(CState.C1, params) == params.c1_exit_latency
    assert exit_latency(CState.C1E, params) == params.c1e_exit_latency
    assert exit_latency(CState.C1E, params) > exit_latency(CState.C1, params)


@settings(max_examples=50, deadline=None)
@given(duration=st.floats(min_value=1e-6, max_value=1.0))
def test_idle_profile_durations_sum_property(duration):
    pieces = idle_profile(duration, CStateParams())
    assert sum(p.duration for p in pieces) == pytest.approx(duration, rel=1e-12)
    assert all(p.duration > 0 for p in pieces)


def test_residency_counter_accumulates():
    counter = ResidencyCounter()
    counter.add(CState.C0, 2.0)
    counter.add(CState.C1E, 1.0)
    counter.add(CState.C0, 0.5)
    assert counter.get(CState.C0) == pytest.approx(2.5)
    assert counter.get(CState.C1E) == pytest.approx(1.0)
    assert counter.total() == pytest.approx(3.5)


def test_residency_fractions():
    counter = ResidencyCounter()
    counter.add(CState.C0, 3.0)
    counter.add(CState.C1, 1.0)
    fractions = counter.fractions()
    assert fractions[CState.C0] == pytest.approx(0.75)
    assert fractions[CState.C1] == pytest.approx(0.25)
    assert fractions[CState.C1E] == 0.0


def test_residency_fractions_empty():
    assert ResidencyCounter().fractions()[CState.C0] == 0.0


def test_residency_rejects_negative():
    with pytest.raises(ValueError):
        ResidencyCounter().add(CState.C0, -1.0)


def test_residency_as_tuples():
    counter = ResidencyCounter()
    counter.add(CState.C1, 1.5)
    tuples = dict(counter.as_tuples())
    assert tuples["C1"] == 1.5
