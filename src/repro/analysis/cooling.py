"""Data-center cooling cost modelling (the paper's §1 motivation).

"The power required to cool a processor is nearly equivalent to the
electricity required to power it [Patel & Shah], ... and chiller power,
a historically dominant data center energy overhead, scales
quadratically with the amount of heat extracted [Pelley et al.]."

This module turns a Dimetrodon temperature/heat reduction into cooling
energy numbers with the standard abstraction from Pelley et al.:
chiller power is a quadratic function of extracted heat, plus a linear
CRAH/fan term.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

#: Hours in a year, for energy-cost annualisation.
HOURS_PER_YEAR = 8766.0


@dataclass(frozen=True)
class CoolingModel:
    """Chiller + air-mover power as a function of extracted heat.

    ``P_cool(Q) = linear · Q + quadratic · Q²`` — coefficients default
    to a mid-efficiency chilled-water plant where cooling power reaches
    ~half of IT power at the design load (Patel & Shah's observation),
    with the quadratic term dominating toward saturation (Pelley et
    al.).  ``design_load`` anchors the quadratic coefficient's scale.
    """

    #: Linear (CRAH fans, pumps) coefficient, W of cooling per W of heat.
    linear: float = 0.2
    #: Chiller quadratic coefficient at the design load.
    quadratic_at_design: float = 0.3
    #: Design heat load, W.
    design_load: float = 100.0

    def __post_init__(self) -> None:
        if self.design_load <= 0:
            raise ConfigurationError("design load must be positive")
        if self.linear < 0 or self.quadratic_at_design < 0:
            raise ConfigurationError("cooling coefficients must be non-negative")

    def cooling_power(self, heat_watts: float) -> float:
        """Cooling power (W) needed to extract ``heat_watts``."""
        if heat_watts < 0:
            raise ConfigurationError("heat must be non-negative")
        quad = self.quadratic_at_design / self.design_load
        return self.linear * heat_watts + quad * heat_watts**2

    def cooling_ratio(self, heat_watts: float) -> float:
        """Cooling power per watt of heat at this load (the 'burden')."""
        if heat_watts == 0:
            return self.linear
        return self.cooling_power(heat_watts) / heat_watts

    # ------------------------------------------------------------------
    def savings(self, baseline_heat: float, reduced_heat: float) -> float:
        """Cooling power saved (W) by lowering heat output.

        Because the chiller term is quadratic, heat reductions save
        *superlinearly*: shaving the last watts of a hot machine is
        worth more than their face value.
        """
        return self.cooling_power(baseline_heat) - self.cooling_power(reduced_heat)

    def annual_energy_kwh(self, heat_watts: float) -> float:
        """Cooling energy per year (kWh) at a steady heat load."""
        return self.cooling_power(heat_watts) * HOURS_PER_YEAR / 1000.0
