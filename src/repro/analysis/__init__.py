"""Downstream analyses: reliability, cooling cost, and SLO scoring."""

from .cooling import HOURS_PER_YEAR, CoolingModel
from .reliability import BOLTZMANN_EV, ReliabilityModel
from .slo import PERCENTILES, SloReport, WindowScore, score_windows

__all__ = [
    "BOLTZMANN_EV",
    "CoolingModel",
    "HOURS_PER_YEAR",
    "PERCENTILES",
    "ReliabilityModel",
    "SloReport",
    "WindowScore",
    "score_windows",
]
