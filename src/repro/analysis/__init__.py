"""Downstream analyses of thermal results: reliability and cooling cost."""

from .cooling import HOURS_PER_YEAR, CoolingModel
from .reliability import BOLTZMANN_EV, ReliabilityModel

__all__ = ["BOLTZMANN_EV", "CoolingModel", "HOURS_PER_YEAR", "ReliabilityModel"]
