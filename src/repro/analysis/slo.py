"""Windowed SLO scoring for open-loop request workloads.

The paper scores the web workload's QoS over the whole run (§3.7:
"good" ≤ 3 s, "tolerable" ≤ 5 s, else failed).  One number over one
window hides exactly what time-varying load reveals: a diurnal trough
can mask a flash-crowd collapse, and a single bad minute is invisible
in a long average.  This module scores a request log over a *partition*
of half-open time windows and reports the per-window series plus
summaries a production SLO review would ask for.

Conventions (shared with
:meth:`repro.workloads.webserver.RequestLog.arrived_in` — they are
pinned by property tests):

- Windows are half-open ``[start, end)`` over *arrival* time: every
  request belongs to exactly one window of a partition, so per-window
  counts recombine exactly to whole-run totals.
- A window with zero arrivals carries **no data**: its fractions are
  ``None`` (serialized as ``null``, never NaN) and it is excluded from
  every aggregate.  An idle trough is not perfect QoS.
- An unanswered request (still queued when scoring happens) counts as
  failed — an exploding backlog must show up as a QoS collapse — but
  contributes no response-time sample to the percentiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from ..workloads.webserver import QOS_GOOD, QOS_TOLERABLE, Request

#: Response-time percentiles reported per window and overall.
PERCENTILES = (50.0, 95.0, 99.0)


@dataclass(frozen=True)
class WindowScore:
    """QoS tallies for one half-open window ``[start, end)``.

    Counts are the ground truth (they recombine exactly across a
    partition); fractions are derived views that become ``None`` when
    the window has no arrivals.
    """

    start: float
    end: float
    #: Requests arriving in the window.
    arrivals: int
    #: Answered within the good threshold.
    good: int
    #: Answered within the tolerable threshold (includes ``good``).
    tolerable: int
    #: Answered at all (whatever the response time).
    answered: int
    #: Response-time percentiles over *answered* requests, seconds
    #: (``{"p50": ..., "p95": ..., "p99": ...}``; empty when nothing
    #: was answered).
    response_percentiles: Dict[str, float] = field(default_factory=dict)

    @property
    def failed(self) -> int:
        """Requests neither answered within tolerable nor answered at
        all (unanswered requests are failures)."""
        return self.arrivals - self.tolerable

    @property
    def good_fraction(self) -> Optional[float]:
        return self.good / self.arrivals if self.arrivals else None

    @property
    def tolerable_fraction(self) -> Optional[float]:
        return self.tolerable / self.arrivals if self.arrivals else None

    @property
    def failed_fraction(self) -> Optional[float]:
        return self.failed / self.arrivals if self.arrivals else None

    @property
    def empty(self) -> bool:
        return self.arrivals == 0


def _percentiles(samples: Sequence[float]) -> Dict[str, float]:
    if not samples:
        return {}
    values = np.percentile(np.asarray(samples, dtype=float), PERCENTILES)
    return {f"p{int(p)}": float(v) for p, v in zip(PERCENTILES, values)}


@dataclass
class SloReport:
    """A partition of windows plus whole-run summaries.

    Aggregates are computed from the per-window *counts*, so they are
    exactly the whole-run numbers (no empty-window NaN can leak in, and
    no window weighting can skew them).
    """

    windows: List[WindowScore]
    good_threshold: float
    tolerable_threshold: float
    window_length: float

    # -- whole-run totals (exact recombination) ------------------------
    @property
    def total_arrivals(self) -> int:
        return sum(w.arrivals for w in self.windows)

    @property
    def total_good(self) -> int:
        return sum(w.good for w in self.windows)

    @property
    def total_tolerable(self) -> int:
        return sum(w.tolerable for w in self.windows)

    @property
    def total_failed(self) -> int:
        return sum(w.failed for w in self.windows)

    @property
    def good_fraction(self) -> Optional[float]:
        total = self.total_arrivals
        return self.total_good / total if total else None

    @property
    def tolerable_fraction(self) -> Optional[float]:
        total = self.total_arrivals
        return self.total_tolerable / total if total else None

    @property
    def failed_fraction(self) -> Optional[float]:
        total = self.total_arrivals
        return self.total_failed / total if total else None

    # -- window summaries ----------------------------------------------
    def scored_windows(self) -> List[WindowScore]:
        """Windows that carry data (empty ones are no-data, excluded)."""
        return [w for w in self.windows if not w.empty]

    def worst_window(self, *, metric: str = "good") -> Optional[WindowScore]:
        """The non-empty window with the lowest ``good`` (or
        ``tolerable``) fraction; ``None`` when every window is empty."""
        if metric not in ("good", "tolerable"):
            raise AnalysisError(f"unknown worst-window metric {metric!r}")
        scored = self.scored_windows()
        if not scored:
            return None
        key = (
            (lambda w: w.good_fraction)
            if metric == "good"
            else (lambda w: w.tolerable_fraction)
        )
        return min(scored, key=key)

    def time_in_violation(self, *, min_good: float = 0.95) -> float:
        """Seconds of wall time spent in non-empty windows whose good
        fraction is below ``min_good`` (empty windows violate nothing:
        there was no traffic to disappoint)."""
        return sum(
            w.end - w.start
            for w in self.scored_windows()
            if w.good_fraction < min_good
        )

    # -- serialization -------------------------------------------------
    def series(self) -> Dict[str, list]:
        """Column-oriented per-window series for manifests/plots.

        Fractions of empty windows serialize as ``None`` (JSON
        ``null``) — never NaN, which JSON cannot represent and
        downstream tooling silently propagates.
        """
        return {
            "start": [w.start for w in self.windows],
            "end": [w.end for w in self.windows],
            "arrivals": [w.arrivals for w in self.windows],
            "good": [w.good for w in self.windows],
            "tolerable": [w.tolerable for w in self.windows],
            "failed": [w.failed for w in self.windows],
            "good_fraction": [w.good_fraction for w in self.windows],
            "tolerable_fraction": [w.tolerable_fraction for w in self.windows],
            "failed_fraction": [w.failed_fraction for w in self.windows],
            "p95_response": [
                w.response_percentiles.get("p95") for w in self.windows
            ],
        }

    def summary(self) -> Dict[str, object]:
        """Aggregate row for tables/manifests.  Contains no NaN: when
        there is no data at all the fractions are ``None``."""
        worst = self.worst_window()
        return {
            "arrivals": self.total_arrivals,
            "good_fraction": self.good_fraction,
            "tolerable_fraction": self.tolerable_fraction,
            "failed_fraction": self.failed_fraction,
            "worst_window_good": None if worst is None else worst.good_fraction,
            "worst_window_start": None if worst is None else worst.start,
            "time_in_violation_s": self.time_in_violation(),
            "windows": len(self.windows),
            "empty_windows": sum(1 for w in self.windows if w.empty),
        }


def score_windows(
    requests: Iterable[Request],
    *,
    start: float,
    end: float,
    window: float,
    good_threshold: float = QOS_GOOD,
    tolerable_threshold: float = QOS_TOLERABLE,
) -> SloReport:
    """Partition ``[start, end)`` into half-open windows and score each.

    ``requests`` may pool several servers' logs (the fleet case);
    requests arriving outside ``[start, end)`` are ignored.  The last
    window is truncated at ``end`` when ``window`` does not divide the
    span evenly, so the partition always covers the span exactly.
    """
    if window <= 0:
        raise AnalysisError(f"window length must be positive, got {window}")
    if end <= start:
        raise AnalysisError(f"empty scoring span [{start}, {end})")
    if not tolerable_threshold >= good_threshold:
        raise AnalysisError(
            f"tolerable threshold {tolerable_threshold} must be >= "
            f"good threshold {good_threshold}"
        )
    count = max(1, math.ceil((end - start) / window - 1e-12))
    edges = [start + i * window for i in range(count)] + [end]

    buckets: List[List[Request]] = [[] for _ in range(count)]
    for request in requests:
        t = request.arrival
        if not start <= t < end:
            continue
        index = min(int((t - start) / window), count - 1)
        # Guard against float rounding at the edges: the bucket whose
        # half-open interval actually contains t wins.
        while index > 0 and t < edges[index]:
            index -= 1
        while index < count - 1 and t >= edges[index + 1]:
            index += 1
        buckets[index].append(request)

    windows: List[WindowScore] = []
    for i, bucket in enumerate(buckets):
        answered_times = [
            r.response_time for r in bucket if r.response_time is not None
        ]
        windows.append(
            WindowScore(
                start=edges[i],
                end=edges[i + 1],
                arrivals=len(bucket),
                good=sum(1 for t in answered_times if t <= good_threshold),
                tolerable=sum(1 for t in answered_times if t <= tolerable_threshold),
                answered=len(answered_times),
                response_percentiles=_percentiles(answered_times),
            )
        )
    return SloReport(
        windows=windows,
        good_threshold=good_threshold,
        tolerable_threshold=tolerable_threshold,
        window_length=window,
    )
