"""Temperature-to-reliability modelling (the paper's §1 motivation).

"Increased operating temperatures can result in exponentially reduced
mean-time-to-failure (MTTF) values [Srinivasan et al., ISCA '04]."
This module quantifies the flip side: what a Dimetrodon-style
average-case temperature reduction buys in device lifetime.

The model is the standard Arrhenius acceleration law used by RAMP-style
lifetime analyses for temperature-driven failure mechanisms
(electromigration, TDDB):

    AF(T) = exp( (Ea / k) * (1/T_ref - 1/T) )        [T in kelvin]

with activation energy ``Ea`` around 0.7 eV for electromigration.
MTTF(T) = MTTF(T_ref) / AF(T).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..units import celsius_to_kelvin

#: Boltzmann constant, eV/K.
BOLTZMANN_EV = 8.617333262e-5


@dataclass(frozen=True)
class ReliabilityModel:
    """Arrhenius lifetime model for temperature-driven wearout."""

    #: Activation energy, eV (0.7 is typical for electromigration).
    activation_energy_ev: float = 0.7
    #: Reference junction temperature, °C (the qualification point).
    reference_temp: float = 55.0

    def __post_init__(self) -> None:
        if self.activation_energy_ev <= 0:
            raise ConfigurationError("activation energy must be positive")

    def acceleration_factor(self, temp_c: float) -> float:
        """Failure-rate acceleration at ``temp_c`` relative to the
        reference temperature (> 1 when hotter)."""
        t = celsius_to_kelvin(temp_c)
        t_ref = celsius_to_kelvin(self.reference_temp)
        exponent = (self.activation_energy_ev / BOLTZMANN_EV) * (1.0 / t_ref - 1.0 / t)
        return float(np.exp(exponent))

    def mttf_factor(self, temp_c: float) -> float:
        """Relative MTTF at ``temp_c`` (MTTF(T)/MTTF(T_ref); < 1 hotter)."""
        return 1.0 / self.acceleration_factor(temp_c)

    # ------------------------------------------------------------------
    def mean_acceleration(self, temps_c: Sequence[float]) -> float:
        """Time-averaged failure acceleration over a temperature trace.

        Failure rates (not lifetimes) average over time, so the trace's
        acceleration factors are averaged and inverted by callers that
        want an equivalent-MTTF number.
        """
        temps = np.asarray(list(temps_c), dtype=float)
        if temps.size == 0:
            raise ConfigurationError("empty temperature trace")
        return float(np.mean([self.acceleration_factor(t) for t in temps]))

    def mttf_improvement(
        self, baseline_temps: Sequence[float], cooled_temps: Sequence[float]
    ) -> float:
        """MTTF ratio (cooled / baseline) implied by two traces.

        > 1 means the cooled trace lives longer.  This is the headline
        reliability payoff of preventive thermal management.
        """
        return self.mean_acceleration(baseline_temps) / self.mean_acceleration(
            cooled_temps
        )
