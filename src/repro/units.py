"""Unit conventions and helper constants.

All quantities in this package use SI base units unless a name says
otherwise:

- time: seconds (``float``)
- power: watts
- energy: joules
- temperature: degrees Celsius (thermal models are linear in temperature
  differences, so Celsius and Kelvin are interchangeable for deltas)
- frequency: hertz

The constants below exist so call sites can say ``25 * MS`` instead of
``0.025`` and stay self-documenting.
"""

from __future__ import annotations

#: One microsecond, in seconds.
US = 1e-6

#: One millisecond, in seconds.
MS = 1e-3

#: One second.
SECOND = 1.0

#: One minute, in seconds.
MINUTE = 60.0

#: One megahertz, in hertz.
MHZ = 1e6

#: One gigahertz, in hertz.
GHZ = 1e9


def ms(value: float) -> float:
    """Convert a value expressed in milliseconds to seconds."""
    return value * MS


def to_ms(seconds: float) -> float:
    """Convert a value expressed in seconds to milliseconds."""
    return seconds / MS


def us(value: float) -> float:
    """Convert a value expressed in microseconds to seconds."""
    return value * US


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature in Celsius to Kelvin."""
    return temp_c + 273.15


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature in Kelvin to Celsius."""
    return temp_k - 273.15
