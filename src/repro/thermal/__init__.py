"""Lumped RC thermal model of the simulated package."""

from .floorplan import SINK, SPREADER, build_network, core_node_name
from .params import ThermalParams, default, fast
from .rcnetwork import AdvanceResult, StepKernel, ThermalIntegrator, ThermalNetwork
from .sensors import SensorBank, TemperatureSensor

__all__ = [
    "AdvanceResult",
    "SensorBank",
    "SINK",
    "StepKernel",
    "SPREADER",
    "TemperatureSensor",
    "ThermalIntegrator",
    "ThermalNetwork",
    "ThermalParams",
    "build_network",
    "core_node_name",
    "default",
    "fast",
]
