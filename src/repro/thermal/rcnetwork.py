"""Lumped RC thermal network and its integrator.

The chip's thermal behaviour is modelled as a network of nodes, each
with a heat capacity (J/K), connected by thermal conductances (W/K) to
each other and to a fixed-temperature ambient node.  This is the same
abstraction HotSpot uses for architectural thermal simulation, reduced
to the handful of nodes that matter for a lidded quad-core package:
per-core die nodes, a heat-spreader node, and a heatsink node.

The state equation is

    C dT/dt = -G (T - T_amb·1) + P(T)

where ``G`` is the (symmetric, weakly diagonally dominant) conductance
Laplacian including ambient legs, and ``P`` may depend on temperature
through leakage.  Between power-state changes we integrate with the
*exponential Euler* scheme: over a substep ``h`` the power vector is
frozen at its value for the current temperatures and the linear system
is advanced exactly:

    T(t+h) = T_ss + E(h) (T(t) - T_ss),   E(h) = expm(-C^{-1} G h)

This is unconditionally stable, exact for constant power, and the only
error source is the leakage lag over one substep (second order in
``h``).  Step kernels — the matrix exponential together with its
power-injection and ambient companions — are cached per distinct ``h``
in a bounded LRU (segments in the scheduler simulation reuse a small
set of substep lengths, so the hit rate is essentially 100% after
warm-up; the bound protects sweeps with pathological substep
diversity).  Hit/miss/eviction counts are published on the
``thermal.rcnetwork`` telemetry scope.

The integrator has two equivalent paths:

- :meth:`ThermalIntegrator.advance` — the scalar reference oracle: a
  Python power callback re-evaluated per substep plus a
  ``steady_state`` solve.
- :meth:`ThermalIntegrator.advance_coefficients` — the fused fast
  path: per substep one gemv pair plus one vectorized exponential into
  preallocated buffers, no allocation and no per-core Python work.

:class:`FleetThermalIntegrator` generalizes the fused path to ``N``
independent copies of one network (a rack of identical servers): the
whole fleet's temperature state is a single ``(N, nodes)`` array and a
cohort of machines sharing a substep length advances with one
``(nodes, 2·nodes+1) @ (2·nodes+1, K)`` matmul per substep instead of
``K`` gemvs.  All three integration paths share the step-kernel LRU of
the underlying :class:`ThermalNetwork`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, NamedTuple, Optional, Sequence

import numpy as np
from scipy.linalg import expm

from ..errors import ConfigurationError
from ..telemetry.registry import registry as _metrics_registry

if TYPE_CHECKING:  # the integrator only needs its .evaluate() protocol
    from ..cpu.power import PowerCoefficients

#: Power callback: maps node temperatures (°C) to node power inputs (W).
PowerFunction = Callable[[np.ndarray], np.ndarray]


class StepKernel(NamedTuple):
    """Precomputed linear-system kernel for one substep length ``h``.

    Advancing the network by ``h`` under a frozen power vector ``P`` is

        T(t+h) = propagator @ T(t) + inject @ P + ambient_shift

    which is algebraically identical to the steady-state form
    ``T_ss + E(h) (T - T_ss)`` with ``T_ss = T_amb·1 + L⁻¹ P``:
    ``inject = (I − E(h)) L⁻¹`` and ``ambient_shift = (I − E(h)) T_amb·1``.

    ``fused`` is the three blocks stacked as one ``(n, 2n+1)`` matrix
    ``[propagator | inject | ambient_shift]`` so the whole update is a
    single gemv against the stacked state vector ``[T, P, 1]`` — the
    fused integrator's inner loop lives on this.
    """

    propagator: np.ndarray
    inject: np.ndarray
    ambient_shift: np.ndarray
    fused: np.ndarray


class ThermalNetwork:
    """A lumped RC network with a fixed-temperature ambient node.

    Parameters
    ----------
    capacitances:
        Heat capacity of each node, J/K. All must be positive.
    conductances:
        Symmetric ``(n, n)`` matrix of pairwise conductances, W/K.
        ``conductances[i, j]`` is the conductance of the link between
        nodes ``i`` and ``j``; the diagonal is ignored.
    ambient_conductances:
        Per-node conductance to ambient, W/K (0 for internal nodes).
    ambient_temp:
        Ambient temperature, °C.
    node_names:
        Optional human-readable node labels (defaults to ``node{i}``).
    expm_cache_size:
        Maximum number of distinct substep lengths whose step kernels
        are kept (LRU eviction).  Must be at least 1.
    """

    def __init__(
        self,
        capacitances: Sequence[float],
        conductances: np.ndarray,
        ambient_conductances: Sequence[float],
        ambient_temp: float,
        node_names: Optional[Sequence[str]] = None,
        expm_cache_size: int = 64,
    ):
        self.capacitances = np.asarray(capacitances, dtype=float)
        n = self.capacitances.shape[0]
        conductances = np.asarray(conductances, dtype=float)
        self.ambient_conductances = np.asarray(ambient_conductances, dtype=float)
        self.ambient_temp = float(ambient_temp)

        if conductances.shape != (n, n):
            raise ConfigurationError(
                f"conductance matrix shape {conductances.shape} != ({n}, {n})"
            )
        if self.ambient_conductances.shape != (n,):
            raise ConfigurationError("ambient conductance vector has wrong length")
        if np.any(self.capacitances <= 0):
            raise ConfigurationError("all node capacitances must be positive")
        if np.any(conductances < 0) or np.any(self.ambient_conductances < 0):
            raise ConfigurationError("conductances must be non-negative")
        if not np.allclose(conductances, conductances.T):
            raise ConfigurationError("pairwise conductance matrix must be symmetric")
        if np.all(self.ambient_conductances == 0):
            raise ConfigurationError(
                "network has no path to ambient; temperatures would diverge"
            )

        self.node_names: List[str] = (
            list(node_names) if node_names is not None else [f"node{i}" for i in range(n)]
        )
        if len(self.node_names) != n:
            raise ConfigurationError("node_names length mismatch")

        # Laplacian G: off-diagonal -g_ij, diagonal sum of all legs
        # including the ambient leg.
        off = -conductances.copy()
        np.fill_diagonal(off, 0.0)
        diag = conductances.sum(axis=1) - np.diag(conductances) + self.ambient_conductances
        self._laplacian = off + np.diag(diag)
        self._a_matrix = -self._laplacian / self.capacitances[:, None]
        self._laplacian_inv = np.linalg.inv(self._laplacian)
        if expm_cache_size < 1:
            raise ConfigurationError("expm_cache_size must be at least 1")
        self._expm_cache_size = int(expm_cache_size)
        self._expm_cache: "OrderedDict[float, StepKernel]" = OrderedDict()
        scope = _metrics_registry().scope("thermal.rcnetwork")
        self._metric_cache_hits = scope.counter("expm_cache.hits")
        self._metric_cache_misses = scope.counter("expm_cache.misses")
        self._metric_cache_evictions = scope.counter("expm_cache.evictions")

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.capacitances.shape[0]

    def node_index(self, name: str) -> int:
        """Index of the node called ``name``."""
        try:
            return self.node_names.index(name)
        except ValueError:
            raise ConfigurationError(f"no thermal node named {name!r}") from None

    def steady_state(self, power: np.ndarray) -> np.ndarray:
        """Equilibrium temperatures for a constant power vector (W)."""
        power = np.asarray(power, dtype=float)
        rise = self._laplacian_inv @ power
        return self.ambient_temp + rise

    def thermal_resistance(self, node: int, source: int) -> float:
        """Steady-state K/W at ``node`` per watt injected at ``source``."""
        return float(self._laplacian_inv[node, source])

    def time_constants(self) -> np.ndarray:
        """Sorted (ascending) eigen time-constants of the network, seconds."""
        eigvals = np.linalg.eigvals(self._a_matrix)
        return np.sort(-1.0 / np.real(eigvals))

    def propagator(self, h: float) -> np.ndarray:
        """``expm(A h)`` with LRU caching on the (rounded) step length."""
        return self.step_kernel(h).propagator

    def step_kernel(self, h: float) -> StepKernel:
        """The fused substep kernel for step length ``h`` (LRU-cached).

        One entry per distinct rounded ``h`` holds ``E(h)`` together
        with the power-injection matrix and ambient shift, so both the
        scalar and the fused integration paths share the same cache.
        """
        key = round(float(h), 9)
        kernel = self._expm_cache.get(key)
        if kernel is not None:
            self._expm_cache.move_to_end(key)
            self._metric_cache_hits.inc()
            return kernel
        self._metric_cache_misses.inc()
        propagator = expm(self._a_matrix * key)
        complement = np.eye(self.num_nodes) - propagator
        inject = complement @ self._laplacian_inv
        ambient_shift = complement @ np.full(self.num_nodes, self.ambient_temp)
        kernel = StepKernel(
            propagator=propagator,
            inject=inject,
            ambient_shift=ambient_shift,
            fused=np.hstack([propagator, inject, ambient_shift[:, None]]),
        )
        self._expm_cache[key] = kernel
        if len(self._expm_cache) > self._expm_cache_size:
            self._expm_cache.popitem(last=False)
            self._metric_cache_evictions.inc()
        return kernel

    @property
    def expm_cache_len(self) -> int:
        """Number of step kernels currently cached."""
        return len(self._expm_cache)


@dataclass
class AdvanceResult:
    """Outcome of one :meth:`ThermalIntegrator.advance` call."""

    #: Total energy delivered into the network over the interval, J.
    energy: float
    #: Time-averaged total power over the interval, W.
    average_power: float


class ThermalIntegrator:
    """Advances a :class:`ThermalNetwork` through time.

    The integrator owns the temperature state (:attr:`temps`, shape
    ``(nodes,)``, °C).  Every advance cuts its interval into
    ``ceil(duration / max_substep)`` equal substeps and advances each
    one exactly for the power evaluated at its starting temperatures.
    The simulation hot path is :meth:`advance_coefficients` (fused,
    allocation-free); :meth:`advance` is the scalar reference oracle a
    Python power callback plugs into, kept for validation and for
    callers whose power is not an affine-exponential decomposition.
    """

    def __init__(
        self,
        network: ThermalNetwork,
        initial_temps: Optional[np.ndarray] = None,
        max_substep: float = 5e-3,
    ):
        if max_substep <= 0:
            raise ConfigurationError("max_substep must be positive")
        self.network = network
        self.max_substep = float(max_substep)
        scope = _metrics_registry().scope("thermal.rcnetwork")
        self._metric_advances = scope.counter("advances")
        self._metric_substeps = scope.counter("substeps")
        self._metric_fused_advances = scope.counter("fused_advances")
        if initial_temps is None:
            self.temps = np.full(network.num_nodes, network.ambient_temp, dtype=float)
        else:
            self.temps = np.array(initial_temps, dtype=float)
            if self.temps.shape != (network.num_nodes,):
                raise ConfigurationError("initial temperature vector has wrong length")
        # Preallocated work vectors for the fused path.  The stacked
        # state buffers hold [T, P, 1]; one substep writes P into the
        # middle block and new temperatures into the partner buffer's
        # head block via a single gemv, with zero allocations.
        n = network.num_nodes
        self._power_buffer = np.empty(n)
        self._energy_buffer = np.empty(n)
        self._state_a = np.zeros(2 * n + 1)
        self._state_b = np.zeros(2 * n + 1)
        self._state_a[2 * n] = 1.0
        self._state_b[2 * n] = 1.0

    def advance(self, duration: float, power_fn: PowerFunction) -> AdvanceResult:
        """Integrate forward by ``duration`` seconds.

        ``power_fn(temps)`` is re-evaluated at the start of every
        substep, which is how leakage–temperature feedback enters.
        Returns the energy delivered and average power, which the power
        meter uses for exact energy accounting.
        """
        if duration < 0:
            raise ConfigurationError(f"cannot integrate a negative duration {duration}")
        if duration == 0:
            power = np.asarray(power_fn(self.temps), dtype=float)
            return AdvanceResult(energy=0.0, average_power=float(power.sum()))

        network = self.network
        energy = 0.0
        # Use a uniform substep: ceil(duration / max_substep) equal pieces.
        n_steps = max(1, int(np.ceil(duration / self.max_substep - 1e-12)))
        h = duration / n_steps
        self._metric_advances.inc()
        self._metric_substeps.inc(n_steps)
        propagator = network.propagator(h)
        temps = self.temps
        for _ in range(n_steps):
            power = np.asarray(power_fn(temps), dtype=float)
            energy += float(power.sum()) * h
            t_ss = network.steady_state(power)
            temps = t_ss + propagator @ (temps - t_ss)
        self.temps = temps
        return AdvanceResult(energy=energy, average_power=energy / duration)

    def advance_coefficients(
        self, duration: float, coefficients: "PowerCoefficients"
    ) -> AdvanceResult:
        """Integrate forward by ``duration`` seconds on the fused path.

        Parameters
        ----------
        duration:
            Interval length, seconds (≥ 0).  Cut into
            ``ceil(duration / max_substep)`` equal substeps.
        coefficients:
            Segment-constant affine-exponential power decomposition
            (:class:`repro.cpu.power.PowerCoefficients`, or anything
            with its ``evaluate``/``fused_terms`` contract): per-node
            ``base`` and ``leak_coef`` arrays of shape ``(nodes,)`` in
            watts, plus the shared leakage-exponential constants.

        Returns
        -------
        AdvanceResult
            Energy delivered over the interval (J) and its time
            average (W); :attr:`temps` holds the end-of-interval node
            temperatures (°C).

        Per substep this costs the folded leakage chain (multiply,
        clip, exp, multiply, add) plus one gemv of the stacked
        ``(nodes, 2·nodes+1)`` kernel against the ``[T, P, 1]`` state
        buffer — no Python per-core loop, no ``steady_state`` solve,
        no allocation.  Energy is accumulated vectorially per node and
        reduced once at the end.  Numerically equivalent to
        :meth:`advance` with the matching power callback (same
        propagator, algebraically identical update).
        """
        if duration < 0:
            raise ConfigurationError(f"cannot integrate a negative duration {duration}")
        if duration == 0:
            power = coefficients.evaluate(self.temps, out=self._power_buffer)
            return AdvanceResult(energy=0.0, average_power=float(power.sum()))

        n_steps = max(1, int(np.ceil(duration / self.max_substep - 1e-12)))
        h = duration / n_steps
        self._metric_advances.inc()
        self._metric_substeps.inc(n_steps)
        self._metric_fused_advances.inc()
        fused = self.network.step_kernel(h).fused
        inv_slope, arg_cap, scaled_coef = coefficients.fused_terms()
        base = coefficients.base
        n = self.temps.shape[0]
        state, other = self._state_a, self._state_b
        s_temps, s_power = state[:n], state[n : 2 * n]
        o_temps, o_power = other[:n], other[n : 2 * n]
        s_temps[:] = self.temps
        acc = self._energy_buffer
        acc.fill(0.0)
        multiply, minimum, add, vexp, dot = np.multiply, np.minimum, np.add, np.exp, np.dot
        for _ in range(n_steps):
            # P = base + scaled_coef * exp(min(T / slope, capped arg))
            multiply(s_temps, inv_slope, out=s_power)
            minimum(s_power, arg_cap, out=s_power)
            vexp(s_power, out=s_power)
            multiply(s_power, scaled_coef, out=s_power)
            add(s_power, base, out=s_power)
            add(acc, s_power, out=acc)
            dot(fused, state, out=o_temps)
            state, other = other, state
            s_temps, s_power, o_temps, o_power = o_temps, o_power, s_temps, s_power
        self.temps = s_temps.copy()
        energy = float(acc.sum()) * h
        return AdvanceResult(energy=energy, average_power=energy / duration)

    def settle(
        self,
        power_fn: PowerFunction,
        *,
        tolerance: float = 1e-6,
        max_iterations: int = 20000,
        max_time: float = 3600.0,
    ) -> np.ndarray:
        """Run to (nonlinear) steady state under a fixed power function.

        Uses fixed-point iteration on the linear steady state.  The map
        ``T -> steady_state(P(T))`` is a monotone contraction whenever
        the leakage feedback loop gain is below one (physically: no
        thermal runaway); near the gain's fold the contraction factor
        approaches one, so many cheap iterations may be needed.  Falls
        back to time integration if the fixed point fails to converge.
        """
        temps = self.temps.copy()
        for _ in range(max_iterations):
            power = np.asarray(power_fn(temps), dtype=float)
            new_temps = self.network.steady_state(power)
            if np.max(np.abs(new_temps - temps)) < tolerance:
                self.temps = new_temps
                return new_temps
            temps = new_temps
        # Fixed point did not converge; integrate instead.
        self.temps = temps
        elapsed = 0.0
        chunk = 5.0
        while elapsed < max_time:
            before = self.temps.copy()
            self.advance(chunk, power_fn)
            elapsed += chunk
            if np.max(np.abs(self.temps - before)) < tolerance:
                break
        return self.temps


class FleetThermalIntegrator:
    """Advances ``N`` independent copies of one network in lockstep.

    The fleet's temperature state is a single structure-of-arrays
    ``(machines, nodes)`` float array (:attr:`temps`, °C) — machine
    ``j``'s nodes are row ``j``, in the same node order a standalone
    :class:`ThermalIntegrator` uses.  :meth:`advance_machines` moves
    any subset of machines forward by a common duration: the selected
    rows are gathered into one stacked ``(2·nodes+1, K)`` state block
    ``[T; P; 1]`` (machines along columns, so the temperature block
    stays contiguous for the matmul output) and every substep costs
    one elementwise leakage chain on ``(nodes, K)`` blocks plus a
    single ``(nodes, 2·nodes+1) @ (2·nodes+1, K)`` matmul — the
    single-chip fused kernel's gemv widened to a gemm over the cohort.

    Equivalence guarantees, relied on by the fleet tests:

    - a cohort of one machine (``K = 1``) runs the *identical*
      operation sequence as :meth:`ThermalIntegrator.advance_coefficients`
      — 1-D buffers, same ufunc chain, same gemv — so a fleet of one
      machine reproduces a standalone machine bit for bit;
    - for ``K > 1`` the gemm accumulates in a different order than K
      gemvs, so per-substep results agree to float rounding (not
      bitwise); over any simulated horizon the accumulated difference
      stays far below the repo-wide 1e-9 °C equivalence pin because
      the propagator is a contraction.

    Substep lengths come from the same ``ceil(duration / max_substep)``
    rule as the single-chip integrator, and step kernels come from the
    *shared* :class:`ThermalNetwork` LRU — a fleet of homogeneous
    machines pays for each ``expm`` once, not ``N`` times.

    Telemetry (``fleet`` scope): ``machines`` gauge, ``substeps``
    counter in *chip-substeps* (``n_steps × K`` per advance, additive
    with what ``N`` standalone integrators would have counted),
    ``batched_advances`` counter, and the ``advance_wall`` timer over
    every batched advance.
    """

    def __init__(
        self,
        network: ThermalNetwork,
        num_machines: int,
        initial_temps: Optional[np.ndarray] = None,
        max_substep: float = 5e-3,
    ):
        if num_machines < 1:
            raise ConfigurationError("a fleet needs at least one machine")
        if max_substep <= 0:
            raise ConfigurationError("max_substep must be positive")
        self.network = network
        self.num_machines = int(num_machines)
        self.max_substep = float(max_substep)
        n = network.num_nodes
        if initial_temps is None:
            self.temps = np.full((num_machines, n), network.ambient_temp, dtype=float)
        else:
            initial = np.asarray(initial_temps, dtype=float)
            if initial.shape == (n,):
                self.temps = np.tile(initial, (num_machines, 1))
            elif initial.shape == (num_machines, n):
                self.temps = initial.copy()
            else:
                raise ConfigurationError(
                    f"initial temperatures must be ({n},) or "
                    f"({num_machines}, {n}), got {initial.shape}"
                )
        scope = _metrics_registry().scope("fleet")
        scope.gauge("machines").set(num_machines)
        self._metric_substeps = scope.counter("substeps")
        self._metric_batched_advances = scope.counter("batched_advances")
        self._metric_advance_wall = scope.timer("advance_wall")
        # Stacked-state scratch, one pair per cohort width K (cohort
        # widths repeat heavily, so this is a handful of entries).  The
        # bottom row of each state block is the constant 1.0 the fused
        # kernel's ambient column multiplies; it is written once here
        # and never touched by the substep loop.
        self._scratch: dict = {}
        # 1-D buffers for the K=1 bit-match path, mirroring
        # ThermalIntegrator's layout exactly.
        self._vec_state_a = np.zeros(2 * n + 1)
        self._vec_state_b = np.zeros(2 * n + 1)
        self._vec_state_a[2 * n] = 1.0
        self._vec_state_b[2 * n] = 1.0
        self._vec_energy = np.empty(n)

    # ------------------------------------------------------------------
    def machine_temps(self, machine: int) -> np.ndarray:
        """Copy of one machine's node temperatures, shape ``(nodes,)`` °C."""
        return self.temps[machine].copy()

    def _cohort_scratch(self, width: int):
        buffers = self._scratch.get(width)
        if buffers is None:
            n = self.network.num_nodes
            state_a = np.zeros((2 * n + 1, width))
            state_b = np.zeros((2 * n + 1, width))
            state_a[2 * n] = 1.0
            state_b[2 * n] = 1.0
            buffers = (state_a, state_b, np.empty((n, width)))
            self._scratch[width] = buffers
        return buffers

    def advance_machines(
        self,
        machines: Sequence[int],
        duration: float,
        coefficients,
    ) -> np.ndarray:
        """Advance a cohort of machines by a common ``duration``.

        Parameters
        ----------
        machines:
            Row indices of the machines to advance (a cohort must share
            the duration, hence the substep length ``h``).
        duration:
            Interval length, seconds (> 0).
        coefficients:
            :class:`repro.cpu.power.FleetCoefficients` whose columns
            line up with ``machines``: ``base``/``scaled_coef`` of
            shape ``(nodes, K)`` in watts plus the shared scalar
            leakage constants.

        Returns
        -------
        numpy.ndarray
            Energy delivered per machine over the interval, shape
            ``(K,)``, joules.
        """
        count = len(machines)
        if count == 0:
            return np.empty(0)
        if duration <= 0:
            raise ConfigurationError(
                f"cohort advance needs a positive duration, got {duration}"
            )
        if coefficients.num_machines != count:
            raise ConfigurationError(
                f"coefficient stack is {coefficients.num_machines} machines "
                f"wide, cohort has {count}"
            )
        with self._metric_advance_wall.time():
            n_steps = max(1, int(np.ceil(duration / self.max_substep - 1e-12)))
            h = duration / n_steps
            self._metric_substeps.inc(n_steps * count)
            self._metric_batched_advances.inc()
            fused = self.network.step_kernel(h).fused
            if count == 1:
                energy = self._advance_single(
                    machines[0], n_steps, fused, coefficients
                )
                return np.array([energy * h])
            base = coefficients.base
            scaled_coef = coefficients.scaled_coef
            inv_slope = coefficients.inv_slope
            arg_cap = coefficients.arg_cap
            n = self.network.num_nodes
            state, other, acc = self._cohort_scratch(count)
            s_temps, s_power = state[:n], state[n : 2 * n]
            o_temps, o_power = other[:n], other[n : 2 * n]
            rows = self.temps[machines]  # (K, n) gather
            s_temps[:] = rows.T
            acc.fill(0.0)
            multiply, minimum, add, vexp, dot = (
                np.multiply,
                np.minimum,
                np.add,
                np.exp,
                np.dot,
            )
            for _ in range(n_steps):
                # P = base + scaled_coef * exp(min(T * inv_slope, arg_cap)),
                # all (nodes, K) blocks — same chain as the 1-D path.
                multiply(s_temps, inv_slope, out=s_power)
                minimum(s_power, arg_cap, out=s_power)
                vexp(s_power, out=s_power)
                multiply(s_power, scaled_coef, out=s_power)
                add(s_power, base, out=s_power)
                add(acc, s_power, out=acc)
                dot(fused, state, out=o_temps)
                state, other = other, state
                s_temps, s_power, o_temps, o_power = o_temps, o_power, s_temps, s_power
            self.temps[machines] = s_temps.T
            return acc.sum(axis=0) * h

    def _advance_single(self, machine: int, n_steps: int, fused, coefficients) -> float:
        """The K=1 path: bitwise the single-chip fused substep loop."""
        n = self.network.num_nodes
        base = coefficients.base[:, 0]
        scaled_coef = coefficients.scaled_coef[:, 0]
        inv_slope = coefficients.inv_slope
        arg_cap = coefficients.arg_cap
        state, other = self._vec_state_a, self._vec_state_b
        s_temps, s_power = state[:n], state[n : 2 * n]
        o_temps, o_power = other[:n], other[n : 2 * n]
        s_temps[:] = self.temps[machine]
        acc = self._vec_energy
        acc.fill(0.0)
        multiply, minimum, add, vexp, dot = (
            np.multiply,
            np.minimum,
            np.add,
            np.exp,
            np.dot,
        )
        for _ in range(n_steps):
            multiply(s_temps, inv_slope, out=s_power)
            minimum(s_power, arg_cap, out=s_power)
            vexp(s_power, out=s_power)
            multiply(s_power, scaled_coef, out=s_power)
            add(s_power, base, out=s_power)
            add(acc, s_power, out=acc)
            dot(fused, state, out=o_temps)
            state, other = other, state
            s_temps, s_power, o_temps, o_power = o_temps, o_power, s_temps, s_power
        self.temps[machine] = s_temps
        return float(acc.sum())
