"""Calibrated thermal constants for the simulated testbed.

The values below are chosen so the simulated platform matches the
observable behaviour the paper reports for its Xeon E5520 server
(§3.2, §3.4):

- idle core temperature around 38 °C with a 25.2 °C room setpoint,
- unconstrained cpuburn core temperature rise over idle around 20 °C
  (Figure 2's y-axis spans 0–20 °C),
- core temperatures stabilise after roughly 300 s of cpuburn, which
  pins the heatsink time constant to several tens of seconds,
- cores "cool exponentially quickly within a short time window"
  (Figure 3's discussion), which requires a die time constant of a few
  tens of milliseconds.

``fast()`` returns a variant with a smaller heatsink capacitance for
CI-friendly benchmark runs: the steady-state physics (resistances,
power model interaction) is identical, only transients compress, so the
relative temperature metrics the paper reports are preserved.
EXPERIMENTS.md records which mode produced each number.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ThermalParams:
    """Physical constants of the package thermal stack."""

    #: Room/intake temperature, °C (paper: thermostat at 25.2 °C).
    room_temp: float = 25.2
    #: Additional chassis-internal air rise above room, °C.
    case_air_rise: float = 4.0

    #: Core (die quadrant) heat capacity, J/K.
    core_capacitance: float = 0.11
    #: Heat spreader capacitance, J/K.
    spreader_capacitance: float = 12.0
    #: Heatsink capacitance, J/K.
    sink_capacitance: float = 300.0

    #: Core -> spreader conductance, W/K (vertical through TIM).
    core_to_spreader: float = 2.6
    #: Adjacent core -> core lateral conductance, W/K.
    core_to_core: float = 0.9
    #: Spreader -> heatsink conductance, W/K.
    spreader_to_sink: float = 18.0
    #: Heatsink -> case air conductance at full fan speed, W/K
    #: (paper: fans fixed at full speed by an external controller).
    sink_to_ambient: float = 4.5

    #: Default integrator substep, s.
    max_substep: float = 5e-3

    #: Bound on the network's step-kernel (matrix exponential) LRU
    #: cache: distinct substep lengths kept before eviction.  Scheduler
    #: runs reuse a handful of lengths, so the default is generous; the
    #: bound exists so sweeps with pathological substep diversity cannot
    #: grow the cache without limit.
    expm_cache_size: int = 64

    @property
    def ambient_temp(self) -> float:
        """Effective ambient seen by the heatsink, °C."""
        return self.room_temp + self.case_air_rise

    @property
    def sink_time_constant(self) -> float:
        """Dominant (heatsink) time constant, s."""
        return self.sink_capacitance / self.sink_to_ambient

    @property
    def core_time_constant(self) -> float:
        """Approximate core-local time constant, s."""
        return self.core_capacitance / (self.core_to_spreader + 2 * self.core_to_core)


def default() -> ThermalParams:
    """Constants calibrated against the paper's platform behaviour."""
    return ThermalParams()


def fast() -> ThermalParams:
    """Compressed-transient variant for quick benchmark runs.

    Heatsink and spreader capacitances are scaled down 8x so thermal
    equilibrium is reached in well under 100 simulated seconds instead
    of several hundred (leakage feedback stretches the effective time
    constant by 1/(1-gain) at the hot end, which in *full* mode is what
    reproduces the paper's "stabilized after approximately 300 s").
    Resistances are untouched: steady-state temperatures, and therefore
    all *relative* temperature-reduction metrics, are unchanged.  The
    die time constant is also untouched so short-idle-quantum physics
    (the heart of the paper) is identical.
    """
    base = default()
    return replace(
        base,
        spreader_capacitance=base.spreader_capacitance / 8.0,
        sink_capacitance=base.sink_capacitance / 8.0,
        max_substep=5e-3,
    )
