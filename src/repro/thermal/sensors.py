"""Simulated on-die temperature sensors.

The paper reads per-core temperatures through FreeBSD's ``coretemp``
module.  Real digital thermal sensors quantise to 1 °C and carry a few
tenths of a degree of noise; both effects are modelled so analysis code
is exercised against realistic data.  Sensors can also be configured
ideal (no noise, no quantisation) for model-validation tests.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError


class TemperatureSensor:
    """A quantised, noisy view of one thermal node."""

    def __init__(
        self,
        node_index: int,
        *,
        quantization: float = 1.0,
        noise_std: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if quantization < 0 or noise_std < 0:
            raise ConfigurationError("sensor quantization/noise must be non-negative")
        if noise_std > 0 and rng is None:
            raise ConfigurationError("a noisy sensor needs an RNG stream")
        self.node_index = node_index
        self.quantization = quantization
        self.noise_std = noise_std
        self._rng = rng

    def read(self, temps: Sequence[float]) -> float:
        """Sample this sensor given the true node temperatures."""
        value = float(temps[self.node_index])
        if self.noise_std > 0:
            value += float(self._rng.normal(0.0, self.noise_std))
        if self.quantization > 0:
            value = round(value / self.quantization) * self.quantization
        return value


class SensorBank:
    """A set of per-core sensors read together, like ``coretemp``."""

    def __init__(self, sensors: Sequence[TemperatureSensor]):
        if not sensors:
            raise ConfigurationError("sensor bank needs at least one sensor")
        self.sensors = list(sensors)

    @classmethod
    def ideal(cls, node_indices: Sequence[int]) -> "SensorBank":
        """Noise-free, unquantised sensors (for model validation)."""
        return cls([TemperatureSensor(i, quantization=0.0) for i in node_indices])

    @classmethod
    def quantized(
        cls, node_indices: Sequence[int], *, quantization: float = 1.0
    ) -> "SensorBank":
        """Noise-free sensors with coretemp-like quantisation only.

        This is the health monitor's default view: deterministic (no
        RNG needed) but still coarser than true node state, so
        management-plane code never observes the physics directly.
        """
        return cls(
            [TemperatureSensor(i, quantization=quantization) for i in node_indices]
        )

    @classmethod
    def coretemp(
        cls,
        node_indices: Sequence[int],
        rng: np.random.Generator,
        *,
        quantization: float = 1.0,
        noise_std: float = 0.25,
    ) -> "SensorBank":
        """Sensors with coretemp-like 1 °C quantisation and mild noise."""
        return cls(
            [
                TemperatureSensor(i, quantization=quantization, noise_std=noise_std, rng=rng)
                for i in node_indices
            ]
        )

    def read(self, temps: Sequence[float]) -> np.ndarray:
        """Read every sensor; returns an array of per-core readings."""
        return np.array([sensor.read(temps) for sensor in self.sensors])
