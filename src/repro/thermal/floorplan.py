"""Builds the chip thermal network from a floorplan description.

The modelled stack mirrors a lidded Nehalem-class package:

- one die node per core (cores laid out in a row, laterally coupled
  through the silicon/spreader),
- a copper heat-spreader node (also receives uncore power),
- a heatsink node coupled to chassis air at a fixed temperature
  (fans pinned at full speed, per the paper's setup).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import ConfigurationError
from .params import ThermalParams
from .rcnetwork import ThermalNetwork

#: Node name of the heat spreader.
SPREADER = "spreader"
#: Node name of the heatsink.
SINK = "sink"


def core_node_name(index: int) -> str:
    """Thermal node name for core ``index``."""
    return f"core{index}"


def build_network(params: ThermalParams, num_cores: int = 4) -> ThermalNetwork:
    """Construct the package thermal network.

    Layout: ``num_cores`` die nodes, then the spreader, then the sink.
    Returns a :class:`~repro.thermal.rcnetwork.ThermalNetwork` whose
    node order is ``[core0, ..., coreN-1, spreader, sink]``.
    """
    if num_cores < 1:
        raise ConfigurationError("need at least one core")

    n = num_cores + 2
    spreader = num_cores
    sink = num_cores + 1

    capacitances = np.empty(n)
    capacitances[:num_cores] = params.core_capacitance
    capacitances[spreader] = params.spreader_capacitance
    capacitances[sink] = params.sink_capacitance

    conductances = np.zeros((n, n))
    for i in range(num_cores):
        conductances[i, spreader] = params.core_to_spreader
        conductances[spreader, i] = params.core_to_spreader
    for i in range(num_cores - 1):
        conductances[i, i + 1] = params.core_to_core
        conductances[i + 1, i] = params.core_to_core
    conductances[spreader, sink] = params.spreader_to_sink
    conductances[sink, spreader] = params.spreader_to_sink

    ambient = np.zeros(n)
    ambient[sink] = params.sink_to_ambient

    names: List[str] = [core_node_name(i) for i in range(num_cores)] + [SPREADER, SINK]
    return ThermalNetwork(
        capacitances=capacitances,
        conductances=conductances,
        ambient_conductances=ambient,
        ambient_temp=params.ambient_temp,
        node_names=names,
        expm_cache_size=params.expm_cache_size,
    )
