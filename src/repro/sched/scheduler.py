"""The CPU scheduler: per-core dispatch with the Dimetrodon hook.

This reproduces the structure of the paper's modified FreeBSD 4.4BSD
scheduler (§3.1):

- a global multi-level feedback runqueue with a fixed 100 ms timeslice,
- per-core dispatch: when a core needs work it pulls the
  highest-priority READY thread,
- **the Dimetrodon hook**: before dispatching the selected thread, the
  injector is consulted; if it orders an idle quantum, the thread is
  *pinned* (held off the runqueue so no other core runs it) and the
  core runs the kernel idle thread for ``L`` seconds, after which the
  thread is unpinned and made runnable again,
- context-switch and idle-state wake-up costs are charged on every
  dispatch, which is what makes measured throughput land slightly below
  the analytical model (§3.3 reports ≈1 %).

The scheduler only mutates chip core states and schedules events; all
power/thermal integration happens lazily in the machine's clock-advance
listener, so scheduler logic stays exact regardless of thermal substeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..cpu.chip import Chip, Core
from ..errors import SchedulerError
from ..sim.engine import Event, Simulator
from ..telemetry.registry import registry as _metrics_registry
from .runqueue import MultiLevelFeedbackQueue
from .thread import Thread, ThreadState

if False:  # pragma: no cover - import cycle breaker, type hints only
    from ..core.injector import IdleInjector

#: Tolerance for "this burst is finished" comparisons, in work-seconds.
_WORK_EPSILON = 1e-12


@dataclass
class CoreSlot:
    """Scheduler-side state for one hardware thread context.

    With SMT disabled (the paper's configuration, §3.2) there is one
    slot per core; with SMT enabled each core contributes ``smt`` slots
    that share its thermal/power state.
    """

    core: Core
    context: int = 0
    current: Optional[Thread] = None
    #: True while an injected idle quantum occupies this context.
    injected: bool = False
    #: True while the context is naturally idle (empty runqueue).
    idle: bool = False
    slice_end: Optional[Event] = None
    #: (start, exec_wall, speed, overhead) of the running slice.
    slice_info: tuple = (0.0, 0.0, 1.0, 0.0)


@dataclass
class SchedulerStats:
    """Aggregate dispatch statistics."""

    dispatches: int = 0
    context_switches: int = 0
    injected_quanta: int = 0
    natural_idle_entries: int = 0
    #: Sibling contexts preempted to co-schedule an idle quantum (SMT).
    co_scheduled_idles: int = 0
    #: Threads preempted mid-slice (SMT co-scheduling or termination).
    forced_preemptions: int = 0


class Scheduler:
    """Dispatches threads onto cores; hosts the Dimetrodon hook."""

    def __init__(
        self,
        sim: Simulator,
        chip: Chip,
        *,
        quantum: float = 0.100,
        context_switch_cost: float = 30e-6,
        injector: Optional["IdleInjector"] = None,
        runqueue: Optional[MultiLevelFeedbackQueue] = None,
    ):
        if quantum <= 0:
            raise SchedulerError(f"quantum must be positive, got {quantum}")
        if context_switch_cost < 0:
            raise SchedulerError("context switch cost cannot be negative")
        self.sim = sim
        self.chip = chip
        self.quantum = quantum
        self.context_switch_cost = context_switch_cost
        self.injector = injector
        # Note: an empty runqueue is falsy, so test identity, not truth.
        self.runqueue = runqueue if runqueue is not None else MultiLevelFeedbackQueue()
        self.slots: List[CoreSlot] = [
            CoreSlot(core=core, context=context)
            for core in chip.cores
            for context in range(core.smt)
        ]
        self.threads: List[Thread] = []
        self.stats = SchedulerStats()
        scope = _metrics_registry().scope("sched.scheduler")
        self._metric_dispatches = scope.counter("dispatches")
        self._metric_injected_quanta = scope.counter("injected_quanta")
        self._metric_preemptions = scope.counter("forced_preemptions")
        #: Callbacks fired as ``callback(thread, now)`` when a thread exits.
        self.exit_listeners: List[Callable[[Thread, float], None]] = []
        #: Structured-event listeners (see repro.instruments.trace).
        self.event_listeners: List[Callable[..., None]] = []
        self._started = False

    def _emit(
        self, kind: str, slot: Optional[CoreSlot] = None, thread: Optional[Thread] = None
    ) -> None:
        """Publish a scheduler event to any attached tracers."""
        if not self.event_listeners:
            return
        from ..instruments.trace import SchedEvent  # deferred: optional dep

        event = SchedEvent(
            time=self.sim.now,
            kind=kind,
            core=slot.core.index if slot else None,
            context=slot.context if slot else None,
            tid=thread.tid if thread else None,
            thread=thread.name if thread else None,
        )
        for listener in self.event_listeners:
            listener(event)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Mark all cores idle at the current time. Call once, before run."""
        if self._started:
            raise SchedulerError("scheduler already started")
        self._started = True
        now = self.sim.now
        for slot in self.slots:
            slot.idle = True
            slot.core.set_context_idle(slot.context, now)

    def siblings(self, slot: CoreSlot) -> List[CoreSlot]:
        """The other hardware contexts sharing ``slot``'s core."""
        return [
            other
            for other in self.slots
            if other.core is slot.core and other.context != slot.context
        ]

    def add_thread(self, thread: Thread, *, start_at: float = 0.0) -> Thread:
        """Register a thread; it becomes runnable at ``start_at``."""
        if thread.state is not ThreadState.NEW or thread in self.threads:
            raise SchedulerError(f"thread {thread.name} was already added")
        self.threads.append(thread)
        self.sim.schedule_at(max(start_at, self.sim.now), self._thread_start, thread)
        return thread

    def spawn(self, workload, **thread_kwargs) -> Thread:
        """Convenience: build a thread around ``workload`` and add it."""
        thread = Thread(workload, **thread_kwargs)
        return self.add_thread(thread)

    # ------------------------------------------------------------------
    # Public control
    # ------------------------------------------------------------------
    def wake(self, thread: Thread) -> None:
        """Wake a BLOCKED thread (used by request queues etc.)."""
        if thread.state is not ThreadState.BLOCKED:
            return
        self._emit("wake", None, thread)
        self.runqueue.on_wakeup(thread)
        self._load_and_queue(thread)

    def preempt(self, thread: Thread) -> bool:
        """Forcibly preempt a RUNNING thread mid-slice.

        Partial progress is accounted and the thread goes back on the
        runqueue READY (it may be re-dispatched anywhere its affinity
        allows).  Returns True if the thread was actually running.
        Used by migration policies and SMT co-scheduling.
        """
        for slot in self.slots:
            if slot.current is thread:
                self._preempt(slot)
                self._dispatch(slot)
                return True
        return False

    def running_on(self, thread: Thread) -> Optional[CoreSlot]:
        """The slot currently executing ``thread``, if any."""
        for slot in self.slots:
            if slot.current is thread:
                return slot
        return None

    def terminate(self, thread: Thread) -> None:
        """Kill a thread (the moral equivalent of SIGKILL).

        A RUNNING thread finishes its current slice first (the kernel
        can only act at the next scheduling point); every other state
        exits immediately.  Idempotent.
        """
        if not thread.alive:
            return
        if thread.state is ThreadState.RUNNING:
            thread.terminate_requested = True
            return
        if thread.state is ThreadState.READY:
            self.runqueue.remove(thread)
        # SLEEPING / BLOCKED / PINNED / NEW: their pending events check
        # the state before re-queuing, so marking EXITED suffices.
        self._exit_thread(thread)

    def _exit_thread(self, thread: Thread) -> None:
        self._emit("exit", None, thread)
        thread.state = ThreadState.EXITED
        thread.stats.exit_time = self.sim.now
        for listener in self.exit_listeners:
            listener(thread, self.sim.now)

    @property
    def alive_threads(self) -> List[Thread]:
        return [t for t in self.threads if t.alive]

    # ------------------------------------------------------------------
    # Thread lifecycle
    # ------------------------------------------------------------------
    def _thread_start(self, thread: Thread) -> None:
        self._load_and_queue(thread)

    def _load_and_queue(self, thread: Thread) -> None:
        """Fetch the thread's next burst and queue/block/exit accordingly."""
        action = thread.advance_burst()
        if action == "exit":
            self._exit_thread(thread)
            return
        if action == "block":
            thread.state = ThreadState.BLOCKED
            return
        thread.state = ThreadState.READY
        self.runqueue.enqueue(thread)
        self._kick_idle_cores()

    def _timed_wake(self, thread: Thread) -> None:
        if thread.state is not ThreadState.SLEEPING:
            return
        self.runqueue.on_wakeup(thread)
        self._load_and_queue(thread)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _kick_idle_cores(self) -> None:
        """Give newly-runnable work to idle (but not injected) cores."""
        for slot in self.slots:
            if not self.runqueue:
                break
            if slot.current is None and not slot.injected:
                self._dispatch(slot)

    def _dispatch(self, slot: CoreSlot) -> None:
        """Pick the next thread for ``slot`` — the Dimetrodon hook site."""
        if slot.current is not None or slot.injected:
            return
        now = self.sim.now
        thread = self.runqueue.dequeue(core_index=slot.core.index)
        if thread is None:
            # Natural idle: the context halts until work is kicked to it.
            if not slot.idle:
                slot.idle = True
                slot.core.set_context_idle(slot.context, now)
                self.stats.natural_idle_entries += 1
                self._emit("idle", slot)
            return

        decision = self.injector.decide(thread, now) if self.injector else None
        if decision is not None:
            self._inject_idle(slot, thread, decision)
        else:
            self._run_thread(slot, thread)

    def _inject_idle(self, slot: CoreSlot, thread: Thread, decision) -> None:
        """Pin the chosen thread and run the idle thread for L seconds."""
        from ..core.injector import IdleMode  # deferred: import cycle

        now = self.sim.now
        thread.state = ThreadState.PINNED
        thread.stats.injected_count += 1
        thread.stats.injected_time += decision.length
        self.stats.injected_quanta += 1
        self._metric_injected_quanta.inc()
        slot.injected = True
        slot.idle = False
        self._emit("inject", slot, thread)
        if decision.mode is IdleMode.SPIN:
            # Nop loop: the context stays in C0 at low switching activity.
            nop = self.chip.power_model.params.nop_loop_fraction
            slot.core.set_context_running(slot.context, None, nop, now)
        else:
            # The scheduler knows this idle period lasts L: hinted idle.
            slot.core.set_context_idle(slot.context, now, hinted=True)
            if decision.co_schedule and slot.core.smt > 1:
                self._co_schedule_idle(slot, decision.length)
        self.sim.schedule(decision.length, self._end_injection, slot, thread)

    def _co_schedule_idle(self, slot: CoreSlot, length: float) -> None:
        """Idle the sibling hardware contexts for the same quantum.

        §3.2: "In order to cause the entire core to enter the C1E low
        power state we need to halt all thread contexts on the core.
        This is feasible but requires additional care in co-scheduling
        idle quanta" — this is that care.  A sibling that is running is
        preempted mid-slice (its partial progress is accounted) and its
        thread goes back on the runqueue, NOT pinned: only the thread
        that triggered the injection absorbs the policy's slowdown.
        """
        now = self.sim.now
        for sibling in self.siblings(slot):
            if sibling.injected:
                continue  # already idling for its own quantum
            # Mark injected *before* preempting so the requeue kick
            # cannot immediately re-dispatch onto this context.
            sibling.injected = True
            sibling.idle = False
            if sibling.current is not None:
                self._preempt(sibling)
            sibling.core.set_context_idle(sibling.context, now, hinted=True)
            self.stats.co_scheduled_idles += 1
            self.sim.schedule(length, self._end_injection, sibling, None)

    def _preempt(self, slot: CoreSlot) -> None:
        """Stop the running slice immediately, accounting partial work."""
        thread = slot.current
        if thread is None:
            return
        now = self.sim.now
        start, exec_wall, speed, overhead = slot.slice_info
        elapsed_exec = max(0.0, now - start - overhead)
        progress = min(elapsed_exec, exec_wall) * speed
        if slot.slice_end is not None:
            slot.slice_end.cancel()
        slot.current = None
        slot.slice_end = None
        thread.stats.cpu_wall_time += min(now - start, overhead + exec_wall)
        thread.stats.work_done += progress
        thread.remaining_work -= progress
        self.stats.forced_preemptions += 1
        self._metric_preemptions.inc()
        self._emit("preempt", slot, thread)

        if thread.terminate_requested:
            self._exit_thread(thread)
        elif thread.remaining_work <= _WORK_EPSILON:
            self._finish_burst(thread)
        else:
            thread.state = ThreadState.READY
            self.runqueue.enqueue(thread)
            self._kick_idle_cores()

    def _end_injection(self, slot: CoreSlot, thread: Optional[Thread]) -> None:
        """Unpin the thread and make it runnable again (§3.1).

        ``thread`` is None for a co-scheduled sibling context, which
        merely idled and has nothing to unpin.
        """
        slot.injected = False
        self._emit("inject_end", slot, thread)
        if thread is not None and thread.state is ThreadState.PINNED:
            thread.state = ThreadState.READY
            self.runqueue.enqueue(thread)
        self._dispatch(slot)
        # The unpinned thread may have been picked up by this core; if
        # not, offer it to any other idle core.
        self._kick_idle_cores()

    def _run_thread(self, slot: CoreSlot, thread: Thread) -> None:
        now = self.sim.now
        if thread.remaining_work <= _WORK_EPSILON:
            raise SchedulerError(f"dispatching {thread.name} with no work")
        overhead = self.context_switch_cost + slot.core.wake_latency(now)
        contention = any(s.current is not None for s in self.siblings(slot))
        speed = self.chip.speed_factor(
            thread.workload.cpu_fraction, core=slot.core, smt_contention=contention
        )
        exec_wall = min(self.quantum, thread.remaining_work / speed)

        thread.state = ThreadState.RUNNING
        thread.stats.scheduled_count += 1
        if thread.stats.first_run is None:
            thread.stats.first_run = now
        self.stats.dispatches += 1
        self.stats.context_switches += 1
        self._metric_dispatches.inc()

        slot.current = thread
        slot.idle = False
        slot.slice_info = (now, exec_wall, speed, overhead)
        slot.core.set_context_running(
            slot.context, thread, thread.workload.activity, now
        )
        self._emit("run", slot, thread)
        slot.slice_end = self.sim.schedule(overhead + exec_wall, self._end_slice, slot)

    def _end_slice(self, slot: CoreSlot) -> None:
        now = self.sim.now
        thread = slot.current
        if thread is None:
            raise SchedulerError("slice ended on an empty core")
        _start, exec_wall, speed, overhead = slot.slice_info
        slot.current = None
        slot.slice_end = None
        self._emit("slice_end", slot, thread)

        progress = exec_wall * speed
        thread.stats.cpu_wall_time += overhead + exec_wall
        thread.stats.work_done += progress
        thread.remaining_work -= progress

        if thread.terminate_requested:
            self._exit_thread(thread)
            self._dispatch(slot)
            return

        if thread.remaining_work <= _WORK_EPSILON:
            self._finish_burst(thread)
        else:
            # Quantum expired: feedback-penalise and requeue.
            thread.stats.preemptions += 1
            self.runqueue.on_quantum_expired(thread)
            thread.state = ThreadState.READY
            self.runqueue.enqueue(thread)
        self._dispatch(slot)

    def _finish_burst(self, thread: Thread) -> None:
        """Complete the current burst and route to sleep/next/exit."""
        burst = thread.complete_burst(self.sim.now)
        if burst.sleep_time > 0:
            thread.state = ThreadState.SLEEPING
            self.sim.schedule(burst.sleep_time, self._timed_wake, thread)
        else:
            self._load_and_queue(thread)
