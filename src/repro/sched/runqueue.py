"""A 4.4BSD-flavoured multi-level feedback runqueue.

The paper modified the FreeBSD 7.2 4.4BSD scheduler: a multi-level
feedback queue with a fixed 100 ms timeslice.  We keep the essential
dynamics — CPU hogs drift to lower priority levels, threads that sleep
or block get boosted back to the top on wake-up — with a global queue
shared by all cores (as in 4.4BSD).

The queue holds only READY threads.  PINNED threads (idle-injected) are
*off* the queue entirely, which is exactly the paper's mechanism: "we
pin the thread that would have run on the runqueue (so it is not run by
another processor)".
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional

from ..errors import SchedulerError
from .thread import Thread, ThreadState


class MultiLevelFeedbackQueue:
    """Global runqueue with ``num_levels`` priority levels."""

    def __init__(self, num_levels: int = 4):
        if num_levels < 1:
            raise SchedulerError("runqueue needs at least one level")
        self.num_levels = num_levels
        self._levels: List[Deque[Thread]] = [deque() for _ in range(num_levels)]
        self._enqueued: set = set()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._enqueued)

    def __contains__(self, thread: Thread) -> bool:
        return thread.tid in self._enqueued

    def __iter__(self) -> Iterator[Thread]:
        for level in self._levels:
            yield from level

    # ------------------------------------------------------------------
    def enqueue(self, thread: Thread) -> None:
        """Add a READY thread at its current level (at the tail)."""
        if thread.state is not ThreadState.READY:
            raise SchedulerError(
                f"cannot enqueue {thread.name} in state {thread.state.value}"
            )
        if thread.tid in self._enqueued:
            raise SchedulerError(f"thread {thread.name} is already enqueued")
        level = min(max(thread.queue_level, 0), self.num_levels - 1)
        thread.queue_level = level
        self._levels[level].append(thread)
        self._enqueued.add(thread.tid)

    def dequeue(self, core_index: Optional[int] = None) -> Optional[Thread]:
        """Pop the highest-priority eligible thread (RR within a level).

        When ``core_index`` is given, threads pinned to a different
        core by their CPU affinity are skipped.
        """
        for level in self._levels:
            for thread in level:
                if (
                    core_index is not None
                    and thread.affinity is not None
                    and thread.affinity != core_index
                ):
                    continue
                level.remove(thread)
                self._enqueued.discard(thread.tid)
                return thread
        return None

    def remove(self, thread: Thread) -> bool:
        """Remove a specific thread; returns True if it was queued."""
        if thread.tid not in self._enqueued:
            return False
        for level in self._levels:
            try:
                level.remove(thread)
            except ValueError:
                continue
            self._enqueued.discard(thread.tid)
            return True
        raise SchedulerError(f"queue bookkeeping corrupt for {thread.name}")

    # ------------------------------------------------------------------
    # Feedback rules
    # ------------------------------------------------------------------
    def on_quantum_expired(self, thread: Thread) -> None:
        """A thread that burned its full quantum drifts down one level."""
        thread.queue_level = min(thread.queue_level + 1, self.num_levels - 1)

    def on_wakeup(self, thread: Thread) -> None:
        """A thread that slept or blocked is boosted back to the top."""
        thread.queue_level = 0
