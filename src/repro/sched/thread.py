"""Kernel thread abstraction and per-thread accounting.

Mirrors the information the paper's FreeBSD implementation works with:
a thread is either a user thread (subject to idle injection by default)
or a kernel thread (exempt by the paper's policy, §3.1), has a position
in the multi-level feedback queue, and accumulates the statistics the
analytical model needs (times scheduled ``S``, CPU time ``R``, number
of injected idles).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..errors import SchedulerError

if False:  # pragma: no cover - import cycle breaker, type hints only
    from ..workloads.base import Burst, Workload

_tid_counter = itertools.count(1)


class ThreadKind(enum.Enum):
    """User threads are injectable; kernel threads are exempt by default."""

    USER = "user"
    KERNEL = "kernel"


class ThreadState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    SLEEPING = "sleeping"  # timed sleep
    BLOCKED = "blocked"  # waiting for an external wake
    PINNED = "pinned"  # held off the runqueue during an injected idle
    EXITED = "exited"


@dataclass
class ThreadStats:
    """Accounting used by experiments and the analytical model."""

    #: Wall-clock time spent occupying a core (incl. switch overheads), s.
    cpu_wall_time: float = 0.0
    #: Useful work completed, in full-speed CPU seconds.
    work_done: float = 0.0
    #: Times the thread was dispatched onto a core (the model's S).
    scheduled_count: int = 0
    #: Times an idle quantum was injected instead of running the thread.
    injected_count: int = 0
    #: Total injected idle time attributed to this thread, s.
    injected_time: float = 0.0
    #: Completed bursts (e.g. iterations of a periodic job, requests).
    bursts_completed: int = 0
    #: Quantum expirations (involuntary preemptions).
    preemptions: int = 0
    #: First time the thread ran, s (None until then).
    first_run: Optional[float] = None
    #: Exit time, s (None while alive).
    exit_time: Optional[float] = None


class Thread:
    """A schedulable thread bound to a workload."""

    def __init__(
        self,
        workload: "Workload",
        *,
        name: Optional[str] = None,
        kind: ThreadKind = ThreadKind.USER,
    ):
        self.tid: int = next(_tid_counter)
        self.workload = workload
        self.name = name or f"{workload.name}-{self.tid}"
        self.kind = kind
        self.state = ThreadState.NEW
        #: MLFQ level (0 = highest priority).
        self.queue_level = 0
        #: Restrict execution to one core index (None = run anywhere).
        self.affinity: Optional[int] = None
        #: Unix-style niceness in [-20, 19]; consumed by priority-aware
        #: injection policies (§2.1's "user-granted priority level").
        self.nice: int = 0
        self.stats = ThreadStats()
        self.current_burst: Optional["Burst"] = None
        #: Remaining full-speed CPU seconds in the current burst.
        self.remaining_work: float = 0.0
        #: Set by Scheduler.terminate on a RUNNING thread; honoured at
        #: the end of the current slice.
        self.terminate_requested: bool = False

    # ------------------------------------------------------------------
    @property
    def runnable(self) -> bool:
        return self.state is ThreadState.READY

    @property
    def alive(self) -> bool:
        return self.state is not ThreadState.EXITED

    def advance_burst(self) -> str:
        """Fetch the next burst from the workload.

        Returns one of ``"run"`` (a burst is loaded), ``"block"`` (the
        workload wants to wait), or ``"exit"``.
        """
        from ..workloads.base import BLOCK, Burst  # deferred: import cycle

        result = self.workload.next_burst()
        if result is None:
            return "exit"
        if result is BLOCK:
            return "block"
        if not isinstance(result, Burst):
            raise SchedulerError(
                f"workload {self.workload.name} returned {result!r}, "
                "expected Burst, BLOCK, or None"
            )
        self.current_burst = result
        self.remaining_work = result.cpu_time
        return "run"

    def complete_burst(self, now: float) -> Optional["Burst"]:
        """Mark the current burst finished; fires its callback."""
        burst = self.current_burst
        if burst is None:
            raise SchedulerError(f"thread {self.name} has no burst to complete")
        self.stats.bursts_completed += 1
        self.current_burst = None
        self.remaining_work = 0.0
        if burst.on_complete is not None:
            burst.on_complete(now)
        return burst

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Thread {self.tid} {self.name} {self.state.value}>"
