"""The control interface ("system calls") for Dimetrodon.

The paper controls Dimetrodon via system calls (§3.1).  This module is
the equivalent programmatic surface: a handle that user-level code (the
experiments, the closed-loop controller, an interactive operator) uses
to set per-thread and global injection policies and to query thread
statistics — without touching scheduler internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..errors import ConfigurationError
from .scheduler import Scheduler
from .thread import Thread

if False:  # pragma: no cover - import cycle breaker, type hints only
    from ..core.injector import IdleInjector


@dataclass(frozen=True)
class ThreadInfo:
    """Snapshot returned by :meth:`DimetrodonControl.thread_info`."""

    tid: int
    name: str
    state: str
    scheduled_count: int
    injected_count: int
    injected_time: float
    cpu_wall_time: float
    work_done: float


class DimetrodonControl:
    """User-facing policy control, mirroring the paper's syscalls."""

    def __init__(self, scheduler: Scheduler, rng: Optional[np.random.Generator] = None):
        if scheduler.injector is None:
            raise ConfigurationError("scheduler has no idle injector attached")
        self.scheduler = scheduler
        self.injector: "IdleInjector" = scheduler.injector
        self._rng = rng

    # ------------------------------------------------------------------
    # Policy control
    # ------------------------------------------------------------------
    def _make_policy(self, p: float, idle_quantum: float, deterministic: bool):
        from ..core.policy import (  # deferred: import cycle
            BernoulliInjectionPolicy,
            DeterministicInjectionPolicy,
            NoInjectionPolicy,
        )

        if p == 0.0:
            return NoInjectionPolicy()
        if deterministic:
            return DeterministicInjectionPolicy(p, idle_quantum)
        if self._rng is None:
            raise ConfigurationError(
                "a Bernoulli policy needs an RNG; construct DimetrodonControl "
                "with rng=... or pass deterministic=True"
            )
        return BernoulliInjectionPolicy(p, idle_quantum, self._rng)

    def set_global_policy(
        self, p: float, idle_quantum: float, *, deterministic: bool = False
    ) -> None:
        """Apply (p, L) to every thread without a per-thread override."""
        self.injector.set_default_policy(self._make_policy(p, idle_quantum, deterministic))

    def set_thread_policy(
        self, thread: Thread, p: float, idle_quantum: float, *, deterministic: bool = False
    ) -> None:
        """Apply (p, L) to one thread (the per-thread control of §3.6)."""
        self.injector.set_thread_policy(
            thread, self._make_policy(p, idle_quantum, deterministic)
        )

    def exempt_thread(self, thread: Thread) -> None:
        """Never inject into ``thread`` regardless of the global policy."""
        self.injector.exempt(thread)

    def apply_priority_scaled_policy(
        self,
        threads,
        base_p: float,
        idle_quantum: float,
        *,
        deterministic: bool = False,
        p_max: float = 0.97,
    ) -> None:
        """Scale injection aggressiveness by each thread's niceness.

        §2.1: the thermal manager can act on "a process's user-granted
        priority level".  A nice value of 0 gets ``base_p``; background
        work (positive nice) is injected harder, latency-critical work
        (negative nice) gentler, on a 2x-per-13-nice-points exponential
        — the same flavour of weighting the scheduler itself uses.
        """
        import numpy as np

        for thread in threads:
            scaled = float(np.clip(base_p * 2.0 ** (thread.nice / 13.0), 0.0, p_max))
            self.set_thread_policy(
                thread, scaled, idle_quantum, deterministic=deterministic
            )

    def clear_thread_policy(self, thread: Thread) -> None:
        """Return ``thread`` to the global default policy."""
        self.injector.table.clear_thread_policy(thread.tid)

    def disable(self) -> None:
        """Turn Dimetrodon off system-wide (race-to-idle behaviour)."""
        from ..core.policy import NoInjectionPolicy  # deferred: import cycle

        self.injector.set_default_policy(NoInjectionPolicy())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def thread_info(self, thread: Thread) -> ThreadInfo:
        stats = thread.stats
        return ThreadInfo(
            tid=thread.tid,
            name=thread.name,
            state=thread.state.value,
            scheduled_count=stats.scheduled_count,
            injected_count=stats.injected_count,
            injected_time=stats.injected_time,
            cpu_wall_time=stats.cpu_wall_time,
            work_done=stats.work_done,
        )

    def all_thread_info(self) -> Dict[int, ThreadInfo]:
        return {t.tid: self.thread_info(t) for t in self.scheduler.threads}
