"""OS scheduler substrate: threads, runqueue, dispatch, control surface."""

from .runqueue import MultiLevelFeedbackQueue
from .scheduler import CoreSlot, Scheduler, SchedulerStats
from .syscalls import DimetrodonControl, ThreadInfo
from .thread import Thread, ThreadKind, ThreadState, ThreadStats
from .ule import UleRunqueue

__all__ = [
    "CoreSlot",
    "DimetrodonControl",
    "MultiLevelFeedbackQueue",
    "Scheduler",
    "SchedulerStats",
    "Thread",
    "ThreadInfo",
    "ThreadKind",
    "ThreadState",
    "ThreadStats",
    "UleRunqueue",
]
