"""A ULE-flavoured runqueue: per-CPU queues with work stealing.

The paper modified the 4.4BSD scheduler "for simplicity of
implementation, however the mechanism generalizes to ULE and other
schedulers" (§3.1 footnote).  This module backs that claim with code:
:class:`UleRunqueue` is a drop-in replacement for the global MLFQ that
mirrors ULE's architecture —

- a runqueue *per CPU* (cache affinity: a thread is re-enqueued on the
  CPU it last ran on),
- *current*/*next* queue pairs per CPU: wakers (interactive threads)
  join the current queue and are dispatched before batch threads, which
  drop to the next queue on quantum expiry and swap in when current
  drains,
- *work stealing*: an idle CPU with an empty queue pulls from the most
  loaded one (respecting affinity).

The Dimetrodon hook lives in the dispatcher, not the queue, so idle
injection works unchanged on top — which is exactly the generality the
paper asserts, and what ``tests/test_sched_ule.py`` verifies against
the analytical model.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

from ..errors import SchedulerError
from .thread import Thread, ThreadState


class _CpuQueue:
    """One CPU's current/next queue pair."""

    def __init__(self) -> None:
        self.current: Deque[Thread] = deque()
        self.next: Deque[Thread] = deque()

    def __len__(self) -> int:
        return len(self.current) + len(self.next)

    def push(self, thread: Thread, *, interactive: bool) -> None:
        (self.current if interactive else self.next).append(thread)

    def pop(self) -> Optional[Thread]:
        if not self.current and self.next:
            # Queue swap: the batch backlog becomes the current queue.
            self.current, self.next = self.next, self.current
        if self.current:
            return self.current.popleft()
        return None

    def remove(self, thread: Thread) -> bool:
        for queue in (self.current, self.next):
            try:
                queue.remove(thread)
                return True
            except ValueError:
                continue
        return False

    def peek_all(self) -> Iterator[Thread]:
        yield from self.current
        yield from self.next


class UleRunqueue:
    """Per-CPU queues with affinity-aware placement and stealing.

    Implements the same protocol as
    :class:`~repro.sched.runqueue.MultiLevelFeedbackQueue` (``enqueue``,
    ``dequeue(core_index)``, ``remove``, ``on_quantum_expired``,
    ``on_wakeup``, containment/len), so the scheduler can use either.
    """

    def __init__(self, num_cores: int = 4):
        if num_cores < 1:
            raise SchedulerError("ULE runqueue needs at least one CPU")
        self.num_cores = num_cores
        self._queues: List[_CpuQueue] = [_CpuQueue() for _ in range(num_cores)]
        self._enqueued: set = set()
        #: Last CPU each thread ran on / was queued to (cache affinity).
        self._last_cpu: Dict[int, int] = {}
        #: Threads flagged interactive by a recent wakeup.
        self._interactive: set = set()
        self.steals = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._enqueued)

    def __contains__(self, thread: Thread) -> bool:
        return thread.tid in self._enqueued

    def __iter__(self) -> Iterator[Thread]:
        for queue in self._queues:
            yield from queue.peek_all()

    # ------------------------------------------------------------------
    def _placement(self, thread: Thread) -> int:
        if thread.affinity is not None:
            return thread.affinity % self.num_cores
        home = self._last_cpu.get(thread.tid)
        if home is None:
            return min(range(self.num_cores), key=lambda c: len(self._queues[c]))
        # Mild balancing: abandon the home CPU if it is clearly busier.
        least = min(range(self.num_cores), key=lambda c: len(self._queues[c]))
        if len(self._queues[home]) > len(self._queues[least]) + 1:
            return least
        return home

    def enqueue(self, thread: Thread) -> None:
        if thread.state is not ThreadState.READY:
            raise SchedulerError(
                f"cannot enqueue {thread.name} in state {thread.state.value}"
            )
        if thread.tid in self._enqueued:
            raise SchedulerError(f"thread {thread.name} is already enqueued")
        cpu = self._placement(thread)
        interactive = thread.tid in self._interactive
        self._interactive.discard(thread.tid)
        self._queues[cpu].push(thread, interactive=interactive)
        self._last_cpu[thread.tid] = cpu
        self._enqueued.add(thread.tid)

    def dequeue(self, core_index: Optional[int] = None) -> Optional[Thread]:
        if core_index is None:
            core_index = 0
        core_index %= self.num_cores
        thread = self._pop_eligible(core_index, core_index)
        if thread is None:
            # Steal from the most loaded CPU with an eligible thread.
            order = sorted(
                (c for c in range(self.num_cores) if c != core_index),
                key=lambda c: -len(self._queues[c]),
            )
            for victim in order:
                thread = self._pop_eligible(victim, core_index)
                if thread is not None:
                    self.steals += 1
                    break
        if thread is not None:
            self._enqueued.discard(thread.tid)
            self._last_cpu[thread.tid] = core_index
        return thread

    def _pop_eligible(self, cpu: int, running_on: int) -> Optional[Thread]:
        queue = self._queues[cpu]
        # Fast path: pop respecting affinity; skip ineligible threads.
        skipped: List[Thread] = []
        result: Optional[Thread] = None
        while True:
            thread = queue.pop()
            if thread is None:
                break
            if thread.affinity is not None and thread.affinity != running_on:
                skipped.append(thread)
                continue
            result = thread
            break
        for thread in skipped:  # put ineligible threads back in order
            queue.push(thread, interactive=False)
        return result

    def remove(self, thread: Thread) -> bool:
        if thread.tid not in self._enqueued:
            return False
        for queue in self._queues:
            if queue.remove(thread):
                self._enqueued.discard(thread.tid)
                return True
        raise SchedulerError(f"queue bookkeeping corrupt for {thread.name}")

    # ------------------------------------------------------------------
    # Feedback hooks (protocol-compatible with the MLFQ)
    # ------------------------------------------------------------------
    def on_quantum_expired(self, thread: Thread) -> None:
        """CPU hogs are batch: they join the *next* queue on requeue."""
        self._interactive.discard(thread.tid)

    def on_wakeup(self, thread: Thread) -> None:
        """Sleepers/blockers are interactive: current queue on requeue."""
        self._interactive.add(thread.tid)
