"""Thermal Control Circuit (p4tcc-style) clock duty-cycle modulation.

FreeBSD's ``p4tcc`` driver programs the processor's thermal control
circuit to stop the core clock for a programmable fraction of a very
short modulation window (microseconds — far below any C-state promotion
threshold).  The Intel SDM exposes 8 duty steps of 12.5 %.

The modulation window is orders of magnitude shorter than both the
scheduler quantum and the die thermal time constant, so we model TCC as
a *continuous* modifier on core power and speed rather than as discrete
events: while gated the core burns a small residual dynamic power and
full leakage, and it can never enter C1/C1E because the OS still
considers it busy.  That combination — no low-power state, period far
below the useful idle length — is exactly why the paper finds p4tcc
"failing to achieve even 1:1 performance to throughput trade-offs"
(§3.4, Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigurationError


@dataclass(frozen=True)
class TccSetting:
    """One clock-modulation setpoint."""

    #: Fraction of each modulation window the clock runs, in (0, 1].
    duty: float
    #: Residual dynamic power fraction while the clock is stopped
    #: (clock distribution and bus interface stay powered).
    gated_dynamic_fraction: float = 0.10

    def __post_init__(self) -> None:
        if not 0.0 < self.duty <= 1.0:
            raise ConfigurationError(f"TCC duty must be in (0, 1], got {self.duty}")
        if not 0.0 <= self.gated_dynamic_fraction < 1.0:
            raise ConfigurationError("gated dynamic fraction must be in [0, 1)")

    @property
    def dynamic_scale(self) -> float:
        """Average dynamic power relative to unmodulated execution."""
        return self.duty + (1.0 - self.duty) * self.gated_dynamic_fraction

    @property
    def speed_scale(self) -> float:
        """Execution speed relative to unmodulated execution."""
        return self.duty

    @property
    def label(self) -> str:
        return f"tcc-{self.duty * 100:.1f}%"


#: The unmodulated setting.
TCC_OFF = TccSetting(duty=1.0)


def setpoints(steps: int = 8) -> List[TccSetting]:
    """The p4tcc ladder: duty = i/steps for i in 1..steps.

    Includes the 100 % point so sweeps contain the baseline.
    """
    if steps < 2:
        raise ConfigurationError("need at least two TCC steps")
    return [TccSetting(duty=i / steps) for i in range(1, steps + 1)]
