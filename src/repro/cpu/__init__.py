"""Processor model: cores, power, C-states, DVFS, and clock modulation."""

from .chip import Chip, Core
from .cstates import CState, CStateParams, IdlePiece, ResidencyCounter, exit_latency, idle_profile
from .dvfs import DvfsTable, OperatingPoint, step_size, xeon_e5520_table
from .power import PowerCoefficients, PowerModel, PowerParams
from .tcc import TCC_OFF, TccSetting, setpoints

__all__ = [
    "Chip",
    "Core",
    "CState",
    "CStateParams",
    "DvfsTable",
    "IdlePiece",
    "OperatingPoint",
    "PowerCoefficients",
    "PowerModel",
    "PowerParams",
    "ResidencyCounter",
    "TCC_OFF",
    "TccSetting",
    "exit_latency",
    "idle_profile",
    "setpoints",
    "step_size",
    "xeon_e5520_table",
]
