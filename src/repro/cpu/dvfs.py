"""Dynamic voltage and frequency scaling operating points.

The paper's processor exposed "DVFS scaling settings every 133 MHz with
a minimum frequency of 1.6 GHz (71% of maximum)" (§3.2).  We model the
same ladder with a linear voltage/frequency relationship typical of the
era.  VFS is the headline comparison baseline in Figure 4: its dynamic
power scales as f·V² (roughly cubic in f), which is what eventually
beats idle injection at large temperature reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigurationError
from ..units import GHZ, MHZ


@dataclass(frozen=True)
class OperatingPoint:
    """One voltage/frequency setting."""

    frequency: float  # Hz
    voltage: float  # V

    def __post_init__(self) -> None:
        if self.frequency <= 0 or self.voltage <= 0:
            raise ConfigurationError("operating point must have positive f and V")

    @property
    def label(self) -> str:
        return f"{self.frequency / GHZ:.2f}GHz@{self.voltage:.2f}V"


@dataclass(frozen=True)
class DvfsTable:
    """The ladder of supported operating points, sorted ascending."""

    points: tuple

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise ConfigurationError("DVFS table needs at least one point")
        freqs = [p.frequency for p in self.points]
        if freqs != sorted(freqs):
            raise ConfigurationError("DVFS table must be sorted by frequency")

    @property
    def max_point(self) -> OperatingPoint:
        return self.points[-1]

    @property
    def min_point(self) -> OperatingPoint:
        return self.points[0]

    def dynamic_scale(self, point: OperatingPoint) -> float:
        """Dynamic power at ``point`` relative to the maximum point (f·V²)."""
        top = self.max_point
        return (point.frequency / top.frequency) * (point.voltage / top.voltage) ** 2

    def leakage_scale(self, point: OperatingPoint) -> float:
        """Leakage at ``point`` relative to the maximum point (≈V).

        Subthreshold leakage scales roughly linearly with supply
        voltage at fixed temperature; the super-linear DIBL component
        is folded into the temperature exponential instead.  (The C1E
        state's deeper voltage drop is modelled separately via
        ``PowerParams.c1e_leakage_factor``.)
        """
        top = self.max_point
        return point.voltage / top.voltage

    def speed_scale(self, point: OperatingPoint) -> float:
        """Execution speed of CPU-bound code relative to the maximum point."""
        return point.frequency / self.max_point.frequency

    def nearest(self, frequency: float) -> OperatingPoint:
        """The supported point closest to ``frequency`` (Hz)."""
        return min(self.points, key=lambda p: abs(p.frequency - frequency))

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)


def xeon_e5520_table() -> DvfsTable:
    """The 1.60–2.26 GHz ladder in 133 MHz steps (6 points).

    Voltages follow a *convex* V(f) spanning 1.08–1.20 V: P-state
    tables on server Nehalem boards kept the VID near nominal for the
    upper frequency steps and dropped it appreciably only toward the
    ladder's bottom.  The shape matters for Figure 4: it makes shallow
    VFS steps nearly frequency-only (weak temperature leverage, so idle
    injection wins small reductions) while the deepest step keeps the
    paper's "30% throughput reduction → 50% temperature reduction".
    """
    # Bus-clock multiples: 12..17 x 133.33 MHz, i.e. 1.60 .. 2.267 GHz.
    freqs_ghz = [multiplier * 0.13333 for multiplier in range(12, 18)]
    v_min, v_max = 1.08, 1.20
    f_min, f_max = freqs_ghz[0], freqs_ghz[-1]
    points: List[OperatingPoint] = []
    for f in freqs_ghz:
        depth = (f_max - f) / (f_max - f_min)  # 0 at top, 1 at bottom
        voltage = v_max - (v_max - v_min) * depth**2
        points.append(OperatingPoint(frequency=f * GHZ, voltage=round(voltage, 4)))
    return DvfsTable(points=tuple(points))


def step_size() -> float:
    """The paper's quoted DVFS granularity (133 MHz), in Hz."""
    return 133 * MHZ
