"""Processor idle (C-) states and residency modelling.

The paper's platform supports C1E, an "enhanced halt" state that drops
core voltage (and does *not* flush caches, §3.2).  Two properties of
real C-states carry the paper's key results and are modelled here:

1. **Promotion**: a core does not enter C1E the instant it idles; it
   halts into C1 and is promoted to C1E only after a residency
   threshold.  Consequently *short* idle intervals (sub-millisecond
   clock gating as in p4tcc, or fragmented natural idle on a busy web
   server) never reach the low-power state, while Dimetrodon's
   millisecond-scale injected quanta do.  This is why the optimal idle
   period is "closer to the order of one ms" (§3.4).

2. **Transition latency**: entry/exit costs in the tens of
   microseconds (§2.2 cites PowerNap) are charged so that extremely
   frequent transitions waste measurable time and energy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple


class CState(enum.Enum):
    """Core activity / idle states."""

    #: Executing instructions.
    C0 = "C0"
    #: Halted; core clocks gated, voltage nominal.
    C1 = "C1"
    #: Enhanced halt; clocks gated and voltage reduced.
    C1E = "C1E"


@dataclass(frozen=True)
class CStateParams:
    """Timing constants of the idle-state machine."""

    #: Residency in C1 before hardware promotes the core to C1E when the
    #: idle length is known to be long (scheduler-hinted idle, as during
    #: an injected idle quantum), s.
    c1e_promotion_threshold: float = 0.2e-3
    #: Promotion threshold for *natural* (unhinted) idle.  On the
    #: paper's FreeBSD 7.2 platform the 1 kHz timer tick and interrupt
    #: traffic keep short natural idle periods shallow; only an idle
    #: that persists well beyond the tick/housekeeping horizon settles
    #: into the deep state (so a race-to-idle *tail* of seconds still
    #: reaches C1E, preserving the §3.3 energy identity).  Fragmented
    #: inter-request idle on a web server (~tens of ms) never promotes,
    #: while a scheduler-hinted injected quantum does — the asymmetry
    #: that lets injection cool a partially idle machine (§3.7).
    natural_promotion_threshold: float = 0.4
    #: Time to enter C1E once promoted (voltage ramp), s.
    c1e_entry_latency: float = 40e-6
    #: Time to resume execution from C1E, s.
    c1e_exit_latency: float = 30e-6
    #: Time to resume execution from C1, s.
    c1_exit_latency: float = 5e-6


@dataclass(frozen=True)
class IdlePiece:
    """A homogeneous slice of an idle interval."""

    duration: float
    state: CState


def idle_profile(duration: float, params: CStateParams) -> List[IdlePiece]:
    """Split an idle interval into C-state residency pieces.

    The core halts into C1 immediately; after the promotion threshold
    it transitions to C1E (the entry latency is spent at C1 power).
    Zero-length pieces are omitted.
    """
    if duration <= 0:
        return []
    shallow = min(duration, params.c1e_promotion_threshold + params.c1e_entry_latency)
    pieces = [IdlePiece(shallow, CState.C1)]
    deep = duration - shallow
    if deep > 0:
        pieces.append(IdlePiece(deep, CState.C1E))
    return pieces


def exit_latency(state: CState, params: CStateParams) -> float:
    """Wake-up latency when leaving ``state`` for C0."""
    if state is CState.C1E:
        return params.c1e_exit_latency
    if state is CState.C1:
        return params.c1_exit_latency
    return 0.0


class ResidencyCounter:
    """Accumulates per-state residency for one core.

    Drives the §3.3-style energy accounting and lets tests assert that
    residencies over a run sum to the run length.
    """

    def __init__(self) -> None:
        self._residency: Dict[CState, float] = {state: 0.0 for state in CState}

    def add(self, state: CState, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative residency {duration}")
        self._residency[state] += duration

    def get(self, state: CState) -> float:
        return self._residency[state]

    def total(self) -> float:
        return sum(self._residency.values())

    def fractions(self) -> Dict[CState, float]:
        """Residency as fractions of total accounted time."""
        total = self.total()
        if total == 0:
            return {state: 0.0 for state in CState}
        return {state: value / total for state, value in self._residency.items()}

    def as_tuples(self) -> List[Tuple[str, float]]:
        return [(state.value, self._residency[state]) for state in CState]
