"""Multicore chip model: per-core execution state and package power.

The chip sits between the scheduler (which starts and stops execution
on cores) and the thermal machine (which needs, for any time interval,
the power injected into every thermal node).  A core is either

- **running** a thread (or a nop spin loop) with some activity factor,
  in C0, or
- **idle**, in which case its C-state at time ``t`` follows the
  promotion profile of :mod:`repro.cpu.cstates` from the moment it went
  idle.

Because C-state promotion makes idle power *time-varying within an
event-free interval*, the chip exposes :meth:`cstate_breakpoints` so
the machine can split its thermal integration at promotion instants.

Power is exposed two ways.  The simulation hot path calls
:meth:`Chip.power_segment`, which returns a cached segment-constant
:class:`~repro.cpu.power.PowerCoefficients` decomposition for the
fused integrator and reuses it — multiplexed on :attr:`Chip.state_epoch`
and bounded by the next promotion instant — across event gaps where no
power-relevant state changes.  :meth:`Chip.power_function` /
:meth:`Chip.power_vector` are the scalar per-core reference the fast
path is validated against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..telemetry.registry import registry as _metrics_registry
from .cstates import CState, CStateParams, ResidencyCounter, exit_latency
from .dvfs import DvfsTable, OperatingPoint, xeon_e5520_table
from .power import PowerCoefficients, PowerModel, PowerParams
from .tcc import TCC_OFF, TccSetting


@dataclass
class Core:
    """Execution state of one core, as seen by the power model.

    A core hosts ``smt`` hardware thread contexts (the paper's platform
    supports two; §3.2 disables the second because "in order to cause
    the entire core to enter the C1E low power state we need to halt
    all thread contexts on the core").  The core is in C0 while *any*
    context is busy and can only start descending the C-state ladder
    when the last context halts — which is exactly why co-scheduling
    idle quanta matters under SMT.
    """

    index: int
    cstate_params: CStateParams
    smt: int = 1
    #: Scheduler-owned references to whatever runs on each context.
    context_threads: List[Optional[object]] = field(default_factory=list)
    #: Switching-activity factor per context (0 when the context idles).
    context_activity: List[float] = field(default_factory=list)
    #: Whether each idle context's idle period was scheduler-hinted.
    context_hinted: List[bool] = field(default_factory=list)
    #: Time the core last became fully idle (valid when not running).
    idle_since: float = 0.0
    #: Promotion threshold in effect for the current idle period
    #: (hinted idle promotes fast, natural idle slowly).
    idle_threshold: float = 0.0
    #: Per-core DVFS override (None = follow the chip-wide setting).
    #: Commodity hardware of the paper's era lacked this (§2.1); it is
    #: modelled so the hypothetical can be compared against per-thread
    #: injection.
    operating_point_override: Optional[OperatingPoint] = None
    residency: ResidencyCounter = field(default_factory=ResidencyCounter)
    #: Bumped on every run/idle transition; :attr:`Chip.state_epoch`
    #: folds these in so power-coefficient segments know when to expire.
    epoch: int = 0

    def __post_init__(self) -> None:
        if self.smt < 1:
            raise ConfigurationError("smt must be >= 1")
        if not self.context_threads:
            self.context_threads = [None] * self.smt
            self.context_activity = [0.0] * self.smt
            self.context_hinted = [False] * self.smt

    # ------------------------------------------------------------------
    # Context-level state changes
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """True while any hardware context is executing."""
        return any(a > 0.0 or t is not None for t, a in zip(self.context_threads, self.context_activity))

    @property
    def busy_contexts(self) -> int:
        return sum(
            1
            for t, a in zip(self.context_threads, self.context_activity)
            if t is not None or a > 0.0
        )

    @property
    def activity(self) -> float:
        """Aggregate switching activity of all busy contexts.

        Used by the power model; SMT co-residency scaling is applied by
        :meth:`Chip.core_activity`.
        """
        return sum(self.context_activity)

    @property
    def thread(self) -> Optional[object]:
        """The context-0 occupant (single-context compatibility view)."""
        return self.context_threads[0]

    def set_context_running(
        self, context: int, thread: Optional[object], activity: float, now: float
    ) -> None:
        """Mark one hardware context as executing."""
        if activity < 0:
            raise ConfigurationError(f"negative activity {activity}")
        self._check_context(context)
        self.context_threads[context] = thread
        self.context_activity[context] = activity
        self.context_hinted[context] = False
        self.epoch += 1

    def set_context_idle(self, context: int, now: float, *, hinted: bool = False) -> None:
        """Mark one hardware context idle starting at ``now``.

        When the *last* busy context halts, the whole core starts its
        idle period; the fast (hinted) promotion threshold applies only
        if every context's idle was scheduler-hinted (co-scheduled
        injected quanta) — fragmented natural idle stays conservative.
        """
        self._check_context(context)
        self.context_threads[context] = None
        self.context_activity[context] = 0.0
        self.context_hinted[context] = hinted
        self.epoch += 1
        if not self.running:
            self.idle_since = now
            params = self.cstate_params
            base = (
                params.c1e_promotion_threshold
                if all(self.context_hinted)
                else params.natural_promotion_threshold
            )
            self.idle_threshold = base + params.c1e_entry_latency

    def _check_context(self, context: int) -> None:
        if not 0 <= context < self.smt:
            raise ConfigurationError(
                f"core {self.index} has {self.smt} contexts, not {context + 1}"
            )

    # ------------------------------------------------------------------
    # Single-context compatibility API
    # ------------------------------------------------------------------
    def set_running(self, thread: Optional[object], activity: float, now: float) -> None:
        """Mark context 0 as executing (single-context convenience)."""
        self.set_context_running(0, thread, activity, now)

    def set_idle(self, now: float, *, hinted: bool = False) -> None:
        """Mark context 0 idle (single-context convenience)."""
        self.set_context_idle(0, now, hinted=hinted)

    # ------------------------------------------------------------------
    # C-state queries
    # ------------------------------------------------------------------
    def cstate_at(self, time: float) -> CState:
        """C-state of this core at absolute time ``time``.

        The comparison uses the exact float value
        :meth:`promotion_time` returns, so classification and the
        promotion instant agree to the ulp — the chip's segment cache
        bounds a coefficient set's validity by that instant, and a
        mismatched rounding (``time - idle_since`` vs ``idle_since +
        threshold``) would let a stale segment straddle the promotion.
        """
        if self.running:
            return CState.C0
        return CState.C1 if time < self.idle_since + self.idle_threshold else CState.C1E

    def promotion_time(self) -> Optional[float]:
        """Absolute time this core will be promoted to C1E, if idle."""
        if self.running:
            return None
        return self.idle_since + self.idle_threshold

    def wake_latency(self, now: float) -> float:
        """Cost to resume execution if woken at ``now``."""
        if self.running:
            return 0.0
        return exit_latency(self.cstate_at(now), self.cstate_params)


@dataclass
class _CoefficientSegment:
    """One cached power-coefficient set and its validity window."""

    epoch: int
    #: Evaluation time the segment was built at.
    time: float
    #: First promotion instant after ``time`` (exclusive upper bound).
    valid_until: float
    cstates: Tuple[CState, ...]
    coefficients: PowerCoefficients


class Chip:
    """The package: cores plus uncore, with DVFS and TCC settings."""

    def __init__(
        self,
        power_params: Optional[PowerParams] = None,
        *,
        num_cores: int = 4,
        smt: int = 1,
        dvfs_table: Optional[DvfsTable] = None,
        cstate_params: Optional[CStateParams] = None,
        c1e_enabled: bool = True,
    ):
        if num_cores < 1:
            raise ConfigurationError("chip needs at least one core")
        if smt < 1 or smt > 2:
            raise ConfigurationError("smt must be 1 or 2")
        self.dvfs_table = dvfs_table or xeon_e5520_table()
        self.power_model = PowerModel(power_params or PowerParams(), self.dvfs_table)
        self.cstate_params = cstate_params or CStateParams()
        #: When False the platform lacks a usable deep idle state and
        #: idle cores stay in C1 (ablation; also the "nop loop" story
        #: of §2.1 is exercised through the injector's spin mode).
        self.c1e_enabled = c1e_enabled
        self.smt = smt
        self.operating_point: OperatingPoint = self.dvfs_table.max_point
        self.tcc: TccSetting = TCC_OFF
        self.cores: List[Core] = [
            Core(index=i, cstate_params=self.cstate_params, smt=smt)
            for i in range(num_cores)
        ]
        #: Chip-wide contribution to :attr:`state_epoch` (DVFS/TCC).
        self._epoch = 0
        #: The most recent power segment (see :meth:`power_segment`).
        self._segment: Optional[_CoefficientSegment] = None
        scope = _metrics_registry().scope("cpu.chip")
        self._metric_segment_rebuilds = scope.counter("power_segments.rebuilds")
        self._metric_segment_reuses = scope.counter("power_segments.reuses")

    # ------------------------------------------------------------------
    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def state_epoch(self) -> int:
        """Monotone counter over every power-relevant state change.

        Covers per-context run/idle transitions, chip-wide and per-core
        DVFS changes, and TCC reprogramming.  Two calls returning the
        same value guarantee the chip's power decomposition (for fixed
        C-states) is unchanged, which is what lets
        :meth:`power_segment` reuse coefficient sets across event gaps.
        """
        return self._epoch + sum(core.epoch for core in self.cores)

    def set_operating_point(self, point: OperatingPoint) -> None:
        """Select a DVFS operating point (chip-wide, like the paper's)."""
        if point not in self.dvfs_table.points:
            raise ConfigurationError(f"unsupported operating point {point}")
        self.operating_point = point
        self._epoch += 1

    def set_core_operating_point(
        self, core_index: int, point: Optional[OperatingPoint]
    ) -> None:
        """Override one core's operating point (None clears it).

        Per-core DVFS was "not yet available ... on commodity hardware"
        when the paper was written (§2.1); this models the hypothetical
        so it can be compared against per-thread idle injection.
        """
        if point is not None and point not in self.dvfs_table.points:
            raise ConfigurationError(f"unsupported operating point {point}")
        self.cores[core_index].operating_point_override = point
        self._epoch += 1

    def point_for(self, core: Core) -> OperatingPoint:
        """The operating point currently governing ``core``."""
        return core.operating_point_override or self.operating_point

    def set_tcc(self, setting: TccSetting) -> None:
        """Program the thermal control circuit duty cycle (chip-wide)."""
        self.tcc = setting
        self._epoch += 1

    def core_activity(self, core: Core) -> float:
        """Effective switching activity of a core for the power model.

        With two busy SMT contexts the pipelines are shared, so the
        aggregate activity is scaled by ``smt_activity_factor`` (two
        cpuburn contexts burn ~1.25x one, not 2x).
        """
        if core.busy_contexts <= 1:
            return core.activity
        return core.activity * self.power_model.params.smt_activity_factor

    def speed_factor(
        self,
        cpu_fraction: float = 1.0,
        *,
        core: Optional[Core] = None,
        smt_contention: bool = False,
    ) -> float:
        """Work completed per wall-clock second relative to full speed.

        CPU-bound work scales with frequency; the non-CPU fraction
        (memory stalls) does not.  TCC clock stopping gates everything.
        ``smt_contention`` applies the per-context slowdown when the
        sibling hardware context is busy.
        """
        if not 0.0 <= cpu_fraction <= 1.0:
            raise ConfigurationError("cpu_fraction must be in [0, 1]")
        point = self.point_for(core) if core is not None else self.operating_point
        f_rel = self.dvfs_table.speed_scale(point)
        if cpu_fraction == 0.0:
            dvfs_speed = 1.0
        else:
            dvfs_speed = 1.0 / (cpu_fraction / f_rel + (1.0 - cpu_fraction))
        speed = dvfs_speed * self.tcc.speed_scale
        if smt_contention:
            speed *= self.power_model.params.smt_speed_factor
        return speed

    # ------------------------------------------------------------------
    def effective_cstate(self, core: Core, time: float) -> CState:
        """C-state accounting for the chip-level C1E enable switch."""
        state = core.cstate_at(time)
        if state is CState.C1E and not self.c1e_enabled:
            return CState.C1
        return state

    def cstate_breakpoints(self, t0: float, t1: float) -> List[float]:
        """Times in (t0, t1) at which any idle core changes C-state."""
        if not self.c1e_enabled:
            return []
        times = []
        for core in self.cores:
            promo = core.promotion_time()
            if promo is not None and t0 < promo < t1:
                times.append(promo)
        return sorted(set(times))

    def power_vector(
        self, cstates: Sequence[CState], temps: np.ndarray
    ) -> np.ndarray:
        """Thermal-node power vector for frozen per-core C-states.

        Node order matches :func:`repro.thermal.floorplan.build_network`:
        ``[core0..coreN-1, spreader, sink]``.  Core temperatures are the
        first ``num_cores`` entries of ``temps``.

        This is the scalar reference path (a Python loop over cores);
        the simulation hot path evaluates the same model through
        :meth:`power_coefficients` + the fused integrator, and the
        fast-path tests pin the two to ≤ 1e-12 W per node.
        """
        n = self.num_cores
        power = np.zeros(n + 2)
        model = self.power_model
        for i, core in enumerate(self.cores):
            power[i] = model.core_power(
                cstates[i],
                float(temps[i]),
                self.point_for(core),
                activity=self.core_activity(core),
                tcc=self.tcc,
            )
        power[n] = model.params.uncore_power
        return power

    def power_function(self, time: float):
        """A power callback (temps -> node powers) valid while no core
        changes state; C-states are frozen as of ``time``.

        This is the scalar reference oracle; the simulation hot path
        uses :meth:`power_segment` + the fused integrator instead.
        """
        cstates = [self.effective_cstate(core, time) for core in self.cores]
        return cstates, (lambda temps: self.power_vector(cstates, temps))

    def power_coefficients(self, cstates: Sequence[CState]) -> PowerCoefficients:
        """Vectorized decomposition of :meth:`power_vector` for frozen
        per-core C-states: per-node ``base``/``leak_coef`` arrays plus
        the shared leakage-exponential constants, covering DVFS
        overrides, TCC, SMT activity scaling, and the uncore term."""
        n = self.num_cores
        base = np.zeros(n + 2)
        leak_coef = np.zeros(n + 2)
        model = self.power_model
        for i, core in enumerate(self.cores):
            base[i], leak_coef[i] = model.core_coefficients(
                cstates[i],
                self.point_for(core),
                activity=self.core_activity(core),
                tcc=self.tcc,
            )
        base[n] = model.params.uncore_power
        params = model.params
        return PowerCoefficients(
            base=base,
            leak_coef=leak_coef,
            leak_ref_temp=params.leak_ref_temp,
            leak_t_slope=params.leak_t_slope,
            leak_exp_cap=params.leak_exp_cap,
        )

    def next_cstate_change(self, after: float) -> float:
        """Earliest instant strictly after ``after`` at which any core's
        effective C-state changes by promotion alone (``inf`` if none).
        Run/idle transitions are covered by :attr:`state_epoch` instead."""
        if not self.c1e_enabled:
            return math.inf
        horizon = math.inf
        for core in self.cores:
            promo = core.promotion_time()
            if promo is not None and after < promo < horizon:
                horizon = promo
        return horizon

    def power_segment(self, time: float) -> Tuple[Tuple[CState, ...], PowerCoefficients]:
        """Frozen C-states and power coefficients in effect at ``time``.

        Reuses the previously built coefficient set when no
        power-relevant state changed (same :attr:`state_epoch`) and no
        C-state promotion instant separates the two evaluation times —
        the common case between scheduler events, where the old path
        rebuilt C-state lists and power closures from scratch.
        """
        epoch = self.state_epoch
        segment = self._segment
        if (
            segment is not None
            and segment.epoch == epoch
            and segment.time <= time < segment.valid_until
        ):
            self._metric_segment_reuses.inc()
            return segment.cstates, segment.coefficients
        cstates = tuple(self.effective_cstate(core, time) for core in self.cores)
        coefficients = self.power_coefficients(cstates)
        self._segment = _CoefficientSegment(
            epoch=epoch,
            time=time,
            valid_until=self.next_cstate_change(time),
            cstates=cstates,
            coefficients=coefficients,
        )
        self._metric_segment_rebuilds.inc()
        return cstates, coefficients

    def record_residency(self, cstates: Sequence[CState], duration: float) -> None:
        """Accumulate per-core residency for an integrated piece."""
        for core, state in zip(self.cores, cstates):
            core.residency.add(state, duration)
