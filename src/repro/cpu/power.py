"""Processor power model: activity-dependent dynamic power plus
temperature- and voltage-dependent leakage.

Calibration targets (from the paper's measurements of its 80 W-rated
Xeon E5520, Figure 1 and §3.2–3.4):

- all-core cpuburn package power ≈ 72 W,
- all-idle (C1E) package power ≈ 16–20 W,
- visible "staircase" between those levels as individual cores idle.

The leakage model is the standard architectural approximation: an
exponential in temperature (factor *e* every ``leak_t_slope`` °C) and
quadratic in supply voltage.  Leakage–temperature feedback is the first
of the three nonlinearities that produce the paper's convex
temperature/throughput Pareto frontier (see DESIGN.md §1); its strength
is an explicit parameter so the ablation bench can sweep it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .cstates import CState
from .dvfs import DvfsTable, OperatingPoint
from .tcc import TCC_OFF, TccSetting


@dataclass(frozen=True)
class PowerParams:
    """Constants of the package power model."""

    #: Per-core dynamic power at maximum frequency/voltage and
    #: activity factor 1.0 (cpuburn), W.
    core_dynamic_max: float = 7.33
    #: Per-core leakage at ``leak_ref_temp`` and maximum voltage, W.
    #: 45 nm parts at high junction temperature leak 30–40 % of core
    #: power; the high share (with its exponential temperature slope)
    #: is what gives early injected idle cycles their outsized cooling
    #: payoff (DESIGN.md §1, nonlinearity 1).
    core_leakage_ref: float = 9.74
    #: Reference temperature for ``core_leakage_ref``, °C.
    leak_ref_temp: float = 58.0
    #: Temperature increase for leakage to grow by factor e, °C.
    leak_t_slope: float = 11.5
    #: Cap on the leakage exponential's argument.  The exponential is a
    #: local model around the calibrated operating range (leakage also
    #: self-limits as mobility degrades, and real parts throttle); the
    #: cap bounds configurations hotter than the paper ever ran — e.g.
    #: SMT with two cpuburn contexts per core — at a finite, hot
    #: equilibrium instead of a numerical runaway.
    leak_exp_cap: float = 0.7
    #: Residual dynamic power fraction in C1 (halted, clocks gated).
    #: Set relatively high because C1 here stands for *shallow OS idle*
    #: as a whole: on the paper's FreeBSD 7.2 platform the 1 kHz timer
    #: tick, interrupt exits, and scheduler work keep a "halted" core
    #: far from its floor unless it stays down long enough to be
    #: promoted (the C1E path).
    c1_dynamic_fraction: float = 0.25
    #: Leakage multiplier in C1E (reduced voltage), relative to the
    #: leakage at the current operating point's voltage.
    c1e_leakage_factor: float = 0.15
    #: Uncore power (memory controller, QPI, caches' clock grid), W.
    #: Deposited on the spreader node; always on.
    uncore_power: float = 13.0
    #: Dynamic power fraction of an executed NOP/spin loop relative to
    #: cpuburn (used when idle injection falls back to a nop loop on
    #: hardware without usable idle states, §2.1).
    nop_loop_fraction: float = 0.35
    #: With two busy SMT contexts, aggregate switching activity is
    #: scaled by this factor (shared pipelines: 2 x cpuburn burns
    #: ~1.25x one context, not 2x).
    smt_activity_factor: float = 0.62
    #: Per-context execution speed when the sibling context is busy
    #: (SMT throughput ~1.24x a single context).
    smt_speed_factor: float = 0.62

    def __post_init__(self) -> None:
        if self.core_dynamic_max <= 0 or self.core_leakage_ref < 0:
            raise ConfigurationError("power constants must be positive")
        if self.leak_t_slope <= 0:
            raise ConfigurationError("leakage temperature slope must be positive")
        if not 0 <= self.c1e_leakage_factor <= 1:
            raise ConfigurationError("C1E leakage factor must be in [0, 1]")

    def with_leakage_slope(self, slope: float) -> "PowerParams":
        """Copy with a different leakage temperature slope (ablation)."""
        return replace(self, leak_t_slope=slope)


@dataclass
class PowerCoefficients:
    """Segment-constant affine-exponential decomposition of node power.

    For frozen per-core execution states the power of every thermal
    node is an affine function of the node's own leakage exponential:

        P(T) = base + leak_coef * exp(min((T - leak_ref_temp) / leak_t_slope,
                                          leak_exp_cap))

    evaluated elementwise over the node vector with NumPy.  This is the
    vectorized fast path's contract: :meth:`evaluate` must agree with
    the scalar :meth:`Chip.power_vector` reference to within float
    rounding (the tests pin ≤1e-12 W per node).  Nodes without leakage
    (spreader, sink) simply carry ``leak_coef = 0``.
    """

    #: Temperature-independent power per node, W.
    base: np.ndarray
    #: Leakage prefactor per node, W (already scaled for voltage and,
    #: in C1E, the deep-idle leakage factor).
    leak_coef: np.ndarray
    #: Reference temperature of the leakage exponential, °C.
    leak_ref_temp: float
    #: Temperature increase for leakage to grow by factor e, °C.
    leak_t_slope: float
    #: Cap on the leakage exponential's argument.
    leak_exp_cap: float
    #: Lazily computed terms for the integrator's folded inner loop.
    _fused: Optional[Tuple[float, float, np.ndarray]] = None

    def fused_terms(self) -> Tuple[float, float, np.ndarray]:
        """``(inv_slope, arg_cap, scaled_coef)`` for the folded form

            P(T) = base + scaled_coef * exp(min(T * inv_slope, arg_cap))

        which equals :meth:`evaluate` with the reference temperature
        folded into the prefactor (``scaled_coef = leak_coef *
        exp(-ref/slope)``, ``arg_cap = cap + ref/slope``) — one fewer
        array op per substep and the cap still bounds the exponential's
        argument before ``exp`` runs.  Computed once per coefficient
        set; the chip's segment cache makes that once per power state.
        """
        if self._fused is None:
            inv_slope = 1.0 / self.leak_t_slope
            shift = self.leak_ref_temp / self.leak_t_slope
            self._fused = (
                inv_slope,
                self.leak_exp_cap + shift,
                self.leak_coef * math.exp(-shift),
            )
        return self._fused

    def evaluate(self, temps: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Node power vector at ``temps``, written into ``out`` if given.

        Allocation-free when ``out`` is supplied — the fused integrator
        calls this once per substep with a preallocated buffer.
        """
        if out is None:
            out = np.empty_like(self.base)
        np.subtract(temps, self.leak_ref_temp, out=out)
        out /= self.leak_t_slope
        np.minimum(out, self.leak_exp_cap, out=out)
        np.exp(out, out=out)
        out *= self.leak_coef
        out += self.base
        return out


class FleetCoefficients:
    """Per-machine :class:`PowerCoefficients` stacked into node-major
    tensors for the batched fleet integrator.

    ``base`` and ``scaled_coef`` have shape ``(nodes, machines)`` —
    column ``j`` is machine ``j``'s folded decomposition, so the
    batched substep evaluates every machine's power with the same
    elementwise chain the single-chip fast path uses, just on 2-D
    arrays.  The leakage-exponential constants (``inv_slope``,
    ``arg_cap``) are *shared scalars*: the fleet model requires
    homogeneous chips (same :class:`PowerParams`), and mixing chips
    with different leakage constants raises
    :class:`~repro.errors.ConfigurationError` — such a fleet cannot be
    advanced by one fused kernel.

    The per-machine source objects are kept (``sources``) so a caller
    can cheaply test, via :meth:`matches`, whether a previously built
    stack is still current: chips multiplex coefficient segments by
    :attr:`~repro.cpu.chip.Chip.state_epoch`, handing out the *same*
    ``PowerCoefficients`` object while no power-relevant state changed,
    so identity over the column tuple means the whole stack can be
    reused without copying a single float.
    """

    __slots__ = ("base", "scaled_coef", "inv_slope", "arg_cap", "sources")

    def __init__(
        self,
        base: np.ndarray,
        scaled_coef: np.ndarray,
        inv_slope: float,
        arg_cap: float,
        sources: Tuple[PowerCoefficients, ...],
    ):
        self.base = base
        self.scaled_coef = scaled_coef
        self.inv_slope = inv_slope
        self.arg_cap = arg_cap
        self.sources = sources

    @classmethod
    def from_coefficients(
        cls, columns: Sequence[PowerCoefficients]
    ) -> "FleetCoefficients":
        """Stack one coefficient set per machine (column order = machine
        order).  All columns must share the leakage constants exactly."""
        if not columns:
            raise ConfigurationError("a fleet stack needs at least one machine")
        inv_slope, arg_cap, first_scaled = columns[0].fused_terms()
        nodes = columns[0].base.shape[0]
        base = np.empty((nodes, len(columns)))
        scaled_coef = np.empty((nodes, len(columns)))
        base[:, 0] = columns[0].base
        scaled_coef[:, 0] = first_scaled
        for j, column in enumerate(columns[1:], start=1):
            c_inv_slope, c_arg_cap, c_scaled = column.fused_terms()
            if c_inv_slope != inv_slope or c_arg_cap != arg_cap:
                raise ConfigurationError(
                    "fleet machines must share leakage constants "
                    f"(machine {j} differs); heterogeneous chips cannot "
                    "share one fused kernel"
                )
            if column.base.shape[0] != nodes:
                raise ConfigurationError(
                    f"machine {j} has {column.base.shape[0]} thermal nodes, "
                    f"fleet stack is {nodes} wide"
                )
            base[:, j] = column.base
            scaled_coef[:, j] = c_scaled
        return cls(base, scaled_coef, inv_slope, arg_cap, tuple(columns))

    @property
    def num_machines(self) -> int:
        return self.base.shape[1]

    def matches(self, columns: Sequence[PowerCoefficients]) -> bool:
        """True when this stack was built from exactly these objects
        (identity per column) — the epoch-multiplexed reuse test."""
        sources = self.sources
        return len(columns) == len(sources) and all(
            column is source for column, source in zip(columns, sources)
        )


class PowerModel:
    """Computes per-core and package power from state and temperature."""

    def __init__(self, params: PowerParams, dvfs: DvfsTable):
        self.params = params
        self.dvfs = dvfs

    # ------------------------------------------------------------------
    def leakage(self, temp: float, point: OperatingPoint) -> float:
        """Per-core leakage power (W) at ``temp`` °C and ``point``."""
        p = self.params
        exponent = min((temp - p.leak_ref_temp) / p.leak_t_slope, p.leak_exp_cap)
        return p.core_leakage_ref * self.dvfs.leakage_scale(point) * math.exp(exponent)

    def dynamic(self, activity: float, point: OperatingPoint, tcc: TccSetting = TCC_OFF) -> float:
        """Per-core dynamic power (W) while executing.

        ``activity`` is the workload's switching-activity factor
        relative to cpuburn (1.0); Table 1's SPEC workloads run cooler
        via smaller factors.
        """
        if activity < 0:
            raise ConfigurationError(f"negative activity factor {activity}")
        p = self.params
        return (
            p.core_dynamic_max
            * activity
            * self.dvfs.dynamic_scale(point)
            * tcc.dynamic_scale
        )

    def core_power(
        self,
        state: CState,
        temp: float,
        point: OperatingPoint,
        *,
        activity: float = 1.0,
        tcc: TccSetting = TCC_OFF,
    ) -> float:
        """Total power (W) of one core in ``state`` at ``temp``."""
        p = self.params
        if state is CState.C0:
            return self.dynamic(activity, point, tcc) + self.leakage(temp, point)
        if state is CState.C1:
            residual = p.core_dynamic_max * p.c1_dynamic_fraction * self.dvfs.dynamic_scale(point)
            return residual + self.leakage(temp, point)
        if state is CState.C1E:
            return p.c1e_leakage_factor * self.leakage(temp, point)
        raise ConfigurationError(f"unknown C-state {state!r}")

    def core_coefficients(
        self,
        state: CState,
        point: OperatingPoint,
        *,
        activity: float = 1.0,
        tcc: TccSetting = TCC_OFF,
    ) -> Tuple[float, float]:
        """``(base, leak_coef)`` such that the core's power at ``temp``
        is ``base + leak_coef * exp(min((temp - ref) / slope, cap))``.

        The decomposition mirrors :meth:`core_power` term for term so
        the vectorized path reproduces the scalar model exactly.
        """
        p = self.params
        leak = p.core_leakage_ref * self.dvfs.leakage_scale(point)
        if state is CState.C0:
            return self.dynamic(activity, point, tcc), leak
        if state is CState.C1:
            residual = p.core_dynamic_max * p.c1_dynamic_fraction * self.dvfs.dynamic_scale(point)
            return residual, leak
        if state is CState.C1E:
            return 0.0, leak * p.c1e_leakage_factor
        raise ConfigurationError(f"unknown C-state {state!r}")

    # ------------------------------------------------------------------
    def package_power_estimate(
        self,
        active_cores: int,
        num_cores: int,
        temp: float,
        point: OperatingPoint,
        *,
        activity: float = 1.0,
    ) -> float:
        """Back-of-envelope package power with ``active_cores`` in C0 and
        the rest in C1E, all at a common temperature.

        Used by analytical validation and tests; the full simulation
        computes per-node powers with per-node temperatures instead.
        """
        active = active_cores * self.core_power(
            CState.C0, temp, point, activity=activity
        )
        idle = (num_cores - active_cores) * self.core_power(CState.C1E, temp, point)
        return active + idle + self.params.uncore_power
