"""Exception hierarchy for the Dimetrodon reproduction.

Every exception raised deliberately by this package derives from
:class:`ReproError` so callers can catch the whole family at once.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulator is used incorrectly.

    Examples: scheduling an event in the past, advancing a finished
    simulation, or re-running a simulator that already completed.
    """


class ConfigurationError(ReproError):
    """Raised when a model or experiment is configured inconsistently.

    Examples: a negative thermal capacitance, an injection probability
    outside ``[0, 1)``, or an unknown DVFS operating point.
    """


class SchedulerError(ReproError):
    """Raised when scheduler invariants are violated.

    These indicate bugs in scheduler bookkeeping (a thread queued twice,
    a core dispatching a non-runnable thread) and should never occur in
    normal operation; tests assert on them.
    """


class WorkloadError(ReproError):
    """Raised when a workload produces an invalid burst description."""


class ExecutionError(ReproError):
    """Raised when a batch run fails terminally.

    Either the run's :class:`~repro.runtime.RetryPolicy` classified its
    error as permanent (deterministic — retrying cannot help) or every
    allowed attempt was exhausted.  Carries the failing attempt's
    traceback so pool failures are debuggable from the parent process.
    """


class RunTimeoutError(ExecutionError):
    """Raised when one batch run exceeds its wall-clock deadline.

    In a worker pool the parent kills the hung worker process and
    raises (or retries) on its behalf; in-process runs are interrupted
    via ``SIGALRM`` where the platform allows it.
    """


class CorruptResultError(ExecutionError):
    """Raised when a run's payload fails its integrity check.

    Every executed result travels with a digest taken at the moment it
    was produced; a mismatch on arrival means the payload was mangled
    in transit (or by an injected ``corrupt`` fault) and the run must
    be treated as failed, never cached.
    """


class TelemetryError(ReproError):
    """Raised when the metrics registry or a run manifest is misused.

    Examples: registering the same metric name under two different
    metric kinds, merging a malformed snapshot, or loading a manifest
    written under an unknown schema version.
    """


class AnalysisError(ReproError):
    """Raised when post-processing cannot produce a result.

    Examples: fitting a Pareto frontier to fewer than two points, or
    requesting a summary window longer than the recorded trace.
    """
