"""Command-line experiment runner: ``python -m repro <experiment>``.

Examples
--------
::

    python -m repro list
    python -m repro fig3
    python -m repro fig4 --full --seed 7
    python -m repro all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from .experiments import (
    fast_config,
    fig1_power_trace,
    fig2_temperature_timeseries,
    fig3_efficiency,
    fig4_technique_comparison,
    fig5_per_thread_control,
    fig6_webserver_qos,
    full_config,
    table1_spec_workloads,
    validate_energy_model,
    validate_throughput_model,
)

#: experiment name -> (description, runner).
EXPERIMENTS: Dict[str, tuple] = {
    "fig1": ("race-to-idle vs Dimetrodon power trace", fig1_power_trace),
    "fig2": ("temperature rise vs time for several p", fig2_temperature_timeseries),
    "fig3": ("efficiency vs idle quantum length", fig3_efficiency),
    "fig4": ("Dimetrodon vs VFS vs p4tcc sweeps", fig4_technique_comparison),
    "fig5": ("global vs per-thread control", fig5_per_thread_control),
    "fig6": ("web server QoS vs temperature reduction", fig6_webserver_qos),
    "table1": ("SPEC CPU2006 profiles and fits", table1_spec_workloads),
    "validate-throughput": ("throughput model validation (§3.3)", validate_throughput_model),
    "validate-energy": ("energy model validation (§3.3)", validate_energy_model),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dimetrodon",
        description="Reproduce the Dimetrodon (DAC 2011) evaluation on a "
        "simulated server testbed.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="experiment to run ('list' prints descriptions)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment RNG seed")
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-faithful timing (300 s runs) instead of the fast preset",
    )
    return parser


def run_experiment(name: str, *, seed: int = 0, full: bool = False) -> str:
    """Run one experiment and return its rendered text."""
    config = full_config(seed) if full else fast_config(seed)
    _, runner = EXPERIMENTS[name]
    started = time.time()
    result = runner(config)
    elapsed = time.time() - started
    return f"{result.render()}\n[{name}: {elapsed:.1f}s wall]"


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            description, _ = EXPERIMENTS[name]
            print(f"{name:22s} {description}")
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(run_experiment(name, seed=args.seed, full=args.full))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
