"""Command-line experiment runner: ``python -m repro <experiment>``.

Examples
--------
::

    python -m repro list
    python -m repro fig3
    python -m repro fig3 --jobs 4               # fan runs out over 4 workers
    python -m repro fig4 --full --seed 7
    python -m repro smoke --jobs 2              # tiny end-to-end batch check
    python -m repro all --no-cache
    python -m repro fig3 --jobs 4 --timeout 120 --keep-going
    python -m repro fig3 --resume               # pick up an interrupted sweep
    python -m repro smoke --inject-faults "crash@1,hang@3:30"  # chaos test

Experiments built from independent runs — the characterization /
finite sweeps (fig3, fig4, table1, the validations, smoke) *and* the
rack-cell grids (fleet, fleet-compare, scenarios) — execute through
the :mod:`repro.runtime` batch layer: ``--jobs N`` runs them on a
worker pool and results are cached on disk (default
``.repro-cache/``) so a repeat invocation is nearly instant.  Batch
runs are hardened: ``--timeout`` kills hung workers, transient
failures retry with backoff (``--max-retries``), an interrupted sweep
resumes from its journal (``--resume``), ``--keep-going`` degrades
gracefully past terminal failures, and ``--inject-faults``
chaos-tests all of the above (see ``docs/robustness.md``).  The
single-machine experiments (fig1, fig2, fig5, fig6) interleave all
their events on one simulated testbed — there is nothing to pool or
cache, and asking for it is a usage error (exit 2), not a silent
no-op.
"""

from __future__ import annotations

import argparse
import dataclasses
import inspect
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .experiments import (
    fast_config,
    fig1_power_trace,
    fig2_temperature_timeseries,
    fig3_efficiency,
    fig4_technique_comparison,
    fig5_per_thread_control,
    fig6_webserver_qos,
    full_config,
    smoke_sweep,
    table1_spec_workloads,
    validate_energy_model,
    validate_throughput_model,
)
from .errors import ConfigurationError
from .experiments.reporting import format_failure_report
from .faults import FaultPlan
from .fleet import fleet_compare_experiment, fleet_experiment, scenarios_experiment
from .fleet.scheduling import POLICY_NAMES
from .health import HealthParams
from .runtime import (
    ParallelRunner,
    ProgressEvent,
    ResultCache,
    RetryPolicy,
    SweepJournal,
    code_fingerprint,
    config_hash,
)
from .telemetry import MetricsRegistry, RunManifest, git_describe, isolated

#: Where run results are cached unless ``--cache-dir`` overrides it.
DEFAULT_CACHE_DIR = ".repro-cache"

#: The sweep journal lives inside the cache dir: resume needs both.
JOURNAL_NAME = "journal.jsonl"

#: experiment name -> (description, runner).
EXPERIMENTS: Dict[str, tuple] = {
    "fig1": ("race-to-idle vs Dimetrodon power trace", fig1_power_trace),
    "fig2": ("temperature rise vs time for several p", fig2_temperature_timeseries),
    "fig3": ("efficiency vs idle quantum length", fig3_efficiency),
    "fig4": ("Dimetrodon vs VFS vs p4tcc sweeps", fig4_technique_comparison),
    "fig5": ("global vs per-thread control", fig5_per_thread_control),
    "fig6": ("web server QoS vs temperature reduction", fig6_webserver_qos),
    "fleet": ("datacenter rack behind a load balancer (fleet-scale)", fleet_experiment),
    "fleet-compare": (
        "thermal techniques compared rack-wide (fig4 at fleet scale)",
        fleet_compare_experiment,
    ),
    "scenarios": (
        "injection x load shape x policy sweep with windowed SLO scoring",
        scenarios_experiment,
    ),
    "table1": ("SPEC CPU2006 profiles and fits", table1_spec_workloads),
    "validate-throughput": ("throughput model validation (§3.3)", validate_throughput_model),
    "validate-energy": ("energy model validation (§3.3)", validate_energy_model),
    "smoke": ("tiny sweep exercising the batch runtime (CI)", smoke_sweep),
}


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dimetrodon",
        description="Reproduce the Dimetrodon (DAC 2011) evaluation on a "
        "simulated server testbed.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="experiment to run ('list' prints descriptions)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment RNG seed")
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-faithful timing (300 s runs) instead of the fast preset",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for batch experiments (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"on-disk result cache location (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="run every simulation even if a cached result exists",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print one line per completed batch run, with live counters",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="write a JSON run manifest (config hash, seed, git state, "
        "timings, aggregated metrics) to PATH after the run",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-run wall-clock deadline; a hung worker is killed and the "
        "run retried (default: no deadline)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=1,
        metavar="N",
        help="retries per run after a transient failure (default: 1; "
        "permanent errors such as bad parameters never retry)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted sweep: replay runs recorded in the "
        "cache dir's journal and execute only the remainder",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="collect terminally failed runs into a failure report instead "
        "of aborting the sweep (exit code 1 if any run was abandoned)",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="PLAN",
        help="chaos-test the batch runtime: inject deterministic faults, "
        'e.g. "crash@1,hang@3:30,poison@0" or "seed=7,crash=1,hang=1" '
        "(see docs/robustness.md)",
    )
    parser.add_argument(
        "--policy",
        metavar="NAME",
        default=None,
        help="scheduling policy for the fleet/scenarios experiments "
        f"({', '.join(POLICY_NAMES)}; see docs/fleet.md)",
    )
    parser.add_argument(
        "--health-warning-rise",
        type=float,
        default=None,
        metavar="C",
        help="health monitor: warning threshold as degrees C above the "
        "idle mean (default: 3.5; see docs/monitoring.md)",
    )
    parser.add_argument(
        "--health-critical-rise",
        type=float,
        default=None,
        metavar="C",
        help="health monitor: critical threshold as degrees C above the "
        "idle mean (default: 5.5)",
    )
    parser.add_argument(
        "--health-period",
        type=float,
        default=None,
        metavar="SECONDS",
        help="health monitor sampling period (default: 1.0)",
    )
    return parser


def supports_runner(func: Callable) -> bool:
    """Whether an experiment accepts the batch ``runner`` keyword."""
    return "runner" in inspect.signature(func).parameters


def supports_policy(func: Callable) -> bool:
    """Whether an experiment accepts the scheduling ``policy`` keyword."""
    return "policy" in inspect.signature(func).parameters


def supports_health(func: Callable) -> bool:
    """Whether an experiment accepts the ``health_params`` keyword
    (monitoring threshold overrides)."""
    return "health_params" in inspect.signature(func).parameters


def health_params_from_args(args: argparse.Namespace) -> Optional[HealthParams]:
    """Build the ``--health-*`` override, or None when no flag was given
    (experiments then use the :class:`~repro.health.HealthParams`
    defaults)."""
    overrides = {}
    if args.health_warning_rise is not None:
        overrides["warning_rise"] = args.health_warning_rise
    if args.health_critical_rise is not None:
        overrides["critical_rise"] = args.health_critical_rise
    if args.health_period is not None:
        overrides["period"] = args.health_period
    if not overrides:
        return None
    return HealthParams(**overrides)


def validate_health(experiment: str, params: Optional[HealthParams]) -> None:
    """Reject ``--health-*`` flags on experiments without monitors."""
    if params is None or experiment == "all":
        return
    func = EXPERIMENTS.get(experiment, (None, None))[1]
    if func is None or not supports_health(func):
        raise ConfigurationError(
            f"--health-* flags apply only to experiments with health "
            f"monitors (fig2, fleet, fleet-compare, scenarios), not "
            f"{experiment!r}"
        )


def validate_policy(experiment: str, policy: Optional[str]) -> None:
    """Reject a bad ``--policy`` before any simulation starts."""
    if policy is None:
        return
    if policy not in POLICY_NAMES:
        raise ConfigurationError(
            f"unknown scheduling policy {policy!r} "
            f"(known: {', '.join(POLICY_NAMES)})"
        )
    func = EXPERIMENTS.get(experiment, (None, None))[1]
    if func is None or not supports_policy(func):
        raise ConfigurationError(
            f"--policy applies only to experiments that take a scheduling "
            f"policy (fleet, scenarios), not {experiment!r}"
        )


def validate_batch_flags(experiment: str, args: argparse.Namespace) -> None:
    """Reject batch flags on an experiment that would silently ignore
    them.

    The single-machine experiments interleave every event on one
    simulated testbed — there is nothing to pool, cache, journal, or
    keep going past, so a ``--jobs 4`` there would be a lie the user
    only discovers by timing the run.  ``all`` and ``list`` are exempt
    (an ``all`` sweep legitimately mixes both kinds).
    """
    if experiment in ("all", "list"):
        return
    func = EXPERIMENTS.get(experiment, (None, None))[1]
    if func is None or supports_runner(func):
        return
    ignored = []
    if args.jobs != 1:
        ignored.append("--jobs")
    if args.cache_dir != DEFAULT_CACHE_DIR:
        ignored.append("--cache-dir")
    if args.no_cache:
        ignored.append("--no-cache")
    if args.progress:
        ignored.append("--progress")
    if args.timeout is not None:
        ignored.append("--timeout")
    if args.max_retries != 1:
        ignored.append("--max-retries")
    if args.resume:
        ignored.append("--resume")
    if args.keep_going:
        ignored.append("--keep-going")
    if args.inject_faults:
        ignored.append("--inject-faults")
    if ignored:
        batch = ", ".join(
            name for name in sorted(EXPERIMENTS) if supports_runner(EXPERIMENTS[name][1])
        )
        raise ConfigurationError(
            f"{', '.join(ignored)}: no effect on {experiment!r}, which runs "
            f"all its events on one simulated machine (batch experiments: "
            f"{batch})"
        )


def _print_progress(event: ProgressEvent, runner: Optional[ParallelRunner] = None) -> None:
    params = ", ".join(f"{k}={v}" for k, v in event.spec.params.items())
    line = (
        f"  [{event.done}/{event.total}] {event.source:<6s} "
        f"{event.spec.kind}({params})"
    )
    if runner is not None:
        # Live counters: cumulative over the runner's whole lifetime.
        line += f" | {runner.metrics.summary()}"
    print(line, file=sys.stderr)


def make_runner(
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    use_cache: bool = True,
    progress: bool = False,
    timeout: Optional[float] = None,
    max_retries: int = 1,
    resume: bool = False,
    keep_going: bool = False,
    inject_faults: Optional[str] = None,
) -> ParallelRunner:
    """The CLI's batch runner: pool + cache + journal + retry policy.

    With caching enabled the runner also journals completions into
    ``<cache-dir>/journal.jsonl``; ``resume=True`` keeps (instead of
    truncating) that journal, replaying its runs from the cache.
    """
    if max_retries < 0:
        raise ConfigurationError(f"--max-retries must be >= 0, got {max_retries}")
    if resume and not use_cache:
        raise ConfigurationError("--resume needs the cache (drop --no-cache)")
    cache_dir = cache_dir or DEFAULT_CACHE_DIR
    cache = ResultCache(cache_dir) if use_cache else None
    journal = (
        SweepJournal(Path(cache_dir) / JOURNAL_NAME, resume=resume)
        if use_cache
        else None
    )
    runner = ParallelRunner(
        jobs=jobs,
        cache=cache,
        timeout=timeout,
        retry_policy=RetryPolicy(max_attempts=1 + max_retries),
        journal=journal,
        keep_going=keep_going,
        fault_plan=FaultPlan.parse(inject_faults) if inject_faults else None,
    )
    if progress:
        runner.progress = lambda event: _print_progress(event, runner)
    return runner


def run_experiment(
    name: str,
    *,
    seed: int = 0,
    full: bool = False,
    runner: Optional[ParallelRunner] = None,
    timings: Optional[Dict[str, float]] = None,
    policy: Optional[str] = None,
    artifacts: Optional[Dict[str, object]] = None,
    health_params: Optional[HealthParams] = None,
    health: Optional[Dict[str, object]] = None,
) -> str:
    """Run one experiment and return its rendered text.

    ``timings``, when given, collects the experiment's wall seconds
    under its name (the manifest records these).  ``policy`` is passed
    through to experiments that take a scheduling policy (the fleet);
    asking for it elsewhere is a :class:`ConfigurationError`.
    ``artifacts``, when given, collects ``result.manifest_payload()``
    under the experiment's name for results that define it (the
    ``scenarios`` experiment's per-window SLO series).  ``health_params``
    overrides the monitoring thresholds for experiments that run health
    monitors; ``health``, when given, collects ``result.health_payload()``
    under the experiment's name (the manifest's ``health`` section).
    """
    config = full_config(seed) if full else fast_config(seed)
    _, func = EXPERIMENTS[name]
    kwargs = {}
    if policy is not None:
        validate_policy(name, policy)
        kwargs["policy"] = policy
    if health_params is not None and supports_health(func):
        kwargs["health_params"] = health_params
    started = time.time()
    if runner is not None and supports_runner(func):
        executed_before = runner.metrics.executed
        hits_before = runner.metrics.cache_hits
        result = func(config, runner=runner, **kwargs)
        elapsed = time.time() - started
        executed = runner.metrics.executed - executed_before
        hits = runner.metrics.cache_hits - hits_before
        status = (
            f"[{name}: {elapsed:.1f}s wall | runs: {executed} executed, "
            f"{hits} cached | jobs={runner.jobs}]"
        )
    else:
        result = func(config, **kwargs)
        elapsed = time.time() - started
        status = f"[{name}: {elapsed:.1f}s wall]"
    if timings is not None:
        timings[name] = elapsed
    if artifacts is not None and hasattr(result, "manifest_payload"):
        artifacts[name] = result.manifest_payload()
    if health is not None and hasattr(result, "health_payload"):
        health[name] = result.health_payload()
    return f"{result.render()}\n{status}"


def build_manifest(
    *,
    names: List[str],
    seed: int,
    full: bool,
    runner: ParallelRunner,
    metrics_registry: MetricsRegistry,
    timings: Dict[str, float],
    resumed: bool = False,
    artifacts: Optional[Dict[str, object]] = None,
    health: Optional[Dict[str, object]] = None,
) -> RunManifest:
    """Assemble the run manifest for one CLI invocation."""
    config = full_config(seed) if full else fast_config(seed)
    return RunManifest(
        experiments=list(names),
        seed=seed,
        config_hash=config_hash(config),
        code_fingerprint=code_fingerprint(),
        jobs=runner.jobs,
        resumed=resumed,
        git=git_describe(Path(__file__).resolve().parent),
        created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        timings=timings,
        runner=dataclasses.asdict(runner.metrics),
        cache=dataclasses.asdict(runner.cache.stats) if runner.cache else None,
        failures=runner.failure_report.to_dict() if runner.failure_report else None,
        metrics=metrics_registry.snapshot(),
        artifacts=artifacts or {},
        health=health or {},
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            description, func = EXPERIMENTS[name]
            batch = " [batch]" if supports_runner(func) else ""
            print(f"{name:22s} {description}{batch}")
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    # A fresh registry per invocation: the manifest's metrics cover
    # exactly this run, even when main() is called repeatedly in-process.
    with isolated() as metrics_registry:
        try:
            validate_policy(args.experiment, args.policy)
            validate_batch_flags(args.experiment, args)
            health_params = health_params_from_args(args)
            validate_health(args.experiment, health_params)
            runner = make_runner(
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                use_cache=not args.no_cache,
                progress=args.progress,
                timeout=args.timeout,
                max_retries=args.max_retries,
                resume=args.resume,
                keep_going=args.keep_going,
                inject_faults=args.inject_faults,
            )
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        timings: Dict[str, float] = {}
        artifacts: Dict[str, object] = {}
        health: Dict[str, object] = {}
        try:
            for name in names:
                print(
                    run_experiment(
                        name,
                        seed=args.seed,
                        full=args.full,
                        runner=runner,
                        timings=timings,
                        policy=args.policy,
                        artifacts=artifacts,
                        health_params=health_params,
                        health=health,
                    )
                )
                print()
            if runner.failure_report:
                print(format_failure_report(runner.failure_report))
                print()
            if args.metrics:
                manifest = build_manifest(
                    names=names,
                    seed=args.seed,
                    full=args.full,
                    runner=runner,
                    metrics_registry=metrics_registry,
                    timings=timings,
                    resumed=args.resume,
                    artifacts=artifacts,
                    health=health,
                )
                path = manifest.write(args.metrics)
                print(f"[manifest written to {path}]", file=sys.stderr)
        finally:
            # The journal must be durable even on SIGINT/failure: that is
            # what a later --resume replays.
            if runner.journal is not None:
                runner.journal.close()
    return 1 if runner.failure_report.fatal else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
