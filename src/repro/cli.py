"""Command-line experiment runner: ``python -m repro <experiment>``.

Examples
--------
::

    python -m repro list
    python -m repro fig3
    python -m repro fig3 --jobs 4               # fan runs out over 4 workers
    python -m repro fig4 --full --seed 7
    python -m repro smoke --jobs 2              # tiny end-to-end batch check
    python -m repro all --no-cache

Experiments built from independent characterization / finite runs
(fig3, fig4, table1, the validations, smoke) execute through the
:mod:`repro.runtime` batch layer: ``--jobs N`` runs them on a worker
pool and results are cached on disk (default ``.repro-cache/``) so a
repeat invocation is nearly instant.  ``--jobs``/caching have no effect
on the single-machine experiments (fig1, fig2, fig5, fig6), which
interleave all their threads on one simulated testbed.
"""

from __future__ import annotations

import argparse
import dataclasses
import inspect
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .experiments import (
    fast_config,
    fig1_power_trace,
    fig2_temperature_timeseries,
    fig3_efficiency,
    fig4_technique_comparison,
    fig5_per_thread_control,
    fig6_webserver_qos,
    full_config,
    smoke_sweep,
    table1_spec_workloads,
    validate_energy_model,
    validate_throughput_model,
)
from .runtime import (
    ParallelRunner,
    ProgressEvent,
    ResultCache,
    code_fingerprint,
    config_hash,
)
from .telemetry import MetricsRegistry, RunManifest, git_describe, isolated

#: Where run results are cached unless ``--cache-dir`` overrides it.
DEFAULT_CACHE_DIR = ".repro-cache"

#: experiment name -> (description, runner).
EXPERIMENTS: Dict[str, tuple] = {
    "fig1": ("race-to-idle vs Dimetrodon power trace", fig1_power_trace),
    "fig2": ("temperature rise vs time for several p", fig2_temperature_timeseries),
    "fig3": ("efficiency vs idle quantum length", fig3_efficiency),
    "fig4": ("Dimetrodon vs VFS vs p4tcc sweeps", fig4_technique_comparison),
    "fig5": ("global vs per-thread control", fig5_per_thread_control),
    "fig6": ("web server QoS vs temperature reduction", fig6_webserver_qos),
    "table1": ("SPEC CPU2006 profiles and fits", table1_spec_workloads),
    "validate-throughput": ("throughput model validation (§3.3)", validate_throughput_model),
    "validate-energy": ("energy model validation (§3.3)", validate_energy_model),
    "smoke": ("tiny sweep exercising the batch runtime (CI)", smoke_sweep),
}


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dimetrodon",
        description="Reproduce the Dimetrodon (DAC 2011) evaluation on a "
        "simulated server testbed.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="experiment to run ('list' prints descriptions)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment RNG seed")
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-faithful timing (300 s runs) instead of the fast preset",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for batch experiments (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"on-disk result cache location (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="run every simulation even if a cached result exists",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print one line per completed batch run, with live counters",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="write a JSON run manifest (config hash, seed, git state, "
        "timings, aggregated metrics) to PATH after the run",
    )
    return parser


def supports_runner(func: Callable) -> bool:
    """Whether an experiment accepts the batch ``runner`` keyword."""
    return "runner" in inspect.signature(func).parameters


def _print_progress(event: ProgressEvent, runner: Optional[ParallelRunner] = None) -> None:
    params = ", ".join(f"{k}={v}" for k, v in event.spec.params.items())
    line = (
        f"  [{event.done}/{event.total}] {event.source:<5s} "
        f"{event.spec.kind}({params})"
    )
    if runner is not None:
        # Live counters: cumulative over the runner's whole lifetime.
        line += f" | {runner.metrics.summary()}"
    print(line, file=sys.stderr)


def make_runner(
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    use_cache: bool = True,
    progress: bool = False,
) -> ParallelRunner:
    """The CLI's batch runner: pool size + on-disk cache + progress."""
    cache = ResultCache(cache_dir or DEFAULT_CACHE_DIR) if use_cache else None
    runner = ParallelRunner(jobs=jobs, cache=cache)
    if progress:
        runner.progress = lambda event: _print_progress(event, runner)
    return runner


def run_experiment(
    name: str,
    *,
    seed: int = 0,
    full: bool = False,
    runner: Optional[ParallelRunner] = None,
    timings: Optional[Dict[str, float]] = None,
) -> str:
    """Run one experiment and return its rendered text.

    ``timings``, when given, collects the experiment's wall seconds
    under its name (the manifest records these).
    """
    config = full_config(seed) if full else fast_config(seed)
    _, func = EXPERIMENTS[name]
    started = time.time()
    if runner is not None and supports_runner(func):
        executed_before = runner.metrics.executed
        hits_before = runner.metrics.cache_hits
        result = func(config, runner=runner)
        elapsed = time.time() - started
        executed = runner.metrics.executed - executed_before
        hits = runner.metrics.cache_hits - hits_before
        status = (
            f"[{name}: {elapsed:.1f}s wall | runs: {executed} executed, "
            f"{hits} cached | jobs={runner.jobs}]"
        )
    else:
        result = func(config)
        elapsed = time.time() - started
        status = f"[{name}: {elapsed:.1f}s wall]"
    if timings is not None:
        timings[name] = elapsed
    return f"{result.render()}\n{status}"


def build_manifest(
    *,
    names: List[str],
    seed: int,
    full: bool,
    runner: ParallelRunner,
    metrics_registry: MetricsRegistry,
    timings: Dict[str, float],
) -> RunManifest:
    """Assemble the run manifest for one CLI invocation."""
    config = full_config(seed) if full else fast_config(seed)
    return RunManifest(
        experiments=list(names),
        seed=seed,
        config_hash=config_hash(config),
        code_fingerprint=code_fingerprint(),
        jobs=runner.jobs,
        git=git_describe(Path(__file__).resolve().parent),
        created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        timings=timings,
        runner=dataclasses.asdict(runner.metrics),
        cache=dataclasses.asdict(runner.cache.stats) if runner.cache else None,
        metrics=metrics_registry.snapshot(),
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            description, func = EXPERIMENTS[name]
            batch = " [batch]" if supports_runner(func) else ""
            print(f"{name:22s} {description}{batch}")
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    # A fresh registry per invocation: the manifest's metrics cover
    # exactly this run, even when main() is called repeatedly in-process.
    with isolated() as metrics_registry:
        runner = make_runner(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            progress=args.progress,
        )
        timings: Dict[str, float] = {}
        for name in names:
            print(
                run_experiment(
                    name, seed=args.seed, full=args.full, runner=runner, timings=timings
                )
            )
            print()
        if args.metrics:
            manifest = build_manifest(
                names=names,
                seed=args.seed,
                full=args.full,
                runner=runner,
                metrics_registry=metrics_registry,
                timings=timings,
            )
            path = manifest.write(args.metrics)
            print(f"[manifest written to {path}]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
