"""Rack cells: fleet rack runs as batchable, cacheable units of work.

The fleet experiments (``fleet``, ``fleet-compare``, ``scenarios``)
are grids of *fully independent* rack simulations — each cell builds
its own :class:`~repro.fleet.machine.FleetMachine` from its own
config and shares no state with any other cell.  Historically they
ran those cells in a bare serial loop, bypassing the
:mod:`repro.runtime` batch layer the figure sweeps use.  This module
closes that gap by expressing one rack run as the runtime's unit of
work:

- :func:`rack_cell_spec` builds a picklable
  :class:`~repro.runtime.parallel.RunSpec` (kind ``"rack-cell"``)
  whose cache key covers the experiment config, every cell parameter
  (policy, load shape, injection, health thresholds, scoring windows),
  the base physics fingerprint, *and* the fleet/health/analysis code
  fingerprint (:func:`~repro.runtime.hashing.fleet_fingerprint`) — so
  editing a scheduling policy invalidates exactly the rack cells, not
  the figure sweeps;
- :func:`run_rack_cell` is the registered executor: it rebuilds the
  rack from the declarative parameters (arrival shapes come from the
  shape registry, node programming from scalar flags — nothing
  unpicklable crosses a process boundary), runs it through
  :func:`~repro.fleet.experiment._measure_rack`, and distils the
  result into a :class:`RackCellResult`;
- :class:`RackCellResult` is the serialisable cell result — the
  :class:`~repro.fleet.experiment._FleetRun` measurement, the health
  rollup, the windowed SLO report, and the cell's physics telemetry —
  registered with the result cache's JSON codec so cached replay is
  bit-identical to execution.

Because each cell rebuilds its rack from ``(config, params)`` alone,
a ``jobs=N`` fan-out is bit-identical to the old serial loop, and the
pool/cache/journal/retry/timeout stack (``--jobs``, ``--cache-dir``,
``--resume``, ``--timeout``, ``--keep-going``) applies to fleet
experiments exactly as it does to figure sweeps.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.slo import SloReport, WindowScore, score_windows
from ..core.migration import ThermalMigrationPolicy
from ..cpu.tcc import TccSetting
from ..errors import ExecutionError
from ..health import HealthParams
from ..runtime.cache import register_result_codec
from ..runtime.hashing import fleet_fingerprint
from ..runtime.parallel import ParallelRunner, RunSpec, execute_spec, register_executor
from ..sim.rng import RngRegistry
from ..telemetry.registry import registry as _metrics_registry
from .experiment import _FleetRun, _measure_rack
from .machine import FleetNode

#: The executor kind rack cells run under (see ``repro.runtime``).
RACK_CELL_KIND = "rack-cell"


# ----------------------------------------------------------------------
# The serialisable cell result
# ----------------------------------------------------------------------
@dataclass
class RackCellResult:
    """Everything downstream scoring needs from one rack run, in plain
    picklable/JSON-codable data (no live fleet, no request logs)."""

    #: The rack-wide measurement (QoS, temperatures, energy, alerts).
    run: _FleetRun
    #: The rack's idle baseline (°C) — identical for every cell of a
    #: grid that shares a config, carried per cell for self-containment.
    idle_mean_temp: float
    #: Intra-chip heat-and-run migrations summed over nodes (the
    #: inter-chip count lives in ``run.migrations``).
    core_migrations: int = 0
    #: Health-monitor summary (JSON-safe) for the manifest.
    health: Optional[Dict[str, Any]] = None
    #: Windowed SLO report (only when the cell was asked to score one).
    slo: Optional[SloReport] = None
    #: Whole-run p95 response time over answered requests in the
    #: scoring span, seconds (None when not scored or nothing answered).
    p95_response: Optional[float] = None
    #: This cell's physics telemetry: chip-substeps advanced and the
    #: wall seconds they took (from the ``fleet.*`` counters).  Cached
    #: cells replay the numbers measured when they actually executed.
    substeps: float = 0.0
    advance_wall_s: float = 0.0

    # -- cache codec ---------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        if self.slo is not None:
            payload["slo"] = {
                "windows": [dataclasses.asdict(w) for w in self.slo.windows],
                "good_threshold": self.slo.good_threshold,
                "tolerable_threshold": self.slo.tolerable_threshold,
                "window_length": self.slo.window_length,
            }
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "RackCellResult":
        data = dict(payload)
        data["run"] = _FleetRun(**data["run"])
        if data.get("slo") is not None:
            slo = data["slo"]
            data["slo"] = SloReport(
                windows=[WindowScore(**w) for w in slo["windows"]],
                good_threshold=slo["good_threshold"],
                tolerable_threshold=slo["tolerable_threshold"],
                window_length=slo["window_length"],
            )
        return cls(**data)


register_result_codec(
    RACK_CELL_KIND,
    RackCellResult,
    encode=RackCellResult.to_payload,
    decode=RackCellResult.from_payload,
)


# ----------------------------------------------------------------------
# Spec construction
# ----------------------------------------------------------------------
def rack_cell_spec(config: Any, **params: Any) -> RunSpec:
    """A :class:`RunSpec` for one rack cell.

    ``params`` are :func:`run_rack_cell` keyword arguments; every one
    of them participates in the cache key, alongside the config, the
    physics fingerprint, and the fleet code fingerprint.
    """
    return RunSpec(
        kind=RACK_CELL_KIND,
        config=config,
        params=params,
        extra_code=fleet_fingerprint(),
    )


def run_cells(
    runner: Optional[ParallelRunner], specs: Sequence[RunSpec]
) -> List[Optional[RackCellResult]]:
    """Execute rack cells through ``runner`` (pool + cache + journal +
    retries), or in-process in submission order when no runner is
    attached (library callers; identical results by construction)."""
    if runner is not None:
        return runner.run(list(specs))
    return [execute_spec(spec) for spec in specs]


def require_cells(
    experiment: str, names: Sequence[str], results: Sequence[Optional[RackCellResult]]
) -> None:
    """Fail loudly when essential cells were abandoned (``--keep-going``
    leaves ``None`` in a terminally failed cell's slot)."""
    missing = [name for name, result in zip(names, results) if result is None]
    if missing:
        raise ExecutionError(
            f"{experiment}: required rack cell(s) failed terminally and "
            f"left no result: {', '.join(missing)} (see the failure report)"
        )


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
def _plain(value: Any) -> Any:
    """Collapse numpy scalars so executed and cache-replayed results
    are structurally identical (the cache stores JSON numbers)."""
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def _node_setup(
    *,
    dvfs_min: bool,
    tcc_duty: Optional[float],
    heat_and_run: bool,
    core_policies: List[ThermalMigrationPolicy],
):
    """Per-node configuration hook built from declarative flags (the
    compare experiment's technique knobs), or None when nothing is
    asked for.  Mirrors the management-plane convention: heat-and-run
    reads only the node's sampled telemetry, never live physics."""
    if not (dvfs_min or tcc_duty is not None or heat_and_run):
        return None

    def setup(node: FleetNode):
        if dvfs_min:
            node.chip.set_operating_point(node.chip.dvfs_table.min_point)
        if tcc_duty is not None:
            node.chip.set_tcc(TccSetting(duty=tcc_duty))
        if heat_and_run:
            def read_temps(node=node):
                sample = node.templog.latest()
                return node.fleet.idle_core_temps if sample is None else sample

            policy = ThermalMigrationPolicy(
                node.simview, node.scheduler, read_temps, period=1.0, min_delta=0.5
            )
            core_policies.append(policy)
            return policy
        return None

    return setup


def run_rack_cell(
    config: Any,
    *,
    machines: int,
    duration: float,
    warmup: float,
    p: float,
    idle_quantum: float,
    policy: str = "round-robin",
    shape: Optional[str] = None,
    rate: Optional[float] = None,
    dvfs_min: bool = False,
    tcc_duty: Optional[float] = None,
    heat_and_run: bool = False,
    health: Optional[HealthParams] = None,
    health_per_machine: bool = True,
    slo_window: Optional[Tuple[float, float, float]] = None,
) -> RackCellResult:
    """Build, run, and score one rack — the ``rack-cell`` executor.

    ``shape`` names a load shape from the scenarios registry
    (``rate`` is the aggregate requests/s envelope it is sized for);
    None keeps the web servers' default fixed-rate Poisson front door.
    ``dvfs_min``/``tcc_duty``/``heat_and_run`` are the compare
    experiment's per-node technique knobs.  ``slo_window`` is
    ``(start, end, window)``: when given, the rack's pooled requests
    are scored with the windowed SLO scorer *inside the cell*, so only
    the report — not the request log — crosses the process boundary.
    """
    arrivals = None
    if shape is not None:
        # Imported lazily: scenarios.py builds specs through this
        # module, so the module-level edge must point the other way.
        from .scenarios import build_scenario_arrivals

        if rate is None:
            raise ExecutionError("a shaped rack cell needs an aggregate rate")
        # A fresh, identically seeded stream per cell: the trace shape
        # synthesizes the same frozen trace in every cell (bit-identical
        # replay), and the live shapes draw from the balancer's own
        # per-rack stream at run time.
        trace_rng = RngRegistry(config.seed).stream("scenario-trace")
        arrivals = build_scenario_arrivals(
            shape, rate=rate, duration=duration, rng=trace_rng
        )

    metrics = _metrics_registry()

    def _physics() -> Tuple[float, float]:
        wall = metrics.value("fleet.advance_wall", {"total": 0.0})["total"]
        return float(metrics.value("fleet.substeps", 0)), float(wall)

    core_policies: List[ThermalMigrationPolicy] = []
    substeps0, wall0 = _physics()
    measurement = _measure_rack(
        config,
        machines=machines,
        duration=duration,
        warmup=warmup,
        p=p,
        idle_quantum=idle_quantum,
        policy=policy,
        node_setup=_node_setup(
            dvfs_min=dvfs_min,
            tcc_duty=tcc_duty,
            heat_and_run=heat_and_run,
            core_policies=core_policies,
        ),
        arrivals=arrivals,
        health_params=health,
    )
    substeps1, wall1 = _physics()
    metrics.scope("fleet").counter("cells").inc()

    slo: Optional[SloReport] = None
    p95: Optional[float] = None
    if slo_window is not None:
        start, end, window = slo_window
        pooled = measurement.pooled_requests()
        slo = score_windows(pooled, start=start, end=end, window=window)
        answered = sorted(
            r.response_time
            for r in pooled
            if start <= r.arrival < end and r.response_time is not None
        )
        p95 = float(np.percentile(answered, 95.0)) if answered else None

    run = _FleetRun(
        **{
            f.name: _plain(getattr(measurement.run, f.name))
            for f in dataclasses.fields(_FleetRun)
        }
    )
    return RackCellResult(
        run=run,
        idle_mean_temp=float(measurement.fleet.idle_mean_temp),
        core_migrations=int(sum(hr.migrations for hr in core_policies)),
        health=_plain(measurement.health.summary(per_machine=health_per_machine)),
        slo=slo,
        p95_response=p95,
        substeps=substeps1 - substeps0,
        advance_wall_s=wall1 - wall0,
    )


register_executor(RACK_CELL_KIND, run_rack_cell)
