"""The ``scenarios`` CLI experiment: injection × load shape × policy.

The paper evaluates the web workload at one operating point — a fixed
Poisson arrival rate (§3.7).  Production traffic is not flat, and the
regimes where preventive injection's "defer work now" trade-off bites
are exactly the time-varying ones: a diurnal trough gives injection
free thermal headroom, a flash crowd punishes any deferred capacity,
and heavy-tailed bursts stress the backlog the paper warns about
("deferring idle cycles ... increases processor load and heat").

This experiment sweeps injection probability × load shape across the
scheduling-policy registry (:mod:`repro.fleet.scheduling`), serving
every cell on an identically seeded rack.  Each run is scored with the
windowed SLO scorer (:mod:`repro.analysis.slo`): per-window
good/tolerable/failed fractions over half-open windows, worst-window
and time-in-violation summaries — the numbers a whole-run average
hides.  Per shape, the non-baseline cells form a QoS-vs-temperature
Pareto frontier (:func:`~repro.core.pareto.pareto_boundary`), and the
full per-window series lands in the run manifest via
:meth:`ScenariosResult.manifest_payload` (``--metrics``).

Load shapes (registry: :data:`SCENARIO_SHAPES`):

``constant``   the paper's fixed-rate reference point;
``diurnal``    one sinusoidal day/night cycle compressed into the run;
``surge``      a flash crowd: 2x the nominal rate for the middle fifth;
``bursty``     Poisson baseline + Pareto-sized request bursts;
``trace``      a frozen trace synthesized once from a composed
               diurnal+surge shape and replayed bit-identically for
               every policy and ``p`` (trace-driven arrivals).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..analysis.slo import SloReport
from ..core.pareto import TradeoffPoint, pareto_boundary
from ..errors import ConfigurationError
from ..experiments.config import ExperimentConfig
from ..experiments.reporting import format_table, percent
from ..health import HealthParams
from ..telemetry.registry import registry as _metrics_registry
from ..workloads.loadshapes import (
    ArrivalProcess,
    ConstantLoad,
    DiurnalLoad,
    MergedArrivals,
    ParetoBurstArrivals,
    PoissonArrivals,
    StepLoad,
    TraceArrivals,
    synthesize_request_trace,
)
from ..workloads.webserver import QOS_GOOD, QOS_TOLERABLE
from .cells import rack_cell_spec, run_cells
from .experiment import _offered_load, _FleetRun
from .scheduling.registry import POLICY_NAMES

#: Shape registry order is presentation order in the report.
SCENARIO_SHAPES = ("constant", "diurnal", "surge", "bursty", "trace")

#: Default policy subset for the sweep (the full registry makes the
#: grid 5x larger for little extra signal; ``--policy`` narrows to one).
DEFAULT_POLICIES = ("round-robin", "coolest", "migrate")

#: Default injection probabilities (0 is the per-shape baseline and is
#: always included even if the caller drops it).
DEFAULT_P_VALUES = (0.0, 0.4, 0.8)


def build_scenario_arrivals(
    name: str,
    *,
    rate: float,
    duration: float,
    rng: np.random.Generator,
) -> ArrivalProcess:
    """Construct the named shape's arrival process for a rack sized for
    ``rate`` requests/s aggregate, over a ``duration``-second run.

    ``rng`` is consumed only by the ``trace`` shape (to synthesize the
    frozen trace); the live shapes draw from the balancer's stream at
    run time.  Unknown names raise :class:`ConfigurationError` listing
    the registry.
    """
    if name == "constant":
        return PoissonArrivals(ConstantLoad(rate))
    if name == "diurnal":
        # One full day/night cycle compressed into the run: the trough
        # is where injection gets free headroom, the crest where it
        # must pay the deferred work back.
        return PoissonArrivals(
            DiurnalLoad(rate, amplitude=0.6, period=duration, phase=0.0)
        )
    if name == "surge":
        # Flash crowd: double the nominal rate for the middle fifth.
        return PoissonArrivals(
            StepLoad(
                0.75 * rate,
                2.0 * rate,
                start=0.4 * duration,
                duration=0.2 * duration,
            )
        )
    if name == "bursty":
        # 70% smooth Poisson baseline + 30% of the load arriving as
        # Pareto-sized bursts (heavy-tailed bunching).
        burst_mean = 40.0
        return MergedArrivals(
            PoissonArrivals(ConstantLoad(0.7 * rate)),
            ParetoBurstArrivals(
                burst_rate=0.3 * rate / burst_mean,
                mean_burst_size=burst_mean,
                alpha=1.5,
                in_burst_rate=max(4.0 * rate, 100.0),
            ),
        )
    if name == "trace":
        # Freeze a composed diurnal+surge shape into a concrete trace:
        # every policy/p cell replays bit-identical arrival times.
        shape = DiurnalLoad(
            0.7 * rate, amplitude=0.5, period=duration
        ) + StepLoad(
            0.0, 0.6 * rate, start=0.5 * duration, duration=0.15 * duration
        )
        trace = synthesize_request_trace(rng, duration=duration, shape=shape)
        return TraceArrivals(trace)
    raise ConfigurationError(
        f"unknown load shape {name!r} (known: {', '.join(SCENARIO_SHAPES)})"
    )


@dataclass
class ScenarioRow:
    """One cell of the sweep: a rack run under (shape, policy, p)."""

    shape: str
    policy: str
    p: float
    run: _FleetRun
    report: SloReport
    #: Whole-run p95 response time over answered requests in the
    #: scoring span, seconds (None when nothing was answered).
    p95_response: Optional[float] = None
    #: This cell's compact health summary (JSON-safe, no per-machine
    #: detail — the grid would multiply it by machines × cells).
    health: Optional[Dict[str, object]] = None


def _tradeoff(
    row: ScenarioRow, baseline: ScenarioRow, idle_mean: float
) -> Optional[TradeoffPoint]:
    """Temperature reduction vs QoS-good reduction against the shape's
    baseline cell, or None when either side carries no data."""
    good = row.report.good_fraction
    base_good = baseline.report.good_fraction
    if good is None or base_good is None or base_good <= 0:
        return None
    baseline_rise = baseline.run.mean_temp - idle_mean
    rise = row.run.mean_temp - idle_mean
    reduction = (baseline_rise - rise) / baseline_rise if baseline_rise > 0 else 0.0
    return TradeoffPoint(
        temp_reduction=reduction,
        throughput_reduction=1.0 - good / base_good,
        params={"policy": row.policy, "p": row.p},
    )


@dataclass
class ScenariosResult:
    """The full sweep: one :class:`ScenarioRow` per grid cell, plus the
    per-shape Pareto frontiers and manifest serialization."""

    machines: int
    duration: float
    warmup: float
    window: float
    idle_quantum: float
    idle_mean_temp: float
    offered_load_per_core: float
    shapes: List[str]
    policies: List[str]
    p_values: List[float]
    rows: List[ScenarioRow] = field(default_factory=list)

    # ------------------------------------------------------------------
    def shape_rows(self, shape: str) -> List[ScenarioRow]:
        return [row for row in self.rows if row.shape == shape]

    def baseline_for(self, shape: str) -> Optional[ScenarioRow]:
        """The shape's reference cell (first policy at ``p=0``), or
        None when it is absent — possible only under ``--keep-going``
        when the baseline cell failed terminally."""
        for row in self.shape_rows(shape):
            if row.policy == self.policies[0] and row.p == 0.0:
                return row
        return None

    def tradeoffs(self, shape: str) -> List[TradeoffPoint]:
        """One (temp reduction, QoS reduction) point per non-baseline
        cell of ``shape`` that carries data (empty without a baseline
        to score against)."""
        baseline = self.baseline_for(shape)
        if baseline is None:
            return []
        points = []
        for row in self.shape_rows(shape):
            if row is baseline:
                continue
            point = _tradeoff(row, baseline, self.idle_mean_temp)
            if point is not None:
                points.append(point)
        return points

    def pareto(self, shape: str) -> List[TradeoffPoint]:
        """The shape's Pareto-efficient cells (cooling >= 0 only)."""
        return pareto_boundary(
            [pt for pt in self.tradeoffs(shape) if pt.temp_reduction >= 0]
        )

    def _efficient_keys(self) -> set:
        keys = set()
        for shape in self.shapes:
            for point in self.pareto(shape):
                keys.add((shape, point.params["policy"], point.params["p"]))
        return keys

    # ------------------------------------------------------------------
    def render(self) -> str:
        efficient = self._efficient_keys()
        table_rows = []
        for row in self.rows:
            summary = row.report.summary()
            worst = summary["worst_window_good"]
            table_rows.append(
                [
                    row.shape,
                    row.policy,
                    row.p,
                    row.run.mean_temp - self.idle_mean_temp,
                    row.run.peak_temp - self.idle_mean_temp,
                    _pct(summary["good_fraction"]),
                    _pct(summary["tolerable_fraction"]),
                    _pct(worst),
                    summary["time_in_violation_s"],
                    "n/a" if row.p95_response is None else row.p95_response,
                    row.run.alerts,
                    row.run.time_in_critical_s,
                    row.run.migrations,
                    "*" if (row.shape, row.policy, row.p) in efficient else "",
                ]
            )
        title = (
            f"Scenarios: {self.machines} machines x {self.duration:.0f}s, "
            f"{len(self.shapes)} shapes x {len(self.policies)} policies x "
            f"{len(self.p_values)} p values "
            f"(window {self.window:.1f}s, nominal load/core "
            f"{percent(self.offered_load_per_core)}; * = Pareto-efficient "
            f"within its shape)"
        )
        parts = [
            format_table(
                [
                    "shape",
                    "policy",
                    "p",
                    "rise [C]",
                    "peak [C]",
                    "QoS good",
                    "QoS tol.",
                    "worst win",
                    "viol [s]",
                    "p95 [s]",
                    "alerts",
                    "crit [s]",
                    "migr",
                    "pareto",
                ],
                table_rows,
                title=title,
            )
        ]
        for shape in self.shapes:
            frontier = self.pareto(shape)
            if not frontier:
                continue
            cells = ", ".join(
                f"{pt.params['policy']}@p={pt.params['p']:g} "
                f"(cool {percent(pt.temp_reduction)}, "
                f"QoS cost {percent(pt.throughput_reduction)})"
                for pt in frontier
            )
            parts.append(f"pareto[{shape}]: {cells}")
        return "\n".join(parts)

    # ------------------------------------------------------------------
    def manifest_payload(self) -> Dict[str, object]:
        """JSON-safe artifact for the run manifest: per-cell window
        series + summaries and the per-shape Pareto tables.

        Contains no NaN/Inf anywhere (``None`` is the no-data marker),
        so the manifest stays strict JSON (``allow_nan=False`` clean).
        """
        runs = []
        for row in self.rows:
            runs.append(
                {
                    "shape": row.shape,
                    "policy": row.policy,
                    "p": row.p,
                    "summary": row.report.summary(),
                    "series": row.report.series(),
                    "mean_temp": _json_safe(row.run.mean_temp),
                    "peak_temp": _json_safe(row.run.peak_temp),
                    "rise": _json_safe(row.run.mean_temp - self.idle_mean_temp),
                    "energy": _json_safe(row.run.energy),
                    "requests": row.run.requests,
                    "migrations": row.run.migrations,
                    "p95_response": _json_safe(row.p95_response),
                    "alerts": row.run.alerts,
                    "critical_alerts": row.run.critical_alerts,
                    "time_in_warning_s": _json_safe(row.run.time_in_warning_s),
                    "time_in_critical_s": _json_safe(row.run.time_in_critical_s),
                }
            )
        pareto: Dict[str, list] = {}
        for shape in self.shapes:
            efficient = {
                (pt.params["policy"], pt.params["p"]) for pt in self.pareto(shape)
            }
            pareto[shape] = [
                {
                    "policy": pt.params["policy"],
                    "p": pt.params["p"],
                    "temp_reduction": _json_safe(pt.temp_reduction),
                    "qos_reduction": _json_safe(pt.throughput_reduction),
                    "efficient": (pt.params["policy"], pt.params["p"]) in efficient,
                }
                for pt in self.tradeoffs(shape)
            ]
        return {
            "machines": self.machines,
            "duration": self.duration,
            "warmup": self.warmup,
            "window": self.window,
            "idle_quantum": self.idle_quantum,
            "idle_mean_temp": _json_safe(self.idle_mean_temp),
            "good_threshold": QOS_GOOD,
            "tolerable_threshold": QOS_TOLERABLE,
            "shapes": list(self.shapes),
            "policies": list(self.policies),
            "p_values": list(self.p_values),
            "runs": runs,
            "pareto": pareto,
        }

    def health_payload(self) -> Dict[str, object]:
        """Compact per-cell health section for the manifest: the shared
        monitoring config once, then one totals row per grid cell."""
        config = None
        cells = []
        for row in self.rows:
            if row.health is None:
                continue
            if config is None:
                config = row.health.get("config")
            cells.append(
                {
                    "shape": row.shape,
                    "policy": row.policy,
                    "p": row.p,
                    "totals": row.health.get("totals"),
                }
            )
        return {"config": config, "cells": cells}


def _pct(fraction: Optional[float]) -> str:
    return "n/a" if fraction is None else percent(fraction)


def _json_safe(value: Optional[float]) -> Optional[float]:
    """NaN/Inf become None (JSON null), everything else passes through."""
    if value is None:
        return None
    value = float(value)
    return value if np.isfinite(value) else None


def scenarios_experiment(
    config: ExperimentConfig,
    *,
    machines: Optional[int] = None,
    duration: Optional[float] = None,
    shapes: Optional[Sequence[str]] = None,
    policies: Sequence[str] = DEFAULT_POLICIES,
    p_values: Sequence[float] = DEFAULT_P_VALUES,
    idle_quantum: float = 0.050,
    warmup: float = 5.0,
    window: Optional[float] = None,
    policy: Optional[str] = None,
    health_params: Optional[HealthParams] = None,
    runner: Optional[Any] = None,
) -> ScenariosResult:
    """Sweep injection probability × load shape × scheduling policy.

    Every cell runs a fresh, identically seeded rack, so cells differ
    only by (shape, policy, p).  The fast preset runs a 2-machine rack
    (the grid is the cost driver, not the rack), ``--full`` 16
    machines.  ``policy`` (the CLI ``--policy``) narrows the policy
    axis to one name; otherwise :data:`DEFAULT_POLICIES` is swept.
    ``p = 0`` is always included — it is each shape's QoS/thermal
    baseline for the Pareto frontier.

    Scoring: requests arriving in ``[warmup, duration - 5s)`` are
    pooled rack-wide and scored in half-open windows of ``window``
    seconds (default: a fifth of the scoring span) *inside each cell*,
    so only the window series — never the raw request log — crosses a
    process boundary.

    The grid cells are independent rack cells
    (:mod:`repro.fleet.cells`): with a ``runner`` attached they fan
    out through its pool/cache/journal stack (``--jobs`` results are
    bit-identical to serial; a cached re-run replays the whole grid
    without simulating), and under ``--keep-going`` a failed cell
    drops its row — the frontier of a shape that lost its baseline is
    simply empty.
    """
    if machines is None:
        machines = 16 if config.characterization_duration >= 300.0 else 2
    if duration is None:
        duration = warmup + config.measure_window + QOS_TOLERABLE
    score_start, score_end = warmup, duration - QOS_TOLERABLE
    if score_end <= score_start:
        raise ConfigurationError(
            f"duration {duration}s leaves no scoring span past the "
            f"{warmup}s warmup and {QOS_TOLERABLE}s drain"
        )
    if window is None:
        window = max(1.0, (score_end - score_start) / 5.0)
    if policy is not None:
        policies = (policy,)
    for name in policies:
        if name not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown scheduling policy {name!r} "
                f"(known: {', '.join(POLICY_NAMES)})"
            )
    shapes = tuple(shapes) if shapes is not None else SCENARIO_SHAPES
    p_values = tuple(p_values)
    if 0.0 not in p_values:
        p_values = (0.0,) + p_values

    # Nominal aggregate rate the rack is sized for (what one balancer
    # feeds round-robin in the plain fleet experiment).
    connections, think_time = 440, 11.0
    rate = machines * connections / think_time

    # One spec per grid cell, grid order = submission order = report
    # order.  Each cell rebuilds its shape from the registry (the trace
    # shape resynthesizes the identical frozen trace from the config
    # seed) and scores its own SLO windows.
    grid = [
        (shape_name, policy_name, p)
        for shape_name in shapes
        for policy_name in policies
        for p in p_values
    ]
    specs = []
    for shape_name, policy_name, p in grid:
        params: dict = dict(
            machines=machines,
            duration=duration,
            warmup=warmup,
            p=p,
            idle_quantum=idle_quantum,
            policy=policy_name,
            shape=shape_name,
            rate=rate,
            health_per_machine=False,
            slo_window=(score_start, score_end, window),
        )
        if health_params is not None:
            params["health"] = health_params
        specs.append(rack_cell_spec(config, **params))
    cells = run_cells(runner, specs)

    metrics = _metrics_registry().scope("scenarios")
    result = ScenariosResult(
        machines=machines,
        duration=duration,
        warmup=warmup,
        window=window,
        idle_quantum=idle_quantum,
        idle_mean_temp=0.0,
        offered_load_per_core=_offered_load(config),
        shapes=list(shapes),
        policies=list(policies),
        p_values=list(p_values),
    )
    for (shape_name, policy_name, p), cell in zip(grid, cells):
        if cell is None:
            continue
        result.idle_mean_temp = cell.idle_mean_temp
        result.rows.append(
            ScenarioRow(
                shape=shape_name,
                policy=policy_name,
                p=p,
                run=cell.run,
                report=cell.slo,
                p95_response=cell.p95_response,
                health=cell.health,
            )
        )
        metrics.counter("racks").inc()
        metrics.counter("windows").inc(len(cell.slo.windows))
        metrics.counter("requests").inc(cell.slo.total_arrivals)
    return result
