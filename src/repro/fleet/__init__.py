"""Fleet-scale simulation: racks of servers on one event queue with
structure-of-arrays batched physics.

- :class:`~repro.fleet.machine.FleetMachine` — N fully wired servers
  (chip, scheduler, injector, instruments each) whose thermal states
  advance together through one
  :class:`~repro.thermal.rcnetwork.FleetThermalIntegrator`;
- :class:`~repro.fleet.balancer.RoundRobinBalancer` — Poisson request
  arrivals spread round-robin over per-machine web servers;
- :mod:`~repro.fleet.scheduling` — thermal-aware placement and costed
  inter-chip migration policies (:func:`build_policy` registry);
- :func:`~repro.fleet.experiment.fleet_experiment` — the ``fleet`` CLI
  experiment: a datacenter rack serving the §3.7 web workload with and
  without idle injection, under a selectable scheduling policy;
- :func:`~repro.fleet.compare.fleet_compare_experiment` — the
  ``fleet-compare`` CLI experiment: Dimetrodon vs DVFS vs TCC vs
  placement vs migration on identical racks (fig4 at fleet scale);
- :func:`~repro.fleet.scenarios.scenarios_experiment` — the
  ``scenarios`` CLI experiment: injection probability × load shape
  (diurnal/surge/bursty/trace) × policy, scored with the windowed SLO
  scorer (see docs/scenarios.md);
- :mod:`~repro.fleet.cells` — rack runs as batchable units of work:
  every fleet experiment is a grid of independent
  :func:`~repro.fleet.cells.rack_cell_spec` cells executed through the
  :mod:`repro.runtime` pool/cache/journal stack (``--jobs``,
  ``--cache-dir``, ``--resume``, ``--keep-going``), bit-identical to
  the old serial loops.

See docs/fleet.md for the architecture and equivalence guarantees.
"""

from .balancer import Balancer, RoundRobinBalancer
from .cells import RackCellResult, rack_cell_spec, run_rack_cell
from .compare import FleetCompareResult, fleet_compare_experiment
from .experiment import FleetResult, fleet_experiment
from .machine import FleetMachine, FleetNode
from .scenarios import (
    SCENARIO_SHAPES,
    ScenariosResult,
    build_scenario_arrivals,
    scenarios_experiment,
)
from .scheduling import (
    POLICY_NAMES,
    CacheAwareMigrationPolicy,
    MigrationCostModel,
    MigrationPolicy,
    PolicyBundle,
    ThermalBalancer,
    build_policy,
)

__all__ = [
    "Balancer",
    "CacheAwareMigrationPolicy",
    "FleetCompareResult",
    "FleetMachine",
    "FleetNode",
    "FleetResult",
    "MigrationCostModel",
    "MigrationPolicy",
    "POLICY_NAMES",
    "PolicyBundle",
    "RackCellResult",
    "RoundRobinBalancer",
    "SCENARIO_SHAPES",
    "ScenariosResult",
    "ThermalBalancer",
    "build_policy",
    "build_scenario_arrivals",
    "fleet_compare_experiment",
    "fleet_experiment",
    "rack_cell_spec",
    "run_rack_cell",
    "scenarios_experiment",
]
