"""Fleet-scale simulation: racks of servers on one event queue with
structure-of-arrays batched physics.

- :class:`~repro.fleet.machine.FleetMachine` — N fully wired servers
  (chip, scheduler, injector, instruments each) whose thermal states
  advance together through one
  :class:`~repro.thermal.rcnetwork.FleetThermalIntegrator`;
- :class:`~repro.fleet.balancer.RoundRobinBalancer` — Poisson request
  arrivals spread round-robin over per-machine web servers;
- :func:`~repro.fleet.experiment.fleet_experiment` — the ``fleet`` CLI
  experiment: a datacenter rack serving the §3.7 web workload with and
  without idle injection.

See docs/fleet.md for the architecture and equivalence guarantees.
"""

from .balancer import RoundRobinBalancer
from .experiment import FleetResult, fleet_experiment
from .machine import FleetMachine, FleetNode

__all__ = [
    "FleetMachine",
    "FleetNode",
    "FleetResult",
    "RoundRobinBalancer",
    "fleet_experiment",
]
