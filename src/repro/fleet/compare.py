"""The ``fleet-compare`` CLI experiment: thermal techniques, rack-wide.

Figure 4 compares Dimetrodon against DVFS and p4tcc on one machine.
This experiment re-stages that comparison at rack scale and adds the
techniques only a cluster has: thermal-aware placement and inter-chip
migration (``repro.fleet.scheduling``), plus intra-chip heat-and-run
(:class:`~repro.core.migration.ThermalMigrationPolicy`, attached
per node through its sim view).  Every technique serves the same §3.7
web workload on an identical rack; the report scores each by
temperature (mean and peak rise over idle) against QoS retention, and
marks the Pareto-efficient techniques via
:func:`~repro.core.pareto.pareto_boundary` — the same non-domination
analysis §3.4 applies to parameter sweeps, applied across techniques.

Expectations mirror the paper's: DVFS trades throughput steeply but
wins deep reductions; TCC pays QoS for little cooling (§3.4, "failing
to achieve even 1:1"); placement/migration are nearly QoS-free but
shallow (they spread heat, they don't remove it); injection sits in
between; and injection + migration compose.  The ``alert-reactive``
row is the §1 contrast made concrete: a monitor-driven DTM daemon that
throttles only *after* a critical alert fires — its alert count and
time-in-critical columns show the emergencies preventive injection
never lets happen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.migration import ThermalMigrationPolicy
from ..core.pareto import TradeoffPoint, pareto_boundary
from ..cpu.tcc import TccSetting
from ..experiments.config import ExperimentConfig
from ..experiments.reporting import format_table, percent
from ..health import HealthParams
from ..telemetry.registry import registry as _metrics_registry
from ..workloads.webserver import QOS_TOLERABLE
from .experiment import _FleetRun, _measure_rack, _offered_load
from .machine import FleetNode


@dataclass(frozen=True)
class Technique:
    """One row of the comparison: how a rack is configured."""

    name: str
    policy: str = "round-robin"
    p: float = 0.0
    dvfs_min: bool = False
    tcc_duty: Optional[float] = None
    heat_and_run: bool = False


def techniques(p: float) -> List[Technique]:
    """The comparison roster (baseline first; ``p`` is the injection
    probability for the Dimetrodon rows)."""
    return [
        Technique("baseline"),
        Technique("dimetrodon", p=p),
        Technique("dvfs-min", dvfs_min=True),
        Technique("tcc-50", tcc_duty=0.5),
        Technique("alert-reactive", policy="alert-reactive"),
        Technique("heat-and-run", heat_and_run=True),
        Technique("coolest", policy="coolest"),
        Technique("migrate", policy="migrate"),
        Technique("dimetrodon+migrate", policy="migrate", p=p),
    ]


@dataclass
class TechniqueRow:
    """One technique's rack-wide measurements."""

    technique: Technique
    run: _FleetRun
    #: Intra-chip heat-and-run migrations summed over nodes (the
    #: inter-chip count lives in ``run.migrations``).
    core_migrations: int = 0
    #: This rack's health summary (JSON-safe) for the manifest.
    health: Optional[dict] = None

    def tradeoff(self, baseline: _FleetRun, idle_mean: float) -> TradeoffPoint:
        """Temperature reduction vs QoS-good reduction, fig4-style."""
        baseline_rise = baseline.mean_temp - idle_mean
        rise = self.run.mean_temp - idle_mean
        reduction = (
            (baseline_rise - rise) / baseline_rise if baseline_rise > 0 else 0.0
        )
        qos_reduction = (
            1.0 - self.run.qos_good / baseline.qos_good
            if baseline.qos_good > 0
            else 0.0
        )
        return TradeoffPoint(
            temp_reduction=reduction,
            throughput_reduction=qos_reduction,
            params={"technique": self.technique.name},
        )


@dataclass
class FleetCompareResult:
    """Cross-technique comparison over identical racks."""

    machines: int
    duration: float
    p: float
    idle_quantum: float
    idle_mean_temp: float
    offered_load_per_core: float
    rows: List[TechniqueRow] = field(default_factory=list)

    @property
    def baseline(self) -> _FleetRun:
        return self.rows[0].run

    def tradeoffs(self) -> List[TradeoffPoint]:
        """One point per non-baseline technique."""
        return [
            row.tradeoff(self.baseline, self.idle_mean_temp)
            for row in self.rows[1:]
        ]

    def pareto_names(self) -> List[str]:
        """Techniques on the (temp reduction, QoS reduction) frontier."""
        return [
            str(point.params["technique"])
            for point in pareto_boundary(
                [pt for pt in self.tradeoffs() if pt.temp_reduction >= 0]
            )
        ]

    def render(self) -> str:
        efficient = set(self.pareto_names())
        baseline = self.baseline
        table_rows = []
        for row in self.rows:
            run = row.run
            rel_good = run.qos_good / baseline.qos_good if baseline.qos_good else 0.0
            rel_tol = (
                run.qos_tolerable / baseline.qos_tolerable
                if baseline.qos_tolerable
                else 0.0
            )
            table_rows.append(
                [
                    row.technique.name,
                    run.mean_temp - self.idle_mean_temp,
                    run.peak_temp - self.idle_mean_temp,
                    percent(rel_good),
                    percent(rel_tol),
                    run.alerts,
                    run.time_in_critical_s,
                    run.time_throttled_s,
                    run.migrations + row.core_migrations,
                    run.energy / 1e3,
                    "*" if row.technique.name in efficient else "",
                ]
            )
        title = (
            f"Fleet technique comparison: {self.machines} machines x "
            f"{self.duration:.0f}s web serving (p={self.p}, "
            f"load/core {percent(self.offered_load_per_core)}; "
            f"* = Pareto-efficient)"
        )
        return format_table(
            [
                "technique",
                "rise [C]",
                "peak [C]",
                "QoS good",
                "QoS tol.",
                "alerts",
                "crit [s]",
                "thr [s]",
                "migr",
                "energy [kJ]",
                "pareto",
            ],
            table_rows,
            title=title,
        )

    def health_payload(self) -> dict:
        """Per-technique health summaries for the manifest."""
        return {row.technique.name: row.health for row in self.rows}


def _node_setup_for(
    technique: Technique, core_policies: List[ThermalMigrationPolicy]
) -> Optional[Callable[[FleetNode], object]]:
    """Per-node configuration hook for ``technique`` (None if the
    technique needs no node-level setup)."""
    if not (
        technique.dvfs_min or technique.tcc_duty is not None or technique.heat_and_run
    ):
        return None

    def setup(node: FleetNode):
        if technique.dvfs_min:
            node.chip.set_operating_point(node.chip.dvfs_table.min_point)
        if technique.tcc_duty is not None:
            node.chip.set_tcc(TccSetting(duty=technique.tcc_duty))
        if technique.heat_and_run:
            # The reader sees the node's sampled telemetry (idle
            # baseline before the first sample), like every other
            # management-plane policy in this package.
            def read_temps(node=node):
                sample = node.templog.latest()
                return node.fleet.idle_core_temps if sample is None else sample

            policy = ThermalMigrationPolicy(
                node.simview, node.scheduler, read_temps, period=1.0, min_delta=0.5
            )
            core_policies.append(policy)
            return policy
        return None

    return setup


def fleet_compare_experiment(
    config: ExperimentConfig,
    *,
    machines: Optional[int] = None,
    duration: Optional[float] = None,
    p: float = 0.65,
    idle_quantum: float = 0.050,
    warmup: float = 5.0,
    health_params: Optional[HealthParams] = None,
) -> FleetCompareResult:
    """Rack-wide cross-technique comparison (fig4 at fleet scale).

    Each technique gets a fresh, identically seeded rack, so rows
    differ only by the technique.  The comparison rack is smaller than
    the plain ``fleet`` experiment's (8 racks run back to back): 4
    machines on the fast preset, 64 with ``--full``.
    """
    if machines is None:
        machines = 64 if config.characterization_duration >= 300.0 else 4
    if duration is None:
        duration = warmup + config.measure_window + QOS_TOLERABLE

    metrics = _metrics_registry().scope("fleet")
    result = FleetCompareResult(
        machines=machines,
        duration=duration,
        p=p,
        idle_quantum=idle_quantum,
        idle_mean_temp=0.0,
        offered_load_per_core=_offered_load(config),
    )
    for technique in techniques(p):
        core_policies: List[ThermalMigrationPolicy] = []
        measurement = _measure_rack(
            config,
            machines=machines,
            duration=duration,
            warmup=warmup,
            p=technique.p,
            idle_quantum=idle_quantum,
            policy=technique.policy,
            node_setup=_node_setup_for(technique, core_policies),
            health_params=health_params,
        )
        run = measurement.run
        result.idle_mean_temp = measurement.fleet.idle_mean_temp
        result.rows.append(
            TechniqueRow(
                technique=technique,
                run=run,
                core_migrations=sum(hr.migrations for hr in core_policies),
                health=measurement.health.summary(),
            )
        )
        metrics.counter("compare.racks").inc()
    return result
