"""The ``fleet-compare`` CLI experiment: thermal techniques, rack-wide.

Figure 4 compares Dimetrodon against DVFS and p4tcc on one machine.
This experiment re-stages that comparison at rack scale and adds the
techniques only a cluster has: thermal-aware placement and inter-chip
migration (``repro.fleet.scheduling``), plus intra-chip heat-and-run
(:class:`~repro.core.migration.ThermalMigrationPolicy`, attached
per node through its sim view).  Every technique serves the same §3.7
web workload on an identical rack; the report scores each by
temperature (mean and peak rise over idle) against QoS retention, and
marks the Pareto-efficient techniques via
:func:`~repro.core.pareto.pareto_boundary` — the same non-domination
analysis §3.4 applies to parameter sweeps, applied across techniques.

Expectations mirror the paper's: DVFS trades throughput steeply but
wins deep reductions; TCC pays QoS for little cooling (§3.4, "failing
to achieve even 1:1"); placement/migration are nearly QoS-free but
shallow (they spread heat, they don't remove it); injection sits in
between; and injection + migration compose.  The ``alert-reactive``
row is the §1 contrast made concrete: a monitor-driven DTM daemon that
throttles only *after* a critical alert fires — its alert count and
time-in-critical columns show the emergencies preventive injection
never lets happen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..core.pareto import TradeoffPoint, pareto_boundary
from ..experiments.config import ExperimentConfig
from ..experiments.reporting import format_table, percent
from ..health import HealthParams
from ..runtime.parallel import RunSpec
from ..telemetry.registry import registry as _metrics_registry
from ..workloads.webserver import QOS_TOLERABLE
from .cells import rack_cell_spec, require_cells, run_cells
from .experiment import _FleetRun, _offered_load


@dataclass(frozen=True)
class Technique:
    """One row of the comparison: how a rack is configured."""

    name: str
    policy: str = "round-robin"
    p: float = 0.0
    dvfs_min: bool = False
    tcc_duty: Optional[float] = None
    heat_and_run: bool = False


def techniques(p: float) -> List[Technique]:
    """The comparison roster (baseline first; ``p`` is the injection
    probability for the Dimetrodon rows)."""
    return [
        Technique("baseline"),
        Technique("dimetrodon", p=p),
        Technique("dvfs-min", dvfs_min=True),
        Technique("tcc-50", tcc_duty=0.5),
        Technique("alert-reactive", policy="alert-reactive"),
        Technique("heat-and-run", heat_and_run=True),
        Technique("coolest", policy="coolest"),
        Technique("migrate", policy="migrate"),
        Technique("dimetrodon+migrate", policy="migrate", p=p),
    ]


@dataclass
class TechniqueRow:
    """One technique's rack-wide measurements."""

    technique: Technique
    run: _FleetRun
    #: Intra-chip heat-and-run migrations summed over nodes (the
    #: inter-chip count lives in ``run.migrations``).
    core_migrations: int = 0
    #: This rack's health summary (JSON-safe) for the manifest.
    health: Optional[dict] = None

    def tradeoff(self, baseline: _FleetRun, idle_mean: float) -> TradeoffPoint:
        """Temperature reduction vs QoS-good reduction, fig4-style."""
        baseline_rise = baseline.mean_temp - idle_mean
        rise = self.run.mean_temp - idle_mean
        reduction = (
            (baseline_rise - rise) / baseline_rise if baseline_rise > 0 else 0.0
        )
        qos_reduction = (
            1.0 - self.run.qos_good / baseline.qos_good
            if baseline.qos_good > 0
            else 0.0
        )
        return TradeoffPoint(
            temp_reduction=reduction,
            throughput_reduction=qos_reduction,
            params={"technique": self.technique.name},
        )


@dataclass
class FleetCompareResult:
    """Cross-technique comparison over identical racks."""

    machines: int
    duration: float
    p: float
    idle_quantum: float
    idle_mean_temp: float
    offered_load_per_core: float
    rows: List[TechniqueRow] = field(default_factory=list)

    @property
    def baseline(self) -> _FleetRun:
        return self.rows[0].run

    def tradeoffs(self) -> List[TradeoffPoint]:
        """One point per non-baseline technique."""
        return [
            row.tradeoff(self.baseline, self.idle_mean_temp)
            for row in self.rows[1:]
        ]

    def pareto_names(self) -> List[str]:
        """Techniques on the (temp reduction, QoS reduction) frontier."""
        return [
            str(point.params["technique"])
            for point in pareto_boundary(
                [pt for pt in self.tradeoffs() if pt.temp_reduction >= 0]
            )
        ]

    def render(self) -> str:
        efficient = set(self.pareto_names())
        baseline = self.baseline
        table_rows = []
        for row in self.rows:
            run = row.run
            rel_good = run.qos_good / baseline.qos_good if baseline.qos_good else 0.0
            rel_tol = (
                run.qos_tolerable / baseline.qos_tolerable
                if baseline.qos_tolerable
                else 0.0
            )
            table_rows.append(
                [
                    row.technique.name,
                    run.mean_temp - self.idle_mean_temp,
                    run.peak_temp - self.idle_mean_temp,
                    percent(rel_good),
                    percent(rel_tol),
                    run.alerts,
                    run.time_in_critical_s,
                    run.time_throttled_s,
                    run.migrations + row.core_migrations,
                    run.energy / 1e3,
                    "*" if row.technique.name in efficient else "",
                ]
            )
        title = (
            f"Fleet technique comparison: {self.machines} machines x "
            f"{self.duration:.0f}s web serving (p={self.p}, "
            f"load/core {percent(self.offered_load_per_core)}; "
            f"* = Pareto-efficient)"
        )
        return format_table(
            [
                "technique",
                "rise [C]",
                "peak [C]",
                "QoS good",
                "QoS tol.",
                "alerts",
                "crit [s]",
                "thr [s]",
                "migr",
                "energy [kJ]",
                "pareto",
            ],
            table_rows,
            title=title,
        )

    def health_payload(self) -> dict:
        """Per-technique health summaries for the manifest."""
        return {row.technique.name: row.health for row in self.rows}


def technique_specs(
    config: ExperimentConfig,
    *,
    machines: int,
    duration: float,
    warmup: float,
    p: float,
    idle_quantum: float,
    health_params: Optional[HealthParams] = None,
) -> Tuple[List[Technique], List[RunSpec]]:
    """The comparison's rack cells: ``(roster, specs)``, one spec per
    technique, in roster (= submission = report) order.

    Technique knobs enter the spec only when they deviate from the
    executor defaults, so a plain cell (the baseline) keys identically
    to the same rack run built by any other experiment and shares its
    cache entry.  ``tools/profile_run.py --cell`` builds a single
    technique's spec through this function too.
    """
    roster = techniques(p)
    specs = []
    for technique in roster:
        params: dict = dict(
            machines=machines,
            duration=duration,
            warmup=warmup,
            p=technique.p,
            idle_quantum=idle_quantum,
            policy=technique.policy,
        )
        if technique.dvfs_min:
            params["dvfs_min"] = True
        if technique.tcc_duty is not None:
            params["tcc_duty"] = technique.tcc_duty
        if technique.heat_and_run:
            params["heat_and_run"] = True
        if health_params is not None:
            params["health"] = health_params
        specs.append(rack_cell_spec(config, **params))
    return roster, specs


def fleet_compare_experiment(
    config: ExperimentConfig,
    *,
    machines: Optional[int] = None,
    duration: Optional[float] = None,
    p: float = 0.65,
    idle_quantum: float = 0.050,
    warmup: float = 5.0,
    health_params: Optional[HealthParams] = None,
    runner: Optional[Any] = None,
) -> FleetCompareResult:
    """Rack-wide cross-technique comparison (fig4 at fleet scale).

    Each technique gets a fresh, identically seeded rack, so rows
    differ only by the technique.  The comparison rack is smaller than
    the plain ``fleet`` experiment's (8 racks run back to back): 4
    machines on the fast preset, 64 with ``--full``.

    The techniques are independent rack cells: with a
    :class:`~repro.runtime.parallel.ParallelRunner` attached they fan
    out through its pool/cache/journal stack (bit-identical to the
    serial loop); without one they run in-process, in roster order.
    Under ``--keep-going`` a failed non-baseline cell drops its row
    (the failure report names it); a lost baseline is an error, since
    every other row is scored against it.
    """
    if machines is None:
        machines = 64 if config.characterization_duration >= 300.0 else 4
    if duration is None:
        duration = warmup + config.measure_window + QOS_TOLERABLE

    roster, specs = technique_specs(
        config,
        machines=machines,
        duration=duration,
        warmup=warmup,
        p=p,
        idle_quantum=idle_quantum,
        health_params=health_params,
    )
    cells = run_cells(runner, specs)
    require_cells("fleet-compare", [roster[0].name], cells[:1])

    metrics = _metrics_registry().scope("fleet")
    result = FleetCompareResult(
        machines=machines,
        duration=duration,
        p=p,
        idle_quantum=idle_quantum,
        idle_mean_temp=0.0,
        offered_load_per_core=_offered_load(config),
    )
    for technique, cell in zip(roster, cells):
        if cell is None:
            continue
        result.idle_mean_temp = cell.idle_mean_temp
        result.rows.append(
            TechniqueRow(
                technique=technique,
                run=cell.run,
                core_migrations=cell.core_migrations,
                health=cell.health,
            )
        )
        metrics.counter("compare.racks").inc()
    return result
