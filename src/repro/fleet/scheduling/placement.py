"""Temperature-aware arrival placement (the inter-chip dual of §3.6).

Dimetrodon defers work *locally* — a hot core runs idle cycles and the
deferred work heats the same die later.  A cluster scheduler has a
second option the paper's single-machine view cannot express: place the
work somewhere cool in the first place.  :class:`ThermalBalancer`
implements the two classic placement rules from Chrobak et al.,
"Temperature-Aware Task Scheduling in Microprocessor Systems":

- **coolest-first** — every arrival goes to the machine with the most
  thermal headroom (the lowest sampled temperature);
- **threshold** — machines below a temperature threshold are treated as
  interchangeable and receive arrivals round-robin; only when the whole
  rack is hot does placement degrade to coolest-first.  (This is the
  paper family's "cool/hot" bucket rule: it avoids herding every
  arrival onto one momentarily-cool machine.)

Temperatures come from each node's *sampled* telemetry
(:meth:`~repro.instruments.templog.TemperatureLog.latest`), not from
the physics oracle.  That is both realistic — a front door polls
management-plane sensors, it does not halt servers to read junction
temperatures — and load-bearing for reproducibility: sampled reads do
not force pending physics to integrate, so a ThermalBalancer run's
substep structure is *identical* to a RoundRobinBalancer run's.  With
uniform temperatures the cyclic tie-break below reproduces round-robin
routing exactly, making the whole fleet bit-identical to a
round-robin rack (pinned by tests/test_fleet_scheduling.py).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ...errors import ConfigurationError
from ...health import FleetHealth, HealthState
from ...workloads.loadshapes import ArrivalProcess
from ...workloads.webserver import WebServer
from ..balancer import Balancer, RoundRobinBalancer
from ..machine import FleetMachine

#: Temperatures within this many °C of the minimum count as tied.
TIE_EPSILON = 1e-9

#: The placement strategies ThermalBalancer knows.
STRATEGIES = ("coolest", "threshold")


def sampled_machine_temps(fleet: FleetMachine) -> np.ndarray:
    """Per-machine mean core temperature from the latest sensor sample.

    A machine whose temperature log has no sample yet (only possible
    before simulated time zero's first poll) reads as the fleet-wide
    idle baseline — the value its first sample would report.
    Reading is side-effect free: no gap closing, no physics drain.
    """
    idle = float(np.mean(fleet.idle_core_temps))
    temps = np.empty(fleet.num_machines)
    for j, node in enumerate(fleet.nodes):
        sample = node.templog.latest()
        temps[j] = idle if sample is None else float(np.mean(sample))
    return temps


class ThermalBalancer(Balancer):
    """Routes arrivals by per-machine sampled temperature.

    Parameters (beyond :class:`~repro.fleet.balancer.Balancer`'s)
    ----------
    strategy:
        ``"coolest"`` or ``"threshold"`` (see module docstring).
    threshold:
        Absolute temperature (°C) separating cool from hot machines.
        Required for the threshold strategy, ignored otherwise.
    temperature_source:
        Override for the per-machine temperature read — a callable
        returning one value per machine.  Defaults to
        :func:`sampled_machine_temps`; tests inject constant sources to
        pin the uniform-temperature ⇒ round-robin equivalence.

    Ties (and the threshold strategy's cool bucket) resolve cyclically:
    among candidate machines, the first one at or after the previous
    choice wins.  With every machine tied this *is* round-robin.
    """

    policy_name = "thermal"

    def __init__(
        self,
        fleet: FleetMachine,
        servers: Sequence[WebServer],
        *,
        rate: float,
        rng: np.random.Generator,
        strategy: str = "coolest",
        threshold: Optional[float] = None,
        temperature_source: Optional[Callable[[], Sequence[float]]] = None,
        arrivals: Optional[ArrivalProcess] = None,
    ):
        if strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown placement strategy {strategy!r} "
                f"(known: {', '.join(STRATEGIES)})"
            )
        if strategy == "threshold" and threshold is None:
            raise ConfigurationError(
                "the threshold strategy needs a temperature threshold (°C)"
            )
        super().__init__(fleet, servers, rate=rate, rng=rng, arrivals=arrivals)
        self.strategy = strategy
        self.threshold = None if threshold is None else float(threshold)
        self._read_temps = (
            temperature_source
            if temperature_source is not None
            else lambda: sampled_machine_temps(self.fleet)
        )
        self._next = 0

    def machine_temps(self) -> np.ndarray:
        """The temperatures the next placement decision would see."""
        return np.asarray(self._read_temps(), dtype=float)

    def select(self) -> int:
        temps = self.machine_temps()
        if temps.shape[0] != len(self.servers):
            raise ConfigurationError(
                f"temperature source returned {temps.shape[0]} values for "
                f"{len(self.servers)} machines"
            )
        if self.strategy == "threshold":
            candidates = np.flatnonzero(temps <= self.threshold)
            if candidates.size == 0:
                candidates = self._coolest_set(temps)
        else:
            candidates = self._coolest_set(temps)
        return self._cyclic_pick(candidates)

    @staticmethod
    def _coolest_set(temps: np.ndarray) -> np.ndarray:
        return np.flatnonzero(temps <= temps.min() + TIE_EPSILON)

    def _cyclic_pick(self, candidates: np.ndarray) -> int:
        """The first candidate at or after the round-robin cursor."""
        following = candidates[candidates >= self._next]
        chosen = int(following[0] if following.size else candidates[0])
        self._next = (chosen + 1) % len(self.servers)
        return chosen


class AlertDrainBalancer(RoundRobinBalancer):
    """Round-robin placement that drains machines in CRITICAL.

    The ``alert-reactive`` policy's front door: arrivals cycle the rack
    as usual, but any machine whose health monitor currently classifies
    it CRITICAL is skipped — its placement weight drains to the rest of
    the rack until the monitor's hysteresis re-arms.  When *every*
    machine is critical there is nowhere cool to drain to and placement
    degrades to plain round-robin (shedding load entirely is a policy
    decision this simulator does not take for you).

    Like :class:`ThermalBalancer`, decisions read only management-plane
    state (the monitors' latest classification, itself derived from
    quantised sensor samples) — never the physics oracle.  With no
    machine critical the cursor walk is exactly round-robin.
    """

    policy_name = "alert-drain"

    def __init__(
        self,
        fleet: FleetMachine,
        servers: Sequence[WebServer],
        *,
        rate: float,
        rng: np.random.Generator,
        health: FleetHealth,
        arrivals: Optional[ArrivalProcess] = None,
    ):
        if len(health) != len(servers):
            raise ConfigurationError(
                f"alert-drain balancer got {len(health)} monitors for "
                f"{len(servers)} machines"
            )
        super().__init__(fleet, servers, rate=rate, rng=rng, arrivals=arrivals)
        self.health = health
        #: Arrivals that skipped at least one critical machine.
        self.drained = 0

    def select(self) -> int:
        count = len(self.servers)
        for offset in range(count):
            index = (self._next + offset) % count
            if self.health[index].state is not HealthState.CRITICAL:
                if offset:
                    self.drained += 1
                self._next = (index + 1) % count
                return index
        return super().select()  # whole rack critical: no drain target
