"""Named scheduling policies for the fleet experiments.

A *policy* is the front door plus (optionally) a migration manager or
per-machine DTM controllers:

==============  ========================================  ==================
name            placement                                 migration / DTM
==============  ========================================  ==================
round-robin     blind cyclic                              —
coolest         coolest-first (Chrobak et al.)            —
threshold       cool bucket round-robin, else coolest     —
migrate         blind cyclic                              hot→cool, costed
cache-aware     blind cyclic                              THEAS-style costed
alert-reactive  cyclic, drains critical machines          TCC on critical alerts
==============  ========================================  ==================

``migrate`` and ``cache-aware`` deliberately keep round-robin
placement so the cross-technique comparison isolates what migration
alone buys; combining thermal placement with migration is one
constructor call away for anyone who wants it.

:func:`build_policy` is the single entry point the experiment and CLI
use; unknown names raise :class:`~repro.errors.ConfigurationError`
listing the registry.  Every bundle creates the ``fleet.migrations``
and ``fleet.migration_cost_ms`` counters even when it has no migration
manager, so every policy's run manifest carries the same counter set
(zeros mean "policy cannot migrate", not "counter missing").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ...core.dtm import AlertDrivenController
from ...errors import ConfigurationError
from ...health import FleetHealth
from ...telemetry.registry import registry as _metrics_registry
from ...workloads.loadshapes import ArrivalProcess
from ...workloads.webserver import WebServer
from ..balancer import Balancer, RoundRobinBalancer
from ..machine import FleetMachine
from .migration import CacheAwareMigrationPolicy, MigrationCostModel, MigrationPolicy
from .placement import AlertDrainBalancer, ThermalBalancer

#: How far (°C) above the rack's idle baseline the threshold strategy
#: places its cool/hot boundary.
DEFAULT_THRESHOLD_RISE = 2.0

#: Registry order is presentation order in the comparison table.
POLICY_NAMES = (
    "round-robin",
    "coolest",
    "threshold",
    "migrate",
    "cache-aware",
    "alert-reactive",
)


@dataclass
class PolicyBundle:
    """A constructed scheduling policy: balancer plus optional migration
    manager and per-machine alert-driven DTM controllers."""

    name: str
    balancer: Balancer
    migration: Optional[MigrationPolicy] = None
    controllers: List[AlertDrivenController] = field(default_factory=list)

    def stop(self) -> None:
        self.balancer.stop()
        if self.migration is not None:
            self.migration.stop()

    def finalize(self, now: float) -> None:
        """Close the controllers' time-weighted throttle accounting."""
        for controller in self.controllers:
            controller.finalize(now)

    @property
    def migrations(self) -> int:
        return 0 if self.migration is None else self.migration.migrations

    @property
    def migration_cost_seconds(self) -> float:
        return 0.0 if self.migration is None else self.migration.total_cost_seconds

    @property
    def throttle_engagements(self) -> int:
        return sum(c.stats.engagements for c in self.controllers)

    @property
    def time_throttled_seconds(self) -> float:
        """Summed machine-seconds of clock modulation across the rack."""
        return float(sum(c.stats.time_throttled for c in self.controllers))


def build_policy(
    name: str,
    fleet: FleetMachine,
    servers: Sequence[WebServer],
    *,
    rate: float,
    rng: np.random.Generator,
    cost_model: Optional[MigrationCostModel] = None,
    arrivals: Optional[ArrivalProcess] = None,
    health: Optional[FleetHealth] = None,
) -> PolicyBundle:
    """Construct the named policy over ``fleet``/``servers``.

    ``cost_model`` overrides the default :class:`MigrationCostModel`
    for the migrating policies (ignored by placement-only ones).
    ``arrivals`` replaces the front door's fixed-rate Poisson stream
    with a shaped :class:`~repro.workloads.loadshapes.ArrivalProcess`
    (the ``scenarios`` experiment's diurnal/surge/bursty traffic).
    ``health`` (the rack's :class:`~repro.health.FleetHealth`) is
    required by ``alert-reactive``, which drives one
    :class:`~repro.core.dtm.AlertDrivenController` per machine off its
    monitors and drains placement weight from critical machines; the
    other policies ignore it.
    """
    if name not in POLICY_NAMES:
        raise ConfigurationError(
            f"unknown scheduling policy {name!r} "
            f"(known: {', '.join(POLICY_NAMES)})"
        )
    if name == "alert-reactive" and health is None:
        raise ConfigurationError(
            "the alert-reactive policy needs the rack's health monitors "
            "(FleetMachine.attach_health)"
        )
    # Uniform counter set across policies: a round-robin manifest shows
    # fleet.migrations == 0 rather than omitting the counter.
    scope = _metrics_registry().scope("fleet")
    scope.counter("migrations")
    scope.counter("migration_cost_ms")

    migration: Optional[MigrationPolicy] = None
    controllers: List[AlertDrivenController] = []
    if name == "alert-reactive":
        balancer: Balancer = AlertDrainBalancer(
            fleet, servers, rate=rate, rng=rng, health=health, arrivals=arrivals
        )
        controllers = [
            AlertDrivenController(node.chip, health[j])
            for j, node in enumerate(fleet.nodes)
        ]
        health.set_controller_info(controllers[0].params())
    elif name == "coolest":
        balancer = ThermalBalancer(
            fleet, servers, rate=rate, rng=rng, strategy="coolest", arrivals=arrivals
        )
    elif name == "threshold":
        threshold = float(np.mean(fleet.idle_core_temps)) + DEFAULT_THRESHOLD_RISE
        balancer = ThermalBalancer(
            fleet,
            servers,
            rate=rate,
            rng=rng,
            strategy="threshold",
            threshold=threshold,
            arrivals=arrivals,
        )
    else:
        balancer = RoundRobinBalancer(
            fleet, servers, rate=rate, rng=rng, arrivals=arrivals
        )
        if name == "migrate":
            migration = MigrationPolicy(fleet, servers, cost_model=cost_model)
        elif name == "cache-aware":
            migration = CacheAwareMigrationPolicy(
                fleet, servers, cost_model=cost_model
            )
    return PolicyBundle(
        name=name, balancer=balancer, migration=migration, controllers=controllers
    )


def policy_descriptions() -> List[str]:
    """One ``name - summary`` line per registered policy (CLI help)."""
    summaries = {
        "round-robin": "blind cyclic placement (the PR6 baseline)",
        "coolest": "coolest-first placement by sampled temperature",
        "threshold": "round-robin below a temperature threshold",
        "migrate": "round-robin placement + hot-to-cool queue migration",
        "cache-aware": "migration only when thermal benefit buys warmup cost",
        "alert-reactive": "TCC throttle + placement drain on critical alerts",
    }
    return [f"{name} - {summaries[name]}" for name in POLICY_NAMES]
