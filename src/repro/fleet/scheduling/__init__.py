"""Inter-chip thermal-aware scheduling over the fleet layer.

Dimetrodon manages heat *within* a machine by deferring work in time;
a cluster can also move work in *space*.  This package supplies both
halves and a registry the ``fleet`` experiments select from:

- :mod:`~repro.fleet.scheduling.placement` — temperature-aware arrival
  routing (:class:`ThermalBalancer`: coolest-first and threshold);
- :mod:`~repro.fleet.scheduling.migration` — periodic hot→cool queue
  migration under an explicit cost model (:class:`MigrationPolicy`,
  :class:`CacheAwareMigrationPolicy`);
- :mod:`~repro.fleet.scheduling.registry` — named policy bundles
  (:func:`build_policy`, :data:`POLICY_NAMES`).

See docs/fleet.md ("Scheduling policies") for the design, including
why policies read sampled telemetry instead of oracle temperatures.
"""

from .migration import (
    ZERO_COST,
    CacheAwareMigrationPolicy,
    FleetMigrationEvent,
    MigrationCostModel,
    MigrationPolicy,
)
from .placement import (
    STRATEGIES,
    AlertDrainBalancer,
    ThermalBalancer,
    sampled_machine_temps,
)
from .registry import (
    DEFAULT_THRESHOLD_RISE,
    POLICY_NAMES,
    PolicyBundle,
    build_policy,
    policy_descriptions,
)

__all__ = [
    "AlertDrainBalancer",
    "CacheAwareMigrationPolicy",
    "DEFAULT_THRESHOLD_RISE",
    "FleetMigrationEvent",
    "MigrationCostModel",
    "MigrationPolicy",
    "POLICY_NAMES",
    "PolicyBundle",
    "STRATEGIES",
    "ThermalBalancer",
    "ZERO_COST",
    "build_policy",
    "policy_descriptions",
    "sampled_machine_temps",
]
