"""Inter-chip request migration with an explicit cost model.

The paper's §3.6 note on heat-and-run — migration "may be ineffective
on fully-burdened machines" — is about *cores*; across a rack there is
almost always a cooler machine, but moving work there is no longer
free.  A migrated request pays twice:

- **state-transfer latency**: connection and request state crosses the
  rack network before the target can run it;
- **cache-warmup penalty**: the target's caches are cold for this
  request, so its remaining service time inflates (Gomaa et al.
  measure exactly this loss intra-chip; inter-chip it is strictly
  worse — nothing is shared).

:class:`MigrationCostModel` makes both explicit.
:class:`MigrationPolicy` is the cluster manager: it periodically ranks
machines by sampled temperature (the same management-plane view
:class:`~repro.fleet.scheduling.placement.ThermalBalancer` uses) and
drains queued requests from hot machines to cool ones, paying the
model's price per request.  :class:`CacheAwareMigrationPolicy` is the
THEAS-style refinement: it migrates a request only when the thermal
benefit (the source→target temperature drop) is worth that request's
individual warmup cost, so cheap requests move and cache-heavy ones
stay put.

Mechanically this is the inter-chip sibling of
:class:`repro.core.migration.ThermalMigrationPolicy` (which re-pins a
*running thread* to a cooler core of the same chip): same periodic
hot/cool pairing, same event history for analysis, but the moved unit
is a queued request and the cost is explicit rather than implicitly
zero.  Both layers compose — the ``fleet-compare`` experiment runs
them together.

Telemetry (created at construction so manifests always carry them):
``fleet.migrations`` (total), ``fleet.migrations.m<j>`` (per source
machine, summing to the total), ``fleet.migration_cost_ms`` (total
modelled cost), ``fleet.migration_blocked_cycles`` (evaluation cycles
with no eligible cool target — the rack-wide §3.6 failure mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ...errors import ConfigurationError
from ...sim.process import PeriodicTask
from ...telemetry.registry import registry as _metrics_registry
from ...workloads.webserver import Request, WebServer
from ..machine import FleetMachine
from .placement import sampled_machine_temps


@dataclass(frozen=True)
class MigrationCostModel:
    """What moving one queued request between machines costs.

    ``transfer_latency`` delays the request's arrival at the target by
    a fixed wire time (seconds); ``warmup_penalty`` inflates its
    remaining service time by a fraction (cold caches at the target).
    """

    transfer_latency: float = 0.002
    warmup_penalty: float = 0.15

    def __post_init__(self) -> None:
        if self.transfer_latency < 0:
            raise ConfigurationError("transfer latency cannot be negative")
        if self.warmup_penalty < 0:
            raise ConfigurationError("warmup penalty cannot be negative")

    def cost_seconds(self, request: Request) -> float:
        """Total modelled delay added to ``request`` by one migration."""
        return self.transfer_latency + self.warmup_penalty * request.service_time

    @property
    def is_free(self) -> bool:
        return self.transfer_latency == 0.0 and self.warmup_penalty == 0.0


#: The cost model under which migration degenerates to free rebalancing.
ZERO_COST = MigrationCostModel(transfer_latency=0.0, warmup_penalty=0.0)


@dataclass
class FleetMigrationEvent:
    """One inter-machine request migration, for analysis and tests."""

    time: float
    rid: int
    source: int
    target: int
    source_temp: float
    target_temp: float
    cost_seconds: float
    #: The migrated request itself (rids are per-server, not unique
    #: fleet-wide, so conservation checks need the object).
    request: Request = field(repr=False, default=None)


class MigrationPolicy:
    """Periodically drain queued work from hot machines to cool ones.

    Parameters
    ----------
    fleet, servers:
        The rack and its per-node web servers (node order).
    period:
        Evaluation period, seconds of simulated time.
    min_delta:
        Minimum sampled source−target temperature gap (°C) before a
        pair is considered.  The target is always the coolest machine,
        so no migration can ever move work to a hotter machine.
    hot_rise:
        Optional activation threshold: only machines at least this far
        (°C) above the idle baseline are drained.  ``None`` drains the
        hottest machines regardless.
    max_moves:
        Request budget per source machine per evaluation cycle.
    cost_model:
        The :class:`MigrationCostModel` applied to every move.
    """

    def __init__(
        self,
        fleet: FleetMachine,
        servers: Sequence[WebServer],
        *,
        period: float = 1.0,
        min_delta: float = 0.5,
        hot_rise: Optional[float] = None,
        max_moves: int = 4,
        cost_model: Optional[MigrationCostModel] = None,
    ):
        if len(servers) != fleet.num_machines:
            raise ConfigurationError(
                f"migration policy got {len(servers)} servers for "
                f"{fleet.num_machines} machines"
            )
        if period <= 0:
            raise ConfigurationError("migration period must be positive")
        if min_delta < 0:
            raise ConfigurationError("min_delta must be non-negative")
        if max_moves < 1:
            raise ConfigurationError("max_moves must be at least 1")
        self.fleet = fleet
        self.servers = list(servers)
        self.period = float(period)
        self.min_delta = float(min_delta)
        self.hot_rise = None if hot_rise is None else float(hot_rise)
        self.max_moves = int(max_moves)
        self.cost_model = cost_model if cost_model is not None else MigrationCostModel()
        self.history: List[FleetMigrationEvent] = []
        #: Evaluation cycles in which no machine pair cleared min_delta.
        self.blocked_cycles = 0
        scope = _metrics_registry().scope("fleet")
        self._metric_migrations = scope.counter("migrations")
        self._metric_per_machine = [
            scope.counter(f"migrations.m{j}") for j in range(fleet.num_machines)
        ]
        self._metric_cost_ms = scope.counter("migration_cost_ms")
        self._metric_blocked = scope.counter("migration_blocked_cycles")
        # The manager polls on the fleet's own clock — its decisions
        # read sampled telemetry and pop queues, never chip state, so
        # it needs no node sim view and perturbs no physics.
        self._task = PeriodicTask(fleet.sim, self.period, self._step)

    @property
    def migrations(self) -> int:
        return len(self.history)

    @property
    def total_cost_seconds(self) -> float:
        return sum(event.cost_seconds for event in self.history)

    def stop(self) -> None:
        self._task.cancel()

    # ------------------------------------------------------------------
    def _accepts(self, request: Request, delta: float) -> bool:
        """Whether moving ``request`` across a ``delta`` °C gap is worth
        it.  The base policy moves everything offered (Chrobak-style:
        temperature alone decides)."""
        return True

    def _step(self) -> None:
        temps = sampled_machine_temps(self.fleet)
        idle = float(np.mean(self.fleet.idle_core_temps))
        hot_order = np.argsort(-temps, kind="stable")
        migrated_any = False
        for source in hot_order:
            source = int(source)
            if self.hot_rise is not None and temps[source] - idle < self.hot_rise:
                break  # hot_order is descending: nobody further is hot
            target = self._coolest_other(temps, source)
            if target is None:
                continue
            delta = float(temps[source] - temps[target])
            moved = self.servers[source].donate_queued(
                self.max_moves,
                accept=lambda request: self._accepts(request, delta),
            )
            for request in moved:
                self._transfer(request, source, target, temps)
                migrated_any = True
        if not migrated_any:
            self.blocked_cycles += 1
            self._metric_blocked.inc()

    def _coolest_other(self, temps: np.ndarray, source: int) -> Optional[int]:
        """The coolest machine at least ``min_delta`` below ``source``."""
        target = int(np.argmin(temps))
        if target == source:
            return None
        if temps[source] - temps[target] < self.min_delta:
            return None
        return target

    def _transfer(
        self, request: Request, source: int, target: int, temps: np.ndarray
    ) -> None:
        cost = self.cost_model.cost_seconds(request)
        # Cold caches at the target: the not-yet-started request's
        # service time inflates before it is re-queued there.
        request.service_time *= 1.0 + self.cost_model.warmup_penalty
        # Delivery is a *target-node event* after the wire latency, so
        # the target's physics gap closes before its queues change and
        # a blocked worker wakes — even on a machine that was fully
        # idle mid-substep.
        self.fleet.nodes[target].simview.schedule(
            self.cost_model.transfer_latency,
            self.servers[target].accept_migrated,
            request,
        )
        self.history.append(
            FleetMigrationEvent(
                time=self.fleet.sim.now,
                rid=request.rid,
                source=source,
                target=target,
                source_temp=float(temps[source]),
                target_temp=float(temps[target]),
                cost_seconds=cost,
                request=request,
            )
        )
        self._metric_migrations.inc()
        self._metric_per_machine[source].inc()
        self._metric_cost_ms.inc(cost * 1e3)


class CacheAwareMigrationPolicy(MigrationPolicy):
    """THEAS-style migration: thermal benefit must buy the warmup cost.

    A request moves only when the source→target temperature drop is at
    least ``degrees_per_cost_second`` °C for every second of modelled
    migration cost *for that request*.  Short requests (cheap warmup)
    migrate under modest gradients; cache-heavy requests stay unless
    the thermal gradient is steep — the resource-aware weighing THEAS
    applies to task-to-core assignment, lifted to the rack.
    """

    def __init__(self, *args, degrees_per_cost_second: float = 50.0, **kwargs):
        super().__init__(*args, **kwargs)
        if degrees_per_cost_second <= 0:
            raise ConfigurationError("degrees_per_cost_second must be positive")
        self.degrees_per_cost_second = float(degrees_per_cost_second)

    def _accepts(self, request: Request, delta: float) -> bool:
        return delta >= self.degrees_per_cost_second * self.cost_model.cost_seconds(
            request
        )
