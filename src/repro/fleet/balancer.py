"""The datacenter front door: one arrival stream, pluggable placement.

The fleet experiments model the simplest datacenter topology: one
aggregate Poisson arrival stream (the sum of every machine's §3.7
connection pool) dispatched across per-machine web servers.  How each
arrival picks its machine is the *placement policy*:
:class:`Balancer` owns the arrival loop, validation, and telemetry,
and subclasses supply :meth:`Balancer.select`.

- :class:`RoundRobinBalancer` (here) cycles machines blindly.
  Round-robin splitting of a Poisson process gives each of ``N``
  servers Erlang-``N`` interarrivals at ``1/N`` of the aggregate rate —
  same mean load as fig6's per-server Poisson stream, slightly
  smoother, which is exactly what a front-end balancer does to a rack.
- :class:`~repro.fleet.scheduling.ThermalBalancer`
  (``repro.fleet.scheduling``) routes by per-machine temperature.

Routing goes through the target node's
:class:`~repro.fleet.machine._NodeSimView` (a zero-delay scheduled
callback), so the node's physics gap closes before the request mutates
its queues — arrivals are node events like any other.

Telemetry: ``fleet.balancer.routed`` counts total dispatches and
``fleet.placement.m<j>`` counts arrivals per machine; the per-machine
counters always sum to the total (pinned by tests).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..sim.process import Process
from ..telemetry.registry import registry as _metrics_registry
from ..workloads.loadshapes import ArrivalProcess
from ..workloads.webserver import WebServer
from .machine import FleetMachine


class Balancer:
    """Dispatches a fleet-level arrival stream over the rack.

    Parameters
    ----------
    fleet:
        The fleet whose nodes host the servers.
    servers:
        One :class:`~repro.workloads.webserver.WebServer` per fleet
        node, in node order, built with ``external_arrivals=True``.
    rate:
        Nominal aggregate arrival rate, requests/s.  Without
        ``arrivals`` this is the homogeneous Poisson rate; with it, the
        rate the rack is *sized* for (reports quote it either way).
    rng:
        Stream for the arrival draws (use a fleet-level stream, not a
        node's, so node randomness stays decorrelated from the front
        door).
    arrivals:
        Optional :class:`~repro.workloads.loadshapes.ArrivalProcess`
        replacing the fixed-rate Poisson stream — diurnal/surge/bursty
        shapes, trace replays, or any superposition.  A finite process
        (trace replay) simply stops generating arrivals when exhausted.

    Subclasses implement :meth:`select` — called once per arrival,
    returning the index of the machine that receives it.
    """

    #: Registry name of the policy (overridden by subclasses).
    policy_name = "abstract"

    def __init__(
        self,
        fleet: FleetMachine,
        servers: Sequence[WebServer],
        *,
        rate: float,
        rng: np.random.Generator,
        arrivals: Optional[ArrivalProcess] = None,
    ):
        if len(servers) != fleet.num_machines:
            raise ConfigurationError(
                f"balancer got {len(servers)} servers for "
                f"{fleet.num_machines} machines"
            )
        if rate <= 0:
            raise ConfigurationError("aggregate arrival rate must be positive")
        self.fleet = fleet
        self.servers = list(servers)
        self.rate = float(rate)
        self.arrivals = arrivals
        self._rng = rng
        #: Requests routed to each node so far.
        self.routed: List[int] = [0] * len(self.servers)
        scope = _metrics_registry().scope("fleet")
        self._metric_routed = scope.counter("balancer.routed")
        self._metric_placement = [
            scope.counter(f"placement.m{j}") for j in range(len(self.servers))
        ]
        self._process = Process(fleet.sim, self._arrival_loop())

    def select(self) -> int:
        """The machine index receiving the arrival that just fired."""
        raise NotImplementedError

    def _gap_stream(self):
        """Interarrival gaps: the configured arrival process, or the
        default homogeneous Poisson stream at :attr:`rate`."""
        if self.arrivals is None:
            while True:
                yield float(self._rng.exponential(1.0 / self.rate))
        else:
            yield from self.arrivals.gaps(self._rng)

    def _arrival_loop(self):
        for gap in self._gap_stream():
            yield gap
            index = self.select()
            # Zero-delay hop through the node's sim view: the node's
            # physics gap closes before the server sees the request.
            self.fleet.nodes[index].simview.schedule(
                0.0, self.servers[index].submit_request
            )
            self.routed[index] += 1
            self._metric_routed.inc()
            self._metric_placement[index].inc()

    def stop(self) -> None:
        """Stop generating arrivals."""
        self._process.stop()

    @property
    def total_routed(self) -> int:
        return sum(self.routed)


class RoundRobinBalancer(Balancer):
    """Dispatches the fleet-level arrival stream round-robin."""

    policy_name = "round-robin"

    def __init__(
        self,
        fleet: FleetMachine,
        servers: Sequence[WebServer],
        *,
        rate: float,
        rng: np.random.Generator,
        arrivals: Optional[ArrivalProcess] = None,
    ):
        super().__init__(fleet, servers, rate=rate, rng=rng, arrivals=arrivals)
        self._next = 0

    def select(self) -> int:
        index = self._next
        self._next = (index + 1) % len(self.servers)
        return index
