"""A round-robin load balancer in front of per-machine web servers.

The fleet experiment models the simplest datacenter front door: one
aggregate Poisson arrival stream (the sum of every machine's §3.7
connection pool) dispatched round-robin.  Round-robin splitting of a
Poisson process gives each of ``N`` servers Erlang-``N`` interarrivals
at ``1/N`` of the aggregate rate — same mean load as fig6's per-server
Poisson stream, slightly smoother, which is exactly what a front-end
balancer does to a rack.

Routing goes through the target node's
:class:`~repro.fleet.machine._NodeSimView` (a zero-delay scheduled
callback), so the node's physics gap closes before the request mutates
its queues — arrivals are node events like any other.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..sim.process import Process
from ..telemetry.registry import registry as _metrics_registry
from ..workloads.webserver import WebServer
from .machine import FleetMachine


class RoundRobinBalancer:
    """Dispatches a fleet-level Poisson arrival stream round-robin.

    Parameters
    ----------
    fleet:
        The fleet whose nodes host the servers.
    servers:
        One :class:`~repro.workloads.webserver.WebServer` per fleet
        node, in node order, built with ``external_arrivals=True``.
    rate:
        Aggregate arrival rate, requests/s.
    rng:
        Stream for the exponential interarrival draws (use a
        fleet-level stream, not a node's, so node randomness stays
        decorrelated from the front door).
    """

    def __init__(
        self,
        fleet: FleetMachine,
        servers: Sequence[WebServer],
        *,
        rate: float,
        rng: np.random.Generator,
    ):
        if len(servers) != fleet.num_machines:
            raise ConfigurationError(
                f"balancer got {len(servers)} servers for "
                f"{fleet.num_machines} machines"
            )
        if rate <= 0:
            raise ConfigurationError("aggregate arrival rate must be positive")
        self.fleet = fleet
        self.servers = list(servers)
        self.rate = float(rate)
        self._rng = rng
        self._next = 0
        #: Requests routed to each node so far.
        self.routed: List[int] = [0] * len(self.servers)
        self._metric_routed = _metrics_registry().scope("fleet.balancer").counter(
            "routed"
        )
        self._process = Process(fleet.sim, self._arrival_loop())

    def _arrival_loop(self):
        while True:
            yield float(self._rng.exponential(1.0 / self.rate))
            index = self._next
            self._next = (index + 1) % len(self.servers)
            # Zero-delay hop through the node's sim view: the node's
            # physics gap closes before the server sees the request.
            self.fleet.nodes[index].simview.schedule(
                0.0, self.servers[index].submit_request
            )
            self.routed[index] += 1
            self._metric_routed.inc()

    def stop(self) -> None:
        """Stop generating arrivals."""
        self._process.stop()

    @property
    def total_routed(self) -> int:
        return sum(self.routed)
