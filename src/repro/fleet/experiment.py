"""The ``fleet`` CLI experiment: a rack serving the web workload.

Two fleets run back to back on the §3.7 SPECWeb-like workload behind a
round-robin load balancer: a baseline rack (no injection) and a
Dimetrodon rack (global policy ``p``, idle quantum ``L``).  The report
mirrors fig6 — QoS retention vs temperature reduction — but measured
rack-wide, plus the batched-physics throughput actually achieved
(chip-substeps/s from the ``fleet.*`` telemetry counters).

Fleet sizing follows the preset: the fast preset runs a small rack so
CI finishes in seconds, ``--full`` runs hundreds of 4-core servers.
The two racks are independent rack cells (:mod:`repro.fleet.cells`):
handed a :class:`~repro.runtime.parallel.ParallelRunner` they run
through the full pool/cache/journal stack (``--jobs``, ``--cache-dir``,
``--resume`` all apply), and without one they run in-process exactly
as before (see docs/running-experiments.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

import numpy as np

from ..experiments.config import ExperimentConfig
from ..experiments.reporting import format_table, percent
from ..health import FleetHealth, HealthParams
from ..sim.rng import RngRegistry
from ..workloads.loadshapes import ArrivalProcess
from ..workloads.webserver import QOS_GOOD, QOS_TOLERABLE, WebServer
from .machine import FleetMachine, FleetNode
from .scheduling.registry import build_policy


@dataclass
class _FleetRun:
    """Measurements from one rack run (baseline or injected)."""

    qos_good: float
    qos_tolerable: float
    mean_response: float
    mean_temp: float
    peak_temp: float
    energy: float
    work_done: float
    requests: int
    migrations: int = 0
    migration_cost_s: float = 0.0
    #: Health-monitor rollups (warning + critical escalations, summed
    #: machine-seconds in each state) and, for the alert-reactive
    #: policy, the controllers' time-weighted throttle dwell.
    alerts: int = 0
    critical_alerts: int = 0
    time_in_warning_s: float = 0.0
    time_in_critical_s: float = 0.0
    throttle_engagements: int = 0
    time_throttled_s: float = 0.0


@dataclass
class FleetResult:
    """The fleet experiment's rack-wide measurements."""

    machines: int
    duration: float
    p: float
    idle_quantum: float
    idle_mean_temp: float
    baseline_rise: float
    temp_reduction: float
    offered_load_per_core: float
    baseline: _FleetRun
    injected: _FleetRun
    chip_substeps_per_s: float
    policy: str = "round-robin"
    #: Per-rack health summaries (JSON-safe) for the manifest.
    baseline_health: Optional[dict] = None
    injected_health: Optional[dict] = None

    def render(self) -> str:
        rows = [
            [
                "baseline",
                0.0,
                0.0,
                self.baseline.mean_temp - self.idle_mean_temp,
                self.baseline.peak_temp - self.idle_mean_temp,
                percent(1.0),
                percent(1.0),
                self.baseline.mean_response,
                self.baseline.alerts,
                self.baseline.time_in_critical_s,
                self.baseline.migrations,
                self.baseline.energy / 1e3,
                self.baseline.work_done,
            ],
            [
                "dimetrodon",
                self.p,
                self.idle_quantum * 1e3,
                self.injected.mean_temp - self.idle_mean_temp,
                self.injected.peak_temp - self.idle_mean_temp,
                percent(self._relative(self.injected.qos_good, self.baseline.qos_good)),
                percent(
                    self._relative(
                        self.injected.qos_tolerable, self.baseline.qos_tolerable
                    )
                ),
                self.injected.mean_response,
                self.injected.alerts,
                self.injected.time_in_critical_s,
                self.injected.migrations,
                self.injected.energy / 1e3,
                self.injected.work_done,
            ],
        ]
        title = (
            f"Fleet: {self.machines} machines x {self.duration:.0f}s web serving "
            f"(policy {self.policy}, load/core {percent(self.offered_load_per_core)}, "
            f"temp reduction {percent(self.temp_reduction)}, "
            f"physics {_rate(self.chip_substeps_per_s)} chip-substeps/s)"
        )
        return format_table(
            [
                "rack",
                "p",
                "L [ms]",
                "rise [C]",
                "peak [C]",
                "QoS good",
                "QoS tol.",
                "mean resp [s]",
                "alerts",
                "crit [s]",
                "migr",
                "energy [kJ]",
                "work [CPU-s]",
            ],
            rows,
            title=title,
        )

    def health_payload(self) -> dict:
        """The manifest's ``health`` section for this experiment."""
        return {
            "baseline": self.baseline_health,
            "dimetrodon": self.injected_health,
        }

    @staticmethod
    def _relative(value: float, base: float) -> float:
        return value / base if base > 0 else 0.0


def _rate(per_second: float) -> str:
    if per_second >= 1e6:
        return f"{per_second / 1e6:.1f}M"
    return f"{per_second / 1e3:.0f}k"


def _peak_temp(fleet: FleetMachine, *, start: float) -> float:
    """Hottest sampled core temperature anywhere in the rack from
    ``start`` on (the rack's worst thermal excursion, fig2's peak
    measured fleet-wide)."""
    peak = -np.inf
    for node in fleet.nodes:
        times = node.templog.times
        if times.size == 0:
            continue
        mask = times >= start
        if np.any(mask):
            peak = max(peak, float(node.templog.samples[mask].max()))
    return peak if np.isfinite(peak) else fleet.idle_mean_temp


@dataclass
class RackMeasurement:
    """One rack run with everything downstream scoring needs: the
    fleet (thermal state, telemetry), the per-node servers (request
    logs — the ``scenarios`` experiment pools them for windowed SLO
    scoring), and the aggregate :class:`_FleetRun` numbers."""

    fleet: FleetMachine
    servers: List[WebServer]
    run: _FleetRun
    health: Optional[FleetHealth] = None

    def pooled_requests(self):
        """Every request logged anywhere in the rack (arrival order is
        per-server; windowed scoring does not need a global sort)."""
        return [r for s in self.servers for r in s.log.requests]


def _measure_rack(
    config: ExperimentConfig,
    *,
    machines: int,
    duration: float,
    warmup: float,
    p: float,
    idle_quantum: float,
    policy: str = "round-robin",
    node_setup: Optional[Callable[[FleetNode], Any]] = None,
    arrivals: Optional[ArrivalProcess] = None,
    health_params: Optional[HealthParams] = None,
) -> RackMeasurement:
    """Build, load-balance, monitor, and run one rack; score its QoS
    window.

    ``policy`` names the scheduling policy (``repro.fleet.scheduling``
    registry).  ``node_setup``, when given, runs once per node before
    the rack starts — the compare experiment uses it to program DVFS or
    TCC and to attach per-node heat-and-run policies; any returned
    object with a ``stop()`` method is stopped after the run.
    ``arrivals`` replaces the front door's fixed-rate Poisson stream
    with a shaped arrival process (see ``repro.workloads.loadshapes``).

    Every rack runs with health monitors attached (``health_params``
    overrides the default :class:`~repro.health.HealthParams`) — the
    production posture: monitoring is not optional, and the
    alert-reactive policy requires it.
    """
    fleet = FleetMachine(config, machines=machines)
    health = fleet.attach_health(health_params)
    servers: List[WebServer] = [
        WebServer(node.scheduler, node.rng.stream("web"), external_arrivals=True)
        for node in fleet.nodes
    ]
    bundle = build_policy(
        policy,
        fleet,
        servers,
        rate=machines * servers[0].arrival_rate,
        rng=RngRegistry(config.seed).stream("fleet-balancer"),
        arrivals=arrivals,
        health=health,
    )
    attachments = []
    if node_setup is not None:
        for node in fleet.nodes:
            attachment = node_setup(node)
            if attachment is not None and hasattr(attachment, "stop"):
                attachments.append(attachment)
    if p > 0:
        for node in fleet.nodes:
            node.control.set_global_policy(p, idle_quantum)
    fleet.run(duration)
    bundle.stop()
    bundle.finalize(fleet.now)
    health.stop()
    health.finalize()
    for attachment in attachments:
        attachment.stop()

    # Rack-wide QoS over the same window fig6 scores per machine:
    # requests arriving in [warmup, duration - QOS_TOLERABLE), pooled
    # across every server (unanswered requests count as failures).  A
    # windowless rack (possible under a trough-heavy shape) scores NaN,
    # the same no-data convention as RequestLog.qos_fraction.
    start, end = warmup, duration - QOS_TOLERABLE
    window = [r for s in servers for r in s.log.arrived_in(start, end)]
    answered = [r.response_time for r in window if r.response_time is not None]
    count = len(window)
    good = sum(1 for t in answered if t <= QOS_GOOD)
    tolerable = sum(1 for t in answered if t <= QOS_TOLERABLE)
    run = _FleetRun(
        qos_good=good / count if count else float("nan"),
        qos_tolerable=tolerable / count if count else float("nan"),
        mean_response=float(np.mean(answered)) if answered else float("inf"),
        mean_temp=fleet.mean_core_temp_over_window(),
        peak_temp=_peak_temp(fleet, start=warmup),
        energy=fleet.total_energy(),
        work_done=fleet.total_work_done(),
        requests=count,
        migrations=bundle.migrations,
        migration_cost_s=bundle.migration_cost_seconds,
        alerts=health.alerts,
        critical_alerts=health.critical_alerts,
        time_in_warning_s=health.time_in_warning,
        time_in_critical_s=health.time_in_critical,
        throttle_engagements=bundle.throttle_engagements,
        time_throttled_s=bundle.time_throttled_seconds,
    )
    return RackMeasurement(fleet=fleet, servers=servers, run=run, health=health)


def fleet_experiment(
    config: ExperimentConfig,
    *,
    machines: Optional[int] = None,
    duration: Optional[float] = None,
    p: float = 0.65,
    idle_quantum: float = 0.050,
    warmup: float = 5.0,
    policy: str = "round-robin",
    health_params: Optional[HealthParams] = None,
    runner: Optional[Any] = None,
) -> FleetResult:
    """Rack-wide QoS vs temperature reduction under idle injection.

    ``machines``/``duration`` default by preset: the fast preset runs a
    16-machine rack for ``warmup + measure_window + 5`` seconds,
    ``--full`` a 256-machine rack (the "hundreds of servers" scale) for
    its longer measurement window.  Every machine is a 4-core server
    from the shared config, node ``j`` seeded ``config.seed + j``.

    ``policy`` selects the scheduling policy (``--policy`` on the CLI;
    see :data:`repro.fleet.scheduling.POLICY_NAMES`) used by *both*
    racks, so the report shows what injection buys under that policy.
    The default reproduces the original round-robin experiment exactly.
    ``health_params`` overrides the monitoring thresholds (the CLI's
    ``--health-*`` flags); both racks share them.

    ``runner`` is an optional
    :class:`~repro.runtime.parallel.ParallelRunner`: the two racks are
    independent rack cells (:mod:`repro.fleet.cells`) and go through
    its pool/cache/journal stack when one is attached; without one they
    run in-process, in order, with identical results.
    """
    # Imported here, not at module top: cells.py imports _measure_rack
    # from this module, so the module-level edge must point that way.
    from .cells import rack_cell_spec, require_cells, run_cells

    if machines is None:
        # The presets differ only in timing; the longer paper-faithful
        # characterization also gets the paper-scale rack.
        machines = 256 if config.characterization_duration >= 300.0 else 16
    if duration is None:
        duration = warmup + config.measure_window + QOS_TOLERABLE

    common = dict(
        machines=machines,
        duration=duration,
        warmup=warmup,
        idle_quantum=idle_quantum,
        policy=policy,
    )
    if health_params is not None:
        common["health"] = health_params
    cells = run_cells(
        runner,
        [
            rack_cell_spec(config, p=0.0, **common),
            rack_cell_spec(config, p=p, **common),
        ],
    )
    require_cells("fleet", ["baseline", "dimetrodon"], cells)
    base_cell, injected_cell = cells
    baseline, injected = base_cell.run, injected_cell.run

    idle_mean = base_cell.idle_mean_temp
    baseline_rise = baseline.mean_temp - idle_mean
    reduction = (
        (baseline.mean_temp - injected.mean_temp) / baseline_rise
        if baseline_rise > 0
        else 0.0
    )
    # Physics throughput actually achieved, wherever the cells ran:
    # each cell carries its own substeps/wall deltas (a cached cell
    # replays the numbers measured when it executed).
    substeps = base_cell.substeps + injected_cell.substeps
    wall = base_cell.advance_wall_s + injected_cell.advance_wall_s
    return FleetResult(
        machines=machines,
        duration=duration,
        p=p,
        idle_quantum=idle_quantum,
        idle_mean_temp=idle_mean,
        baseline_rise=baseline_rise,
        temp_reduction=reduction,
        offered_load_per_core=_offered_load(config),
        baseline=baseline,
        injected=injected,
        chip_substeps_per_s=substeps / wall if wall > 0 else 0.0,
        policy=policy,
        baseline_health=base_cell.health,
        injected_health=injected_cell.health,
    )


def _offered_load(config: ExperimentConfig) -> float:
    """The web workload's offered utilisation per core (fig6's number),
    computed from the default server parameters without building one."""
    connections, think_time = 440, 11.0
    service_mean, kernel_overhead = 0.025, 0.0002
    return (connections / think_time) * (service_mean + kernel_overhead) / config.num_cores
