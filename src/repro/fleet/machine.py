"""A rack of simulated servers sharing one event queue and one
structure-of-arrays physics state.

A :class:`FleetMachine` is ``N`` copies of the single-server testbed
(:class:`repro.experiments.machine.Machine`): each node gets its own
chip, scheduler, idle injector, RNG registry, power meter, sensors and
temperature log, and all nodes' events interleave on one shared
:class:`~repro.sim.engine.Simulator`.  What is *not* per-node is the
physics: every machine is a copy of the same thermal network, so the
whole fleet's temperatures live in one ``(machines, nodes)`` array
inside a :class:`~repro.thermal.rcnetwork.FleetThermalIntegrator` and
cohorts of machines advance with one fused matmul per substep.

How per-machine event streams drive batched physics
---------------------------------------------------

The single-server machine integrates eagerly: an advance listener runs
the thermal model over every inter-event gap before each event fires.
A fleet cannot do that directly — splitting machine A's quiet interval
at machine B's event times would change A's substep lengths and with
them the leakage-lag discretization, breaking run-for-run equivalence
with a standalone machine.  Instead, each node schedules its callbacks
through a :class:`_NodeSimView`, a node-scoped view of the shared
simulator that wraps every callback: immediately before a node's event
runs, the node's physics *gap* (from its last event to now) is closed
by **recording** power segments — split at that node's own C-state
promotion instants, coefficients evaluated at piece midpoints, exactly
the piece structure the standalone machine integrates.  Nothing is
integrated yet; segments queue per node.

Integration happens in batch when temperatures are actually needed
(a temperature-log sample, a ``core_temps`` read, or the end of
:meth:`FleetMachine.run`): the drain repeatedly groups the
head-of-queue segments across nodes into cohorts of equal duration —
equal duration means equal substep length ``h``, the precondition for
sharing one step kernel — and advances each cohort with one batched
call.  Deferring is sound because power coefficients are segment
constants: they capture the chip state at recording time and do not
depend on when the integral is evaluated.  Per-node segment order is
preserved, so each machine sees exactly the integral a standalone
machine would have computed; a fleet of one machine is *bit-identical*
to a standalone :class:`Machine` (the tests pin this), and an N-machine
fleet matches N independent runs to well under the repo-wide 1e-9 °C
equivalence tolerance.

When the fleet's event streams align (lockstep workloads, or the
synchronized benchmark), cohorts span the whole fleet and the batched
kernel does one ``(nodes, 2·nodes+1) @ (2·nodes+1, N)`` matmul per
substep; under desynchronized workloads (per-node Poisson arrivals)
cohorts shrink and the path degrades gracefully toward per-machine
gemvs that still share the step-kernel cache.

Telemetry (shared registry, additive across nodes): the integrator's
``fleet.machines`` / ``fleet.substeps`` / ``fleet.advance_wall``, plus
``fleet.segments`` (recorded pieces), ``fleet.drains``, and coefficient
stack build/reuse counters from this module.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.injector import IdleInjector, IdleMode
from ..cpu.chip import Chip
from ..cpu.power import FleetCoefficients, PowerCoefficients
from ..errors import ConfigurationError
from ..experiments.config import ExperimentConfig
from ..health import FleetHealth, HealthMonitor, HealthParams
from ..instruments.powermeter import PowerMeter
from ..instruments.templog import TemperatureLog
from ..sched.scheduler import Scheduler
from ..sched.syscalls import DimetrodonControl
from ..sim.engine import Event, Simulator
from ..sim.rng import RngRegistry
from ..telemetry.registry import registry as _metrics_registry
from ..thermal.floorplan import build_network
from ..thermal.rcnetwork import FleetThermalIntegrator, ThermalIntegrator
from ..thermal.sensors import SensorBank


class _NodeSimView:
    """One node's view of the shared simulator.

    Exposes the :class:`~repro.sim.engine.Simulator` surface node
    components use (``now``, ``schedule``, ``schedule_at``) and wraps
    every scheduled callback so the node's physics gap is closed —
    segments recorded up to the current instant — before the callback
    mutates any state the power model depends on.  Cancelling the
    returned :class:`~repro.sim.engine.Event` works unchanged.
    """

    __slots__ = ("_fleet", "_index", "_sim")

    def __init__(self, fleet: "FleetMachine", index: int, sim: Simulator):
        self._fleet = fleet
        self._index = index
        self._sim = sim

    @property
    def now(self) -> float:
        return self._sim.now

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        return self._sim.schedule(delay, self._fire, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        return self._sim.schedule_at(time, self._fire, callback, args)

    def _fire(self, callback: Callable[..., Any], args: Tuple[Any, ...]) -> None:
        self._fleet._close_gap(self._index)
        callback(*args)


@dataclass
class _PendingSegment:
    """One recorded, not-yet-integrated physics piece of one node."""

    start: float
    duration: float
    coefficients: PowerCoefficients


class FleetNode:
    """One server of the fleet: the full single-machine OS stack, with
    physics delegated to the fleet's batched integrator.

    Wiring mirrors :class:`repro.experiments.machine.Machine` component
    for component (same construction order, same RNG stream names, same
    instrument parameters) — that is what makes a fleet node's event
    stream, and therefore its physics piece structure, identical to a
    standalone machine built from the same config.
    """

    def __init__(
        self,
        fleet: "FleetMachine",
        index: int,
        config: ExperimentConfig,
        *,
        idle_mode: IdleMode,
        co_schedule_smt: bool,
    ):
        self.fleet = fleet
        self.index = index
        self.config = config
        cfg = config
        self.simview = _NodeSimView(fleet, index, fleet.sim)
        self.rng = RngRegistry(cfg.seed)
        self.chip = Chip(
            cfg.power,
            num_cores=cfg.num_cores,
            smt=cfg.smt,
            cstate_params=cfg.cstates,
            c1e_enabled=cfg.c1e_enabled,
        )
        for core in self.chip.cores:
            core.set_idle(-1e6)  # long-idle: deep state from the start

        self.injector = IdleInjector(mode=idle_mode, co_schedule_smt=co_schedule_smt)
        if cfg.scheduler_queue == "ule":
            from ..sched.ule import UleRunqueue

            runqueue = UleRunqueue(num_cores=cfg.num_cores)
        elif cfg.scheduler_queue == "bsd":
            runqueue = None  # Scheduler builds the default 4.4BSD MLFQ
        else:
            raise ConfigurationError(
                f"unknown scheduler_queue {cfg.scheduler_queue!r} (bsd|ule)"
            )
        self.scheduler = Scheduler(
            self.simview,
            self.chip,
            quantum=cfg.quantum,
            context_switch_cost=cfg.context_switch_cost,
            injector=self.injector,
            runqueue=runqueue,
        )
        self.control = DimetrodonControl(self.scheduler, rng=self.rng.stream("inject"))

        meter_rng = self.rng.stream("clamp") if cfg.clamp_gain_error > 0 else None
        self.powermeter = PowerMeter(
            clamp_gain_error=cfg.clamp_gain_error, rng=meter_rng
        )
        core_nodes = list(range(cfg.num_cores))
        if cfg.noisy_sensors:
            self.sensors = SensorBank.coretemp(core_nodes, self.rng.stream("sensors"))
        else:
            self.sensors = SensorBank.ideal(core_nodes)
        self.templog = TemperatureLog(
            self.simview,
            lambda: self.sensors.read(fleet._node_temps(index)),
            period=cfg.temp_sample_period,
            num_cores=cfg.num_cores,
        )

        #: Recorded-but-unintegrated physics pieces, in time order.
        self.pending: Deque[_PendingSegment] = deque()
        #: End of the last recorded piece (= this node's last event).
        self.last_physics_time = fleet.sim.now
        #: This node's health monitor once the fleet attaches one.
        self.health: Optional[HealthMonitor] = None

        self.scheduler.start()

    # ------------------------------------------------------------------
    # Convenience measurements (the Machine API, per node)
    # ------------------------------------------------------------------
    @property
    def core_temps(self) -> np.ndarray:
        """Current true per-core temperatures, °C (drains physics)."""
        return self.fleet._node_temps(self.index)[: self.config.num_cores].copy()

    @property
    def idle_mean_temp(self) -> float:
        """Mean per-core idle (baseline) temperature, °C."""
        return float(np.mean(self.fleet.idle_core_temps))

    def mean_core_temp_over_window(self, window: Optional[float] = None) -> float:
        """Mean core temperature over the trailing window (default: the
        config's measurement window)."""
        return self.templog.mean_over_window(window or self.config.measure_window)

    def temp_rise_over_idle(self, window: Optional[float] = None) -> float:
        """Mean core temperature rise over the idle baseline, °C."""
        return self.mean_core_temp_over_window(window) - self.idle_mean_temp

    def total_work_done(self) -> float:
        """Total useful work completed by this node's threads, CPU-s."""
        return sum(t.stats.work_done for t in self.scheduler.threads)

    def energy(self, start: float = -np.inf, end: float = np.inf) -> float:
        """Package energy over [start, end], J (drains physics)."""
        self.fleet._drain()
        return self.powermeter.energy(start, end)


class FleetMachine:
    """``machines`` fully wired servers advancing as one batch.

    Node ``j`` is built from ``config.with_seed(config.seed + j)``, so
    node 0 of a fleet is the *same* simulated server as a standalone
    ``Machine(config)`` and the other nodes are independent replicas
    with decorrelated workload randomness.
    """

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        *,
        machines: int = 4,
        idle_mode: IdleMode = IdleMode.HALT,
        co_schedule_smt: bool = False,
    ):
        if machines < 1:
            raise ConfigurationError("a fleet needs at least one machine")
        self.config = config or ExperimentConfig()
        cfg = self.config
        self.num_machines = int(machines)

        self.sim = Simulator()
        #: One network shared by every node: homogeneous machines share
        #: the step-kernel LRU, so each distinct substep length costs
        #: one ``expm`` for the whole fleet.
        self.network = build_network(cfg.thermal, cfg.num_cores)

        scope = _metrics_registry().scope("fleet")
        self._metric_segments = scope.counter("segments")
        self._metric_drains = scope.counter("drains")
        self._metric_stack_builds = scope.counter("coefficient_stacks.builds")
        self._metric_stack_reuses = scope.counter("coefficient_stacks.reuses")

        # --- idle-equilibrium initial condition, computed once --------
        # All chips are identical and idle at t=0, so one settle seeds
        # every row of the fleet state with the temperatures a
        # standalone machine's own settle would produce (bitwise: same
        # network parameters, same iteration).  The settle must see the
        # chip *long-idle* — Machine settles before its scheduler's
        # ``start()`` re-marks cores naturally idle — so it runs on a
        # dedicated probe chip, not a node's.
        probe_chip = Chip(
            cfg.power,
            num_cores=cfg.num_cores,
            smt=cfg.smt,
            cstate_params=cfg.cstates,
            c1e_enabled=cfg.c1e_enabled,
        )
        for core in probe_chip.cores:
            core.set_idle(-1e6)
        probe = ThermalIntegrator(self.network, max_substep=cfg.thermal.max_substep)
        _, idle_power_fn = probe_chip.power_function(time=0.0)
        probe.settle(idle_power_fn)

        self.nodes: List[FleetNode] = [
            FleetNode(
                self,
                j,
                cfg.with_seed(cfg.seed + j),
                idle_mode=idle_mode,
                co_schedule_smt=co_schedule_smt,
            )
            for j in range(machines)
        ]
        self.integrator = FleetThermalIntegrator(
            self.network,
            machines,
            initial_temps=probe.temps,
            max_substep=cfg.thermal.max_substep,
        )
        #: Per-core idle temperatures — the baseline, °C (all nodes).
        self.idle_core_temps = probe.temps[: cfg.num_cores].copy()

        #: Cohort-width -> last coefficient stack, for epoch-multiplexed
        #: reuse (aligned fleets rebuild nothing in steady state).
        self._stack_cache: Dict[int, FleetCoefficients] = {}
        #: Rack-level health aggregation once :meth:`attach_health` runs.
        self.health: Optional[FleetHealth] = None

    # ------------------------------------------------------------------
    # Health monitoring
    # ------------------------------------------------------------------
    def attach_health(self, params: Optional[HealthParams] = None) -> FleetHealth:
        """Attach one :class:`~repro.health.HealthMonitor` per node.

        Each monitor samples through its own quantised (optionally
        noisy) :class:`~repro.thermal.sensors.SensorBank` at the
        params' period, with rise thresholds pinned to this rack's idle
        baseline.  Noisy monitors draw from the node's dedicated
        ``"health-sensors"`` RNG stream, so monitor reads never perturb
        the temperature log's noise sequence and identical seeds
        reproduce identical alert streams.  Monitors run through each
        node's sim view, so a sample sees physics integrated up to the
        sampling instant.
        """
        if self.health is not None:
            raise ConfigurationError("fleet already has health monitors attached")
        params = params if params is not None else HealthParams()
        thresholds = params.thresholds(self.idle_mean_temp)
        core_nodes = list(range(self.config.num_cores))
        monitors = []
        for node in self.nodes:
            rng = node.rng.stream("health-sensors") if params.noisy else None
            monitor = HealthMonitor(
                node.simview,
                params.sensor_bank(core_nodes, rng),
                lambda j=node.index: self._node_temps(j),
                thresholds=thresholds,
                period=params.period,
                machine=node.index,
            )
            node.health = monitor
            monitors.append(monitor)
        self.health = FleetHealth(
            monitors, params=params, idle_mean=self.idle_mean_temp
        )
        return self.health

    # ------------------------------------------------------------------
    # Physics co-simulation
    # ------------------------------------------------------------------
    def _close_gap(self, index: int) -> None:
        """Record node ``index``'s physics from its last event to now.

        Mirrors ``Machine._advance_physics`` piece for piece — split at
        the node's own C-state promotion instants, skip empty pieces,
        evaluate coefficients at piece midpoints, account residency —
        but queues the segments instead of integrating them.
        """
        node = self.nodes[index]
        now = self.sim.now
        t0 = node.last_physics_time
        if now <= t0:
            return
        chip = node.chip
        pending = node.pending
        edges = [t0] + chip.cstate_breakpoints(t0, now) + [now]
        recorded = 0
        for a, b in zip(edges, edges[1:]):
            if b <= a:
                continue
            cstates, coefficients = chip.power_segment(0.5 * (a + b))
            chip.record_residency(cstates, b - a)
            pending.append(_PendingSegment(a, b - a, coefficients))
            recorded += 1
        node.last_physics_time = now
        self._metric_segments.inc(recorded)

    def _cohort_stack(
        self, columns: Sequence[PowerCoefficients]
    ) -> FleetCoefficients:
        """The node-major coefficient stack for one cohort, reusing the
        previous stack of the same width when every column is the same
        (epoch-unchanged) coefficient object."""
        width = len(columns)
        cached = self._stack_cache.get(width)
        if cached is not None and cached.matches(columns):
            self._metric_stack_reuses.inc()
            return cached
        stack = FleetCoefficients.from_coefficients(columns)
        self._stack_cache[width] = stack
        self._metric_stack_builds.inc()
        return stack

    def _drain(self) -> None:
        """Integrate every recorded segment, batching across nodes.

        Head-of-queue segments with exactly equal durations share a
        substep length, so they advance as one cohort; rounds repeat
        until all queues are empty.  Per-node segment order is
        preserved, which is all machine-level equivalence needs —
        cohort membership only changes floating-point summation order
        inside the gemm.
        """
        nodes = self.nodes
        active = [j for j in range(self.num_machines) if nodes[j].pending]
        if not active:
            return
        integrator = self.integrator
        while active:
            groups: Dict[float, List[int]] = {}
            for j in active:
                groups.setdefault(nodes[j].pending[0].duration, []).append(j)
            for duration, members in groups.items():
                segments = [nodes[j].pending.popleft() for j in members]
                stack = self._cohort_stack([s.coefficients for s in segments])
                energies = integrator.advance_machines(members, duration, stack)
                for j, segment, energy in zip(members, segments, energies):
                    nodes[j].powermeter.record_segment(
                        segment.start, segment.duration, energy / segment.duration
                    )
            active = [j for j in active if nodes[j].pending]
        self._metric_drains.inc()

    def _node_temps(self, index: int) -> np.ndarray:
        """Node ``index``'s current node temperatures (°C), integrating
        everything recorded so far.  Returns a live row view; callers
        that keep the array must copy."""
        self._close_gap(index)
        self._drain()
        return self.integrator.temps[index]

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, duration: float) -> None:
        """Advance the whole fleet by ``duration`` seconds.

        Like the standalone machine's run, the final partial interval
        is integrated too: every node's gap is closed at the end time
        and all queues drain, so temperatures and energy are current
        when this returns.
        """
        self.sim.run(until=self.sim.now + duration)
        for j in range(self.num_machines):
            self._close_gap(j)
        self._drain()

    # ------------------------------------------------------------------
    # Fleet-level measurements
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def idle_mean_temp(self) -> float:
        """Mean per-core idle (baseline) temperature, °C."""
        return float(np.mean(self.idle_core_temps))

    def mean_core_temp_over_window(self, window: Optional[float] = None) -> float:
        """Fleet-mean core temperature over the trailing window, °C."""
        return float(
            np.mean([node.mean_core_temp_over_window(window) for node in self.nodes])
        )

    def total_energy(self, start: float = -np.inf, end: float = np.inf) -> float:
        """Aggregate package energy over [start, end], J."""
        self._drain()
        return float(sum(node.powermeter.energy(start, end) for node in self.nodes))

    def total_work_done(self) -> float:
        """Total useful work completed across the fleet, CPU-seconds."""
        return float(sum(node.total_work_done() for node in self.nodes))
