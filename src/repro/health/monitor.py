"""Online thermal health monitoring with hysteresis alerting.

Production thermal tooling treats continuous monitoring as the
foundation of thermal management: a daemon polls the temperature
sensors on a fixed cadence, classifies each machine against warning and
critical thresholds, and alerts *on state changes only* — an operator
wants one page when a machine trips critical, not one per poll.  This
module brings that discipline into the simulator:

- :class:`HysteresisClassifier` — the pure warning/critical state
  machine.  Each threshold carries an independent N-degree hysteresis
  band: once a threshold has fired it stays engaged until the reading
  drops below ``threshold − hysteresis`` (explicit re-arm), which is
  what keeps a reading that jitters around a threshold from producing
  alert chatter.
- :class:`HealthTracker` — classification plus bookkeeping: the
  state-change-only :class:`AlertEvent` log, the "currently in state"
  vs "has occurred since boot" flag sets, per-state dwell times that
  partition the observed span, and the worst excursion seen.
  It is pure Python over ``(time, temperature)`` observations, which is
  what the Hypothesis property tests drive.
- :class:`HealthMonitor` — the simulated daemon: a
  :class:`~repro.sim.process.PeriodicTask` that reads temperatures
  **through a** :class:`~repro.thermal.sensors.SensorBank` (quantised,
  optionally noisy — the management plane never sees true node state),
  classifies the hottest core, feeds the tracker, publishes telemetry
  counters, and notifies subscribers.  The alert-driven reactive DTM
  baseline (:class:`~repro.core.dtm.AlertDrivenController`) is such a
  subscriber.

Thresholds are usually configured as *rises over the idle baseline*
(:class:`HealthParams`) because every experiment in this repo scores
temperature that way; :meth:`HealthParams.thresholds` pins them to
absolute °C once the machine's idle temperature is known.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..sim.process import PeriodicTask
from ..telemetry.registry import registry as _metrics_registry
from ..thermal.sensors import SensorBank


class HealthState(enum.IntEnum):
    """Thermal health of one machine, ordered by severity."""

    NOMINAL = 0
    WARNING = 1
    CRITICAL = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class HealthThresholds:
    """Absolute trip temperatures with a shared hysteresis width.

    ``hysteresis`` applies *independently* to each threshold: the
    warning latch re-arms below ``warning − hysteresis`` and the
    critical latch below ``critical − hysteresis``; the two never
    interact (a machine can drop out of critical and stay in warning).
    """

    warning: float
    critical: float
    hysteresis: float = 1.0

    def __post_init__(self) -> None:
        if self.hysteresis < 0:
            raise ConfigurationError("health hysteresis must be non-negative")
        if not self.critical > self.warning:
            raise ConfigurationError(
                f"critical threshold ({self.critical} C) must exceed the "
                f"warning threshold ({self.warning} C)"
            )

    def to_dict(self) -> Dict[str, float]:
        return {
            "warning_c": float(self.warning),
            "critical_c": float(self.critical),
            "hysteresis_c": float(self.hysteresis),
        }


class ThresholdLatch:
    """One threshold with hysteresis: engages at ``threshold``, re-arms
    only when the reading drops below ``threshold − hysteresis``."""

    __slots__ = ("threshold", "hysteresis", "engaged")

    def __init__(self, threshold: float, hysteresis: float):
        self.threshold = float(threshold)
        self.hysteresis = float(hysteresis)
        self.engaged = False

    def update(self, value: float) -> bool:
        if self.engaged:
            if value < self.threshold - self.hysteresis:
                self.engaged = False
        elif value >= self.threshold:
            self.engaged = True
        return self.engaged


class HysteresisClassifier:
    """The pure warning/critical state machine (no time, no events)."""

    def __init__(self, thresholds: HealthThresholds):
        self.thresholds = thresholds
        self._warning = ThresholdLatch(thresholds.warning, thresholds.hysteresis)
        self._critical = ThresholdLatch(thresholds.critical, thresholds.hysteresis)

    def classify(self, value: float) -> HealthState:
        """Update both latches with ``value`` and return the state."""
        warning = self._warning.update(value)
        critical = self._critical.update(value)
        if critical:
            return HealthState.CRITICAL
        if warning:
            return HealthState.WARNING
        return HealthState.NOMINAL

    def engaged_states(self) -> FrozenSet[HealthState]:
        """The latches currently engaged (a CRITICAL reading engages
        the warning latch too — severity is cumulative)."""
        states = set()
        if self._warning.engaged:
            states.add(HealthState.WARNING)
        if self._critical.engaged:
            states.add(HealthState.CRITICAL)
        return frozenset(states)


@dataclass(frozen=True)
class AlertEvent:
    """One state *change* — the only thing the monitor ever emits."""

    time: float
    machine: int
    state: HealthState
    previous: HealthState
    temperature: float

    @property
    def escalation(self) -> bool:
        """True when severity increased (an alert, not a recovery)."""
        return self.state > self.previous


class HealthTracker:
    """Hysteresis classification plus dwell/flag/event bookkeeping.

    Feed it time-ordered ``observe(now, temperature)`` calls; it
    returns an :class:`AlertEvent` exactly when the classified state
    changed and ``None`` otherwise (the no-chatter guarantee).  Dwell
    accounting attributes the interval since the previous observation
    to the state that held over it, so after :meth:`finalize` the
    per-state dwell times partition ``[start, finalize]`` exactly.
    """

    def __init__(
        self,
        thresholds: HealthThresholds,
        *,
        machine: int = 0,
        start_time: float = 0.0,
    ):
        self.thresholds = thresholds
        self.machine = int(machine)
        self.classifier = HysteresisClassifier(thresholds)
        self.state = HealthState.NOMINAL
        #: States ever latched since boot (monotone; NOMINAL implicit).
        self.since_boot: FrozenSet[HealthState] = frozenset()
        self.events: List[AlertEvent] = []
        self.dwell: Dict[HealthState, float] = {s: 0.0 for s in HealthState}
        self.samples = 0
        #: Hottest reading ever observed, °C (None before any sample).
        self.worst_excursion: Optional[float] = None
        self._start = float(start_time)
        self._last = float(start_time)

    # ------------------------------------------------------------------
    def observe(self, now: float, temperature: float) -> Optional[AlertEvent]:
        """Classify one reading; returns an event iff the state changed."""
        now = float(now)
        if now < self._last:
            raise SimulationError(
                f"health observations must be time-ordered "
                f"(got t={now} after t={self._last})"
            )
        self.dwell[self.state] += now - self._last
        self._last = now
        self.samples += 1
        temperature = float(temperature)
        if self.worst_excursion is None or temperature > self.worst_excursion:
            self.worst_excursion = temperature
        new_state = self.classifier.classify(temperature)
        self.since_boot = self.since_boot | self.classifier.engaged_states()
        if new_state == self.state:
            return None
        event = AlertEvent(
            time=now,
            machine=self.machine,
            state=new_state,
            previous=self.state,
            temperature=temperature,
        )
        self.state = new_state
        self.events.append(event)
        return event

    def finalize(self, now: float) -> None:
        """Close the open dwell interval at ``now`` (idempotent)."""
        now = float(now)
        if now < self._last:
            raise SimulationError(
                f"cannot finalize at t={now} before last observation "
                f"t={self._last}"
            )
        self.dwell[self.state] += now - self._last
        self._last = now

    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Observed span so far: ``sum(dwell.values())`` equals this."""
        return self._last - self._start

    def time_in(self, state: HealthState) -> float:
        return self.dwell[state]

    @property
    def time_in_warning(self) -> float:
        return self.dwell[HealthState.WARNING]

    @property
    def time_in_critical(self) -> float:
        return self.dwell[HealthState.CRITICAL]

    @property
    def warning_alerts(self) -> int:
        """Escalations into WARNING (from NOMINAL)."""
        return sum(
            1 for e in self.events if e.state is HealthState.WARNING and e.escalation
        )

    @property
    def critical_alerts(self) -> int:
        """Escalations into CRITICAL (always escalations)."""
        return sum(1 for e in self.events if e.state is HealthState.CRITICAL)

    @property
    def recoveries(self) -> int:
        """De-escalations (CRITICAL→WARNING counts, so does →NOMINAL)."""
        return sum(1 for e in self.events if not e.escalation)

    @property
    def alerts(self) -> int:
        return self.warning_alerts + self.critical_alerts

    def summary(self) -> Dict[str, object]:
        """JSON-safe snapshot (strict JSON: no NaN/Inf, None = no data)."""
        worst = self.worst_excursion
        return {
            "machine": self.machine,
            "state": self.state.label,
            "since_boot": {
                "warning": HealthState.WARNING in self.since_boot,
                "critical": HealthState.CRITICAL in self.since_boot,
            },
            "alerts": {
                "warning": self.warning_alerts,
                "critical": self.critical_alerts,
                "recoveries": self.recoveries,
                "events": len(self.events),
            },
            "dwell_s": {s.label: float(self.dwell[s]) for s in HealthState},
            "worst_excursion_c": (
                float(worst) if worst is not None and np.isfinite(worst) else None
            ),
            "samples": self.samples,
        }


@dataclass(frozen=True)
class HealthParams:
    """Monitoring configuration, with thresholds as rises over idle.

    The defaults are tuned so the §3.7 web workload's baseline rack
    trips critical near its steady state (peak rise ≈ 6.5 °C on the
    fast preset) while a Dimetrodon-injected rack, cooled by roughly
    half, stays below — monitoring shows preventive injection avoiding
    the emergencies the reactive baseline merely responds to.
    """

    #: Warning threshold as °C rise over the idle baseline.
    warning_rise: float = 3.5
    #: Critical threshold as °C rise over the idle baseline.
    critical_rise: float = 5.5
    #: Hysteresis band width, °C (re-arm below threshold − hysteresis).
    hysteresis: float = 1.0
    #: Monitor sampling period, s.
    period: float = 1.0
    #: Sensor quantisation step, °C (coretemp-like 1 °C by default;
    #: the monitor never reads true node state).
    quantization: float = 1.0
    #: Draw per-read Gaussian sensor noise (needs a per-machine RNG).
    noisy: bool = False
    #: Noise standard deviation when ``noisy``, °C.
    noise_std: float = 0.25

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError("health monitor period must be positive")
        if not self.critical_rise > self.warning_rise:
            raise ConfigurationError(
                "critical rise must exceed warning rise "
                f"({self.critical_rise} vs {self.warning_rise})"
            )
        if self.hysteresis < 0:
            raise ConfigurationError("health hysteresis must be non-negative")
        if self.quantization < 0 or self.noise_std < 0:
            raise ConfigurationError(
                "sensor quantization/noise must be non-negative"
            )

    def thresholds(self, idle_mean: float) -> HealthThresholds:
        """Pin the rises to absolute °C for a machine's idle baseline."""
        return HealthThresholds(
            warning=float(idle_mean) + self.warning_rise,
            critical=float(idle_mean) + self.critical_rise,
            hysteresis=self.hysteresis,
        )

    def sensor_bank(
        self,
        node_indices: Sequence[int],
        rng: Optional[np.random.Generator] = None,
    ) -> SensorBank:
        """The monitor's own sensor view: quantised, optionally noisy.

        A noisy bank needs ``rng`` — callers pass a dedicated seeded
        per-machine stream (e.g. ``rng.stream("health-sensors")``) so
        monitor reads never perturb the temperature log's noise
        sequence and identical seeds reproduce identical alert streams.
        """
        if self.noisy:
            if rng is None:
                raise ConfigurationError(
                    "noisy health monitoring needs a per-machine RNG stream"
                )
            return SensorBank.coretemp(
                node_indices,
                rng,
                quantization=self.quantization,
                noise_std=self.noise_std,
            )
        return SensorBank.quantized(node_indices, quantization=self.quantization)

    def to_dict(self) -> Dict[str, object]:
        return {
            "warning_rise_c": self.warning_rise,
            "critical_rise_c": self.critical_rise,
            "hysteresis_c": self.hysteresis,
            "period_s": self.period,
            "quantization_c": self.quantization,
            "noisy": self.noisy,
            "noise_std_c": self.noise_std,
        }


class HealthMonitor:
    """The in-sim health daemon for one machine.

    Parameters
    ----------
    sim:
        The machine's simulator surface (a
        :class:`~repro.sim.engine.Simulator` or a fleet node's sim
        view — anything with ``now`` and ``schedule``).
    sensors:
        The :class:`~repro.thermal.sensors.SensorBank` the monitor
        reads through.  Readings are quantised/noisy per the bank;
        the monitor never sees true node state.
    temps_source:
        Callable returning the machine's current true node
        temperatures; the sensor bank turns them into readings.
    thresholds:
        Absolute trip temperatures (:class:`HealthThresholds`).
    period:
        Sampling period, seconds.
    machine:
        Index recorded on emitted :class:`AlertEvent`\\ s.

    Classification uses the *hottest* sensor reading — the hottest core
    governs a machine's thermal health, exactly like a trip sensor.
    Subscribers (:meth:`subscribe`) see state-change events only;
    per-sample hooks (:meth:`add_sample_listener`) exist for
    controllers that act while a state persists, e.g. descending the
    TCC ladder each period a machine stays critical.

    Telemetry (shared ``health.*`` scope, additive across machines):
    ``samples``, ``alerts``, ``alerts.warning``, ``alerts.critical``,
    ``recoveries``.
    """

    def __init__(
        self,
        sim,
        sensors: SensorBank,
        temps_source: Callable[[], Sequence[float]],
        *,
        thresholds: HealthThresholds,
        period: float = 1.0,
        machine: int = 0,
    ):
        if period <= 0:
            raise ConfigurationError("health monitor period must be positive")
        self.sensors = sensors
        self.period = float(period)
        self._sim = sim
        self._temps_source = temps_source
        self.tracker = HealthTracker(
            thresholds, machine=machine, start_time=sim.now
        )
        self._listeners: List[Callable[[AlertEvent], None]] = []
        self._sample_listeners: List[Callable[[float, float, HealthState], None]] = []
        scope = _metrics_registry().scope("health")
        self._metric_samples = scope.counter("samples")
        self._metric_alerts = scope.counter("alerts")
        self._metric_warning = scope.counter("alerts.warning")
        self._metric_critical = scope.counter("alerts.critical")
        self._metric_recoveries = scope.counter("recoveries")
        self._task = PeriodicTask(sim, self.period, self._sample)

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._sim.now

    @property
    def thresholds(self) -> HealthThresholds:
        return self.tracker.thresholds

    @property
    def state(self) -> HealthState:
        return self.tracker.state

    @property
    def events(self) -> List[AlertEvent]:
        return self.tracker.events

    def subscribe(self, callback: Callable[[AlertEvent], None]) -> None:
        """Receive every state-change :class:`AlertEvent` as it fires."""
        self._listeners.append(callback)

    def add_sample_listener(
        self, callback: Callable[[float, float, HealthState], None]
    ) -> None:
        """Receive ``(now, reading, state)`` on every sample."""
        self._sample_listeners.append(callback)

    # ------------------------------------------------------------------
    def _sample(self) -> None:
        reading = np.asarray(self.sensors.read(self._temps_source()), dtype=float)
        temperature = float(reading.max())
        now = self._sim.now
        event = self.tracker.observe(now, temperature)
        self._metric_samples.inc()
        if event is not None:
            if event.state is HealthState.CRITICAL:
                self._metric_critical.inc()
                self._metric_alerts.inc()
            elif event.state is HealthState.WARNING and event.escalation:
                self._metric_warning.inc()
                self._metric_alerts.inc()
            if not event.escalation:
                self._metric_recoveries.inc()
            for listener in self._listeners:
                listener(event)
        for listener in self._sample_listeners:
            listener(now, temperature, self.tracker.state)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop sampling (does not close dwell — call :meth:`finalize`)."""
        self._task.cancel()

    def finalize(self, now: Optional[float] = None) -> None:
        """Close dwell accounting at ``now`` (default: simulated now)."""
        self.tracker.finalize(self._sim.now if now is None else now)

    def summary(self) -> Dict[str, object]:
        return self.tracker.summary()
