"""Online thermal health monitoring: hysteresis alerting over sensor
readings, dwell accounting, and rack-level rollups.

See :mod:`repro.health.monitor` for the state machine and the in-sim
monitoring daemon, :mod:`repro.health.fleet` for aggregation, and
``docs/monitoring.md`` for semantics and the alert-driven DTM baseline.
"""

from .fleet import FleetHealth
from .monitor import (
    AlertEvent,
    HealthMonitor,
    HealthParams,
    HealthState,
    HealthThresholds,
    HealthTracker,
    HysteresisClassifier,
    ThresholdLatch,
)

__all__ = [
    "AlertEvent",
    "FleetHealth",
    "HealthMonitor",
    "HealthParams",
    "HealthState",
    "HealthThresholds",
    "HealthTracker",
    "HysteresisClassifier",
    "ThresholdLatch",
]
