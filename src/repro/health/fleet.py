"""Rack-level aggregation over per-machine health monitors.

:class:`FleetHealth` owns one :class:`~repro.health.monitor.HealthMonitor`
per machine and rolls their trackers up into the fleet-level numbers
experiments report: total alert counts, summed time-in-warning /
time-in-critical, the worst excursion anywhere in the rack, and how
many machines have latched warning/critical since boot.  It also
carries the monitoring configuration (thresholds, hysteresis, period,
sensor model) and — when an alert-driven controller is active — the
controller's parameters, so :meth:`summary` alone makes a
health-bearing run reproducible from its manifest.

This module deliberately knows nothing about :mod:`repro.fleet`: it
aggregates monitors, and the fleet layer (or a single-server
experiment) constructs them.  That keeps ``health`` below ``fleet`` in
the dependency stack so ``core`` can import it too.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .monitor import AlertEvent, HealthMonitor, HealthParams, HealthState


class FleetHealth:
    """Per-machine monitors plus fleet-level rollups.

    Parameters
    ----------
    monitors:
        One :class:`HealthMonitor` per machine, in machine order.
    params:
        The :class:`HealthParams` every monitor was built from.
    idle_mean:
        The idle baseline (°C) the rise thresholds were pinned to.
    """

    def __init__(
        self,
        monitors: Sequence[HealthMonitor],
        *,
        params: HealthParams,
        idle_mean: float,
    ):
        self.monitors: List[HealthMonitor] = list(monitors)
        self.params = params
        self.idle_mean = float(idle_mean)
        #: Controller parameters (ladder, period, ...) when an
        #: alert-driven DTM policy is wired to these monitors; recorded
        #: into :meth:`summary` for manifest reproducibility.
        self.controller_info: Optional[Dict[str, Any]] = None

    def __len__(self) -> int:
        return len(self.monitors)

    def __getitem__(self, index: int) -> HealthMonitor:
        return self.monitors[index]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        for monitor in self.monitors:
            monitor.stop()

    def finalize(self, now: Optional[float] = None) -> None:
        """Close every monitor's dwell accounting (see
        :meth:`HealthMonitor.finalize`)."""
        for monitor in self.monitors:
            monitor.finalize(now)

    def set_controller_info(self, info: Dict[str, Any]) -> None:
        self.controller_info = dict(info)

    # ------------------------------------------------------------------
    # Rollups
    # ------------------------------------------------------------------
    @property
    def alerts(self) -> int:
        """Total escalations (warning + critical) across the rack."""
        return sum(m.tracker.alerts for m in self.monitors)

    @property
    def warning_alerts(self) -> int:
        return sum(m.tracker.warning_alerts for m in self.monitors)

    @property
    def critical_alerts(self) -> int:
        return sum(m.tracker.critical_alerts for m in self.monitors)

    @property
    def recoveries(self) -> int:
        return sum(m.tracker.recoveries for m in self.monitors)

    @property
    def time_in_warning(self) -> float:
        """Summed machine-seconds spent in WARNING across the rack."""
        return float(sum(m.tracker.time_in_warning for m in self.monitors))

    @property
    def time_in_critical(self) -> float:
        """Summed machine-seconds spent in CRITICAL across the rack."""
        return float(sum(m.tracker.time_in_critical for m in self.monitors))

    @property
    def worst_excursion(self) -> Optional[float]:
        """Hottest reading observed anywhere, °C (None if no samples)."""
        worsts = [
            m.tracker.worst_excursion
            for m in self.monitors
            if m.tracker.worst_excursion is not None
        ]
        return max(worsts) if worsts else None

    def machines_since_boot(self, state: HealthState) -> int:
        """How many machines have latched ``state`` since boot."""
        return sum(1 for m in self.monitors if state in m.tracker.since_boot)

    def events(self) -> List[AlertEvent]:
        """Every state change in the rack, time-ordered."""
        merged: List[AlertEvent] = []
        for monitor in self.monitors:
            merged.extend(monitor.tracker.events)
        merged.sort(key=lambda e: (e.time, e.machine))
        return merged

    # ------------------------------------------------------------------
    def summary(self, *, per_machine: bool = True) -> Dict[str, Any]:
        """JSON-safe health section for :class:`RunManifest`.

        ``config`` alone reproduces the monitoring setup: the rise
        thresholds and the absolute °C they pinned to, hysteresis,
        monitor period, sensor quantisation/noise, and the active
        controller's parameters when one is wired.
        """
        thresholds = self.params.thresholds(self.idle_mean)
        config: Dict[str, Any] = dict(self.params.to_dict())
        config["idle_mean_c"] = self.idle_mean
        config["thresholds"] = thresholds.to_dict()
        config["machines"] = len(self.monitors)
        if self.controller_info is not None:
            config["controller"] = self.controller_info
        summary: Dict[str, Any] = {
            "config": config,
            "totals": {
                "alerts": self.alerts,
                "warning_alerts": self.warning_alerts,
                "critical_alerts": self.critical_alerts,
                "recoveries": self.recoveries,
                "events": sum(len(m.tracker.events) for m in self.monitors),
                "time_in_warning_s": self.time_in_warning,
                "time_in_critical_s": self.time_in_critical,
                "worst_excursion_c": self.worst_excursion,
                "machines_warning_since_boot": self.machines_since_boot(
                    HealthState.WARNING
                ),
                "machines_critical_since_boot": self.machines_since_boot(
                    HealthState.CRITICAL
                ),
            },
        }
        if per_machine:
            summary["machines_detail"] = [m.summary() for m in self.monitors]
        return summary
