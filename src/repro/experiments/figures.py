"""One entry point per figure of the paper's evaluation (§3).

Each ``figN`` function runs the experiment on a supplied
:class:`~repro.experiments.config.ExperimentConfig` and returns a
result object whose ``render()`` reproduces the figure's content as
text (series and summary statistics).  The benchmark harness under
``benchmarks/`` wraps these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.pareto import (
    PowerLawFit,
    TradeoffPoint,
    crossover_reduction,
    fit_power_law,
    pareto_boundary,
)
from ..health import HealthParams
from ..instruments.stats import relative_reduction, throughput_reduction
from ..runtime import ParallelRunner
from ..units import MS
from ..workloads.cpuburn import FiniteCpuBurn
from ..workloads.mixes import build_hot_cool_mix
from ..workloads.webserver import QOS_GOOD, QOS_TOLERABLE, WebServer
from .config import ExperimentConfig
from .machine import Machine
from .reporting import format_series, format_table, percent
from .runner import resolve_duration, run_characterization
from .sweeps import (
    FIG3_LS_MS,
    FIG3_PS,
    FIG4_LS_MS,
    FIG4_PS,
    SweepResult,
    sweep_dimetrodon,
    sweep_tcc,
    sweep_vfs,
)


# ======================================================================
# Figure 1 — race-to-idle vs Dimetrodon power trace
# ======================================================================
@dataclass
class Fig1Result:
    """Power traces of a finite multi-threaded CPU-bound job."""

    times_race: np.ndarray
    power_race: np.ndarray
    times_dim: np.ndarray
    power_dim: np.ndarray
    completion_race: float
    completion_dim: float
    energy_race: float
    energy_dim: float
    power_levels: List[float]

    def render(self) -> str:
        lines = [
            "Figure 1: race-to-idle vs Dimetrodon power trace",
            f"completion: race-to-idle {self.completion_race:.2f}s, "
            f"Dimetrodon {self.completion_dim:.2f}s",
            f"energy over common window: race {self.energy_race:.0f}J, "
            f"Dimetrodon {self.energy_dim:.0f}J "
            f"(ratio {self.energy_dim / self.energy_race:.3f})",
            "package power levels (0..4 cores active): "
            + ", ".join(f"{level:.1f}W" for level in self.power_levels),
            format_series("race-to-idle P(t) [W]", self.times_race, self.power_race),
            format_series("dimetrodon  P(t) [W]", self.times_dim, self.power_dim),
        ]
        return "\n".join(lines)


def fig1_power_trace(
    config: ExperimentConfig,
    *,
    work_per_thread: float = 1.5,
    p: float = 0.5,
    idle_quantum: float = 0.100,
    sample_period: float = 0.020,
) -> Fig1Result:
    """Run the same finite 4-thread cpuburn with and without injection
    and return the sampled package power traces."""

    def run(inject: bool) -> Tuple[Machine, float]:
        machine = Machine(config)
        if inject:
            machine.control.set_global_policy(p, idle_quantum)
        threads = [
            machine.scheduler.spawn(FiniteCpuBurn(work_per_thread), name=f"burn-{i}")
            for i in range(config.num_cores)
        ]
        while any(t.alive for t in threads):
            machine.run(0.5)
        return machine, max(t.stats.exit_time for t in threads)

    race_machine, race_done = run(inject=False)
    dim_machine, dim_done = run(inject=True)
    # Idle out both machines to a common window for energy parity (the
    # run loop advances in chunks, so take the later of the two clocks).
    window = max(race_machine.now, dim_machine.now) + 0.2
    race_machine.run(window - race_machine.now)
    dim_machine.run(window - dim_machine.now)

    times_race, power_race = race_machine.powermeter.resample(sample_period, end=window)
    times_dim, power_dim = dim_machine.powermeter.resample(sample_period, end=window)

    # The staircase levels: package power with k of n cores active,
    # estimated at the run's typical temperature.
    temp = float(np.mean(dim_machine.core_temps))
    model = dim_machine.chip.power_model
    levels = [
        model.package_power_estimate(
            k, config.num_cores, temp, dim_machine.chip.operating_point
        )
        for k in range(config.num_cores + 1)
    ]
    return Fig1Result(
        times_race=times_race,
        power_race=power_race,
        times_dim=times_dim,
        power_dim=power_dim,
        completion_race=race_done,
        completion_dim=dim_done,
        energy_race=race_machine.energy(0.0, window),
        energy_dim=dim_machine.energy(0.0, window),
        power_levels=levels,
    )


# ======================================================================
# Figure 2 — temperature rise over time for different p (L = 100 ms)
# ======================================================================
@dataclass
class Fig2Result:
    """Mean-core temperature-rise time series per idle proportion."""

    idle_quantum: float
    series: Dict[float, Tuple[np.ndarray, np.ndarray]]
    final_rise: Dict[float, float]
    ripple_std: Dict[float, float]
    #: Per-p health-monitor summaries (alerts, dwell) — more injection
    #: should mean fewer thermal alerts; None entries when unmonitored.
    health: Dict[float, Dict[str, object]] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"Figure 2: core temperature rise over idle vs time "
            f"(L={self.idle_quantum * 1e3:.0f}ms)"
        ]
        rows = []
        for p in sorted(self.series):
            summary = self.health.get(p) or {}
            alerts = summary.get("alerts") or {}
            dwell = summary.get("dwell_s") or {}
            rows.append(
                (
                    p,
                    self.final_rise[p],
                    self.ripple_std[p],
                    int(alerts.get("warning", 0)) + int(alerts.get("critical", 0)),
                    float(dwell.get("critical", 0.0)),
                )
            )
        lines.append(
            format_table(
                ["p", "final rise [C]", "ripple std [C]", "alerts", "crit [s]"],
                rows,
            )
        )
        for p in sorted(self.series):
            times, rise = self.series[p]
            lines.append(format_series(f"p={p:g} rise(t)", times, rise))
        return "\n".join(lines)

    def health_payload(self) -> Dict[str, object]:
        """Per-p monitor summaries for the manifest's health section."""
        return {f"p={p:g}": self.health.get(p) for p in sorted(self.series)}


def fig2_temperature_timeseries(
    config: ExperimentConfig,
    *,
    ps: Sequence[float] = (0.0, 0.25, 0.5, 0.75),
    idle_quantum: float = 0.100,
    duration: Optional[float] = None,
    health_params: Optional[HealthParams] = None,
) -> Fig2Result:
    """cpuburn heating transients for several idle proportions.

    Every machine carries a thermal health monitor: the ``crit [s]``
    column shows injection's preventive effect — higher ``p`` shrinks
    time-in-critical toward zero (alert *counts* can rise with ``p``
    as the trace oscillates around the threshold instead of sitting
    above it).  ``health_params`` overrides the monitoring thresholds
    (the CLI's ``--health-*`` flags).
    """
    run_for = resolve_duration(duration, config)
    series: Dict[float, Tuple[np.ndarray, np.ndarray]] = {}
    final_rise: Dict[float, float] = {}
    ripple: Dict[float, float] = {}
    health: Dict[float, Dict[str, object]] = {}
    for p in ps:
        machine = Machine(config)
        monitor = machine.attach_health(health_params)
        if p > 0:
            machine.control.set_global_policy(p, idle_quantum)
        from .runner import make_cpu_workload

        for i in range(config.num_cores):
            machine.scheduler.spawn(make_cpu_workload("cpuburn"), name=f"burn-{i}")
        machine.run(run_for)
        monitor.stop()
        monitor.finalize()
        times = machine.templog.times
        rise = machine.templog.samples.mean(axis=1) - machine.idle_mean_temp
        series[p] = (times, rise)
        window = config.measure_window
        tail = rise[times >= times[-1] - window]
        final_rise[p] = float(tail.mean())
        ripple[p] = float(tail.std())
        health[p] = monitor.summary()
    return Fig2Result(
        idle_quantum=idle_quantum,
        series=series,
        final_rise=final_rise,
        ripple_std=ripple,
        health=health,
    )


# ======================================================================
# Figure 3 — efficiency vs idle quantum length
# ======================================================================
@dataclass
class Fig3Result:
    """Efficiency (temperature:throughput) over the (p, L) grid."""

    sweep: SweepResult
    efficiency: Dict[Tuple[float, float], float]  # (p, L_ms) -> ratio

    def curve(self, p: float) -> List[Tuple[float, float]]:
        pairs = [
            (l_ms, eff) for (pp, l_ms), eff in self.efficiency.items() if pp == p
        ]
        return sorted(pairs)

    def render(self) -> str:
        ps = sorted({p for p, _ in self.efficiency})
        ls = sorted({l for _, l in self.efficiency})
        rows = []
        for l_ms in ls:
            rows.append([l_ms] + [self.efficiency.get((p, l_ms), float("nan")) for p in ps])
        return format_table(
            ["L [ms]"] + [f"p={p:g}" for p in ps],
            rows,
            title="Figure 3: efficiency (temp reduction : throughput reduction)",
        )


def fig3_efficiency(
    config: ExperimentConfig,
    *,
    ps: Sequence[float] = FIG3_PS,
    ls_ms: Sequence[float] = FIG3_LS_MS,
    runner: Optional[ParallelRunner] = None,
) -> Fig3Result:
    sweep = sweep_dimetrodon(config, ps=ps, ls_ms=ls_ms, runner=runner)
    efficiency = {
        (pt.params["p"], pt.params["L_ms"]): pt.efficiency for pt in sweep.points
    }
    return Fig3Result(sweep=sweep, efficiency=efficiency)


# ======================================================================
# Figure 4 — technique comparison (Dimetrodon vs VFS vs p4tcc)
# ======================================================================
@dataclass
class Fig4Result:
    dimetrodon: SweepResult
    vfs: SweepResult
    tcc: SweepResult
    fit: PowerLawFit
    #: r where VFS overtakes Dimetrodon (paper: ≈0.30), None if never.
    crossover: Optional[float]

    def render(self) -> str:
        lines = ["Figure 4: wide-range sweeps vs other techniques"]
        for sweep in (self.dimetrodon, self.vfs, self.tcc):
            boundary = pareto_boundary(sweep.points)
            rows = [
                [
                    ", ".join(f"{k}={v:g}" for k, v in pt.params.items()),
                    percent(pt.temp_reduction),
                    percent(pt.throughput_reduction),
                    pt.efficiency,
                ]
                for pt in boundary
            ]
            lines.append(
                format_table(
                    ["config", "temp red.", "tput red.", "efficiency"],
                    rows,
                    title=f"{sweep.technique} pareto boundary",
                )
            )
        lines.append(f"dimetrodon fit: {self.fit.describe()}")
        if self.crossover is not None:
            lines.append(
                f"VFS overtakes Dimetrodon at r = {percent(self.crossover)} "
                "(paper: ~30%)"
            )
        else:
            lines.append("no Dimetrodon/VFS crossover in the overlapping range")
        return "\n".join(lines)


def fig4_technique_comparison(
    config: ExperimentConfig,
    *,
    ps: Sequence[float] = FIG4_PS,
    ls_ms: Sequence[float] = FIG4_LS_MS,
    runner: Optional[ParallelRunner] = None,
) -> Fig4Result:
    dim = sweep_dimetrodon(config, ps=ps, ls_ms=ls_ms, runner=runner)
    vfs = sweep_vfs(config, runner=runner)
    tcc = sweep_tcc(config, runner=runner)
    fit = fit_power_law(dim.points, r_max=0.95)
    crossover = crossover_reduction(dim.points, vfs.points)
    return Fig4Result(dimetrodon=dim, vfs=vfs, tcc=tcc, fit=fit, crossover=crossover)


# ======================================================================
# Figure 5 — per-thread vs global control
# ======================================================================
@dataclass
class Fig5Point:
    mode: str  # "per-thread" | "global"
    p: float
    idle_quantum: float
    temp_reduction: float
    cool_throughput: float  # relative to uninjected run


@dataclass
class Fig5Result:
    points: List[Fig5Point]
    baseline_rise: float

    def series(self, mode: str) -> List[Tuple[float, float]]:
        return sorted(
            (pt.temp_reduction, pt.cool_throughput)
            for pt in self.points
            if pt.mode == mode
        )

    def render(self) -> str:
        rows = [
            [pt.mode, pt.p, pt.idle_quantum * 1e3, percent(pt.temp_reduction), percent(pt.cool_throughput)]
            for pt in sorted(self.points, key=lambda q: (q.mode, q.temp_reduction))
        ]
        return format_table(
            ["mode", "p", "L [ms]", "temp red.", "cool throughput"],
            rows,
            title="Figure 5: global vs thread-specific control "
            f"(baseline rise {self.baseline_rise:.1f}C)",
        )


def fig5_per_thread_control(
    config: ExperimentConfig,
    *,
    configs: Sequence[Tuple[float, float]] = (
        (0.25, 0.010),
        (0.5, 0.010),
        (0.5, 0.050),
        (0.75, 0.050),
        (0.75, 0.100),
        (0.9, 0.100),
    ),
    burn_time: Optional[float] = None,
    sleep_time: Optional[float] = None,
    duration: Optional[float] = None,
) -> Fig5Result:
    """The §3.6 demonstration: a duty-cycled "cool" process co-located
    with four hot calculix instances, under global vs per-thread policy."""
    run_for = resolve_duration(duration, config)
    # Scale the paper's 6 s / 60 s duty cycle to the run length so a
    # handful of cool iterations always fit.  The sleep fraction is
    # compressed relative to the paper's 1:10 so that the global
    # policy's per-iteration slowdown is visible within a short run.
    scale = run_for / 300.0
    burn = burn_time if burn_time is not None else max(6.0 * scale, 1.0)
    sleep = sleep_time if sleep_time is not None else max(24.0 * scale, 4.0 * burn)

    def run_mix(mode: str, p: float, idle_quantum: float):
        machine = Machine(config)
        mix = build_hot_cool_mix(
            machine.scheduler, burn_time=burn, sleep_time=sleep
        )
        if p > 0:
            if mode == "global":
                machine.control.set_global_policy(p, idle_quantum)
            else:
                for thread in mix.hot_threads:
                    machine.control.set_thread_policy(thread, p, idle_quantum)
        machine.run(run_for)
        return machine, mix

    base_machine, base_mix = run_mix("global", 0.0, 0.010)
    base_temp = base_machine.mean_core_temp_over_window()
    base_cool_work = base_mix.cool_thread.stats.work_done
    baseline_rise = base_temp - base_machine.idle_mean_temp

    points: List[Fig5Point] = []
    for mode in ("per-thread", "global"):
        for p, idle_quantum in configs:
            machine, mix = run_mix(mode, p, idle_quantum)
            temp = machine.mean_core_temp_over_window()
            points.append(
                Fig5Point(
                    mode=mode,
                    p=p,
                    idle_quantum=idle_quantum,
                    temp_reduction=relative_reduction(
                        base_temp, temp, base_machine.idle_mean_temp
                    ),
                    cool_throughput=mix.cool_thread.stats.work_done / base_cool_work,
                )
            )
    return Fig5Result(points=points, baseline_rise=baseline_rise)


# ======================================================================
# Figure 6 — web server QoS vs temperature reduction
# ======================================================================
@dataclass
class Fig6Point:
    p: float
    idle_quantum: float
    temp_reduction: float
    qos_good: float  # relative to baseline QoS
    qos_tolerable: float
    mean_response: float


@dataclass
class Fig6Result:
    points: List[Fig6Point]
    baseline_rise: float
    baseline_good: float
    baseline_tolerable: float
    offered_load_per_core: float

    def render(self) -> str:
        rows = [
            [
                pt.p,
                pt.idle_quantum * 1e3,
                percent(pt.temp_reduction),
                percent(pt.qos_good),
                percent(pt.qos_tolerable),
                pt.mean_response,
            ]
            for pt in sorted(self.points, key=lambda q: q.temp_reduction)
        ]
        title = (
            "Figure 6: web workload QoS vs temperature reduction "
            f"(baseline rise {self.baseline_rise:.1f}C, "
            f"load/core {percent(self.offered_load_per_core)})"
        )
        return format_table(
            ["p", "L [ms]", "temp red.", "QoS good", "QoS tolerable", "mean resp [s]"],
            rows,
            title=title,
        )


def fig6_webserver_qos(
    config: ExperimentConfig,
    *,
    configs: Sequence[Tuple[float, float]] = (
        (0.25, 0.025),
        (0.5, 0.025),
        (0.75, 0.025),
        (0.9, 0.025),
        (0.5, 0.050),
        (0.65, 0.050),
        (0.75, 0.050),
        (0.5, 0.100),
        (0.65, 0.100),
    ),
    duration: Optional[float] = None,
    warmup: float = 5.0,
) -> Fig6Result:
    """SPECWeb-like QoS under injection (§3.7)."""
    run_for = resolve_duration(duration, config)

    def run_web(p: float, idle_quantum: float):
        machine = Machine(config)
        server = WebServer(machine.scheduler, machine.rng.stream("web"))
        if p > 0:
            machine.control.set_global_policy(p, idle_quantum)
        machine.run(run_for)
        good = server.log.qos_fraction(QOS_GOOD, start=warmup, end=run_for - QOS_TOLERABLE)
        tolerable = server.log.qos_fraction(
            QOS_TOLERABLE, start=warmup, end=run_for - QOS_TOLERABLE
        )
        mean_resp = server.log.mean_response_time(start=warmup, end=run_for - QOS_TOLERABLE)
        return machine, server, good, tolerable, mean_resp

    base_machine, base_server, base_good, base_tol, _ = run_web(0.0, 0.1)
    base_temp = base_machine.mean_core_temp_over_window()
    baseline_rise = base_temp - base_machine.idle_mean_temp

    points: List[Fig6Point] = []
    for p, idle_quantum in configs:
        machine, server, good, tolerable, mean_resp = run_web(p, idle_quantum)
        temp = machine.mean_core_temp_over_window()
        points.append(
            Fig6Point(
                p=p,
                idle_quantum=idle_quantum,
                temp_reduction=relative_reduction(
                    base_temp, temp, base_machine.idle_mean_temp
                ),
                qos_good=good / base_good if base_good > 0 else 0.0,
                qos_tolerable=tolerable / base_tol if base_tol > 0 else 0.0,
                mean_response=mean_resp,
            )
        )
    return Fig6Result(
        points=points,
        baseline_rise=baseline_rise,
        baseline_good=base_good,
        baseline_tolerable=base_tol,
        offered_load_per_core=base_server.offered_load_per_core,
    )
