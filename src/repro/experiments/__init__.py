"""Experiment harness: configs, the assembled machine, runs and sweeps."""

from .config import ExperimentConfig, default_config, fast_config, full_config
from .figures import (
    Fig1Result,
    Fig2Result,
    Fig3Result,
    Fig4Result,
    Fig5Result,
    Fig6Result,
    fig1_power_trace,
    fig2_temperature_timeseries,
    fig3_efficiency,
    fig4_technique_comparison,
    fig5_per_thread_control,
    fig6_webserver_qos,
)
from .machine import Machine
from .runner import (
    CharacterizationResult,
    FiniteRunResult,
    resolve_duration,
    run_characterization,
    run_finite_cpuburn,
)
from .sweeps import (
    SmokeResult,
    SweepResult,
    smoke_sweep,
    sweep_dimetrodon,
    sweep_tcc,
    sweep_vfs,
)
from .tables import (
    EnergyValidationResult,
    Table1Result,
    ThroughputValidationResult,
    table1_spec_workloads,
    validate_energy_model,
    validate_throughput_model,
)

__all__ = [
    "CharacterizationResult",
    "EnergyValidationResult",
    "ExperimentConfig",
    "Fig1Result",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "FiniteRunResult",
    "Machine",
    "SmokeResult",
    "SweepResult",
    "Table1Result",
    "ThroughputValidationResult",
    "default_config",
    "fast_config",
    "fig1_power_trace",
    "fig2_temperature_timeseries",
    "fig3_efficiency",
    "fig4_technique_comparison",
    "fig5_per_thread_control",
    "fig6_webserver_qos",
    "full_config",
    "resolve_duration",
    "run_characterization",
    "run_finite_cpuburn",
    "smoke_sweep",
    "sweep_dimetrodon",
    "sweep_tcc",
    "sweep_vfs",
    "table1_spec_workloads",
    "validate_energy_model",
    "validate_throughput_model",
]
