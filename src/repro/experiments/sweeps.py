"""Parameter sweeps: (p, L) grids, VFS ladders, TCC ladders.

These produce the clouds of trade-off points from which Figures 3 and 4
extract Pareto boundaries and §3.4/Table 1 fit power laws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.pareto import TradeoffPoint
from ..cpu.dvfs import OperatingPoint
from ..cpu.tcc import TccSetting, setpoints
from ..instruments.stats import relative_reduction, throughput_reduction
from ..units import MS
from .config import ExperimentConfig
from .runner import CharacterizationResult, run_characterization

#: Figure 3's grid: idle proportions and quanta lengths.
FIG3_PS = (0.1, 0.25, 0.5, 0.75)
FIG3_LS_MS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0)

#: Figure 4's wide grid (coarser per-axis, broader coverage).
FIG4_PS = (0.05, 0.1, 0.25, 0.4, 0.5, 0.65, 0.75, 0.9)
FIG4_LS_MS = (1.0, 5.0, 10.0, 25.0, 50.0, 100.0)


@dataclass
class SweepResult:
    """A baseline plus a cloud of trade-off points."""

    technique: str
    workload: str
    baseline: CharacterizationResult
    points: List[TradeoffPoint] = field(default_factory=list)
    #: Raw per-configuration results, keyed like the point params.
    runs: List[CharacterizationResult] = field(default_factory=list)

    def tradeoff(self, run: CharacterizationResult, params: Dict[str, float]) -> TradeoffPoint:
        """Convert a run into the paper's (r, T) coordinates."""
        r = relative_reduction(
            self.baseline.mean_temp, run.mean_temp, self.baseline.idle_temp
        )
        t = throughput_reduction(self.baseline.work, run.work)
        return TradeoffPoint(temp_reduction=r, throughput_reduction=t, params=params)

    def add(self, run: CharacterizationResult, params: Dict[str, float]) -> TradeoffPoint:
        point = self.tradeoff(run, params)
        self.points.append(point)
        self.runs.append(run)
        return point


def sweep_dimetrodon(
    config: ExperimentConfig,
    *,
    workload: str = "cpuburn",
    ps: Sequence[float] = FIG3_PS,
    ls_ms: Sequence[float] = FIG3_LS_MS,
    deterministic: bool = False,
    duration: Optional[float] = None,
) -> SweepResult:
    """Sweep idle-injection (p, L) over a grid."""
    baseline = run_characterization(config, workload=workload, duration=duration)
    sweep = SweepResult(technique="dimetrodon", workload=workload, baseline=baseline)
    for p in ps:
        for l_ms in ls_ms:
            run = run_characterization(
                config,
                workload=workload,
                p=p,
                idle_quantum=l_ms * MS,
                deterministic=deterministic,
                duration=duration,
            )
            sweep.add(run, {"p": p, "L_ms": l_ms})
    return sweep


def sweep_vfs(
    config: ExperimentConfig,
    *,
    workload: str = "cpuburn",
    points: Optional[Sequence[OperatingPoint]] = None,
    duration: Optional[float] = None,
) -> SweepResult:
    """Sweep static voltage/frequency setpoints (Figure 4's VFS)."""
    baseline = run_characterization(config, workload=workload, duration=duration)
    sweep = SweepResult(technique="vfs", workload=workload, baseline=baseline)
    from ..cpu.dvfs import xeon_e5520_table

    table_points = points if points is not None else list(xeon_e5520_table())
    for point in table_points:
        run = run_characterization(
            config, workload=workload, operating_point=point, duration=duration
        )
        sweep.add(run, {"freq_ghz": point.frequency / 1e9, "voltage": point.voltage})
    return sweep


def sweep_tcc(
    config: ExperimentConfig,
    *,
    workload: str = "cpuburn",
    duties: Optional[Sequence[TccSetting]] = None,
    duration: Optional[float] = None,
) -> SweepResult:
    """Sweep thermal-control-circuit duty setpoints (Figure 4's p4tcc)."""
    baseline = run_characterization(config, workload=workload, duration=duration)
    sweep = SweepResult(technique="p4tcc", workload=workload, baseline=baseline)
    settings = duties if duties is not None else setpoints(8)[:-1]
    for setting in settings:
        run = run_characterization(
            config, workload=workload, tcc=setting, duration=duration
        )
        sweep.add(run, {"duty": setting.duty})
    return sweep
