"""Parameter sweeps: (p, L) grids, VFS ladders, TCC ladders.

These produce the clouds of trade-off points from which Figures 3 and 4
extract Pareto boundaries and §3.4/Table 1 fit power laws.

Every run in a sweep is independent (each builds its own machine from
the same config), so the sweeps fan out through a
:class:`~repro.runtime.ParallelRunner`: pass ``runner=`` to execute on
a worker pool and/or serve repeat runs from an on-disk cache.  With no
runner the sweep executes serially in-process, exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.pareto import TradeoffPoint
from ..errors import ExecutionError
from ..cpu.dvfs import OperatingPoint
from ..cpu.tcc import TccSetting, setpoints
from ..instruments.stats import relative_reduction, throughput_reduction
from ..runtime import ParallelRunner, RunSpec, characterization_spec
from ..units import MS
from .config import ExperimentConfig
from .reporting import format_table
from .runner import CharacterizationResult

#: Figure 3's grid: idle proportions and quanta lengths.
FIG3_PS = (0.1, 0.25, 0.5, 0.75)
FIG3_LS_MS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0)

#: Figure 4's wide grid (coarser per-axis, broader coverage).
FIG4_PS = (0.05, 0.1, 0.25, 0.4, 0.5, 0.65, 0.75, 0.9)
FIG4_LS_MS = (1.0, 5.0, 10.0, 25.0, 50.0, 100.0)


@dataclass
class SweepResult:
    """A baseline plus a cloud of trade-off points."""

    technique: str
    workload: str
    baseline: CharacterizationResult
    points: List[TradeoffPoint] = field(default_factory=list)
    #: Raw per-configuration results, keyed like the point params.
    runs: List[CharacterizationResult] = field(default_factory=list)
    #: Params of grid runs abandoned under keep-going (no result).
    missing: List[Dict[str, float]] = field(default_factory=list)

    def tradeoff(self, run: CharacterizationResult, params: Dict[str, float]) -> TradeoffPoint:
        """Convert a run into the paper's (r, T) coordinates."""
        r = relative_reduction(
            self.baseline.mean_temp, run.mean_temp, self.baseline.idle_temp
        )
        t = throughput_reduction(self.baseline.work, run.work)
        return TradeoffPoint(temp_reduction=r, throughput_reduction=t, params=params)

    def add(self, run: CharacterizationResult, params: Dict[str, float]) -> TradeoffPoint:
        point = self.tradeoff(run, params)
        self.points.append(point)
        self.runs.append(run)
        return point


def _run_sweep(
    technique: str,
    workload: str,
    specs: List[RunSpec],
    param_grid: List[Dict[str, float]],
    runner: Optional[ParallelRunner],
) -> SweepResult:
    """Execute baseline + grid as one batch and assemble the result.

    ``specs[0]`` is the baseline; ``specs[1:]`` pair with ``param_grid``.
    The batch keeps submission order, so results land exactly where the
    old serial loop put them.

    A keep-going runner may hand back ``None`` for abandoned runs:
    grid holes are recorded in :attr:`SweepResult.missing` and the
    sweep degrades gracefully, but a missing *baseline* is fatal —
    every trade-off point is relative to it.
    """
    runner = runner if runner is not None else ParallelRunner()
    results = runner.run(specs)
    if results[0] is None:
        raise ExecutionError(
            f"the {technique}/{workload} baseline run failed; a sweep "
            "cannot degrade past its baseline (see the failure report)"
        )
    sweep = SweepResult(technique=technique, workload=workload, baseline=results[0])
    for run, params in zip(results[1:], param_grid):
        if run is None:
            sweep.missing.append(params)
        else:
            sweep.add(run, params)
    return sweep


def sweep_dimetrodon(
    config: ExperimentConfig,
    *,
    workload: str = "cpuburn",
    ps: Sequence[float] = FIG3_PS,
    ls_ms: Sequence[float] = FIG3_LS_MS,
    deterministic: bool = False,
    duration: Optional[float] = None,
    runner: Optional[ParallelRunner] = None,
) -> SweepResult:
    """Sweep idle-injection (p, L) over a grid."""
    specs = [characterization_spec(config, workload=workload, duration=duration)]
    grid: List[Dict[str, float]] = []
    for p in ps:
        for l_ms in ls_ms:
            specs.append(
                characterization_spec(
                    config,
                    workload=workload,
                    p=p,
                    idle_quantum=l_ms * MS,
                    deterministic=deterministic,
                    duration=duration,
                )
            )
            grid.append({"p": p, "L_ms": l_ms})
    return _run_sweep("dimetrodon", workload, specs, grid, runner)


def sweep_vfs(
    config: ExperimentConfig,
    *,
    workload: str = "cpuburn",
    points: Optional[Sequence[OperatingPoint]] = None,
    duration: Optional[float] = None,
    runner: Optional[ParallelRunner] = None,
) -> SweepResult:
    """Sweep static voltage/frequency setpoints (Figure 4's VFS)."""
    from ..cpu.dvfs import xeon_e5520_table

    table_points = points if points is not None else list(xeon_e5520_table())
    specs = [characterization_spec(config, workload=workload, duration=duration)]
    grid: List[Dict[str, float]] = []
    for point in table_points:
        specs.append(
            characterization_spec(
                config, workload=workload, operating_point=point, duration=duration
            )
        )
        grid.append({"freq_ghz": point.frequency / 1e9, "voltage": point.voltage})
    return _run_sweep("vfs", workload, specs, grid, runner)


def sweep_tcc(
    config: ExperimentConfig,
    *,
    workload: str = "cpuburn",
    duties: Optional[Sequence[TccSetting]] = None,
    duration: Optional[float] = None,
    runner: Optional[ParallelRunner] = None,
) -> SweepResult:
    """Sweep thermal-control-circuit duty setpoints (Figure 4's p4tcc)."""
    settings = duties if duties is not None else setpoints(8)[:-1]
    specs = [characterization_spec(config, workload=workload, duration=duration)]
    grid: List[Dict[str, float]] = []
    for setting in settings:
        specs.append(
            characterization_spec(
                config, workload=workload, tcc=setting, duration=duration
            )
        )
        grid.append({"duty": setting.duty})
    return _run_sweep("p4tcc", workload, specs, grid, runner)


# ----------------------------------------------------------------------
# CI smoke sweep
# ----------------------------------------------------------------------
@dataclass
class SmokeResult:
    """A deliberately tiny sweep used to exercise the batch runtime
    end-to-end (CLI ``smoke`` experiment; CI runs it with ``--jobs 2``)."""

    sweep: SweepResult

    def render(self) -> str:
        rows = [
            [pt.params["p"], pt.params["L_ms"], pt.temp_reduction, pt.throughput_reduction]
            for pt in self.sweep.points
        ]
        return format_table(
            ["p", "L [ms]", "temp red.", "tput red."],
            rows,
            title="Smoke sweep: tiny (p, L) grid through the batch runtime "
            f"(baseline rise {self.sweep.baseline.temp_rise:.1f}C)",
        )


def smoke_sweep(
    config: ExperimentConfig,
    *,
    runner: Optional[ParallelRunner] = None,
) -> SmokeResult:
    """A 5-run Dimetrodon sweep with 10 s-simulated runs (~seconds of
    wall clock): enough to verify pool execution and caching, far too
    short to measure steady-state physics."""
    sweep = sweep_dimetrodon(
        config, ps=(0.25, 0.5), ls_ms=(5.0, 25.0), duration=10.0, runner=runner
    )
    return SmokeResult(sweep=sweep)
