"""Single-configuration experiment runs.

The paper's basic measurement (§3.4) is: run a workload on all cores
under a static (p, L) policy for 300 s, then report the mean core
temperature over the last 30 s (relative to the idle baseline) and the
throughput (relative to the unconstrained run).  This module implements
that run and its finite-work variant used for model validation (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.injector import IdleMode
from ..cpu.dvfs import OperatingPoint
from ..cpu.tcc import TccSetting
from ..errors import ConfigurationError
from ..sched.thread import Thread
from ..workloads.cpuburn import CpuBurn, FiniteCpuBurn
from ..workloads.spec import SpecWorkload
from .config import ExperimentConfig
from .machine import Machine


def make_cpu_workload(name: str):
    """Factory for all-core CPU-bound workloads by name."""
    if name == "cpuburn":
        return CpuBurn()
    return SpecWorkload(name)


def resolve_duration(duration: Optional[float], config: ExperimentConfig) -> float:
    """An explicit run duration, or the config's default when None.

    A zero or negative duration is a configuration mistake, not a
    request for the default — reject it rather than silently running
    for ``config.characterization_duration``.
    """
    if duration is None:
        return config.characterization_duration
    if duration <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    return float(duration)


@dataclass
class CharacterizationResult:
    """Outcome of one static-policy characterisation run."""

    workload: str
    p: float
    idle_quantum: float
    duration: float
    #: Mean core temperature over the trailing measurement window, °C.
    mean_temp: float
    #: Mean core temperature rise over the idle baseline, °C.
    temp_rise: float
    #: Mean per-core idle (baseline) temperature, °C.
    idle_temp: float
    #: Total useful work completed, CPU-seconds.
    work: float
    #: Package energy over the run, J.
    energy: float
    #: Extra per-run details (injection stats, settings).
    details: Dict[str, float] = field(default_factory=dict)


def run_characterization(
    config: ExperimentConfig,
    *,
    workload: str = "cpuburn",
    p: float = 0.0,
    idle_quantum: float = 0.025,
    duration: Optional[float] = None,
    deterministic: bool = False,
    idle_mode: IdleMode = IdleMode.HALT,
    operating_point: Optional[OperatingPoint] = None,
    tcc: Optional[TccSetting] = None,
) -> CharacterizationResult:
    """Run ``num_cores`` instances of a CPU-bound workload under a
    static policy and measure the §3.4 metrics."""
    run_for = resolve_duration(duration, config)
    machine = Machine(config, idle_mode=idle_mode)
    if operating_point is not None:
        machine.chip.set_operating_point(operating_point)
    if tcc is not None:
        machine.chip.set_tcc(tcc)
    if p > 0:
        machine.control.set_global_policy(p, idle_quantum, deterministic=deterministic)

    for i in range(config.num_cores):
        machine.scheduler.spawn(make_cpu_workload(workload), name=f"{workload}-{i}")

    machine.run(run_for)

    mean_temp = machine.mean_core_temp_over_window()
    return CharacterizationResult(
        workload=workload,
        p=p,
        idle_quantum=idle_quantum,
        duration=run_for,
        mean_temp=mean_temp,
        temp_rise=mean_temp - machine.idle_mean_temp,
        idle_temp=machine.idle_mean_temp,
        work=machine.total_work_done(),
        energy=machine.energy(),
        details={
            "injected_quanta": float(machine.scheduler.stats.injected_quanta),
            "dispatches": float(machine.scheduler.stats.dispatches),
            "injection_fraction": machine.injector.stats.injection_fraction,
        },
    )


@dataclass
class FiniteRunResult:
    """Outcome of a run-to-completion experiment (model validation)."""

    p: float
    idle_quantum: float
    total_cpu: float
    #: Per-thread completion times (start -> exit), s.
    runtimes: List[float]
    #: Package energy over the measured window, J.
    energy: float
    #: Wall-clock window the energy was measured over, s.
    window: float
    #: Mean times each thread was dispatched (the model's S).
    mean_schedules: float

    @property
    def mean_runtime(self) -> float:
        return float(np.mean(self.runtimes))


def run_finite_cpuburn(
    config: ExperimentConfig,
    *,
    total_cpu: float,
    p: float = 0.0,
    idle_quantum: float = 0.050,
    deterministic: bool = False,
    window: Optional[float] = None,
    max_duration: float = 3600.0,
) -> FiniteRunResult:
    """Run one finite cpuburn per core to completion.

    ``window``: if given, energy is measured over exactly this window
    (the §3.3 methodology compares equal windows across policies);
    otherwise the window runs to the last thread exit.
    """
    if total_cpu <= 0:
        raise ConfigurationError("total_cpu must be positive")
    machine = Machine(config)
    if p > 0:
        machine.control.set_global_policy(p, idle_quantum, deterministic=deterministic)

    threads: List[Thread] = []
    for i in range(config.num_cores):
        threads.append(
            machine.scheduler.spawn(FiniteCpuBurn(total_cpu), name=f"burn-{i}")
        )

    # Run until every thread exits (in chunks so instruments keep pace).
    while any(t.alive for t in threads):
        if machine.now > max_duration:
            raise ConfigurationError(
                f"finite run did not complete within {max_duration}s"
            )
        machine.run(1.0)

    finish = max(t.stats.exit_time for t in threads)
    measure_window = window if window is not None else finish
    if window is not None and machine.now < window:
        machine.run(window - machine.now)  # idle tail for race-to-idle
    energy = machine.energy(0.0, measure_window)

    runtimes = [t.stats.exit_time for t in threads]
    mean_schedules = float(np.mean([t.stats.scheduled_count for t in threads]))
    return FiniteRunResult(
        p=p,
        idle_quantum=idle_quantum,
        total_cpu=total_cpu,
        runtimes=runtimes,
        energy=energy,
        window=measure_window,
        mean_schedules=mean_schedules,
    )
