"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures
and tables report, so a reader can compare shapes side by side without
a plotting stack.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..errors import AnalysisError


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Fixed-width text table.

    Every row must have exactly one cell per header; a mismatched row
    raises :class:`AnalysisError` naming it, instead of the IndexError
    an over-wide row used to hit during width computation.
    """
    str_rows: List[List[str]] = []
    for row in rows:
        row = list(row)
        if len(row) != len(headers):
            raise AnalysisError(
                f"table row has {len(row)} cells but there are "
                f"{len(headers)} headers: {row!r}"
            )
        str_rows.append([_cell(value) for value in row])
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        return f"{value:.3f}"
    return str(value)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], *, max_points: int = 24
) -> str:
    """A compact one-line-per-point series rendering, downsampled."""
    n = len(xs)
    if n == 0:
        return f"{name}: (empty)"
    step = max(1, n // max_points)
    pairs = [f"({xs[i]:.3g}, {ys[i]:.3g})" for i in range(0, n, step)]
    return f"{name}: " + " ".join(pairs)


def percent(value: float) -> str:
    return f"{100.0 * value:.1f}%"


def format_failure_report(report) -> str:
    """Render a :class:`~repro.runtime.FailureReport` as a table.

    One row per failed attempt — recovered retries and terminal
    abandonments alike — so a chaos run's output names exactly the
    faults that fired and what became of each.
    """
    if not report:
        return "failure report: no failed attempts"
    rows = [
        [
            f.index,
            f.kind,
            f.error_type,
            f.classification,
            f.attempt,
            "recovered" if f.recovered else "ABANDONED",
        ]
        for f in report.failures
    ]
    title = (
        f"Failure report: {len(report.failures)} failed attempt(s), "
        f"{len(report.fatal)} run(s) abandoned"
    )
    return format_table(
        ["run", "kind", "error", "class", "attempt", "outcome"], rows, title=title
    )
