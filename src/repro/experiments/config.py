"""Experiment configuration: the simulated testbed and run durations.

Two presets are provided:

- :func:`full_config` — paper-faithful timing: ~300 s characterisation
  runs with the real heatsink time constant.  Used to produce the
  numbers in EXPERIMENTS.md when time permits.
- :func:`fast_config` — compressed thermal transients (see
  :func:`repro.thermal.params.fast`) and proportionally shorter runs;
  steady-state physics identical.  This is what the benchmark suite
  runs by default so the whole evaluation regenerates in minutes.

Set the environment variable ``REPRO_FULL=1`` to make the benchmark
harness use the full configuration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

from ..cpu.cstates import CStateParams
from ..cpu.power import PowerParams
from ..thermal import params as thermal_params
from ..thermal.params import ThermalParams


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to build a reproducible testbed."""

    seed: int = 0
    num_cores: int = 4
    #: Hardware threads per core.  The paper disables SMT (§3.2); the
    #: SMT extension benches set this to 2.
    smt: int = 1
    thermal: ThermalParams = field(default_factory=thermal_params.default)
    power: PowerParams = field(default_factory=PowerParams)
    cstates: CStateParams = field(default_factory=CStateParams)
    #: Platform supports the C1E low-power state (§3.2); ablatable.
    c1e_enabled: bool = True
    #: Scheduler timeslice, s (4.4BSD: fixed 100 ms).
    quantum: float = 0.100
    #: Context switch cost, s.
    context_switch_cost: float = 30e-6
    #: Temperature sampling period, s.
    temp_sample_period: float = 0.5
    #: Use coretemp-like quantised/noisy sensors instead of ideal ones.
    noisy_sensors: bool = False
    #: Clamp gain error std-dev for the power meter (paper: ~3.5 %).
    clamp_gain_error: float = 0.0
    #: Runqueue discipline: "bsd" (the paper's modified 4.4BSD MLFQ) or
    #: "ule" (per-CPU queues with stealing — the §3.1 footnote's
    #: "the mechanism generalizes to ULE").
    scheduler_queue: str = "bsd"

    #: Characterisation run length, s (paper: 300 s of cpuburn).
    characterization_duration: float = 300.0
    #: Trailing measurement window, s (paper: last 30 s).
    measure_window: float = 30.0

    def with_seed(self, seed: int) -> "ExperimentConfig":
        return replace(self, seed=seed)

    def scaled(self, **kwargs) -> "ExperimentConfig":
        """Copy with overrides (a thin ``dataclasses.replace`` wrapper)."""
        return replace(self, **kwargs)


def full_config(seed: int = 0) -> ExperimentConfig:
    """Paper-faithful timing (slow: ~300 s simulated per run)."""
    return ExperimentConfig(seed=seed)


def fast_config(seed: int = 0) -> ExperimentConfig:
    """Compressed transients for CI-speed benches (~80 s per run)."""
    return ExperimentConfig(
        seed=seed,
        thermal=thermal_params.fast(),
        characterization_duration=100.0,
        measure_window=15.0,
    )


def default_config(seed: int = 0, *, env: Optional[dict] = None) -> ExperimentConfig:
    """fast_config unless ``REPRO_FULL=1`` is set in the environment."""
    environment = os.environ if env is None else env
    if environment.get("REPRO_FULL", "").strip() in {"1", "true", "yes"}:
        return full_config(seed)
    return fast_config(seed)
