"""The assembled testbed: chip + thermal + scheduler + instruments.

A :class:`Machine` is the simulated equivalent of the paper's 1U server
(§3.2).  It wires the discrete-event simulator to the physics: every
time the simulated clock advances, the thermal network is integrated
over the elapsed interval with the chip's current per-core power state,
splitting at C-state promotion instants so idle power is time-accurate.

The machine starts from *thermal equilibrium at idle* — the paper's
baseline "idle temperature" — so temperature-rise metrics are
well-defined from t = 0.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.injector import IdleInjector, IdleMode
from ..cpu.chip import Chip
from ..errors import ConfigurationError
from ..health import HealthMonitor, HealthParams
from ..instruments.powermeter import PowerMeter
from ..instruments.templog import TemperatureLog
from ..sched.scheduler import Scheduler
from ..sched.syscalls import DimetrodonControl
from ..sim.engine import Simulator
from ..sim.rng import RngRegistry
from ..thermal.floorplan import build_network
from ..thermal.rcnetwork import ThermalIntegrator
from ..thermal.sensors import SensorBank
from .config import ExperimentConfig


class Machine:
    """A fully wired simulated server."""

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        *,
        idle_mode: IdleMode = IdleMode.HALT,
        co_schedule_smt: bool = False,
        fast_physics: bool = True,
    ):
        self.config = config or ExperimentConfig()
        cfg = self.config
        #: Integrate thermals via the fused vectorized kernel (default)
        #: or the scalar power-callback reference path.  The two are
        #: numerically equivalent (tests pin end-to-end agreement to
        #: 1e-9 °C); the scalar path exists as the oracle.
        self.fast_physics = fast_physics

        self.sim = Simulator()
        self.rng = RngRegistry(cfg.seed)
        self.chip = Chip(
            cfg.power,
            num_cores=cfg.num_cores,
            smt=cfg.smt,
            cstate_params=cfg.cstates,
            c1e_enabled=cfg.c1e_enabled,
        )
        self.network = build_network(cfg.thermal, cfg.num_cores)

        # --- idle-equilibrium initial condition -----------------------
        for core in self.chip.cores:
            core.set_idle(-1e6)  # long-idle: deep state from the start
        self.integrator = ThermalIntegrator(
            self.network, max_substep=cfg.thermal.max_substep
        )
        _, idle_power_fn = self.chip.power_function(time=0.0)
        self.integrator.settle(idle_power_fn)
        #: Per-core idle temperatures — the paper's baseline, °C.
        self.idle_core_temps = self.integrator.temps[: cfg.num_cores].copy()

        # --- OS and Dimetrodon ----------------------------------------
        self.injector = IdleInjector(mode=idle_mode, co_schedule_smt=co_schedule_smt)
        if cfg.scheduler_queue == "ule":
            from ..sched.ule import UleRunqueue

            runqueue = UleRunqueue(num_cores=cfg.num_cores)
        elif cfg.scheduler_queue == "bsd":
            runqueue = None  # Scheduler builds the default 4.4BSD MLFQ
        else:
            raise ConfigurationError(
                f"unknown scheduler_queue {cfg.scheduler_queue!r} (bsd|ule)"
            )
        self.scheduler = Scheduler(
            self.sim,
            self.chip,
            quantum=cfg.quantum,
            context_switch_cost=cfg.context_switch_cost,
            injector=self.injector,
            runqueue=runqueue,
        )
        self.control = DimetrodonControl(self.scheduler, rng=self.rng.stream("inject"))

        # --- instruments ----------------------------------------------
        meter_rng = self.rng.stream("clamp") if cfg.clamp_gain_error > 0 else None
        self.powermeter = PowerMeter(
            clamp_gain_error=cfg.clamp_gain_error, rng=meter_rng
        )
        core_nodes = list(range(cfg.num_cores))
        if cfg.noisy_sensors:
            self.sensors = SensorBank.coretemp(core_nodes, self.rng.stream("sensors"))
        else:
            self.sensors = SensorBank.ideal(core_nodes)
        self.templog = TemperatureLog(
            self.sim,
            lambda: self.sensors.read(self.integrator.temps),
            period=cfg.temp_sample_period,
            num_cores=cfg.num_cores,
        )

        #: Optional thermal health monitor (see :meth:`attach_health`).
        self.health: Optional[HealthMonitor] = None

        self.sim.add_advance_listener(self._advance_physics)
        self.scheduler.start()

    # ------------------------------------------------------------------
    # Health monitoring
    # ------------------------------------------------------------------
    def attach_health(
        self, params: Optional[HealthParams] = None
    ) -> HealthMonitor:
        """Attach a thermal health monitor to this machine.

        The monitor samples through its own quantised (optionally
        noisy) :class:`~repro.thermal.sensors.SensorBank` — never the
        true integrator state — and classifies against thresholds
        pinned to this machine's idle baseline.  Call once; the monitor
        is also exposed as :attr:`health`.
        """
        if self.health is not None:
            raise ConfigurationError("health monitor already attached")
        params = params or HealthParams()
        cfg = self.config
        core_nodes = list(range(cfg.num_cores))
        rng = self.rng.stream("health-sensors") if params.noisy else None
        self.health = HealthMonitor(
            self.sim,
            params.sensor_bank(core_nodes, rng),
            lambda: self.integrator.temps,
            thresholds=params.thresholds(self.idle_mean_temp),
            period=params.period,
        )
        return self.health

    # ------------------------------------------------------------------
    # Physics co-simulation
    # ------------------------------------------------------------------
    def _advance_physics(self, t0: float, t1: float) -> None:
        """Integrate thermals over [t0, t1], splitting at C-state edges."""
        chip = self.chip
        integrator = self.integrator
        powermeter = self.powermeter
        edges = [t0] + chip.cstate_breakpoints(t0, t1) + [t1]
        fast = self.fast_physics
        for a, b in zip(edges, edges[1:]):
            if b <= a:
                continue
            # Evaluate C-states at the piece midpoint: a piece boundary
            # sits exactly on a promotion instant, where float roundoff
            # on the comparison could misclassify the whole piece.
            if fast:
                # Segment-reusing fused path: coefficient sets survive
                # across event gaps while no core/DVFS/TCC state changes.
                cstates, coefficients = chip.power_segment(0.5 * (a + b))
                result = integrator.advance_coefficients(b - a, coefficients)
            else:
                cstates, power_fn = chip.power_function(time=0.5 * (a + b))
                result = integrator.advance(b - a, power_fn)
            chip.record_residency(cstates, b - a)
            powermeter.record_segment(a, b - a, result.average_power)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.sim.run(until=self.sim.now + duration)

    # ------------------------------------------------------------------
    # Convenience measurements
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def core_temps(self) -> np.ndarray:
        """Current true per-core temperatures, °C."""
        return self.integrator.temps[: self.config.num_cores].copy()

    @property
    def idle_mean_temp(self) -> float:
        """Mean per-core idle (baseline) temperature, °C."""
        return float(np.mean(self.idle_core_temps))

    def mean_core_temp_over_window(self, window: Optional[float] = None) -> float:
        """Mean core temperature over the trailing window (default: the
        config's measurement window — the paper's last-30 s average)."""
        return self.templog.mean_over_window(window or self.config.measure_window)

    def temp_rise_over_idle(self, window: Optional[float] = None) -> float:
        """Mean core temperature rise over the idle baseline, °C."""
        return self.mean_core_temp_over_window(window) - self.idle_mean_temp

    def total_work_done(self) -> float:
        """Total useful work completed by all threads, CPU-seconds."""
        return sum(t.stats.work_done for t in self.scheduler.threads)

    def energy(self, start: float = -np.inf, end: float = np.inf) -> float:
        """Package energy over [start, end], J."""
        return self.powermeter.energy(start, end)
