"""Table 1 and the §3.3 model-validation experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.models import predicted_energy, predicted_runtime
from ..core.pareto import PowerLawFit, fit_power_law
from ..cpu.cstates import CState
from ..runtime import ParallelRunner, characterization_spec, finite_cpuburn_spec
from ..units import MS
from ..workloads.spec import TABLE1_FIT, TABLE1_RISE_PERCENT, all_benchmarks
from .config import ExperimentConfig
from .machine import Machine
from .reporting import format_table, percent
from .runner import run_characterization
from .sweeps import sweep_dimetrodon


# ======================================================================
# Table 1 — real workload results
# ======================================================================
@dataclass
class Table1Row:
    workload: str
    rise_percent: float
    paper_rise_percent: float
    alpha: float
    beta: float
    paper_alpha: float
    paper_beta: float


@dataclass
class Table1Result:
    rows: List[Table1Row]

    def render(self) -> str:
        rows = [
            [
                row.workload,
                row.rise_percent,
                row.paper_rise_percent,
                row.alpha,
                row.beta,
                row.paper_alpha,
                row.paper_beta,
            ]
            for row in self.rows
        ]
        return format_table(
            ["workload", "rise %", "paper %", "alpha", "beta", "paper a", "paper b"],
            rows,
            title="Table 1: SPEC CPU2006 thermal profiles and T(r)=a*r^b fits "
            "(fit over r in [0, 0.5])",
        )


def table1_spec_workloads(
    config: ExperimentConfig,
    *,
    benchmarks: Optional[Sequence[str]] = None,
    ps: Sequence[float] = (0.25, 0.5, 0.75),
    ls_ms: Sequence[float] = (2.0, 10.0, 50.0),
    fit_r_max: float = 0.5,
    runner: Optional[ParallelRunner] = None,
) -> Table1Result:
    """Reproduce Table 1: per-benchmark rise (% of cpuburn) and fits."""
    if runner is not None:
        burn_baseline = runner.run([characterization_spec(config, workload="cpuburn")])[0]
    else:
        burn_baseline = run_characterization(config, workload="cpuburn")
    names = list(benchmarks) if benchmarks is not None else all_benchmarks()
    rows: List[Table1Row] = []

    # cpuburn row first, as in the paper.
    burn_sweep = sweep_dimetrodon(
        config, workload="cpuburn", ps=ps, ls_ms=ls_ms, runner=runner
    )
    burn_fit = _safe_fit(burn_sweep.points, fit_r_max)
    rows.append(_make_row("cpuburn", 100.0, burn_fit))

    for name in names:
        sweep = sweep_dimetrodon(config, workload=name, ps=ps, ls_ms=ls_ms, runner=runner)
        rise_percent = 100.0 * sweep.baseline.temp_rise / burn_baseline.temp_rise
        fit = _safe_fit(sweep.points, fit_r_max)
        rows.append(_make_row(name, rise_percent, fit))
    return Table1Result(rows=rows)


def _safe_fit(points, r_max: float) -> Optional[PowerLawFit]:
    try:
        return fit_power_law(points, r_max=r_max)
    except Exception:
        return None


def _make_row(name: str, rise_percent: float, fit: Optional[PowerLawFit]) -> Table1Row:
    paper_alpha, paper_beta = TABLE1_FIT[name]
    return Table1Row(
        workload=name,
        rise_percent=rise_percent,
        paper_rise_percent=TABLE1_RISE_PERCENT[name],
        alpha=fit.alpha if fit else float("nan"),
        beta=fit.beta if fit else float("nan"),
        paper_alpha=paper_alpha,
        paper_beta=paper_beta,
    )


# ======================================================================
# §3.3 — throughput model validation
# ======================================================================
@dataclass
class ThroughputValidationRow:
    p: float
    l_ms: float
    predicted: float
    measured: float

    @property
    def deviation(self) -> float:
        """Relative throughput shortfall vs the model (paper: ≈1 %)."""
        return self.measured / self.predicted - 1.0


@dataclass
class ThroughputValidationResult:
    total_cpu: float
    rows: List[ThroughputValidationRow]

    @property
    def mean_deviation(self) -> float:
        return float(np.mean([row.deviation for row in self.rows]))

    def render(self) -> str:
        rows = [
            [row.p, row.l_ms, row.predicted, row.measured, percent(row.deviation)]
            for row in self.rows
        ]
        table = format_table(
            ["p", "L [ms]", "D(t) model [s]", "measured [s]", "deviation"],
            rows,
            title="Throughput model validation (runtime of finite cpuburn)",
        )
        return table + f"\nmean deviation: {percent(self.mean_deviation)} (paper: ~+1.0%)"


def validate_throughput_model(
    config: ExperimentConfig,
    *,
    total_cpu: float = 5.0,
    ps: Sequence[float] = (0.25, 0.5, 0.75),
    ls_ms: Sequence[float] = (25.0, 50.0, 75.0, 100.0),
    repetitions: int = 3,
    runner: Optional[ParallelRunner] = None,
) -> ThroughputValidationResult:
    """Measured completion time vs D(t) = R + S·(p/(1-p))·L (§3.3).

    The Bernoulli injection count per run is a sum of geometrics with
    substantial variance, so (like the paper's 100 trials per
    configuration) each configuration is repeated with different seeds
    and the runtimes averaged.
    """
    # The whole (p, L, repetition) grid is independent: fan it out as
    # one batch, then regroup per configuration.
    batch = ParallelRunner() if runner is None else runner
    grid = [(p, l_ms) for p in ps for l_ms in ls_ms]
    specs = [
        (
            config.with_seed(config.seed + 1000 * rep + 1),
            {"total_cpu": total_cpu, "p": p, "idle_quantum": l_ms * MS},
        )
        for p, l_ms in grid
        for rep in range(repetitions)
    ]
    results = batch.run_finite_cpuburns(specs)

    rows: List[ThroughputValidationRow] = []
    for slot, (p, l_ms) in enumerate(grid):
        runtimes: List[float] = []
        for rep in range(repetitions):
            runtimes.extend(results[slot * repetitions + rep].runtimes)
        predicted = predicted_runtime(total_cpu, config.quantum, p, l_ms * MS)
        rows.append(
            ThroughputValidationRow(
                p=p, l_ms=l_ms, predicted=predicted, measured=float(np.mean(runtimes))
            )
        )
    return ThroughputValidationResult(total_cpu=total_cpu, rows=rows)


# ======================================================================
# §3.3 — energy model validation
# ======================================================================
@dataclass
class EnergyValidationRow:
    p: float
    l_ms: float
    energy_race: float
    energy_dimetrodon: float

    @property
    def ratio(self) -> float:
        return self.energy_dimetrodon / self.energy_race


@dataclass
class EnergyValidationResult:
    total_cpu: float
    rows: List[EnergyValidationRow]

    @property
    def mean_deviation(self) -> float:
        return float(np.mean([row.ratio - 1.0 for row in self.rows]))

    @property
    def mean_abs_deviation(self) -> float:
        return float(np.mean([abs(row.ratio - 1.0) for row in self.rows]))

    def render(self) -> str:
        rows = [
            [row.p, row.l_ms, row.energy_race, row.energy_dimetrodon, f"{row.ratio:.4f}"]
            for row in self.rows
        ]
        table = format_table(
            ["p", "L [ms]", "race E [J]", "dimetrodon E [J]", "ratio"],
            rows,
            title="Energy validation: equal windows, Dimetrodon vs race-to-idle",
        )
        return table + (
            f"\nmean deviation {percent(self.mean_deviation)}, "
            f"mean |deviation| {percent(self.mean_abs_deviation)} "
            "(paper: -0.37% / 1.67%)"
        )


def validate_energy_model(
    config: ExperimentConfig,
    *,
    total_cpu: float = 5.0,
    ps: Sequence[float] = (0.25, 0.5, 0.75),
    ls_ms: Sequence[float] = (50.0, 100.0),
    runner: Optional[ParallelRunner] = None,
) -> EnergyValidationResult:
    """Dimetrodon vs race-to-idle energy over identical windows (§3.3).

    The paper runs a ~7 s finite cpuburn loop, measures power with the
    clamp, and finds Dimetrodon consumes 97.6–103.7 % of race-to-idle.
    """
    # Two batches: the race-to-idle runs need the Dimetrodon runs'
    # windows, so they cannot join the first fan-out.
    batch = ParallelRunner() if runner is None else runner
    grid = [(p, l_ms) for p in ps for l_ms in ls_ms]
    dims = batch.run_finite_cpuburns(
        [
            (config, {"total_cpu": total_cpu, "p": p, "idle_quantum": l_ms * MS})
            for p, l_ms in grid
        ]
    )
    races = batch.run_finite_cpuburns(
        [(config, {"total_cpu": total_cpu, "p": 0.0, "window": dim.window}) for dim in dims]
    )
    rows = [
        EnergyValidationRow(
            p=p, l_ms=l_ms, energy_race=race.energy, energy_dimetrodon=dim.energy
        )
        for (p, l_ms), dim, race in zip(grid, dims, races)
    ]
    return EnergyValidationResult(total_cpu=total_cpu, rows=rows)
