"""A SPECWeb-like latency-sensitive web-serving workload (§3.7).

The paper runs SPECWeb2005's eCommerce workload with 440 simultaneous
connections from two client machines, producing 15–25 % load per core
and a ~6 °C temperature rise.  Performance is scored against QoS
thresholds: "good" (≤ 3 s response), "tolerable" (≤ 5 s), "fail".

The model preserves the pieces of that setup that interact with idle
injection:

- **open-loop request arrivals** (Poisson at ``connections /
  think_time`` requests/s): deferring a request does not stop new ones
  from arriving, so injection can grow the backlog — the paper's
  "deferring idle cycles ... increases processor load and heat";
- **two-stage service**: a kernel interrupt thread first handles the
  network event, then hands the request to a user worker thread
  (§3.1's double-delay discussion is reproducible by un-exempting
  kernel threads);
- **fragmented natural idle**: between requests cores idle in short,
  unhinted stretches that rarely reach the deep C-state, while injected
  quanta are long and scheduler-hinted — the asymmetry that lets
  injection lower average power on a partially idle machine.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..sched.scheduler import Scheduler
from ..sched.thread import Thread, ThreadKind, ThreadState
from ..sim.process import Process
from .base import BLOCK, Burst, NextBurst, Workload
from .loadshapes import ArrivalProcess

#: SPECWeb QoS thresholds, seconds (§3.7).
QOS_GOOD = 3.0
QOS_TOLERABLE = 5.0


@dataclass
class Request:
    """One HTTP request's lifecycle."""

    rid: int
    arrival: float
    service_time: float
    #: When the user-level worker finished producing the response.
    completed: Optional[float] = None

    @property
    def response_time(self) -> Optional[float]:
        if self.completed is None:
            return None
        return self.completed - self.arrival


@dataclass
class RequestLog:
    """All requests observed during a run, with QoS scoring."""

    requests: List[Request] = field(default_factory=list)

    def arrived_in(self, start: float, end: float) -> List[Request]:
        """Requests arriving in the half-open window ``[start, end)``.

        Half-open bounds make adjacent windows a true partition: a
        request arriving exactly at ``w`` belongs to ``[w, 2w)`` and is
        never double-counted by ``[0, w)``.
        """
        return [r for r in self.requests if start <= r.arrival < end]

    def qos_fraction(self, threshold: float, *, start: float = 0.0, end: float = float("inf")) -> float:
        """Fraction of requests (arriving in ``[start, end)``) answered
        within ``threshold`` seconds.  Unanswered requests count as
        failures — an exploding backlog shows up as a QoS collapse.

        A window with no arrivals has *no data*, not perfect QoS: it
        scores NaN so aggregations can exclude it (a diurnal trough
        must not inflate the mean).  Callers averaging across windows
        should weight by arrivals or drop NaN windows; see
        :mod:`repro.analysis.slo` for the windowed scorer.
        """
        window = self.arrived_in(start, end)
        if not window:
            return float("nan")
        good = sum(
            1 for r in window if r.response_time is not None and r.response_time <= threshold
        )
        return good / len(window)

    def mean_response_time(self, *, start: float = 0.0, end: float = float("inf")) -> float:
        done = [
            r.response_time for r in self.arrived_in(start, end) if r.response_time is not None
        ]
        if not done:
            return float("inf")
        return float(np.mean(done))


class _KernelInterruptWork(Workload):
    """Kernel-side per-request processing (interrupt + protocol work)."""

    activity = 0.60
    cpu_fraction = 1.0

    def __init__(self, server: "WebServer"):
        self._server = server
        self.pending: Deque[Request] = deque()

    def next_burst(self) -> NextBurst:
        if not self.pending:
            return BLOCK
        request = self.pending.popleft()
        return Burst(
            cpu_time=self._server.kernel_overhead,
            on_complete=lambda now, r=request: self._server._deliver_to_user(r),
            tag=request.rid,
        )

    @property
    def name(self) -> str:
        return "kernel-net"


class _WorkerWork(Workload):
    """User-level request handler (the injectable part)."""

    activity = 0.85
    cpu_fraction = 1.0

    def __init__(self, server: "WebServer"):
        self._server = server

    def next_burst(self) -> NextBurst:
        queue = self._server.ready_requests
        if not queue:
            return BLOCK
        request = queue.popleft()
        return Burst(
            cpu_time=request.service_time,
            on_complete=lambda now, r=request: self._server._complete(r),
            tag=request.rid,
        )

    @property
    def name(self) -> str:
        return "web-worker"


class WebServer:
    """Assembles the web-serving workload on a scheduler.

    Parameters mirror the paper's setup: 440 connections with a think
    time chosen to land at 15–25 % per-core load.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        rng: np.random.Generator,
        *,
        connections: int = 440,
        think_time: float = 11.0,
        service_mean: float = 0.025,
        service_sigma: float = 0.6,
        kernel_overhead: float = 0.0002,
        num_workers: int = 8,
        external_arrivals: bool = False,
        arrival_process: Optional[ArrivalProcess] = None,
    ):
        """``external_arrivals=True`` disables the server's own Poisson
        arrival process; requests then enter only through
        :meth:`submit_request` — the load-balancer mode used by the
        fleet experiment, where one fleet-level arrival stream is
        routed across many servers.  ``connections``/``think_time``
        still define :attr:`arrival_rate` (what this server is sized
        for) and the per-core load estimate.

        ``arrival_process`` replaces the fixed-rate Poisson arrival
        loop with a shaped
        :class:`~repro.workloads.loadshapes.ArrivalProcess` (diurnal,
        surge, bursty, or trace-driven); a finite process simply stops
        generating once exhausted.  Mutually exclusive with
        ``external_arrivals`` — a balancer-fed server shapes its load
        at the balancer."""
        if connections < 1 or think_time <= 0:
            raise ConfigurationError("need positive connections and think_time")
        if service_mean <= 0 or kernel_overhead <= 0:
            raise ConfigurationError("service times must be positive")
        if external_arrivals and arrival_process is not None:
            raise ConfigurationError(
                "arrival_process shapes the server's own arrival loop; "
                "with external_arrivals=True shape the balancer instead"
            )
        self.scheduler = scheduler
        self.rng = rng
        self.arrival_rate = connections / think_time
        self.service_mean = service_mean
        self.service_sigma = service_sigma
        self.kernel_overhead = kernel_overhead
        self.log = RequestLog()
        self.ready_requests: Deque[Request] = deque()
        self.arrival_process = arrival_process
        self._rid = itertools.count(1)

        self._kernel_work = _KernelInterruptWork(self)
        self.kernel_thread = Thread(self._kernel_work, name="kernel-net", kind=ThreadKind.KERNEL)
        scheduler.add_thread(self.kernel_thread)

        self.workers: List[Thread] = []
        for i in range(num_workers):
            worker = Thread(_WorkerWork(self), name=f"web-worker-{i}")
            scheduler.add_thread(worker)
            self.workers.append(worker)

        self._process: Optional[Process] = (
            None if external_arrivals else Process(scheduler.sim, self._arrival_loop())
        )

    # ------------------------------------------------------------------
    @property
    def offered_load_per_core(self) -> float:
        """Offered utilisation per core (paper: 15–25 %)."""
        per_request = self.service_mean + self.kernel_overhead
        return self.arrival_rate * per_request / self.scheduler.chip.num_cores

    def stop(self) -> None:
        """Stop generating new requests (no-op with external arrivals)."""
        if self._process is not None:
            self._process.stop()

    def submit_request(self) -> Request:
        """Inject one request arriving now (external-arrivals mode).

        Also usable alongside the internal arrival process for burst
        injection; the request is logged and queued exactly like an
        internally generated one."""
        return self._arrive()

    # ------------------------------------------------------------------
    # Inter-machine request handoff (fleet migration)
    # ------------------------------------------------------------------
    def donate_queued(
        self,
        max_requests: int,
        *,
        accept: Optional[Callable[[Request], bool]] = None,
    ) -> List[Request]:
        """Give up to ``max_requests`` not-yet-started requests for
        migration to another server.

        Only requests sitting in the user-level ready queue are
        eligible: a request still in the kernel's interrupt queue has
        connection state that cannot be transferred, and a running
        request's thread context stays put (intra-chip migration is
        :class:`repro.core.migration.ThermalMigrationPolicy`'s job).
        Requests pop newest-first so the source queue keeps FIFO order
        for its oldest — most latency-critical — work.  ``accept``,
        when given, is consulted per request; donation stops at the
        first refusal (the queue tail is age-ordered, so later entries
        would only be costlier).

        The donated requests stay in this server's :attr:`log` — the
        request arrived *here*, and fleet-level QoS scoring pools logs
        across servers, so moving the log entry would double-count.
        """
        donated: List[Request] = []
        while self.ready_requests and len(donated) < max_requests:
            candidate = self.ready_requests[-1]
            if accept is not None and not accept(candidate):
                break
            donated.append(self.ready_requests.pop())
        return donated

    def accept_migrated(self, request: Request) -> None:
        """Receive a request handed off from another server.

        The request joins the ready queue and a blocked worker is woken,
        exactly like a locally delivered request — but it is *not*
        logged here: its log entry (and therefore its response-time
        accounting) lives with the server it arrived at.
        """
        self.ready_requests.append(request)
        self._wake_worker()

    # ------------------------------------------------------------------
    def _arrival_loop(self):
        if self.arrival_process is None:
            while True:
                yield float(self.rng.exponential(1.0 / self.arrival_rate))
                self._arrive()
        else:
            for gap in self.arrival_process.gaps(self.rng):
                yield gap
                self._arrive()

    def _draw_service_time(self) -> float:
        sigma = self.service_sigma
        scale = self.service_mean / float(np.exp(sigma**2 / 2.0))
        return float(scale * self.rng.lognormal(mean=0.0, sigma=sigma))

    def _arrive(self) -> Request:
        request = Request(
            rid=next(self._rid),
            arrival=self.scheduler.sim.now,
            service_time=self._draw_service_time(),
        )
        self.log.requests.append(request)
        self._kernel_work.pending.append(request)
        self.scheduler.wake(self.kernel_thread)
        return request

    def _deliver_to_user(self, request: Request) -> None:
        """Kernel finished the network event; hand off to a worker."""
        self.ready_requests.append(request)
        self._wake_worker()

    def _wake_worker(self) -> None:
        for worker in self.workers:
            if worker.state is ThreadState.BLOCKED:
                self.scheduler.wake(worker)
                break

    def _complete(self, request: Request) -> None:
        request.completed = self.scheduler.sim.now
