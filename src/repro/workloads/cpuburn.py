"""cpuburn (burnP6) equivalents: maximal-heat CPU-bound loops.

The paper uses Robert Redelmeier's ``cpuburn`` — "a single-threaded
infinite loop containing a compact sequence of x86 instructions
designed to thermally stress test processors" (§3.3) — both as an
endless worst-case thermal load (§3.4) and as a finite loop with a
known runtime for model validation (§3.3, a 7-second finite loop).

Here cpuburn is simply the workload with switching activity 1.0: the
definitional maximum against which Table 1 normalises every other
workload's temperature rise.
"""

from __future__ import annotations

from typing import Optional

from ..errors import WorkloadError
from .base import Burst, NextBurst, Workload


class CpuBurn(Workload):
    """Endless cpuburn: runs flat-out until the simulation stops."""

    activity = 1.0
    cpu_fraction = 1.0

    def __init__(self, *, chunk: float = 100.0):
        if chunk <= 0:
            raise WorkloadError("chunk must be positive")
        #: Burst granularity, s.  Purely an implementation detail: the
        #: scheduler slices bursts into quanta anyway.
        self.chunk = chunk

    def next_burst(self) -> NextBurst:
        return Burst(cpu_time=self.chunk)

    @property
    def name(self) -> str:
        return "cpuburn"


class FiniteCpuBurn(Workload):
    """cpuburn with a fixed total amount of work, then exit.

    ``total_work`` is the thread's CPU demand ``R`` in full-speed
    seconds — the quantity the analytical model (§2.2) predicts the
    completion time ``D(t)`` from.
    """

    activity = 1.0
    cpu_fraction = 1.0

    def __init__(self, total_work: float):
        if total_work <= 0:
            raise WorkloadError("total_work must be positive")
        self.total_work = float(total_work)
        self._emitted = False

    def next_burst(self) -> NextBurst:
        if self._emitted:
            return None
        self._emitted = True
        return Burst(cpu_time=self.total_work)

    @property
    def name(self) -> str:
        return "cpuburn-finite"


class DutyCycledBurn(Workload):
    """cpuburn that runs for ``burn_time`` then sleeps ``sleep_time``.

    This is the "cool" process of §3.6: "a loop that executed cpuburn
    for six seconds, slept for one minute, and repeated".  Its *average*
    heat output is low even though its instantaneous activity is
    maximal.  ``iterations`` bounds the loop (None = endless).
    """

    activity = 1.0
    cpu_fraction = 1.0

    def __init__(
        self,
        burn_time: float = 6.0,
        sleep_time: float = 60.0,
        *,
        iterations: Optional[int] = None,
    ):
        if burn_time <= 0 or sleep_time < 0:
            raise WorkloadError("burn_time must be > 0 and sleep_time >= 0")
        self.burn_time = burn_time
        self.sleep_time = sleep_time
        self.iterations = iterations
        self.completed_iterations = 0

    def _on_iteration(self, _now: float) -> None:
        self.completed_iterations += 1

    def next_burst(self) -> NextBurst:
        if self.iterations is not None and self.completed_iterations >= self.iterations:
            return None
        return Burst(
            cpu_time=self.burn_time,
            sleep_time=self.sleep_time,
            on_complete=self._on_iteration,
        )

    @property
    def name(self) -> str:
        return "cool-burn"
