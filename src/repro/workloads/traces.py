"""Trace-driven workloads.

Real deployments rarely look like cpuburn: utilization arrives in
bursts with think time between them.  :class:`TraceWorkload` replays an
explicit (cpu_time, gap) trace — recorded from a production system or
synthesised — through the normal scheduler path, so injection policies
can be evaluated against arbitrary utilization shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import WorkloadError
from .base import Burst, NextBurst, Workload

#: One trace entry: (cpu seconds of work, idle gap after it).
TraceEntry = Tuple[float, float]


class TraceWorkload(Workload):
    """Replays a list of (cpu_time, gap) entries, optionally looping."""

    def __init__(
        self,
        entries: Sequence[TraceEntry],
        *,
        activity: float = 0.9,
        cpu_fraction: float = 1.0,
        loop: bool = False,
    ):
        if not entries:
            raise WorkloadError("trace must contain at least one entry")
        for cpu, gap in entries:
            if cpu <= 0 or gap < 0:
                raise WorkloadError(f"invalid trace entry ({cpu}, {gap})")
        self.entries: List[TraceEntry] = list(entries)
        self.activity = activity
        self.cpu_fraction = cpu_fraction
        self.loop = loop
        self._cursor = 0
        self.replayed_entries = 0

    def next_burst(self) -> NextBurst:
        if self._cursor >= len(self.entries):
            if not self.loop:
                return None
            self._cursor = 0
        cpu, gap = self.entries[self._cursor]
        self._cursor += 1
        self.replayed_entries += 1
        return Burst(cpu_time=cpu, sleep_time=gap)

    @property
    def name(self) -> str:
        return "trace"


def trace_utilization(entries: Sequence[TraceEntry]) -> float:
    """Fraction of trace time spent computing."""
    busy = sum(cpu for cpu, _ in entries)
    total = sum(cpu + gap for cpu, gap in entries)
    if total == 0:
        raise WorkloadError("trace has zero duration")
    return busy / total


def synthesize_bursty_trace(
    rng: np.random.Generator,
    *,
    duration: float,
    utilization: float,
    mean_burst: float = 0.5,
    burst_cv: float = 1.0,
) -> List[TraceEntry]:
    """Generate a random trace with a target mean utilization.

    Burst lengths are gamma-distributed with coefficient of variation
    ``burst_cv``; gaps are exponential, scaled to hit ``utilization``.
    """
    if not 0.0 < utilization < 1.0:
        raise WorkloadError("utilization must be in (0, 1)")
    if duration <= 0 or mean_burst <= 0:
        raise WorkloadError("duration and mean_burst must be positive")
    shape = 1.0 / burst_cv**2
    scale = mean_burst / shape
    mean_gap = mean_burst * (1.0 - utilization) / utilization
    entries: List[TraceEntry] = []
    elapsed = 0.0
    while elapsed < duration:
        cpu = float(max(1e-4, rng.gamma(shape, scale)))
        gap = float(rng.exponential(mean_gap))
        entries.append((cpu, gap))
        elapsed += cpu + gap
    return entries
