"""Trace-driven workloads: CPU-burst traces and request-arrival traces.

Real deployments rarely look like cpuburn: utilization arrives in
bursts with think time between them.  :class:`TraceWorkload` replays an
explicit (cpu_time, gap) trace — recorded from a production system or
synthesised — through the normal scheduler path, so injection policies
can be evaluated against arbitrary utilization shapes.

:class:`RequestTrace` extends the same idea from CPU bursts to
*request arrivals*: an explicit list of arrival timestamps (recorded
access-log style, or synthesised from a rate profile by
:func:`repro.workloads.loadshapes.synthesize_request_trace`) that the
web-serving workload and the fleet balancer can replay through
:class:`~repro.workloads.loadshapes.TraceArrivals`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import WorkloadError
from .base import Burst, NextBurst, Workload

#: One trace entry: (cpu seconds of work, idle gap after it).
TraceEntry = Tuple[float, float]


class TraceWorkload(Workload):
    """Replays a list of (cpu_time, gap) entries, optionally looping."""

    def __init__(
        self,
        entries: Sequence[TraceEntry],
        *,
        activity: float = 0.9,
        cpu_fraction: float = 1.0,
        loop: bool = False,
    ):
        if not entries:
            raise WorkloadError("trace must contain at least one entry")
        for cpu, gap in entries:
            if cpu <= 0 or gap < 0:
                raise WorkloadError(f"invalid trace entry ({cpu}, {gap})")
        self.entries: List[TraceEntry] = list(entries)
        self.activity = activity
        self.cpu_fraction = cpu_fraction
        self.loop = loop
        self._cursor = 0
        self.replayed_entries = 0

    def next_burst(self) -> NextBurst:
        if self._cursor >= len(self.entries):
            if not self.loop:
                return None
            self._cursor = 0
        cpu, gap = self.entries[self._cursor]
        self._cursor += 1
        self.replayed_entries += 1
        return Burst(cpu_time=cpu, sleep_time=gap)

    @property
    def name(self) -> str:
        return "trace"


def trace_utilization(entries: Sequence[TraceEntry]) -> float:
    """Fraction of trace time spent computing."""
    busy = sum(cpu for cpu, _ in entries)
    total = sum(cpu + gap for cpu, gap in entries)
    if total == 0:
        raise WorkloadError("trace has zero duration")
    return busy / total


def synthesize_bursty_trace(
    rng: np.random.Generator,
    *,
    duration: float,
    utilization: float,
    mean_burst: float = 0.5,
    burst_cv: float = 1.0,
) -> List[TraceEntry]:
    """Generate a random trace with a target mean utilization.

    Burst lengths are gamma-distributed with coefficient of variation
    ``burst_cv``; gaps are exponential, scaled to hit ``utilization``.
    """
    if not 0.0 < utilization < 1.0:
        raise WorkloadError("utilization must be in (0, 1)")
    if duration <= 0 or mean_burst <= 0:
        raise WorkloadError("duration and mean_burst must be positive")
    if burst_cv <= 0:
        raise WorkloadError(f"burst_cv must be positive, got {burst_cv}")
    shape = 1.0 / burst_cv**2
    scale = mean_burst / shape
    mean_gap = mean_burst * (1.0 - utilization) / utilization
    entries: List[TraceEntry] = []
    elapsed = 0.0
    while elapsed < duration:
        cpu = float(max(1e-4, rng.gamma(shape, scale)))
        gap = float(rng.exponential(mean_gap))
        entries.append((cpu, gap))
        elapsed += cpu + gap
    return entries


# ----------------------------------------------------------------------
# Request-arrival traces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RequestTrace:
    """An explicit sequence of request-arrival timestamps, seconds.

    Times are relative to the start of replay (a trace starting at
    ``t=3`` means the first request arrives three simulated seconds
    after the replay begins), must be non-negative, and must be
    non-decreasing — simultaneous arrivals (a batch) are allowed.
    """

    times: Tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self):
        times = tuple(float(t) for t in self.times)
        if not times:
            raise WorkloadError("request trace must contain at least one arrival")
        if times[0] < 0:
            raise WorkloadError(f"arrival times must be non-negative, got {times[0]}")
        for earlier, later in zip(times, times[1:]):
            if later < earlier:
                raise WorkloadError(
                    f"arrival times must be non-decreasing ({earlier} then {later})"
                )
        object.__setattr__(self, "times", times)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def duration(self) -> float:
        """Time of the last arrival, seconds."""
        return self.times[-1]

    def gaps(self) -> Iterator[float]:
        """Interarrival gaps, starting with the delay to the first
        arrival (zero gaps encode batched arrivals)."""
        previous = 0.0
        for t in self.times:
            yield t - previous
            previous = t

    def count_in(self, start: float, end: float) -> int:
        """Arrivals in the half-open window ``[start, end)``."""
        return bisect.bisect_left(self.times, end) - bisect.bisect_left(
            self.times, start
        )

    def mean_rate(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Mean arrival rate over ``[start, end)``, requests/s."""
        if end is None:
            end = self.duration
        if end <= start:
            raise WorkloadError(f"empty rate window [{start}, {end})")
        return self.count_in(start, end) / (end - start)

    @classmethod
    def from_gaps(cls, gaps: Sequence[float]) -> "RequestTrace":
        """Build a trace from interarrival gaps (all must be >= 0)."""
        times: List[float] = []
        elapsed = 0.0
        for gap in gaps:
            if gap < 0:
                raise WorkloadError(f"interarrival gaps must be >= 0, got {gap}")
            elapsed += float(gap)
            times.append(elapsed)
        return cls(tuple(times))
