"""Workload protocol: how threads describe the work they want to do.

A workload is a generator of *bursts*.  Each time a thread finishes its
current burst the scheduler asks the workload for the next one via
:meth:`Workload.next_burst`, which returns:

- a :class:`Burst` — run ``cpu_time`` seconds of work (measured at full
  chip speed; DVFS/TCC stretch the wall-clock time), then optionally
  sleep;
- the :data:`BLOCK` sentinel — the thread blocks until some other
  component wakes it (e.g. a request arriving at a web-server worker);
- ``None`` — the thread exits.

Workloads also carry two static characteristics used by the power and
performance models:

- ``activity``: switching-activity factor relative to cpuburn (1.0);
  determines dynamic power while the thread executes.
- ``cpu_fraction``: fraction of execution sensitive to core frequency;
  1.0 for the paper's "entirely CPU-bound" workloads (§3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from ..errors import WorkloadError


class _BlockSentinel:
    """Unique marker object returned by blocking workloads."""

    _instance: Optional["_BlockSentinel"] = None

    def __new__(cls) -> "_BlockSentinel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "BLOCK"


#: Sentinel: the thread should block until explicitly woken.
BLOCK = _BlockSentinel()


@dataclass
class Burst:
    """One span of CPU work, possibly followed by a sleep.

    ``cpu_time`` is expressed in seconds of full-speed execution.
    ``on_complete(now)`` fires when the burst's work is done (used to
    record request completions and iteration counts).
    """

    cpu_time: float
    sleep_time: float = 0.0
    on_complete: Optional[Callable[[float], None]] = None
    #: Free-form tag for tracing (e.g. a request id).
    tag: Optional[object] = None

    def __post_init__(self) -> None:
        if self.cpu_time <= 0:
            raise WorkloadError(f"burst cpu_time must be positive, got {self.cpu_time}")
        if self.sleep_time < 0:
            raise WorkloadError(f"burst sleep_time must be >= 0, got {self.sleep_time}")


#: What ``next_burst`` may return.
NextBurst = Union[Burst, _BlockSentinel, None]


class Workload:
    """Base class for workloads.

    Subclasses override :meth:`next_burst`.  The defaults describe a
    fully CPU-bound workload with cpuburn-level activity.
    """

    #: Switching-activity factor relative to cpuburn.
    activity: float = 1.0
    #: Fraction of execution time sensitive to clock frequency.
    cpu_fraction: float = 1.0

    def next_burst(self) -> NextBurst:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass
class SyntheticWorkload(Workload):
    """A workload built from an explicit list of bursts (mostly for tests).

    ``items`` may contain :class:`Burst` instances and :data:`BLOCK`
    sentinels; the workload replays them in order and then exits (or
    loops forever if ``repeat`` is true).
    """

    items: list = field(default_factory=list)
    repeat: bool = False
    activity: float = 1.0
    cpu_fraction: float = 1.0
    _cursor: int = 0

    def next_burst(self) -> NextBurst:
        if self._cursor >= len(self.items):
            if not self.repeat or not self.items:
                return None
            self._cursor = 0
        item = self.items[self._cursor]
        self._cursor += 1
        return item
