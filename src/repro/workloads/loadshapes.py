"""Rate-over-time load shapes and the arrival processes they drive.

The paper evaluates the web workload at one operating point: open-loop
Poisson arrivals at a fixed SPECWeb-like rate (§3.7).  Real services
see *time-varying* load — diurnal cycles, step surges from flash
crowds, heavy-tailed request bunching — and those are exactly the
regimes where preventive injection's "defer work now, pay thermal debt
later" trade-off bites.  This module provides the primitives the
``scenarios`` experiment sweeps:

- :class:`LoadShape` — a deterministic rate function ``r(t)`` in
  requests/s, with composition (``shape_a + shape_b``, ``0.5 * shape``)
  and an envelope (:meth:`LoadShape.peak_rate`) for exact thinning;
- :class:`ConstantLoad` / :class:`DiurnalLoad` / :class:`StepLoad` —
  the fixed-rate reference, a sinusoidal day/night cycle, and a flash
  crowd (or maintenance trough) between two instants;
- :class:`ArrivalProcess` — a stream of interarrival gaps.
  :class:`PoissonArrivals` samples a non-homogeneous Poisson process
  from any shape by Lewis–Shedler thinning; :class:`ParetoBurstArrivals`
  adds heavy-tailed batches (Pareto-sized bursts at Poisson epochs);
  :class:`TraceArrivals` replays an explicit
  :class:`~repro.workloads.traces.RequestTrace`;
  :class:`MergedArrivals` superposes any of the above;
- :func:`synthesize_request_trace` — freeze a shape into a concrete
  arrival-timestamp trace (the request-level analogue of
  :func:`~repro.workloads.traces.synthesize_bursty_trace`).

All processes are driven by an explicit ``numpy`` Generator so runs
stay deterministic under the repo's named-stream RNG discipline.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..errors import WorkloadError
from .traces import RequestTrace

__all__ = [
    "ArrivalProcess",
    "ConstantLoad",
    "DiurnalLoad",
    "LoadShape",
    "MergedArrivals",
    "ParetoBurstArrivals",
    "PoissonArrivals",
    "StepLoad",
    "TraceArrivals",
    "synthesize_request_trace",
]


# ----------------------------------------------------------------------
# Rate-over-time shapes
# ----------------------------------------------------------------------
class LoadShape:
    """A deterministic arrival-rate profile ``rate(t)``, requests/s.

    Subclasses implement :meth:`rate` and :meth:`peak_rate`; the peak
    is the thinning envelope, so it must satisfy
    ``rate(t) <= peak_rate()`` for all ``t >= 0`` (an over-estimate is
    correct, just slower to sample).
    """

    def rate(self, t: float) -> float:
        raise NotImplementedError

    def peak_rate(self) -> float:
        """An upper bound on :meth:`rate` over ``t >= 0``."""
        raise NotImplementedError

    def mean_rate(self, start: float, end: float, *, samples: int = 512) -> float:
        """Mean rate over ``[start, end)`` (trapezoidal estimate)."""
        if end <= start:
            raise WorkloadError(f"empty rate window [{start}, {end})")
        ts = np.linspace(start, end, samples)
        trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy<2
        return float(trapezoid([self.rate(t) for t in ts], ts) / (end - start))

    # -- composition ----------------------------------------------------
    def __add__(self, other: "LoadShape") -> "LoadShape":
        if not isinstance(other, LoadShape):
            return NotImplemented
        return ComposedLoad((self, other))

    def __mul__(self, factor: float) -> "LoadShape":
        return ScaledLoad(self, factor)

    __rmul__ = __mul__


class ConstantLoad(LoadShape):
    """The paper's operating point: a fixed rate (homogeneous Poisson
    once sampled)."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise WorkloadError(f"constant rate must be positive, got {rate}")
        self._rate = float(rate)

    def rate(self, t: float) -> float:
        return self._rate

    def peak_rate(self) -> float:
        return self._rate

    def mean_rate(self, start: float, end: float, *, samples: int = 512) -> float:
        if end <= start:
            raise WorkloadError(f"empty rate window [{start}, {end})")
        return self._rate


class DiurnalLoad(LoadShape):
    """A sinusoidal day/night cycle around a base rate.

    ``rate(t) = base * (1 + amplitude * sin(2π (t - phase) / period))``
    with relative ``amplitude`` in ``[0, 1]`` so the trough never goes
    negative (amplitude 1 means the trough rate is exactly zero).
    """

    def __init__(
        self,
        base_rate: float,
        *,
        amplitude: float = 0.5,
        period: float = 86400.0,
        phase: float = 0.0,
    ):
        if base_rate <= 0:
            raise WorkloadError(f"base rate must be positive, got {base_rate}")
        if not 0.0 <= amplitude <= 1.0:
            raise WorkloadError(f"relative amplitude must be in [0, 1], got {amplitude}")
        if period <= 0:
            raise WorkloadError(f"period must be positive, got {period}")
        self.base_rate = float(base_rate)
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = float(phase)

    def rate(self, t: float) -> float:
        cycle = math.sin(2.0 * math.pi * (t - self.phase) / self.period)
        return self.base_rate * (1.0 + self.amplitude * cycle)

    def peak_rate(self) -> float:
        return self.base_rate * (1.0 + self.amplitude)


class StepLoad(LoadShape):
    """A step surge (or trough): ``surge_rate`` inside the half-open
    window ``[start, start + duration)``, ``base_rate`` outside."""

    def __init__(
        self, base_rate: float, surge_rate: float, *, start: float, duration: float
    ):
        if base_rate < 0 or surge_rate < 0:
            raise WorkloadError("rates must be non-negative")
        if max(base_rate, surge_rate) <= 0:
            raise WorkloadError("at least one of base/surge rate must be positive")
        if duration <= 0:
            raise WorkloadError(f"surge duration must be positive, got {duration}")
        self.base_rate = float(base_rate)
        self.surge_rate = float(surge_rate)
        self.start = float(start)
        self.duration = float(duration)

    def rate(self, t: float) -> float:
        if self.start <= t < self.start + self.duration:
            return self.surge_rate
        return self.base_rate

    def peak_rate(self) -> float:
        return max(self.base_rate, self.surge_rate)


class ComposedLoad(LoadShape):
    """Sum of shapes (superposed traffic classes)."""

    def __init__(self, shapes: Sequence[LoadShape]):
        if not shapes:
            raise WorkloadError("composition needs at least one shape")
        flattened: List[LoadShape] = []
        for shape in shapes:
            if isinstance(shape, ComposedLoad):
                flattened.extend(shape.shapes)
            else:
                flattened.append(shape)
        self.shapes = tuple(flattened)

    def rate(self, t: float) -> float:
        return sum(shape.rate(t) for shape in self.shapes)

    def peak_rate(self) -> float:
        # Sum of peaks: a valid (possibly loose) envelope.
        return sum(shape.peak_rate() for shape in self.shapes)


class ScaledLoad(LoadShape):
    """A shape scaled by a non-negative factor (e.g. per-machine share
    of a rack-level profile)."""

    def __init__(self, shape: LoadShape, factor: float):
        if factor < 0:
            raise WorkloadError(f"scale factor must be >= 0, got {factor}")
        self.shape = shape
        self.factor = float(factor)

    def rate(self, t: float) -> float:
        return self.factor * self.shape.rate(t)

    def peak_rate(self) -> float:
        return self.factor * self.shape.peak_rate()


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
class ArrivalProcess:
    """A stream of interarrival gaps driving open-loop request arrivals.

    :meth:`gaps` returns an iterator of non-negative gaps, seconds; a
    zero gap encodes batched (simultaneous) arrivals.  The iterator may
    be infinite (Poisson, bursts) or finite (trace replay) — consumers
    stop generating arrivals when it is exhausted.  Each call must
    return a fresh, independent iterator.
    """

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """A (generally non-homogeneous) Poisson process over a shape.

    Sampled by Lewis–Shedler thinning: candidate points arrive at the
    envelope rate :meth:`LoadShape.peak_rate` and are kept with
    probability ``rate(t) / peak``, which yields exactly the
    inhomogeneous process — no discretization of the rate function.
    For :class:`ConstantLoad` every candidate is kept and this reduces
    to the paper's homogeneous arrival loop.
    """

    def __init__(self, shape: LoadShape):
        peak = shape.peak_rate()
        if not peak > 0:
            raise WorkloadError(f"shape peak rate must be positive, got {peak}")
        self.shape = shape
        self._peak = float(peak)

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        peak = self._peak
        shape = self.shape
        now = 0.0
        last = 0.0
        while True:
            now += float(rng.exponential(1.0 / peak))
            if rng.random() * peak <= shape.rate(now):
                yield now - last
                last = now


class ParetoBurstArrivals(ArrivalProcess):
    """Heavy-tailed request bunching: Pareto-sized bursts at Poisson
    epochs.

    Burst epochs form a homogeneous Poisson process at ``burst_rate``;
    each burst brings ``N`` requests with ``N`` drawn from a Pareto
    distribution with tail index ``alpha`` scaled so its mean is
    ``mean_burst_size`` (``alpha > 1`` keeps the mean finite; smaller
    ``alpha`` means wilder flash crowds).  Within a burst, requests are
    spaced by exponential gaps at ``in_burst_rate`` — a burst is a
    spike, not a literal batch, unless ``in_burst_rate`` is ``inf``.

    Superpose over a baseline with :class:`MergedArrivals`::

        MergedArrivals(PoissonArrivals(ConstantLoad(30.0)),
                       ParetoBurstArrivals(burst_rate=0.05,
                                           mean_burst_size=200))
    """

    def __init__(
        self,
        *,
        burst_rate: float,
        mean_burst_size: float,
        alpha: float = 1.5,
        in_burst_rate: float = 200.0,
    ):
        if burst_rate <= 0:
            raise WorkloadError(f"burst_rate must be positive, got {burst_rate}")
        if mean_burst_size < 1:
            raise WorkloadError(
                f"mean_burst_size must be >= 1, got {mean_burst_size}"
            )
        if alpha <= 1:
            raise WorkloadError(
                f"alpha must be > 1 for a finite mean burst size, got {alpha}"
            )
        if in_burst_rate <= 0:
            raise WorkloadError(f"in_burst_rate must be positive, got {in_burst_rate}")
        self.burst_rate = float(burst_rate)
        self.mean_burst_size = float(mean_burst_size)
        self.alpha = float(alpha)
        self.in_burst_rate = float(in_burst_rate)
        #: Pareto scale x_m chosen so E[N] = alpha*x_m/(alpha-1) hits
        #: the requested mean.
        self._scale = self.mean_burst_size * (self.alpha - 1.0) / self.alpha

    def mean_rate(self) -> float:
        """Long-run request rate, requests/s (bursts × mean size)."""
        return self.burst_rate * self.mean_burst_size

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        in_burst = self.in_burst_rate
        while True:
            yield float(rng.exponential(1.0 / self.burst_rate))
            # numpy's pareto() is the Lomax tail; shift+scale gives the
            # classical Pareto with minimum self._scale.
            size = int(max(1, round(self._scale * (1.0 + rng.pareto(self.alpha)))))
            for _ in range(size - 1):
                yield 0.0 if math.isinf(in_burst) else float(
                    rng.exponential(1.0 / in_burst)
                )


class TraceArrivals(ArrivalProcess):
    """Replay an explicit :class:`~repro.workloads.traces.RequestTrace`.

    With ``loop=True`` the trace repeats end to end (its last arrival
    time becomes the period); otherwise arrivals simply stop when the
    trace is exhausted — an open-loop run past the end of the trace
    sees no further load.
    """

    def __init__(self, trace: RequestTrace, *, loop: bool = False):
        if loop and trace.duration <= 0:
            raise WorkloadError("cannot loop a trace with zero duration")
        self.trace = trace
        self.loop = loop

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        while True:
            yield from self.trace.gaps()
            if not self.loop:
                return


class MergedArrivals(ArrivalProcess):
    """Superposition of arrival processes (k-way merge on arrival time).

    Each constituent gets an independent child generator spawned
    deterministically from the caller's, so merging does not perturb
    any one stream's draws.
    """

    def __init__(self, *processes: ArrivalProcess):
        if not processes:
            raise WorkloadError("merge needs at least one arrival process")
        self.processes = tuple(processes)

    def gaps(self, rng: np.random.Generator) -> Iterator[float]:
        heap: List = []
        for index, process in enumerate(self.processes):
            child = np.random.default_rng(rng.integers(2**63))
            stream = process.gaps(child)
            first = next(stream, None)
            if first is not None:
                heapq.heappush(heap, (first, index, stream))
        last = 0.0
        while heap:
            time, index, stream = heapq.heappop(heap)
            yield time - last
            last = time
            gap = next(stream, None)
            if gap is not None:
                heapq.heappush(heap, (time + gap, index, stream))


def synthesize_request_trace(
    rng: np.random.Generator,
    *,
    duration: float,
    shape: Optional[LoadShape] = None,
    process: Optional[ArrivalProcess] = None,
) -> RequestTrace:
    """Freeze ``duration`` seconds of an arrival process into a trace.

    Give either a ``shape`` (sampled as a non-homogeneous Poisson
    process) or an explicit ``process``; the resulting
    :class:`~repro.workloads.traces.RequestTrace` replays bit-identical
    arrivals however often it is reused — the request-arrival analogue
    of :func:`~repro.workloads.traces.synthesize_bursty_trace`.
    """
    if duration <= 0:
        raise WorkloadError(f"duration must be positive, got {duration}")
    if (shape is None) == (process is None):
        raise WorkloadError("give exactly one of shape= or process=")
    if process is None:
        process = PoissonArrivals(shape)
    times: List[float] = []
    elapsed = 0.0
    for gap in process.gaps(rng):
        elapsed += gap
        if elapsed >= duration:
            break
        times.append(elapsed)
    if not times:
        raise WorkloadError(
            f"no arrivals in {duration}s; raise the rate or the duration"
        )
    return RequestTrace(tuple(times))
