"""Synthetic SPEC CPU2006 workload profiles.

The paper characterises six SPEC CPU2006 benchmarks by one thermal
observable — the per-core temperature rise over idle as a percentage of
cpuburn's rise (Table 1) — and notes that all of them are "entirely
CPU-bound" with the standard quantum length, so the throughput model
applies unchanged (§3.5).

We reproduce each benchmark as a CPU-bound loop whose switching
activity factor is *calibrated* so that its simulated steady-state
temperature rise matches Table 1's percentage.  The calibration solves
the nonlinear steady state (leakage feedback included) with a bisection
on the activity factor — see :func:`activity_for_rise`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..cpu.chip import Chip
from ..cpu.cstates import CState
from ..errors import ConfigurationError
from ..thermal.floorplan import build_network
from ..thermal.params import ThermalParams
from ..thermal.rcnetwork import ThermalIntegrator
from .base import Burst, NextBurst, Workload

#: Table 1, "Rise (%)": average per-core temperature increase over the
#: idle temperature, relative to unmodified cpuburn.
TABLE1_RISE_PERCENT: Dict[str, float] = {
    "cpuburn": 100.0,
    "calculix": 99.3,
    "namd": 87.2,
    "dealII": 84.4,
    "bzip2": 84.4,
    "gcc": 80.3,
    "astar": 71.7,
}

#: Table 1's fitted Pareto constants, for comparison in EXPERIMENTS.md.
TABLE1_FIT: Dict[str, tuple] = {
    "cpuburn": (1.092, 1.541),
    "calculix": (1.282, 1.697),
    "namd": (1.248, 1.546),
    "dealII": (1.324, 1.688),
    "bzip2": (1.529, 1.811),
    "gcc": (1.425, 1.848),
    "astar": (1.351, 1.416),
}


#: Settle tolerance for calibration; loop gains near one make tighter
#: tolerances needlessly slow for a bisection target of 1e-3 °C.
_SETTLE_TOL = 1e-4


def _steady_busy_temp(activity: float, chip: Chip, network) -> float:
    """Mean steady core temperature with all cores at ``activity``."""
    n = chip.num_cores
    point = chip.operating_point
    model = chip.power_model
    uncore = model.params.uncore_power

    def busy_power(temps: np.ndarray) -> np.ndarray:
        power = np.zeros(n + 2)
        dynamic = model.dynamic(activity, point)
        for i in range(n):
            power[i] = dynamic + model.leakage(float(temps[i]), point)
        power[n] = uncore
        return power

    busy = ThermalIntegrator(network).settle(busy_power, tolerance=_SETTLE_TOL)
    return float(np.mean(busy[:n]))


def _steady_idle_temp(chip: Chip, network) -> float:
    """Mean steady core temperature with all cores in C1E."""
    n = chip.num_cores
    states = [CState.C1E] * n

    def idle_power(temps: np.ndarray) -> np.ndarray:
        return chip.power_vector(states, temps)

    idle = ThermalIntegrator(network).settle(idle_power, tolerance=_SETTLE_TOL)
    return float(np.mean(idle[:n]))


def _steady_rise(activity: float, chip: Chip, params: ThermalParams) -> float:
    """Steady-state mean core temperature rise over idle for an
    all-cores workload with the given activity factor."""
    network = build_network(params, chip.num_cores)
    return _steady_busy_temp(activity, chip, network) - _steady_idle_temp(chip, network)


def activity_for_rise(
    rise_fraction: float,
    *,
    chip: Optional[Chip] = None,
    thermal_params: Optional[ThermalParams] = None,
    tolerance: float = 1e-3,
) -> float:
    """Activity factor whose steady rise is ``rise_fraction`` of cpuburn's.

    Bisection on the (monotone) activity → rise map, solving the full
    nonlinear steady state including leakage feedback.
    """
    if not 0.0 < rise_fraction <= 1.0:
        raise ConfigurationError("rise_fraction must be in (0, 1]")
    chip = chip or Chip()
    params = thermal_params or ThermalParams()
    network = build_network(params, chip.num_cores)
    idle = _steady_idle_temp(chip, network)
    target = rise_fraction * (_steady_busy_temp(1.0, chip, network) - idle)
    lo, hi = 0.0, 1.0
    for _ in range(30):
        mid = 0.5 * (lo + hi)
        rise = _steady_busy_temp(mid, chip, network) - idle
        if abs(rise - target) < tolerance:
            return mid
        if rise < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


@dataclass
class SpecProfile:
    """A named benchmark with its calibrated activity factor."""

    name: str
    rise_percent: float
    activity: float


_PROFILE_CACHE: Dict[str, SpecProfile] = {}


def spec_profile(name: str) -> SpecProfile:
    """Calibrated profile for a Table 1 benchmark (cached)."""
    if name not in TABLE1_RISE_PERCENT:
        raise ConfigurationError(
            f"unknown SPEC benchmark {name!r}; choose from {sorted(TABLE1_RISE_PERCENT)}"
        )
    profile = _PROFILE_CACHE.get(name)
    if profile is None:
        rise = TABLE1_RISE_PERCENT[name]
        if name == "cpuburn":
            activity = 1.0
        else:
            activity = activity_for_rise(rise / 100.0)
        profile = SpecProfile(name=name, rise_percent=rise, activity=activity)
        _PROFILE_CACHE[name] = profile
    return profile


class SpecWorkload(Workload):
    """An endless CPU-bound loop with a benchmark's thermal profile."""

    cpu_fraction = 1.0

    def __init__(self, benchmark: str, *, chunk: float = 100.0):
        profile = spec_profile(benchmark)
        self.benchmark = benchmark
        self.activity = profile.activity
        self.chunk = chunk

    def next_burst(self) -> NextBurst:
        return Burst(cpu_time=self.chunk)

    @property
    def name(self) -> str:
        return self.benchmark


def all_benchmarks() -> list:
    """Table 1 benchmark names, hottest first (excluding cpuburn)."""
    names = [n for n in TABLE1_RISE_PERCENT if n != "cpuburn"]
    return sorted(names, key=lambda n: -TABLE1_RISE_PERCENT[n])
