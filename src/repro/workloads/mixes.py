"""Thermally heterogeneous workload combinations (§3.6, Figure 5).

The paper demonstrates per-thread control with a "cool" process (a loop
that executed cpuburn for six seconds, slept for one minute, repeated)
co-located with a "hot" process (four instances of calculix).  Global
actuation unfairly slows the cool process; per-thread actuation slows
only the heat producers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..sched.scheduler import Scheduler
from ..sched.thread import Thread
from .cpuburn import DutyCycledBurn
from .spec import SpecWorkload


@dataclass
class HotCoolMix:
    """Handles to the threads of the Figure 5 workload."""

    cool_thread: Thread
    cool_workload: DutyCycledBurn
    hot_threads: List[Thread]

    @property
    def all_threads(self) -> List[Thread]:
        return [self.cool_thread] + self.hot_threads


def build_hot_cool_mix(
    scheduler: Scheduler,
    *,
    hot_benchmark: str = "calculix",
    hot_count: int = 4,
    burn_time: float = 6.0,
    sleep_time: float = 60.0,
) -> HotCoolMix:
    """Create the paper's §3.6 mix on ``scheduler``.

    ``burn_time``/``sleep_time`` default to the paper's 6 s / 60 s; the
    fast experiment configuration shrinks them proportionally so several
    cool iterations fit in a short run.
    """
    cool_workload = DutyCycledBurn(burn_time=burn_time, sleep_time=sleep_time)
    cool_thread = Thread(cool_workload, name="cool")
    scheduler.add_thread(cool_thread)

    hot_threads = []
    for i in range(hot_count):
        thread = Thread(SpecWorkload(hot_benchmark), name=f"hot-{i}")
        scheduler.add_thread(thread)
        hot_threads.append(thread)

    return HotCoolMix(
        cool_thread=cool_thread, cool_workload=cool_workload, hot_threads=hot_threads
    )
