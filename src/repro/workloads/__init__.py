"""Workload generators: cpuburn, SPEC profiles, mixes, web serving,
traces, and time-varying load shapes."""

from .base import BLOCK, Burst, NextBurst, SyntheticWorkload, Workload
from .cpuburn import CpuBurn, DutyCycledBurn, FiniteCpuBurn
from .loadshapes import (
    ArrivalProcess,
    ConstantLoad,
    DiurnalLoad,
    LoadShape,
    MergedArrivals,
    ParetoBurstArrivals,
    PoissonArrivals,
    StepLoad,
    TraceArrivals,
    synthesize_request_trace,
)
from .mixes import HotCoolMix, build_hot_cool_mix
from .spec import (
    TABLE1_FIT,
    TABLE1_RISE_PERCENT,
    SpecProfile,
    SpecWorkload,
    activity_for_rise,
    all_benchmarks,
    spec_profile,
)
from .traces import (
    RequestTrace,
    TraceWorkload,
    synthesize_bursty_trace,
    trace_utilization,
)
from .webserver import QOS_GOOD, QOS_TOLERABLE, Request, RequestLog, WebServer

__all__ = [
    "ArrivalProcess",
    "BLOCK",
    "Burst",
    "ConstantLoad",
    "CpuBurn",
    "DiurnalLoad",
    "DutyCycledBurn",
    "FiniteCpuBurn",
    "HotCoolMix",
    "LoadShape",
    "MergedArrivals",
    "NextBurst",
    "ParetoBurstArrivals",
    "PoissonArrivals",
    "QOS_GOOD",
    "QOS_TOLERABLE",
    "Request",
    "RequestLog",
    "RequestTrace",
    "SpecProfile",
    "SpecWorkload",
    "StepLoad",
    "SyntheticWorkload",
    "TABLE1_FIT",
    "TABLE1_RISE_PERCENT",
    "TraceArrivals",
    "TraceWorkload",
    "WebServer",
    "Workload",
    "synthesize_bursty_trace",
    "synthesize_request_trace",
    "trace_utilization",
    "activity_for_rise",
    "all_benchmarks",
    "build_hot_cool_mix",
    "spec_profile",
]
