"""Workload generators: cpuburn, SPEC profiles, mixes, web serving."""

from .base import BLOCK, Burst, NextBurst, SyntheticWorkload, Workload
from .cpuburn import CpuBurn, DutyCycledBurn, FiniteCpuBurn
from .mixes import HotCoolMix, build_hot_cool_mix
from .spec import (
    TABLE1_FIT,
    TABLE1_RISE_PERCENT,
    SpecProfile,
    SpecWorkload,
    activity_for_rise,
    all_benchmarks,
    spec_profile,
)
from .traces import TraceWorkload, synthesize_bursty_trace, trace_utilization
from .webserver import QOS_GOOD, QOS_TOLERABLE, Request, RequestLog, WebServer

__all__ = [
    "BLOCK",
    "Burst",
    "CpuBurn",
    "DutyCycledBurn",
    "FiniteCpuBurn",
    "HotCoolMix",
    "NextBurst",
    "QOS_GOOD",
    "QOS_TOLERABLE",
    "Request",
    "RequestLog",
    "SpecProfile",
    "SpecWorkload",
    "SyntheticWorkload",
    "TABLE1_FIT",
    "TABLE1_RISE_PERCENT",
    "TraceWorkload",
    "WebServer",
    "Workload",
    "synthesize_bursty_trace",
    "trace_utilization",
    "activity_for_rise",
    "all_benchmarks",
    "build_hot_cool_mix",
    "spec_profile",
]
