"""Deterministic fault plans: which run fails, how, and on which attempt.

A :class:`FaultPlan` is a picklable description of the faults to
inject into one batch of runs.  Faults target runs by their
*submission index* (stable across ``--jobs N`` and across a
``--resume`` replay, because batches always submit the same specs in
the same order) and fire on chosen *attempt numbers* (by default only
the first, so a hardened runtime recovers on retry).

Four fault kinds cover the failure modes the batch runtime hardens
against:

``crash``
    The run raises :class:`InjectedFaultError` before simulating.
``hang``
    The run sleeps past any reasonable deadline; only a per-run
    timeout (which kills the worker) or a signal gets it back.
``corrupt``
    The run completes but its payload is garbled *after* its integrity
    digest was taken, so the parent detects the mismatch.
``poison``
    The run itself is untouched, but its cache entry is overwritten
    with garbage after the store — a later lookup must quarantine the
    entry and re-execute rather than serve trash.

Plans are built three ways: explicitly (:meth:`FaultPlan.parse`, the
CLI's ``--inject-faults "crash@1,hang@3:30,poison@0"`` syntax),
seeded (:meth:`FaultPlan.seeded` / ``--inject-faults
"seed=7,crash=1,hang=1"``; target indices are drawn with a
``sha256``-based PRF so the same seed always hits the same runs), or
programmatically from :class:`FaultSpec` tuples in tests.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Optional, Tuple

from ..errors import ConfigurationError

#: The recognised fault kinds.
CRASH = "crash"
HANG = "hang"
CORRUPT = "corrupt"
POISON = "poison"
FAULT_KINDS = (CRASH, HANG, CORRUPT, POISON)

#: Kinds that fire while the run executes (vs. at the cache layer).
EXECUTION_KINDS = (CRASH, HANG, CORRUPT)

#: What a garbled payload looks like after a ``corrupt`` fault.
CORRUPT_PAYLOAD = "\x00corrupt-payload\x00"

#: Bytes written over a cache entry by a ``poison`` fault.
POISON_BYTES = b"{ poisoned cache entry"


class InjectedFaultError(RuntimeError):
    """The crash deliberately raised by a ``crash`` fault.

    Derives from :class:`RuntimeError` (not :class:`~repro.errors.ReproError`)
    so the retry policy classifies it as *transient*, exactly like the
    real-world worker crashes it stands in for.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One fault: a kind, a target run, and the attempts it fires on."""

    kind: str
    run_index: int
    #: Attempt numbers (1-based) on which the fault fires; execution
    #: faults default to the first attempt only, so a retry recovers.
    attempts: Tuple[int, ...] = (1,)
    #: How long a ``hang`` sleeps (seconds of wall clock).
    hang_seconds: float = 60.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.run_index < 0:
            raise ConfigurationError(f"fault run_index must be >= 0, got {self.run_index}")
        if not self.attempts or any(a < 1 for a in self.attempts):
            raise ConfigurationError(f"fault attempts must be 1-based, got {self.attempts}")
        if self.hang_seconds <= 0:
            raise ConfigurationError(f"hang_seconds must be > 0, got {self.hang_seconds}")

    def fires_on(self, attempt: int) -> bool:
        return attempt in self.attempts

    def describe(self) -> str:
        text = f"{self.kind}@{self.run_index}"
        if self.kind == HANG:
            text += f":{self.hang_seconds:g}"
        return text


@dataclass(frozen=True)
class FaultPlan:
    """Every fault to inject into one batch, resolvable per batch size.

    An *explicit* plan carries concrete :class:`FaultSpec` entries.  A
    *seeded* plan carries counts plus a seed and picks its target
    indices only once the batch size is known (:meth:`resolve`).
    """

    faults: Tuple[FaultSpec, ...] = ()
    seed: Optional[int] = None
    crashes: int = 0
    hangs: int = 0
    corrupts: int = 0
    poisons: int = 0
    hang_seconds: float = 60.0

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from the CLI's ``--inject-faults`` string.

        Two forms::

            crash@1,hang@3:30,corrupt@2,poison@0   # explicit targets
            seed=7,crash=1,hang=2,hang_seconds=30  # seeded counts
        """
        text = text.strip()
        if not text:
            raise ConfigurationError("empty fault plan")
        if "=" in text.split(",", 1)[0]:
            return cls._parse_seeded(text)
        faults = []
        for item in text.split(","):
            item = item.strip()
            if "@" not in item:
                raise ConfigurationError(
                    f"bad fault {item!r}; expected kind@index (e.g. crash@2)"
                )
            kind, _, target = item.partition("@")
            seconds = None
            if ":" in target:
                target, _, arg = target.partition(":")
                try:
                    seconds = float(arg)
                except ValueError:
                    raise ConfigurationError(f"bad hang duration in {item!r}") from None
            try:
                index = int(target)
            except ValueError:
                raise ConfigurationError(f"bad run index in {item!r}") from None
            spec = FaultSpec(kind=kind.strip(), run_index=index)
            if seconds is not None:
                if spec.kind != HANG:
                    raise ConfigurationError(
                        f"{item!r}: only hang faults take a :seconds argument"
                    )
                spec = replace(spec, hang_seconds=seconds)
            faults.append(spec)
        return cls(faults=tuple(faults))

    @classmethod
    def _parse_seeded(cls, text: str) -> "FaultPlan":
        counts: Dict[str, float] = {}
        for item in text.split(","):
            name, eq, value = item.strip().partition("=")
            if not eq:
                raise ConfigurationError(f"bad seeded fault field {item!r}")
            try:
                counts[name.strip()] = float(value)
            except ValueError:
                raise ConfigurationError(f"bad number in fault field {item!r}") from None
        known = {"seed", "crash", "hang", "corrupt", "poison", "hang_seconds"}
        unknown = sorted(set(counts) - known)
        if unknown:
            raise ConfigurationError(f"unknown fault plan fields: {unknown}")
        if "seed" not in counts:
            raise ConfigurationError("seeded fault plan needs seed=<int>")
        return cls(
            seed=int(counts["seed"]),
            crashes=int(counts.get("crash", 0)),
            hangs=int(counts.get("hang", 0)),
            corrupts=int(counts.get("corrupt", 0)),
            poisons=int(counts.get("poison", 0)),
            hang_seconds=counts.get("hang_seconds", 60.0),
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        crashes: int = 0,
        hangs: int = 0,
        corrupts: int = 0,
        poisons: int = 0,
        hang_seconds: float = 60.0,
    ) -> "FaultPlan":
        return cls(
            seed=seed,
            crashes=crashes,
            hangs=hangs,
            corrupts=corrupts,
            poisons=poisons,
            hang_seconds=hang_seconds,
        )

    # ------------------------------------------------------------------
    def resolve(self, total_runs: int) -> "FaultPlan":
        """A concrete plan for a batch of ``total_runs`` runs.

        Explicit plans validate their indices; seeded plans draw
        distinct target indices with a deterministic ``sha256`` PRF, so
        the same (seed, batch size) always faults the same runs.
        """
        if self.seed is None:
            for fault in self.faults:
                if fault.run_index >= total_runs:
                    raise ConfigurationError(
                        f"fault {fault.describe()} targets run {fault.run_index} "
                        f"but the batch has only {total_runs} runs"
                    )
            return self
        wanted = self.crashes + self.hangs + self.corrupts + self.poisons
        if wanted > total_runs:
            raise ConfigurationError(
                f"fault plan wants {wanted} distinct target runs "
                f"but the batch has only {total_runs}"
            )
        available = list(range(total_runs))
        faults = []
        slot = 0
        for kind, count in (
            (CRASH, self.crashes),
            (HANG, self.hangs),
            (CORRUPT, self.corrupts),
            (POISON, self.poisons),
        ):
            for _ in range(count):
                digest = hashlib.sha256(
                    f"{self.seed}:{slot}:{total_runs}".encode()
                ).digest()
                index = available.pop(int.from_bytes(digest[:8], "big") % len(available))
                faults.append(
                    FaultSpec(kind=kind, run_index=index, hang_seconds=self.hang_seconds)
                )
                slot += 1
        return FaultPlan(faults=tuple(faults))

    # ------------------------------------------------------------------
    def fault_for(self, run_index: int, attempt: int) -> Optional[FaultSpec]:
        """The execution fault (crash/hang/corrupt) armed for one attempt."""
        for fault in self.faults:
            if (
                fault.kind in EXECUTION_KINDS
                and fault.run_index == run_index
                and fault.fires_on(attempt)
            ):
                return fault
        return None

    @property
    def poison_targets(self) -> FrozenSet[int]:
        """Run indices whose cache entry gets poisoned after the store."""
        return frozenset(f.run_index for f in self.faults if f.kind == POISON)

    def describe(self) -> str:
        if self.seed is not None:
            return (
                f"seed={self.seed},crash={self.crashes},hang={self.hangs},"
                f"corrupt={self.corrupts},poison={self.poisons}"
            )
        return ",".join(fault.describe() for fault in self.faults) or "(no faults)"


# ----------------------------------------------------------------------
# Fault actions (called from the batch runtime)
# ----------------------------------------------------------------------
def fire_execution_fault(fault: FaultSpec) -> None:
    """Apply a pre-run fault: crash now, or hang until killed.

    ``corrupt`` faults act on the *result* (see :func:`garble_result`)
    and are a no-op here.
    """
    if fault.kind == CRASH:
        raise InjectedFaultError(
            f"injected crash (run {fault.run_index}, attempts {fault.attempts})"
        )
    if fault.kind == HANG:
        # Sleep in slices so signals (SIGALRM deadline, SIGTERM from a
        # parent killing the worker, SIGINT) interrupt promptly.
        deadline = time.monotonic() + fault.hang_seconds
        while time.monotonic() < deadline:
            time.sleep(min(0.05, max(0.0, deadline - time.monotonic())))


def garble_result(fault: FaultSpec, result: object) -> object:
    """The payload a ``corrupt`` fault delivers instead of ``result``."""
    if fault.kind != CORRUPT:
        return result
    return CORRUPT_PAYLOAD


def poison_cache_entry(cache, key: str) -> bool:
    """Overwrite ``key``'s stored entry with garbage bytes.

    Returns True when an entry existed and was poisoned.  The next
    ``get()`` must detect the corruption, quarantine the file, and
    report a miss so the run is re-executed.
    """
    path = cache.path(key)
    if not path.exists():
        return False
    path.write_bytes(POISON_BYTES)
    return True
