"""Deterministic, seedable fault injection for the batch runtime.

This package exists to *prove* the hardening in :mod:`repro.runtime`
works rather than hope it does: a :class:`FaultPlan` makes chosen runs
crash, hang past their deadline, return corrupt payloads, or have
their cache entries poisoned — all deterministically, so the fault
matrix tests and the CI chaos job assert exact recovery behaviour.

Faults travel to worker processes inside
:class:`~repro.runtime.RunSpec` (a field excluded from the cache key,
so arming a fault never changes what a run *is*), which is why the
injection composes with ``--jobs N``, ``--resume``, and caching.

See ``docs/robustness.md`` for the fault model.
"""

from .plan import (
    CORRUPT,
    CORRUPT_PAYLOAD,
    CRASH,
    FAULT_KINDS,
    HANG,
    POISON,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    fire_execution_fault,
    garble_result,
    poison_cache_entry,
)

__all__ = [
    "CORRUPT",
    "CORRUPT_PAYLOAD",
    "CRASH",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "HANG",
    "InjectedFaultError",
    "POISON",
    "fire_execution_fault",
    "garble_result",
    "poison_cache_entry",
]
