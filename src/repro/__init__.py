"""Dimetrodon reproduction: preventive thermal management via idle
cycle injection, on a fully simulated server testbed.

Reproduces Bailis, Reddi, Gandhi, Brooks & Seltzer, *Dimetrodon:
Processor-level Preventive Thermal Management via Idle Cycle
Injection*, DAC 2011 — including every substrate the paper's
evaluation depends on: a discrete-event OS scheduler, a multicore
power model with C-states/DVFS/clock-modulation, an RC thermal model
with leakage feedback, and the paper's workloads.

Quickstart
----------
>>> from repro import fast_config, Machine, CpuBurn
>>> machine = Machine(fast_config())
>>> for i in range(4):
...     _ = machine.scheduler.spawn(CpuBurn(), name=f"burn-{i}")
>>> machine.control.set_global_policy(p=0.5, idle_quantum=0.010)
>>> machine.run(80.0)
>>> machine.temp_rise_over_idle()  # doctest: +SKIP
11.3
"""

from .analysis import CoolingModel, ReliabilityModel
from .core import (
    BernoulliInjectionPolicy,
    DeterministicInjectionPolicy,
    IdleInjector,
    IdleMode,
    NoInjectionPolicy,
    PolicyTable,
    PowerCapController,
    ReactiveThrottleController,
    ThermalSetpointController,
    TradeoffPoint,
    fit_power_law,
    pareto_boundary,
    predicted_energy,
    predicted_runtime,
    predicted_throughput_factor,
)
from .cpu import Chip, CState, CStateParams, DvfsTable, PowerModel, PowerParams, TccSetting
from .experiments import (
    ExperimentConfig,
    Machine,
    default_config,
    fast_config,
    fig1_power_trace,
    fig2_temperature_timeseries,
    fig3_efficiency,
    fig4_technique_comparison,
    fig5_per_thread_control,
    fig6_webserver_qos,
    full_config,
    run_characterization,
    run_finite_cpuburn,
    sweep_dimetrodon,
    sweep_tcc,
    sweep_vfs,
    table1_spec_workloads,
    validate_energy_model,
    validate_throughput_model,
)
from .fleet import (
    FleetMachine,
    MigrationPolicy,
    RoundRobinBalancer,
    ThermalBalancer,
    build_policy,
    fleet_compare_experiment,
    fleet_experiment,
)
from .runtime import (
    ParallelRunner,
    ResultCache,
    RunnerMetrics,
    RunSpec,
    characterization_spec,
    finite_cpuburn_spec,
)
from .sched import DimetrodonControl, Scheduler, Thread, ThreadKind
from .sim import Simulator
from .telemetry import MetricsRegistry, RunManifest
from .thermal import ThermalNetwork, ThermalParams
from .workloads import (
    CpuBurn,
    DutyCycledBurn,
    FiniteCpuBurn,
    SpecWorkload,
    TraceWorkload,
    WebServer,
    Workload,
)

__version__ = "1.0.0"

__all__ = [
    "BernoulliInjectionPolicy",
    "Chip",
    "CoolingModel",
    "PowerCapController",
    "ReactiveThrottleController",
    "ReliabilityModel",
    "TraceWorkload",
    "CpuBurn",
    "CState",
    "CStateParams",
    "DeterministicInjectionPolicy",
    "DimetrodonControl",
    "DutyCycledBurn",
    "DvfsTable",
    "ExperimentConfig",
    "FiniteCpuBurn",
    "FleetMachine",
    "MigrationPolicy",
    "IdleInjector",
    "IdleMode",
    "Machine",
    "MetricsRegistry",
    "NoInjectionPolicy",
    "ParallelRunner",
    "PolicyTable",
    "PowerModel",
    "PowerParams",
    "ResultCache",
    "RoundRobinBalancer",
    "RunManifest",
    "RunSpec",
    "RunnerMetrics",
    "Scheduler",
    "Simulator",
    "SpecWorkload",
    "TccSetting",
    "ThermalBalancer",
    "ThermalNetwork",
    "ThermalParams",
    "ThermalSetpointController",
    "Thread",
    "ThreadKind",
    "TradeoffPoint",
    "WebServer",
    "Workload",
    "build_policy",
    "characterization_spec",
    "default_config",
    "fast_config",
    "finite_cpuburn_spec",
    "fig1_power_trace",
    "fig2_temperature_timeseries",
    "fig3_efficiency",
    "fig4_technique_comparison",
    "fig5_per_thread_control",
    "fig6_webserver_qos",
    "fit_power_law",
    "fleet_compare_experiment",
    "fleet_experiment",
    "full_config",
    "pareto_boundary",
    "predicted_energy",
    "predicted_runtime",
    "predicted_throughput_factor",
    "run_characterization",
    "run_finite_cpuburn",
    "sweep_dimetrodon",
    "sweep_tcc",
    "sweep_vfs",
    "table1_spec_workloads",
    "validate_energy_model",
    "validate_throughput_model",
    "__version__",
]
