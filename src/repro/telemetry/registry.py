"""Process-local metrics registry: counters, gauges, timers, histograms.

Every layer of the simulation stack publishes operational metrics here:
the event engine counts dispatches and virtual time, the scheduler and
injector count dispatches/injections, the thermal integrator counts
substeps, and the batch runtime counts cache traffic and worker
retries.  Metrics are cheap plain-Python objects — a hot path holds a
reference to its :class:`Counter` and increments an attribute — so the
instrumented code stays fast and dependency-free.

The registry is *process-local*.  One module-level registry is current
at any time (:func:`registry`); components bind their metrics to the
registry that is current when they are constructed.  Worker processes
and per-run execution wrap each run in :func:`isolated`, which swaps in
a fresh registry, and the resulting :meth:`MetricsRegistry.snapshot` is
merged back into the parent's registry — so a ``--jobs N`` sweep
aggregates to exactly the counters a serial sweep would have produced.

Merge semantics per kind:

========= =============================================
counter   values add
gauge     maximum wins (workers finish in no fixed order)
timer     totals and counts add
histogram counts/sums add, min/max combine
========= =============================================
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Union

from ..errors import TelemetryError

Number = Union[int, float]


class Counter:
    """A monotonically increasing count (int or float)."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def snapshot(self) -> Number:
        return self.value

    def merge(self, value: Number) -> None:
        self.value += value


class Gauge:
    """A point-in-time value; ``None`` until first set."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def snapshot(self) -> Optional[Number]:
        return self.value

    def merge(self, value: Optional[Number]) -> None:
        if value is None:
            return
        self.value = value if self.value is None else max(self.value, value)


class Timer:
    """Accumulated wall-clock seconds over timed blocks."""

    __slots__ = ("name", "total", "count")
    kind = "timer"

    def __init__(self, name: str):
        self.name = name
        self.total = 0.0
        self.count = 0

    @contextmanager
    def time(self) -> Iterator[None]:
        started = _time.perf_counter()
        try:
            yield
        finally:
            self.add(_time.perf_counter() - started)

    def add(self, seconds: float) -> None:
        if seconds < 0:
            raise TelemetryError(f"timer {self.name!r} cannot record {seconds}s")
        self.total += seconds
        self.count += 1

    def snapshot(self) -> Dict[str, Number]:
        return {"total": self.total, "count": self.count}

    def merge(self, value: Dict[str, Number]) -> None:
        self.total += value["total"]
        self.count += value["count"]


class Histogram:
    """A streaming summary of observed values: count/sum/min/max."""

    __slots__ = ("name", "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise TelemetryError(f"histogram {self.name!r} has no observations")
        return self.sum / self.count

    def snapshot(self) -> Dict[str, Any]:
        return {"count": self.count, "sum": self.sum, "min": self.min, "max": self.max}

    def merge(self, value: Dict[str, Any]) -> None:
        self.count += value["count"]
        self.sum += value["sum"]
        for bound, pick in (("min", min), ("max", max)):
            other = value[bound]
            if other is None:
                continue
            current = getattr(self, bound)
            setattr(self, bound, other if current is None else pick(current, other))


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Timer, Histogram)}


class MetricsScope:
    """A dot-prefixing view over a registry (``scope.counter("x")``
    resolves to ``registry.counter("prefix.x")``)."""

    __slots__ = ("_registry", "prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str):
        self._registry = registry
        self.prefix = prefix

    def counter(self, name: str) -> Counter:
        return self._registry.counter(f"{self.prefix}.{name}")

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(f"{self.prefix}.{name}")

    def timer(self, name: str) -> Timer:
        return self._registry.timer(f"{self.prefix}.{name}")

    def histogram(self, name: str) -> Histogram:
        return self._registry.histogram(f"{self.prefix}.{name}")

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self._registry, f"{self.prefix}.{prefix}")


class MetricsRegistry:
    """A named collection of metrics with snapshot/merge aggregation."""

    def __init__(self):
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TelemetryError(
                f"metric {name!r} is already registered as a {metric.kind}, "
                f"not a {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def scope(self, prefix: str) -> MetricsScope:
        return MetricsScope(self, prefix)

    # ------------------------------------------------------------------
    def value(self, name: str, default: Any = None) -> Any:
        """The snapshot value of one metric, or ``default`` if absent."""
        metric = self._metrics.get(name)
        return default if metric is None else metric.snapshot()

    def counters(self) -> Dict[str, Number]:
        """Flat name → value view of just the counters, sorted by name."""
        return {
            name: metric.value
            for name, metric in sorted(self._metrics.items())
            if isinstance(metric, Counter)
        }

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A JSON-serialisable dump of every metric, sorted by name."""
        return {
            name: {"kind": metric.kind, "value": metric.snapshot()}
            for name, metric in sorted(self._metrics.items())
        }

    def merge(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this registry."""
        for name, entry in snapshot.items():
            try:
                cls = _KINDS[entry["kind"]]
            except (KeyError, TypeError):
                raise TelemetryError(
                    f"snapshot entry {name!r} has an unknown metric kind"
                ) from None
            self._get(name, cls).merge(entry["value"])

    def clear(self) -> None:
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics


# ----------------------------------------------------------------------
# The process-local current registry
# ----------------------------------------------------------------------
_current = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The registry new components bind their metrics to."""
    return _current


def set_registry(reg: MetricsRegistry) -> MetricsRegistry:
    """Install ``reg`` as current; returns the previous registry."""
    global _current
    previous = _current
    _current = reg
    return previous


@contextmanager
def isolated(reg: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Run a block against a fresh (or given) registry, then restore.

    This is how one run's metrics are separated from everything else in
    the process: the batch runtime wraps every ``execute_spec`` call in
    ``isolated()`` and merges the resulting snapshot into the parent
    registry, in workers and in-process alike.
    """
    fresh = reg if reg is not None else MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)
