"""JSON run manifests: what ran, under what code, with what metrics.

A manifest is the audit record the CLI writes next to a run's results
(``--metrics <path>``): which experiments ran, the config hash and
seed, the simulation-code fingerprint, the git state of the checkout,
per-experiment wall timings, the batch runner's counters, and the full
aggregated metrics-registry snapshot.  Two manifests with equal
``config_hash``/``code_fingerprint`` describe runs whose simulated
outputs are bit-identical, whatever ``--jobs`` was.
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import TelemetryError

#: Bump when the manifest payload layout changes.
#: 2: added the structured ``health`` section (thermal alerting).
MANIFEST_SCHEMA_VERSION = 2


def git_describe(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """``git describe --always --dirty`` for the checkout, or None.

    Returns None (rather than raising) when git is unavailable or the
    directory is not a repository, so manifests can always be written.
    """
    try:
        proc = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            capture_output=True,
            text=True,
            cwd=str(cwd) if cwd is not None else None,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


@dataclasses.dataclass
class RunManifest:
    """Everything needed to identify and audit one batch invocation."""

    #: Experiment names, in execution order.
    experiments: List[str]
    #: The experiment RNG seed.
    seed: int
    #: SHA-256 over the frozen ExperimentConfig (see runtime.hashing).
    config_hash: str
    #: SHA-256 over the simulation-relevant source files.
    code_fingerprint: str
    #: Worker processes the batch ran with.
    jobs: int = 1
    #: Whether this invocation resumed an interrupted sweep's journal.
    resumed: bool = False
    #: ``git describe`` of the checkout, when available.
    git: Optional[str] = None
    #: ISO-8601 wall-clock timestamp of the invocation.
    created: Optional[str] = None
    #: Per-experiment wall seconds.
    timings: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: RunnerMetrics counters (submitted/executed/cache_hits/...).
    runner: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: CacheStats counters, or None when caching was disabled.
    cache: Optional[Dict[str, Any]] = None
    #: FailureReport.to_dict() when any attempt failed, else None.
    failures: Optional[Dict[str, Any]] = None
    #: Aggregated MetricsRegistry snapshot for the whole invocation.
    metrics: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Per-experiment structured artifacts (``name -> payload``) from
    #: results exposing ``manifest_payload()`` — e.g. the ``scenarios``
    #: experiment's per-window SLO series and Pareto tables.  Payloads
    #: must be strict JSON (no NaN/Inf; ``None`` is the no-data marker).
    artifacts: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Per-experiment thermal-health sections (``name -> payload``) from
    #: results exposing ``health_payload()``: monitoring config (trip
    #: temperatures, hysteresis, monitor period, sensor model,
    #: controller ladder), alert counts, per-state dwell times,
    #: since-boot flags.  Strict JSON like ``artifacts``.
    health: Dict[str, Any] = dataclasses.field(default_factory=dict)
    schema: int = MANIFEST_SCHEMA_VERSION

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True) + "\n"

    def write(self, path: Union[str, Path]) -> Path:
        """Atomically write the manifest as pretty-printed JSON."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".tmp-{path.name}")
        tmp.write_text(self.to_json())
        tmp.replace(path)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        """Read a manifest back; raises :class:`TelemetryError` on any
        unreadable, malformed, or wrong-schema file."""
        try:
            payload = json.loads(Path(path).read_text())
        except OSError as err:
            raise TelemetryError(f"cannot read manifest {path}: {err}") from None
        except ValueError as err:
            raise TelemetryError(f"manifest {path} is not valid JSON: {err}") from None
        if not isinstance(payload, dict):
            raise TelemetryError(f"manifest {path} is not a JSON object")
        if payload.get("schema") != MANIFEST_SCHEMA_VERSION:
            raise TelemetryError(
                f"manifest {path} has schema {payload.get('schema')!r}; "
                f"this build reads schema {MANIFEST_SCHEMA_VERSION}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise TelemetryError(f"manifest {path} has unknown fields: {unknown}")
        missing = sorted(
            f.name
            for f in dataclasses.fields(cls)
            if f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
            and f.name not in payload
        )
        if missing:
            raise TelemetryError(f"manifest {path} is missing fields: {missing}")
        return cls(**payload)
