"""Observability spine: process-local metrics and run manifests.

Two pieces:

- :mod:`repro.telemetry.registry` — a metrics registry (counters,
  gauges, timers, histograms) with named scopes.  The simulation
  engine, scheduler, injector, thermal integrator, and batch runtime
  all publish here; worker processes snapshot their registry and the
  parent merges, so pool runs aggregate to exactly the serial counts.
- :mod:`repro.telemetry.manifest` — the JSON run manifest the CLI
  writes (``--metrics``): config hash, seed, code fingerprint, git
  state, timings, and the aggregated metrics snapshot.

This package sits at the bottom of the dependency stack (it imports
only :mod:`repro.errors`), so any layer may use it freely.

See ``docs/telemetry.md`` for the metric name catalogue and usage.
"""

from .manifest import MANIFEST_SCHEMA_VERSION, RunManifest, git_describe
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsScope,
    Timer,
    isolated,
    registry,
    set_registry,
)

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "RunManifest",
    "Timer",
    "git_describe",
    "isolated",
    "registry",
    "set_registry",
]
