"""Coroutine-style simulated processes and timer helpers.

The scheduler itself is written in direct callback style for speed, but
workload drivers (request generators, duty-cycled processes, closed-loop
controllers) read much more naturally as generators that ``yield``
delays.  :class:`Process` runs such a generator on a
:class:`~repro.sim.engine.Simulator`.

Example
-------
>>> def blinker(sim, log):
...     while True:
...         log.append(sim.now)
...         yield 1.0
>>> sim = Simulator()
>>> log = []
>>> Process(sim, blinker(sim, log))   # doctest: +ELLIPSIS
<Process ...>
>>> sim.run(until=3.5)
>>> log
[0.0, 1.0, 2.0, 3.0]
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..errors import SimulationError
from .engine import Event, Simulator

#: A simulated process body: a generator yielding delays in seconds.
ProcessBody = Generator[float, None, None]


class Process:
    """Drive a generator as a simulated process.

    The generator yields non-negative delays (seconds); the process
    resumes after each delay.  When the generator returns, the process
    is finished.  Call :meth:`stop` to cancel it early.
    """

    def __init__(self, sim: Simulator, body: ProcessBody, *, start_delay: float = 0.0):
        self._sim = sim
        self._body = body
        self._finished = False
        self._stopped = False
        self._pending: Optional[Event] = sim.schedule(start_delay, self._resume)

    @property
    def finished(self) -> bool:
        """True once the generator has returned or the process was stopped."""
        return self._finished

    def stop(self) -> None:
        """Cancel the process; the generator is closed immediately."""
        if self._finished:
            return
        self._stopped = True
        self._finished = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._body.close()

    def _resume(self) -> None:
        if self._finished:
            return
        self._pending = None
        try:
            delay = next(self._body)
        except StopIteration:
            self._finished = True
            return
        if delay is None or delay < 0:
            self._finished = True
            self._body.close()
            raise SimulationError(f"process yielded invalid delay {delay!r}")
        self._pending = self._sim.schedule(delay, self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self._finished else "running"
        return f"<Process {state} at t={self._sim.now:.6f}>"


class PeriodicTask:
    """Invoke a callback at a fixed simulated period.

    Used for instrument sampling (temperature logs) and the closed-loop
    controller.  The first invocation happens after ``phase`` seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        *,
        phase: Optional[float] = None,
    ):
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._cancelled = False
        first = period if phase is None else phase
        self._event: Optional[Event] = sim.schedule(first, self._fire)

    @property
    def period(self) -> float:
        return self._period

    def cancel(self) -> None:
        """Stop future invocations. Idempotent."""
        self._cancelled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._callback()
        if not self._cancelled:
            self._event = self._sim.schedule(self._period, self._fire)
