"""Deterministic named random-number streams.

Every stochastic component in the simulation (the Bernoulli injection
decision, request inter-arrival times, sensor noise, ...) draws from its
own named stream.  Streams are derived from a single experiment seed via
:class:`numpy.random.SeedSequence`, so:

- two runs with the same seed are bit-identical,
- changing one component's consumption pattern does not perturb the
  random sequences seen by the others, and
- sweeping a parameter keeps the workload randomness fixed, which makes
  Pareto frontiers smooth instead of noisy.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _stable_stream_key(name: str) -> int:
    """Map a stream name to a stable 64-bit integer.

    Python's builtin ``hash`` is salted per process, so we use SHA-256.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory of deterministic, independently-seeded RNG streams."""

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The experiment-level seed this registry was built from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the same generator
        object, so consumption is cumulative within a run.
        """
        generator = self._streams.get(name)
        if generator is None:
            seq = np.random.SeedSequence([self._seed, _stable_stream_key(name)])
            generator = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = generator
        return generator

    def spawn(self, salt: int) -> "RngRegistry":
        """Derive an independent registry (e.g. per repetition of a trial)."""
        return RngRegistry(seed=(self._seed * 1_000_003 + int(salt)) & 0x7FFFFFFF)
