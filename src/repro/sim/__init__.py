"""Discrete-event simulation substrate (engine, RNG streams, processes)."""

from .engine import Event, Simulator
from .process import PeriodicTask, Process
from .rng import RngRegistry

__all__ = ["Event", "Simulator", "PeriodicTask", "Process", "RngRegistry"]
