"""Discrete-event simulation engine.

The engine is a classic calendar queue: callbacks are scheduled at
absolute simulated times and dispatched in time order.  Ties are broken
by insertion order so runs are fully deterministic.

The scheduler, workloads, and instruments all run on top of this engine;
the thermal model is advanced *lazily* between events by the machine
model (see :mod:`repro.experiments.machine`), so the engine itself knows
nothing about physics.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError
from ..telemetry.registry import registry as _metrics_registry


@dataclass(order=True)
class _QueueEntry:
    """Internal heap entry. Ordered by (time, sequence number)."""

    time: float
    seq: int
    event: "Event" = field(compare=False)


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and can be cancelled.  A cancelled
    event stays in the heap but is skipped at dispatch time (lazy
    deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "callback", "args", "cancelled", "dispatched")

    def __init__(self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.dispatched = False

    def cancel(self) -> None:
        """Prevent this event from firing. Idempotent."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not (self.cancelled or self.dispatched)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("done" if self.dispatched else "pending")
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock, in seconds.

    Notes
    -----
    Components may register *advance listeners* via
    :meth:`add_advance_listener`; each listener is invoked as
    ``listener(previous_time, new_time)`` immediately before the clock
    moves forward to dispatch the next event.  The machine model uses
    this to integrate the thermal network over every inter-event gap,
    so no physics is skipped no matter how sparse the event stream is.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: List[_QueueEntry] = []
        self._seq = itertools.count()
        self._advance_listeners: List[Callable[[float, float], None]] = []
        self._running = False
        self._event_count = 0
        # Metrics bind to the registry current at construction time, so
        # a simulator built inside telemetry.isolated() reports there.
        scope = _metrics_registry().scope("sim.engine")
        self._metric_events = scope.counter("events")
        self._metric_virtual_time = scope.counter("virtual_time")
        self._metric_run_wall = scope.timer("run_wall")

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def event_count(self) -> int:
        """Number of events dispatched so far."""
        return self._event_count

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay}s in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.9f}, clock is already at {self._now:.9f}"
            )
        event = Event(time, callback, args)
        heapq.heappush(self._heap, _QueueEntry(time, next(self._seq), event))
        return event

    def add_advance_listener(self, listener: Callable[[float, float], None]) -> None:
        """Register ``listener(old_time, new_time)`` for clock advances."""
        self._advance_listeners.append(listener)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek_next_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._heap and self._heap[0].event.cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def step(self) -> bool:
        """Dispatch the next pending event.

        Returns True if an event ran, False if the queue was empty.
        """
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.event.cancelled:
                continue
            self._dispatch(entry.event)
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run events in order until the queue empties or ``until``.

        If ``until`` is given, all events with ``time <= until`` are
        dispatched and the clock is left exactly at ``until`` (advance
        listeners see the final partial interval too).

        Each dispatched event costs exactly one ``heappop``: the loop
        inspects the heap head in place instead of going through
        :meth:`peek_next_time` (which pops cancelled entries) and then
        popping again in :meth:`step`.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            with self._metric_run_wall.time():
                heap = self._heap
                while heap:
                    entry = heap[0]
                    if entry.event.cancelled:
                        heapq.heappop(heap)
                        continue
                    if until is not None and entry.time > until:
                        break
                    heapq.heappop(heap)
                    self._dispatch(entry.event)
                if until is not None:
                    if until < self._now:
                        raise SimulationError(
                            f"run(until={until}) but clock already at {self._now}"
                        )
                    self._advance_clock(until)
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _dispatch(self, event: Event) -> None:
        """Advance the clock to an event (already popped) and fire it."""
        self._advance_clock(event.time)
        event.dispatched = True
        self._event_count += 1
        self._metric_events.inc()
        event.callback(*event.args)

    def _advance_clock(self, new_time: float) -> None:
        if new_time < self._now:
            raise SimulationError("clock went backwards")
        if new_time == self._now:
            return
        old = self._now
        self._metric_virtual_time.inc(new_time - old)
        for listener in self._advance_listeners:
            listener(old, new_time)
        self._now = new_time
