"""Small statistics helpers shared by experiments and reports."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import AnalysisError


def relative_reduction(baseline: float, value: float, floor: float) -> float:
    """Reduction of ``value`` below ``baseline``, normalised by the
    distance from ``baseline`` down to ``floor``.

    This is the paper's temperature-reduction metric (§3.4): "an idle
    temperature of 40°C, an unconstrained temperature 60°C, and a
    resulting temperature of 50°C would constitute a 50% reduction in
    temperature over idle" — i.e. (60-50)/(60-40).
    """
    span = baseline - floor
    if span <= 0:
        raise AnalysisError(
            f"baseline ({baseline}) must exceed the floor ({floor}) "
            "for a relative reduction to be meaningful"
        )
    return (baseline - value) / span


def throughput_reduction(baseline_work: float, work: float) -> float:
    """Fractional throughput loss relative to a baseline."""
    if baseline_work <= 0:
        raise AnalysisError("baseline work must be positive")
    return 1.0 - work / baseline_work


def efficiency(temp_reduction: float, tput_reduction: float) -> float:
    """The paper's efficiency metric: temperature : throughput ratio.

    A 16:1 efficiency means 16 % temperature reduction per 1 % of
    throughput given up (Figure 3's y-axis).  Returns ``inf`` for free
    cooling (no throughput loss).
    """
    if tput_reduction <= 0:
        return float("inf") if temp_reduction > 0 else 0.0
    return temp_reduction / tput_reduction


def summarize(values: Sequence[float]) -> dict:
    """Mean/std/min/max summary used in text reports."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise AnalysisError("cannot summarise an empty sequence")
    return {
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "max": float(arr.max()),
        "n": int(arr.size),
    }
