"""Scheduler event tracing.

The scheduler emits structured events (dispatches, injections, idle
transitions, preemptions, exits) to registered listeners;
:class:`SchedulerTracer` collects them and can render a compact
per-core timeline — the tool you reach for when a policy behaves
unexpectedly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import AnalysisError


@dataclass(frozen=True)
class SchedEvent:
    """One scheduler event."""

    time: float
    kind: str  # run | slice_end | inject | inject_end | idle | preempt | exit | wake
    core: Optional[int] = None
    context: Optional[int] = None
    tid: Optional[int] = None
    thread: Optional[str] = None


class SchedulerTracer:
    """Collects scheduler events; attach via ``scheduler.event_listeners``."""

    def __init__(self, *, max_events: int = 200_000):
        if max_events <= 0:
            raise AnalysisError("max_events must be positive")
        self.max_events = max_events
        self.events: List[SchedEvent] = []
        self.dropped = 0

    def __call__(self, event: SchedEvent) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[SchedEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_thread(self, tid: int) -> List[SchedEvent]:
        return [e for e in self.events if e.tid == tid]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    # ------------------------------------------------------------------
    def timeline(
        self, *, start: float = 0.0, end: Optional[float] = None, limit: int = 60
    ) -> str:
        """Human-readable event log for a window."""
        end_time = end if end is not None else float("inf")
        lines = []
        for event in self.events:
            if not start <= event.time <= end_time:
                continue
            where = ""
            if event.core is not None:
                where = f"core{event.core}"
                if event.context is not None:
                    where += f".{event.context}"
            who = event.thread or (f"tid{event.tid}" if event.tid is not None else "")
            lines.append(f"{event.time * 1e3:10.3f}ms  {event.kind:<11s} {where:<8s} {who}")
            if len(lines) >= limit:
                lines.append(f"... (truncated at {limit} events)")
                break
        return "\n".join(lines) if lines else "(no events in window)"
