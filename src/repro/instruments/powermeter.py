"""Simulated processor power measurement.

The paper clamps a Fluke i410 current probe around the processor power
leads and logs through a Keithley 2701 DMM at three samples per
millisecond (§3.2), quoting ≈3.5 % clamp accuracy (§3.3).

The simulated meter receives exact per-segment average powers from the
thermal integrator (so *energy accounting is exact*), and can replay
the trace as a fixed-rate sample stream with optional clamp gain error
for Figure 1 and the §3.3 energy-validation methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import AnalysisError


@dataclass
class PowerSegment:
    """One homogeneous span of package power."""

    start: float
    duration: float
    power: float


class PowerMeter:
    """Collects exact power segments; resamples like a clamp+DMM."""

    def __init__(
        self,
        *,
        clamp_gain_error: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if clamp_gain_error < 0:
            raise AnalysisError("clamp gain error must be non-negative")
        if clamp_gain_error > 0 and rng is None:
            raise AnalysisError("a noisy clamp needs an RNG stream")
        self._starts: list = []
        self._durations: list = []
        self._powers: list = []
        #: Per-run multiplicative gain error (drawn once, like a real
        #: clamp's calibration offset).
        self.gain = 1.0
        if clamp_gain_error > 0:
            self.gain = float(1.0 + rng.normal(0.0, clamp_gain_error))

    # ------------------------------------------------------------------
    def record_segment(self, start: float, duration: float, power: float) -> None:
        """Record an exact segment (called by the machine's integrator)."""
        if duration <= 0:
            return
        self._starts.append(start)
        self._durations.append(duration)
        self._powers.append(power)

    @property
    def num_segments(self) -> int:
        return len(self._starts)

    def segments(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            np.asarray(self._starts),
            np.asarray(self._durations),
            np.asarray(self._powers),
        )

    def iter_segments(self):
        """Yield the recorded trace as :class:`PowerSegment` objects."""
        for start, duration, power in zip(self._starts, self._durations, self._powers):
            yield PowerSegment(start=start, duration=duration, power=power)

    # ------------------------------------------------------------------
    def energy(self, start: float = -np.inf, end: float = np.inf) -> float:
        """Exact energy (J) delivered in [start, end], pro-rating
        segments that straddle the window edges."""
        starts, durations, powers = self.segments()
        if starts.size == 0:
            return 0.0
        ends = starts + durations
        overlap = np.clip(np.minimum(ends, end) - np.maximum(starts, start), 0.0, None)
        return float(np.sum(overlap * powers))

    def average_power(self, start: float, end: float) -> float:
        if end <= start:
            raise AnalysisError("average_power needs end > start")
        return self.energy(start, end) / (end - start)

    def resample(self, period: float, *, end: Optional[float] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Fixed-rate sample stream like the DMM would log.

        Each sample is the window-averaged power over one period,
        scaled by the clamp gain.  Returns (sample_times, watts).
        """
        if period <= 0:
            raise AnalysisError("sample period must be positive")
        starts, durations, powers = self.segments()
        if starts.size == 0:
            return np.array([]), np.array([])
        t0 = starts[0]
        data_end = float(starts[-1] + durations[-1])
        t1 = min(end, data_end) if end is not None else data_end
        # Only whole windows that lie inside the recorded data.
        n_windows = int(np.floor((t1 - t0) / period + 1e-9))
        if n_windows < 1:
            return np.array([]), np.array([])
        edges = t0 + period * np.arange(n_windows + 1)
        # Cumulative energy at segment boundaries -> energy per window.
        seg_ends = starts + durations
        cum_energy = np.concatenate([[0.0], np.cumsum(durations * powers)])

        def energy_at(t: np.ndarray) -> np.ndarray:
            idx = np.searchsorted(seg_ends, t, side="left")
            idx = np.clip(idx, 0, len(starts) - 1)
            base = cum_energy[idx]
            partial = np.clip(t - starts[idx], 0.0, durations[idx]) * powers[idx]
            return base + partial

        window_energy = np.diff(energy_at(edges))
        watts = self.gain * window_energy / period
        return edges[:-1] + period / 2.0, watts
