"""Periodic temperature logging (the ``coretemp`` poller).

The paper reads per-core temperatures from the FreeBSD ``coretemp``
module and reports averages over trailing windows (e.g. "the average
temperature over the last 30 seconds of a 300 second execution",
§3.4).  :class:`TemperatureLog` samples a reader callback at a fixed
period and provides exactly those window statistics.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..errors import AnalysisError
from ..sim.engine import Simulator
from ..sim.process import PeriodicTask


class TemperatureLog:
    """Samples per-core temperatures on a fixed period."""

    def __init__(
        self,
        sim: Simulator,
        reader: Callable[[], np.ndarray],
        *,
        period: float = 1.0,
        num_cores: Optional[int] = None,
    ):
        if period <= 0:
            raise AnalysisError("sample period must be positive")
        if num_cores is not None and num_cores < 1:
            raise AnalysisError("num_cores must be positive when given")
        self.period = period
        #: Width of the sample rows; learned from the first sample when
        #: not passed explicitly (it shapes the empty-log array).
        self.num_cores = num_cores
        self._sim = sim
        self._reader = reader
        self._times: List[float] = []
        self._samples: List[np.ndarray] = []
        self._task = PeriodicTask(sim, period, self._sample, phase=0.0)

    def _sample(self) -> None:
        sample = np.asarray(self._reader(), dtype=float)
        if self.num_cores is None:
            self.num_cores = int(sample.shape[0])
        self._times.append(self._sim.now)
        self._samples.append(sample)

    def stop(self) -> None:
        self._task.cancel()

    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times)

    @property
    def samples(self) -> np.ndarray:
        """Array of shape (num_samples, num_cores).

        An empty log still has a well-defined width when ``num_cores``
        is known, so per-core slicing fails loudly (below) rather than
        with a bare IndexError on a ``(0, 0)`` array.
        """
        if not self._samples:
            return np.empty((0, self.num_cores or 0))
        return np.vstack(self._samples)

    def core_series(self, core: int) -> np.ndarray:
        samples = self.samples
        if samples.shape[0] == 0:
            raise AnalysisError("no temperature samples recorded")
        if not 0 <= core < samples.shape[1]:
            raise AnalysisError(
                f"core {core} out of range (log covers {samples.shape[1]} cores)"
            )
        return samples[:, core]

    def mean_over_window(self, window: float, *, end: Optional[float] = None) -> float:
        """Mean of all cores' readings over the trailing ``window`` s."""
        per_core = self.per_core_mean_over_window(window, end=end)
        return float(np.mean(per_core))

    def per_core_mean_over_window(
        self, window: float, *, end: Optional[float] = None
    ) -> np.ndarray:
        times = self.times
        if times.size == 0:
            raise AnalysisError("no temperature samples recorded")
        end_time = float(times[-1]) if end is None else end
        mask = (times >= end_time - window) & (times <= end_time)
        if not np.any(mask):
            raise AnalysisError(
                f"no samples in the trailing {window}s window ending at {end_time}s"
            )
        return self.samples[mask].mean(axis=0)
