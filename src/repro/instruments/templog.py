"""Periodic temperature logging (the ``coretemp`` poller).

The paper reads per-core temperatures from the FreeBSD ``coretemp``
module and reports averages over trailing windows (e.g. "the average
temperature over the last 30 seconds of a 300 second execution",
§3.4).  :class:`TemperatureLog` samples a reader callback at a fixed
period and provides exactly those window statistics.

Samples land in a geometrically grown NumPy buffer (amortised O(1) per
sample, no per-sample Python list append), and trailing-window means
are cached between samples — a controller polling the same window many
times per sample period pays for the masked reduction once.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..errors import AnalysisError
from ..sim.engine import Simulator
from ..sim.process import PeriodicTask

#: Initial sample-buffer capacity; doubles when full.
_INITIAL_CAPACITY = 64


class TemperatureLog:
    """Samples per-core temperatures on a fixed period."""

    def __init__(
        self,
        sim: Simulator,
        reader: Callable[[], np.ndarray],
        *,
        period: float = 1.0,
        num_cores: Optional[int] = None,
    ):
        if period <= 0:
            raise AnalysisError("sample period must be positive")
        if num_cores is not None and num_cores < 1:
            raise AnalysisError("num_cores must be positive when given")
        self.period = period
        #: Width of the sample rows; learned from the first sample when
        #: not passed explicitly (it shapes the empty-log array).
        self.num_cores = num_cores
        self._sim = sim
        self._reader = reader
        self._count = 0
        self._time_buffer = np.empty(0)
        self._sample_buffer: Optional[np.ndarray] = None
        #: (window, end) -> per-core mean; cleared whenever a sample lands.
        self._window_cache: Dict[Tuple[float, Optional[float]], np.ndarray] = {}
        self._task = PeriodicTask(sim, period, self._sample, phase=0.0)

    def _sample(self) -> None:
        sample = np.asarray(self._reader(), dtype=float)
        width = int(sample.shape[0])
        if self.num_cores is None:
            self.num_cores = width
        elif width != self.num_cores:
            raise AnalysisError(
                f"ragged temperature sample: got {width} entries, "
                f"log is {self.num_cores} wide"
            )
        if self._sample_buffer is None or self._count == self._time_buffer.shape[0]:
            self._grow()
        self._time_buffer[self._count] = self._sim.now
        self._sample_buffer[self._count] = sample
        self._count += 1
        self._window_cache.clear()

    def _grow(self) -> None:
        capacity = max(_INITIAL_CAPACITY, 2 * self._count)
        times = np.empty(capacity)
        samples = np.empty((capacity, self.num_cores))
        if self._count:
            times[: self._count] = self._time_buffer[: self._count]
            samples[: self._count] = self._sample_buffer[: self._count]
        self._time_buffer = times
        self._sample_buffer = samples

    def stop(self) -> None:
        self._task.cancel()

    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        return self._time_buffer[: self._count].copy()

    @property
    def samples(self) -> np.ndarray:
        """Array of shape (num_samples, num_cores).

        An empty log still has a well-defined width when ``num_cores``
        is known, so per-core slicing fails loudly (below) rather than
        with a bare IndexError on a ``(0, 0)`` array.
        """
        if self._count == 0:
            return np.empty((0, self.num_cores or 0))
        return self._sample_buffer[: self._count].copy()

    def latest(self) -> Optional[np.ndarray]:
        """The most recent per-core sample (°C), or ``None`` before the
        first sample lands.

        This is the sensor view a management plane sees: reading it
        costs nothing and — unlike a true-temperature read — does not
        force the owning machine to integrate pending physics, so
        telemetry-driven schedulers can poll it without perturbing the
        simulation's substep structure.
        """
        if self._count == 0:
            return None
        return self._sample_buffer[self._count - 1].copy()

    def core_series(self, core: int) -> np.ndarray:
        if self._count == 0:
            raise AnalysisError("no temperature samples recorded")
        if not 0 <= core < self.num_cores:
            raise AnalysisError(
                f"core {core} out of range (log covers {self.num_cores} cores)"
            )
        return self._sample_buffer[: self._count, core].copy()

    def mean_over_window(self, window: float, *, end: Optional[float] = None) -> float:
        """Mean of all cores' readings over the trailing ``window`` s."""
        per_core = self.per_core_mean_over_window(window, end=end)
        return float(np.mean(per_core))

    def per_core_mean_over_window(
        self, window: float, *, end: Optional[float] = None
    ) -> np.ndarray:
        if self._count == 0:
            raise AnalysisError("no temperature samples recorded")
        key = (float(window), None if end is None else float(end))
        cached = self._window_cache.get(key)
        if cached is not None:
            return cached.copy()
        times = self._time_buffer[: self._count]
        end_time = float(times[-1]) if end is None else end
        mask = (times >= end_time - window) & (times <= end_time)
        if not np.any(mask):
            raise AnalysisError(
                f"no samples in the trailing {window}s window ending at {end_time}s"
            )
        result = self._sample_buffer[: self._count][mask].mean(axis=0)
        self._window_cache[key] = result
        return result.copy()
