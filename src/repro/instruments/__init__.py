"""Measurement instruments: power meter, temperature log, statistics."""

from .powermeter import PowerMeter, PowerSegment
from .stats import efficiency, relative_reduction, summarize, throughput_reduction
from .templog import TemperatureLog
from .trace import SchedEvent, SchedulerTracer

__all__ = [
    "PowerMeter",
    "PowerSegment",
    "SchedEvent",
    "SchedulerTracer",
    "TemperatureLog",
    "efficiency",
    "relative_reduction",
    "summarize",
    "throughput_reduction",
]
