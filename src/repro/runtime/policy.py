"""Retry policy: how many attempts a run gets, and which errors deserve them.

The old runtime retried *every* worker failure exactly once — which
wasted a full simulation on deterministic errors (a bad parameter
raises the same :class:`~repro.errors.ConfigurationError` on every
attempt) and gave genuinely transient failures (a worker killed by the
OS, an injected crash) only one more chance with no spacing between
attempts.  :class:`RetryPolicy` fixes both:

- **Classification.**  Errors are split into *permanent* (deterministic
  given the run's inputs: configuration/validation errors, ``TypeError``
  from bad params, scheduler-invariant violations) and *transient*
  (everything else).  Permanent errors fail fast with the original
  traceback; transient errors are retried.  Classification works on
  exception *type names* walked over the MRO, because a worker failure
  crosses the process boundary as strings, not exception objects.
- **Backoff.**  Retry ``n`` waits ``base * factor**(n-1)`` seconds plus
  a deterministic jitter derived from the run key — sha256-based, so a
  re-run of the same sweep backs off identically (no wall-clock or
  global-RNG dependence) while distinct runs de-synchronise.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Union

from ..errors import ConfigurationError

#: Exception type names (matched against the full MRO) whose failures
#: are deterministic: retrying the identical spec cannot succeed.
PERMANENT_ERROR_TYPES: FrozenSet[str] = frozenset(
    {
        # Deliberate validation errors from this package.
        "ConfigurationError",
        "SimulationError",
        "SchedulerError",
        "WorkloadError",
        "TelemetryError",
        "AnalysisError",
        # Deterministic Python errors from bad specs (e.g. an unknown
        # keyword argument raising TypeError in the executor).
        "TypeError",
        "ValueError",
        "KeyError",
        "AttributeError",
        "NameError",
        "ImportError",
        "NotImplementedError",
    }
)

#: How the policy labels a failed attempt.
TRANSIENT = "transient"
PERMANENT = "permanent"
TIMEOUT = "timeout"


def error_lineage(error: BaseException) -> tuple:
    """The exception's MRO type names — the picklable classification key."""
    return tuple(
        cls.__name__ for cls in type(error).__mro__ if cls is not object
    )


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget + backoff schedule + error classification."""

    #: Total attempts per run (first try included).  2 preserves the
    #: historical retry-once behaviour.
    max_attempts: int = 2
    #: Seconds before the first retry.
    backoff_base: float = 0.05
    #: Multiplier applied per further retry.
    backoff_factor: float = 2.0
    #: Ceiling on any single backoff delay.
    backoff_max: float = 5.0
    #: Jitter amplitude as a fraction of the computed delay.
    jitter: float = 0.25
    #: Type names treated as permanent (checked against the error's MRO).
    permanent_types: FrozenSet[str] = field(default=PERMANENT_ERROR_TYPES)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_max < 0:
            raise ConfigurationError(
                "backoff must satisfy base >= 0, factor >= 1, max >= 0; got "
                f"base={self.backoff_base}, factor={self.backoff_factor}, "
                f"max={self.backoff_max}"
            )
        if not 0 <= self.jitter <= 1:
            raise ConfigurationError(f"jitter must be in [0, 1], got {self.jitter}")

    # ------------------------------------------------------------------
    def classify(
        self, error: Union[BaseException, Iterable[str]]
    ) -> str:
        """``"timeout"``, ``"permanent"``, or ``"transient"``.

        Accepts a live exception or the :func:`error_lineage` name
        tuple a worker shipped across the process boundary.
        """
        if isinstance(error, BaseException):
            lineage = error_lineage(error)
        else:
            lineage = tuple(error)
        if "RunTimeoutError" in lineage:
            return TIMEOUT
        if self.permanent_types.intersection(lineage):
            return PERMANENT
        return TRANSIENT

    def should_retry(self, classification: str, attempt: int) -> bool:
        """Whether the run deserves attempt ``attempt + 1``."""
        if classification == PERMANENT:
            return False
        return attempt < self.max_attempts

    # ------------------------------------------------------------------
    def backoff(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before retrying after failed attempt ``attempt``.

        Exponential in the attempt number, capped at ``backoff_max``,
        plus a jitter in ``[0, jitter * delay]`` drawn deterministically
        from ``sha256(key, attempt)`` so the schedule is reproducible
        per run and de-correlated across runs.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt is 1-based, got {attempt}")
        delay = min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )
        if delay <= 0 or self.jitter == 0:
            return delay
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return delay + delay * self.jitter * fraction
