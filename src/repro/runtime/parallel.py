"""Parallel fan-out of independent experiment runs, hardened.

Every run in a batch builds its own :class:`~repro.experiments.machine.Machine`
from its own config, so runs share no state and the fan-out is
embarrassingly parallel.  :class:`ParallelRunner` guarantees:

- **Determinism** — each run's seed travels inside its
  :class:`RunSpec`; results are returned in submission order no matter
  which worker finished first, so a ``jobs=N`` batch is bit-identical
  to ``jobs=1``.
- **Caching** — with a :class:`~repro.runtime.cache.ResultCache`
  attached, completed runs are persisted and later batches skip them.
- **Deadlines** — with ``timeout=T`` every run gets ``T`` seconds of
  wall clock: a hung worker process is killed by the parent (in-process
  runs are interrupted via ``SIGALRM``) and the run surfaces a
  :class:`~repro.errors.RunTimeoutError`, which the retry policy treats
  as transient.
- **Retries** — a :class:`~repro.runtime.policy.RetryPolicy` governs
  fault tolerance: transient failures (worker crashes, timeouts,
  corrupt payloads) are retried with exponential backoff and
  deterministic jitter, while permanent errors (a
  :class:`~repro.errors.ConfigurationError` from a bad parameter, a
  ``TypeError`` from a bad spec) fail fast with the original traceback
  instead of wasting a pointless second simulation.
- **Graceful degradation** — with ``keep_going=True`` a terminally
  failed run no longer aborts the batch; it is recorded in the
  runner's :class:`~repro.runtime.failures.FailureReport`, its result
  slot stays ``None``, and every other run completes.
- **Resumability** — with a :class:`~repro.runtime.journal.SweepJournal`
  attached every completion is journaled (fsync'd, append-only), so an
  interrupted sweep resumed against the same journal and cache replays
  the finished runs and executes only the remainder.  A
  ``KeyboardInterrupt`` mid-batch terminates the workers cleanly,
  flushes the journal, and re-raises.
- **Integrity** — every executed result carries a digest taken at the
  moment it was produced; the parent re-derives it on arrival and a
  mismatch (a mangled pipe, an injected ``corrupt`` fault) is a
  transient :class:`~repro.errors.CorruptResultError`, never a cached
  lie.
- **Telemetry** — every run executes against an isolated
  :class:`~repro.telemetry.MetricsRegistry`; the per-run snapshot is
  serialised back from the worker (or taken in-process for serial
  runs) and merged into the registry that was current when the runner
  was constructed.  Snapshots are merged in *submission order* once
  the batch settles — never in completion order — so float-valued
  counters accumulate in the same order under any ``jobs`` and the
  merged registry is bit-identical to a serial run.  Failed attempts
  are discarded, not merged, so retries never double-count.

Fault injection (:mod:`repro.faults`) plugs in through the
``fault_plan`` argument: the plan is resolved against the batch size
and each attempt is *armed* with at most one fault via the
``RunSpec.fault`` field — which is excluded from the cache key, so an
armed run is still the same run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import pickle
import signal
import threading
import time
import traceback
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError, CorruptResultError, ExecutionError
from ..faults import FaultPlan, FaultSpec, fire_execution_fault, garble_result, poison_cache_entry
from ..telemetry.registry import MetricsRegistry, isolated
from ..telemetry.registry import registry as _metrics_registry
from .cache import ResultCache
from .failures import FailureReport
from .hashing import spec_key
from .journal import SweepJournal
from .policy import PERMANENT, TIMEOUT, RetryPolicy, error_lineage


@dataclass(frozen=True)
class RunSpec:
    """One independent run: which function, on what config, with what
    parameters.  Must be picklable (it crosses process boundaries) and
    stably hashable via :func:`~repro.runtime.hashing.spec_key`."""

    kind: str  # an executor name: "characterization" | "finite_cpuburn" | custom
    config: Any  # ExperimentConfig (typed loosely to keep this layer generic)
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Fault armed for the *current attempt* (fault injection only).
    #: Excluded from equality and from :attr:`key`: an armed run is
    #: still the same run, cached under the same key.
    fault: Optional[FaultSpec] = field(default=None, compare=False)
    #: Additional code fingerprint this run depends on beyond the base
    #: physics fingerprint (rack cells carry the fleet fingerprint so a
    #: fleet-layer edit invalidates exactly their cache entries).
    extra_code: Optional[str] = None

    @property
    def key(self) -> str:
        return spec_key(
            self.kind, self.config, dict(self.params), extra_code=self.extra_code
        )


def characterization_spec(config: Any, **params: Any) -> RunSpec:
    """Spec for :func:`repro.experiments.runner.run_characterization`."""
    return RunSpec(kind="characterization", config=config, params=params)


def finite_cpuburn_spec(config: Any, **params: Any) -> RunSpec:
    """Spec for :func:`repro.experiments.runner.run_finite_cpuburn`."""
    return RunSpec(kind="finite_cpuburn", config=config, params=params)


# ----------------------------------------------------------------------
# Executor registry
# ----------------------------------------------------------------------
_EXECUTORS: Dict[str, Callable[..., Any]] = {}


def register_executor(kind: str, fn: Callable[..., Any]) -> None:
    """Register a run kind: ``fn(config, **params) -> picklable result``.

    The built-in kinds are registered lazily; custom kinds let callers
    batch their own run functions through the same pool/cache plumbing
    (with ``fork`` workers the registration is inherited automatically).
    """
    _EXECUTORS[kind] = fn


def _resolve_executor(kind: str) -> Callable[..., Any]:
    if kind not in _EXECUTORS:
        # Lazy so importing repro.runtime never triggers (and can never
        # cycle with) the repro.experiments package import.
        from ..experiments.runner import run_characterization, run_finite_cpuburn

        _EXECUTORS.setdefault("characterization", run_characterization)
        _EXECUTORS.setdefault("finite_cpuburn", run_finite_cpuburn)
    if kind == "rack-cell" and kind not in _EXECUTORS:
        # Same lazy pattern for the fleet layer: importing the module
        # registers the executor (needed in spawn-context workers,
        # where the parent's registration is not inherited).
        from ..fleet import cells  # noqa: F401 - import registers the kind

    try:
        return _EXECUTORS[kind]
    except KeyError:
        raise ConfigurationError(f"unknown run kind {kind!r}") from None


def execute_spec(spec: RunSpec) -> Any:
    """Run one spec in the current process (faults not applied)."""
    return _resolve_executor(spec.kind)(spec.config, **spec.params)


def _payload_digest(result: Any) -> str:
    """Integrity digest of a result: sha256 over its canonical pickle.

    One dump/load round trip first: a raw pickle is not canonical when
    the producer's object graph shares interned strings (e.g. a field
    name that also appears as a plain dict key) — crossing the process
    boundary breaks that sharing, which changes the bytes but not the
    value.  The round-tripped graph is a fixed point, so producer and
    verifier digest the same bytes whenever the *values* agree.
    """
    blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    blob = pickle.dumps(pickle.loads(blob), protocol=pickle.HIGHEST_PROTOCOL)
    return hashlib.sha256(blob).hexdigest()


def _execute_attempt(spec: RunSpec) -> Tuple[Any, Dict[str, Any], str]:
    """Run one attempt: fire any armed fault, simulate instrumented.

    Returns ``(result, metrics snapshot, digest)``.  The digest is
    taken *before* a ``corrupt`` fault garbles the payload, which is
    exactly what lets the parent detect the corruption.
    """
    if spec.fault is not None:
        fire_execution_fault(spec.fault)
    with isolated() as run_registry:
        with run_registry.timer("runtime.run_wall").time():
            result = execute_spec(spec)
        snapshot = run_registry.snapshot()
    digest = _payload_digest(result)
    if spec.fault is not None:
        result = garble_result(spec.fault, result)
    return result, snapshot, digest


def _verify_payload(spec: RunSpec, result: Any, digest: str) -> None:
    if _payload_digest(result) != digest:
        raise CorruptResultError(
            f"run {spec.kind}{dict(spec.params)!r} returned a payload whose "
            f"digest does not match the one taken at production time"
        )


def _failure_info(error: BaseException, tb: Optional[str] = None) -> Dict[str, Any]:
    """A picklable description of a failed attempt."""
    return {
        "error_type": type(error).__name__,
        "lineage": error_lineage(error),
        "message": str(error),
        "traceback": tb if tb is not None else traceback.format_exc(),
    }


def _timeout_info(seconds: float, where: str) -> Dict[str, Any]:
    return {
        "error_type": "RunTimeoutError",
        "lineage": ("RunTimeoutError", "ExecutionError", "ReproError", "Exception"),
        "message": f"run exceeded its {seconds:g}s wall-clock deadline ({where})",
        "traceback": None,
    }


def _subprocess_main(conn, spec: RunSpec) -> None:
    """Worker-process entry point: one attempt, outcome over the pipe."""
    try:
        outcome: Tuple[Any, ...] = ("ok",) + _execute_attempt(spec)
    except BaseException as error:  # noqa: BLE001 - must never leak
        outcome = ("err", _failure_info(error))
    try:
        conn.send(outcome)
    except Exception as error:
        # The result itself failed to pickle — report that instead.
        try:
            conn.send(("err", _failure_info(error)))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


@contextmanager
def _deadline(seconds: Optional[float]):
    """Interrupt an in-process run after ``seconds`` of wall clock.

    Uses ``SIGALRM`` (with sub-second resolution via ``setitimer``), so
    enforcement is only possible on the main thread of a Unix process;
    anywhere else the block runs un-deadlined — pooled runs don't need
    this, their parent kills the whole worker process instead.
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    from ..errors import RunTimeoutError

    def _on_alarm(signum, frame):
        raise RunTimeoutError(
            f"run exceeded its {seconds:g}s wall-clock deadline (in-process)"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _terminate(process) -> None:
    """Kill one worker process, escalating if SIGTERM is ignored."""
    process.terminate()
    process.join(2.0)
    if process.is_alive():  # pragma: no cover - needs a SIGTERM-immune child
        process.kill()
        process.join(1.0)


# ----------------------------------------------------------------------
# Metrics and progress
# ----------------------------------------------------------------------
@dataclass
class RunnerMetrics:
    """Cumulative counters over a runner's lifetime."""

    submitted: int = 0
    completed: int = 0
    #: Runs actually simulated (cache misses).
    executed: int = 0
    cache_hits: int = 0
    cache_stores: int = 0
    #: Cache hits whose key was already journaled when the sweep
    #: started — i.e. runs a ``--resume`` invocation did not redo.
    replayed: int = 0
    #: Failed attempts observed (transient, permanent, and timeouts).
    failures: int = 0
    #: Retry attempts granted by the policy.
    retries: int = 0
    #: Attempts killed (or interrupted) at the wall-clock deadline.
    timeouts: int = 0
    #: Attempts whose error was classified permanent (failed fast).
    permanent_failures: int = 0
    #: Runs abandoned terminally under keep-going.
    abandoned: int = 0
    #: Total seconds of retry backoff the batch waited through.
    backoff_seconds: float = 0.0

    def summary(self) -> str:
        parts = [f"{self.executed} executed", f"{self.cache_hits} cached"]
        if self.replayed:
            parts.append(f"{self.replayed} replayed")
        if self.failures:
            parts.append(f"{self.failures} failed/{self.retries} retried")
        if self.timeouts:
            parts.append(f"{self.timeouts} timed out")
        if self.abandoned:
            parts.append(f"{self.abandoned} abandoned")
        return ", ".join(parts)


@dataclass(frozen=True)
class ProgressEvent:
    """Emitted once per finished run (completed or abandoned)."""

    index: int  # position in the submitted batch
    done: int  # runs finished so far (this batch)
    total: int  # batch size
    source: str  # "cache" | "replay" | "run" | "retry" | "failed"
    spec: RunSpec


@dataclass
class _Task:
    """Parent-side state of one pending run."""

    index: int
    spec: RunSpec
    key: Optional[str]
    attempt: int = 0


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class ParallelRunner:
    """Execute batches of :class:`RunSpec` with pooling, caching, and
    fault tolerance.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs in-process with no
        pool overhead — the exact serial semantics every caller had
        before this layer existed.
    cache:
        Optional :class:`ResultCache`; completed runs are stored and
        matching future runs are served without simulating.
    progress:
        Optional callback invoked with a :class:`ProgressEvent` after
        every finished run (from the parent process only).
    start_method:
        Forwarded to :func:`multiprocessing.get_context`; None uses the
        platform default.
    timeout:
        Per-run wall-clock deadline in seconds.  Pooled runs that
        exceed it have their worker killed; in-process runs are
        interrupted via ``SIGALRM`` (main thread, Unix).  ``None``
        disables deadlines.
    retry_policy:
        A :class:`RetryPolicy`; the default preserves the historical
        retry-once behaviour, now with classification and backoff.
    journal:
        Optional :class:`SweepJournal`; every completion is journaled
        so an interrupted sweep can be resumed.
    keep_going:
        When True, a terminally failed run is recorded in
        :attr:`failure_report` (its result stays ``None``) instead of
        raising :class:`~repro.errors.ExecutionError`.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` armed per batch —
        the chaos-testing hook; see :mod:`repro.faults`.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        cache: Optional[ResultCache] = None,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
        start_method: Optional[str] = None,
        timeout: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        journal: Optional[SweepJournal] = None,
        keep_going: bool = False,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0 seconds, got {timeout}")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.start_method = start_method
        self.timeout = timeout
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.journal = journal
        self.keep_going = keep_going
        self.fault_plan = fault_plan
        self.metrics = RunnerMetrics()
        self.failure_report = FailureReport()
        #: Cache keys already poisoned by this runner's fault plan
        #: (each ``poison`` fault fires once per runner lifetime).
        self._poisoned: set = set()
        #: Per-run metric snapshots (and the runner's own counters)
        #: aggregate into the registry current at construction time.
        self.registry: MetricsRegistry = _metrics_registry()
        self._metric_scope = self.registry.scope("runtime.runner")

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[RunSpec]) -> List[Any]:
        """Execute every spec; results in submission order.

        Under ``keep_going`` an abandoned run's slot holds ``None`` and
        the failure is recorded in :attr:`failure_report`; otherwise a
        terminal failure raises :class:`~repro.errors.ExecutionError`
        (after the pool, if any, is torn down cleanly).
        """
        specs = list(specs)
        total = len(specs)
        plan = self.fault_plan.resolve(total) if self.fault_plan is not None else None
        self.metrics.submitted += total
        self._metric_scope.counter("submitted").inc(total)
        results: List[Any] = [None] * total
        state = {"done": 0}
        #: index -> per-run metrics snapshot; merged in submission
        #: order after the batch settles so the merged registry is
        #: bit-identical for any jobs count (float sums are
        #: order-sensitive; completion order is not deterministic).
        snapshots: Dict[int, Dict[str, Any]] = {}
        replayable = self.journal.replayable if self.journal is not None else frozenset()

        # ------------------------------------------------------------------
        def finish(index: int, source: str, spec: RunSpec) -> None:
            state["done"] += 1
            self._emit(index, state["done"], total, source, spec)

        def complete(task: _Task, result: Any, snapshot: Optional[Dict[str, Any]], source: str) -> None:
            results[task.index] = result
            self.metrics.executed += 1
            self.metrics.completed += 1
            self._metric_scope.counter("executed").inc()
            self._metric_scope.counter("completed").inc()
            if snapshot is not None:
                snapshots[task.index] = snapshot
            if task.key is not None and self.cache is not None:
                self.cache.put(task.key, result)
                self.metrics.cache_stores += 1
                if (
                    plan is not None
                    and task.index in plan.poison_targets
                    and task.key not in self._poisoned
                ):
                    poison_cache_entry(self.cache, task.key)
                    self._poisoned.add(task.key)
            if self.journal is not None and task.key is not None:
                self.journal.record_done(task.key, source)
            if task.attempt > 1:
                self.failure_report.mark_recovered(task.index)
            finish(task.index, source, task.spec)

        def on_attempt_failure(task: _Task, info: Dict[str, Any]) -> Tuple[str, float]:
            """Classify one failed attempt; returns ("retry", delay) or
            ("failed", 0) for a kept-going terminal failure.  A terminal
            failure without keep_going raises ExecutionError."""
            classification = self.retry_policy.classify(info["lineage"])
            self.metrics.failures += 1
            self._metric_scope.counter("failures").inc()
            if classification == TIMEOUT:
                self.metrics.timeouts += 1
                self._metric_scope.counter("timeouts").inc()
            if classification == PERMANENT:
                self.metrics.permanent_failures += 1
                self._metric_scope.counter("permanent_failures").inc()
            self.failure_report.record(
                index=task.index,
                kind=task.spec.kind,
                params=task.spec.params,
                key=task.key,
                error_type=info["error_type"],
                message=info["message"],
                classification=classification,
                attempt=task.attempt,
                traceback=info.get("traceback"),
            )
            if self.retry_policy.should_retry(classification, task.attempt):
                delay = self.retry_policy.backoff(task.attempt, task.key or task.spec.kind)
                self.metrics.retries += 1
                self.metrics.backoff_seconds += delay
                self._metric_scope.counter("retries").inc()
                self._metric_scope.counter("backoff_seconds").inc(delay)
                return "retry", delay
            if self.journal is not None:
                self.journal.record_failure(
                    task.key, info["error_type"], info["message"]
                )
            if self.keep_going:
                self.metrics.abandoned += 1
                self._metric_scope.counter("abandoned").inc()
                finish(task.index, "failed", task.spec)
                return "failed", 0.0
            raise ExecutionError(
                f"run {task.spec.kind}{dict(task.spec.params)!r} failed "
                f"({classification}, attempt {task.attempt}/"
                f"{self.retry_policy.max_attempts}):\n"
                f"{info.get('traceback') or info['message']}"
            )

        # ------------------------------------------------------------------
        # Serve what we can from the cache (journaled keys are replays).
        pending: List[_Task] = []
        want_key = self.cache is not None or self.journal is not None
        for index, spec in enumerate(specs):
            key = spec.key if want_key else None
            hit = self.cache.get(key) if self.cache is not None and key is not None else None
            if hit is not None:
                results[index] = hit
                if key in replayable:
                    source = "replay"
                    self.metrics.replayed += 1
                    self._metric_scope.counter("replayed").inc()
                else:
                    source = "cache"
                    self.metrics.cache_hits += 1
                    self._metric_scope.counter("cache_hits").inc()
                self.metrics.completed += 1
                self._metric_scope.counter("completed").inc()
                if self.journal is not None:
                    self.journal.record_done(key, source)
                finish(index, source, spec)
            else:
                pending.append(_Task(index=index, spec=spec, key=key))

        # Execute the misses.
        try:
            if self.jobs > 1 and len(pending) > 1:
                self._run_pooled(pending, plan, complete, on_attempt_failure)
            else:
                self._run_serial(pending, plan, complete, on_attempt_failure)
        finally:
            # Whatever happens — ExecutionError, KeyboardInterrupt — the
            # journal must reflect every completion already achieved, so
            # a subsequent --resume picks them up; and every completed
            # run's telemetry lands in the registry, in submission order.
            for index in sorted(snapshots):
                self.registry.merge(snapshots[index])
            if self.journal is not None:
                self.journal.flush()
        return results

    # ------------------------------------------------------------------
    def _arm(self, task: _Task, plan: Optional[FaultPlan]) -> RunSpec:
        """The spec for this attempt, with at most one fault attached."""
        if plan is not None:
            fault = plan.fault_for(task.index, task.attempt)
        elif task.spec.fault is not None and task.spec.fault.fires_on(task.attempt):
            fault = task.spec.fault
        else:
            fault = None
        if fault is task.spec.fault:
            return task.spec
        return dataclasses.replace(task.spec, fault=fault)

    def _run_serial(
        self,
        tasks: List[_Task],
        plan: Optional[FaultPlan],
        complete: Callable,
        on_attempt_failure: Callable,
    ) -> None:
        """In-process execution with deadline + retry semantics."""
        for task in tasks:
            while True:
                task.attempt += 1
                armed = self._arm(task, plan)
                try:
                    with _deadline(self.timeout):
                        result, snapshot, digest = _execute_attempt(armed)
                    _verify_payload(armed, result, digest)
                except KeyboardInterrupt:
                    raise
                except Exception as error:
                    action, delay = on_attempt_failure(task, _failure_info(error))
                    if action == "retry":
                        time.sleep(delay)
                        continue
                    break  # kept going; slot stays None
                else:
                    complete(task, result, snapshot, "run" if task.attempt == 1 else "retry")
                    break

    def _run_pooled(
        self,
        tasks: List[_Task],
        plan: Optional[FaultPlan],
        complete: Callable,
        on_attempt_failure: Callable,
    ) -> None:
        """One worker process per attempt, at most ``jobs`` in flight.

        The parent multiplexes over result pipes, enforces per-run
        deadlines by killing overdue workers, and re-queues retries
        after their backoff delay.  On any raise — a terminal
        ExecutionError or a KeyboardInterrupt — every live worker is
        terminated before the exception propagates.
        """
        context = multiprocessing.get_context(self.start_method)
        ready = deque(tasks)
        waiting: List[Tuple[float, _Task]] = []  # (eligible_at, task)
        active: Dict[Any, Tuple[_Task, Any, float]] = {}  # conn -> (task, proc, started)
        try:
            while ready or waiting or active:
                now = time.monotonic()
                still_waiting = []
                for eligible_at, task in waiting:
                    if eligible_at <= now:
                        ready.append(task)
                    else:
                        still_waiting.append((eligible_at, task))
                waiting = still_waiting

                while ready and len(active) < self.jobs:
                    task = ready.popleft()
                    task.attempt += 1
                    armed = self._arm(task, plan)
                    parent_conn, child_conn = context.Pipe(duplex=False)
                    process = context.Process(
                        target=_subprocess_main, args=(child_conn, armed), daemon=True
                    )
                    process.start()
                    child_conn.close()
                    active[parent_conn] = (task, process, time.monotonic())

                if not active:
                    if waiting:
                        time.sleep(max(0.0, min(t for t, _ in waiting) - time.monotonic()))
                    continue

                # Block until an outcome arrives, a deadline expires, or
                # a backoff becomes eligible — whichever is soonest.
                wake_times = []
                if self.timeout is not None:
                    wake_times.extend(
                        started + self.timeout for _, _, started in active.values()
                    )
                wake_times.extend(t for t, _ in waiting)
                wait_timeout = (
                    max(0.0, min(wake_times) - time.monotonic()) if wake_times else None
                )
                for conn in _connection_wait(list(active), timeout=wait_timeout):
                    task, process, _started = active.pop(conn)
                    try:
                        outcome = conn.recv()
                    except EOFError:
                        # The worker died without reporting (hard crash,
                        # OOM kill): a transient failure.
                        outcome = (
                            "err",
                            {
                                "error_type": "WorkerDied",
                                "lineage": ("WorkerDied",),
                                "message": "worker process exited without a result",
                                "traceback": None,
                            },
                        )
                    conn.close()
                    process.join()
                    if outcome[0] == "ok":
                        _, result, snapshot, digest = outcome
                        try:
                            _verify_payload(task.spec, result, digest)
                        except CorruptResultError as error:
                            outcome = ("err", _failure_info(error))
                        else:
                            complete(
                                task,
                                result,
                                snapshot,
                                "run" if task.attempt == 1 else "retry",
                            )
                            continue
                    action, delay = on_attempt_failure(task, outcome[1])
                    if action == "retry":
                        waiting.append((time.monotonic() + delay, task))

                if self.timeout is not None:
                    now = time.monotonic()
                    overdue = [
                        conn
                        for conn, (_, _, started) in active.items()
                        if now - started >= self.timeout
                    ]
                    for conn in overdue:
                        task, process, _started = active.pop(conn)
                        _terminate(process)
                        conn.close()
                        action, delay = on_attempt_failure(
                            task, _timeout_info(self.timeout, "worker killed")
                        )
                        if action == "retry":
                            waiting.append((time.monotonic() + delay, task))
        except BaseException:
            for _task, process, _started in active.values():
                _terminate(process)
            for conn in active:
                conn.close()
            raise

    # ------------------------------------------------------------------
    # Typed conveniences
    # ------------------------------------------------------------------
    def run_characterizations(
        self, config: Any, grid: Sequence[Mapping[str, Any]]
    ) -> List[Any]:
        """Batch :func:`run_characterization` over parameter dicts."""
        return self.run([characterization_spec(config, **params) for params in grid])

    def run_finite_cpuburns(
        self, specs: Sequence[Tuple[Any, Mapping[str, Any]]]
    ) -> List[Any]:
        """Batch :func:`run_finite_cpuburn` over (config, params) pairs
        (configs vary per run in the validation experiments)."""
        return self.run(
            [finite_cpuburn_spec(config, **params) for config, params in specs]
        )

    # ------------------------------------------------------------------
    def _emit(self, index: int, done: int, total: int, source: str, spec: RunSpec) -> None:
        if self.progress is not None:
            self.progress(ProgressEvent(index=index, done=done, total=total, source=source, spec=spec))
