"""Parallel fan-out of independent experiment runs.

Every run in a batch builds its own :class:`~repro.experiments.machine.Machine`
from its own config, so runs share no state and the fan-out is
embarrassingly parallel.  :class:`ParallelRunner` guarantees:

- **Determinism** — each run's seed travels inside its
  :class:`RunSpec`; results are returned in submission order no matter
  which worker finished first, so a ``jobs=N`` batch is bit-identical
  to ``jobs=1``.
- **Caching** — with a :class:`~repro.runtime.cache.ResultCache`
  attached, completed runs are persisted and later batches skip them.
- **Fault tolerance** — a run that dies in a worker is retried once,
  serially in the parent (deterministic); a second failure raises
  :class:`~repro.errors.ExecutionError` carrying the worker traceback.
- **Telemetry** — every run executes against an isolated
  :class:`~repro.telemetry.MetricsRegistry`; the per-run snapshot is
  serialised back from the worker (or taken in-process for serial
  runs) and merged into the registry that was current when the runner
  was constructed.  A ``jobs=N`` sweep therefore aggregates to exactly
  the counters a ``jobs=1`` sweep produces.  Failed attempts are
  discarded, not merged, so retries never double-count.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError, ExecutionError
from ..telemetry.registry import MetricsRegistry, isolated
from ..telemetry.registry import registry as _metrics_registry
from .cache import ResultCache
from .hashing import spec_key


@dataclass(frozen=True)
class RunSpec:
    """One independent run: which function, on what config, with what
    parameters.  Must be picklable (it crosses process boundaries) and
    stably hashable via :func:`~repro.runtime.hashing.spec_key`."""

    kind: str  # an executor name: "characterization" | "finite_cpuburn" | custom
    config: Any  # ExperimentConfig (typed loosely to keep this layer generic)
    params: Mapping[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return spec_key(self.kind, self.config, dict(self.params))


def characterization_spec(config: Any, **params: Any) -> RunSpec:
    """Spec for :func:`repro.experiments.runner.run_characterization`."""
    return RunSpec(kind="characterization", config=config, params=params)


def finite_cpuburn_spec(config: Any, **params: Any) -> RunSpec:
    """Spec for :func:`repro.experiments.runner.run_finite_cpuburn`."""
    return RunSpec(kind="finite_cpuburn", config=config, params=params)


# ----------------------------------------------------------------------
# Executor registry
# ----------------------------------------------------------------------
_EXECUTORS: Dict[str, Callable[..., Any]] = {}


def register_executor(kind: str, fn: Callable[..., Any]) -> None:
    """Register a run kind: ``fn(config, **params) -> picklable result``.

    The built-in kinds are registered lazily; custom kinds let callers
    batch their own run functions through the same pool/cache plumbing
    (with ``fork`` workers the registration is inherited automatically).
    """
    _EXECUTORS[kind] = fn


def _resolve_executor(kind: str) -> Callable[..., Any]:
    if kind not in _EXECUTORS:
        # Lazy so importing repro.runtime never triggers (and can never
        # cycle with) the repro.experiments package import.
        from ..experiments.runner import run_characterization, run_finite_cpuburn

        _EXECUTORS.setdefault("characterization", run_characterization)
        _EXECUTORS.setdefault("finite_cpuburn", run_finite_cpuburn)
    try:
        return _EXECUTORS[kind]
    except KeyError:
        raise ConfigurationError(f"unknown run kind {kind!r}") from None


def execute_spec(spec: RunSpec) -> Any:
    """Run one spec in the current process."""
    return _resolve_executor(spec.kind)(spec.config, **spec.params)


def _execute_instrumented(spec: RunSpec) -> Tuple[Any, Dict[str, Any]]:
    """Run one spec against a fresh metrics registry.

    Returns the result together with the registry snapshot covering
    exactly that run (construction, simulation, instruments).  On
    failure the partial snapshot is discarded with the exception.
    """
    with isolated() as run_registry:
        with run_registry.timer("runtime.run_wall").time():
            result = execute_spec(spec)
        return result, run_registry.snapshot()


def _pool_worker(
    indexed: Tuple[int, RunSpec]
) -> Tuple[int, bool, Any, Optional[Dict[str, Any]]]:
    """Top-level (picklable) pool target; never raises, so one bad run
    cannot poison the whole map call."""
    index, spec = indexed
    try:
        result, snapshot = _execute_instrumented(spec)
    except Exception:
        return index, False, traceback.format_exc(), None
    return index, True, result, snapshot


# ----------------------------------------------------------------------
# Metrics and progress
# ----------------------------------------------------------------------
@dataclass
class RunnerMetrics:
    """Cumulative counters over a runner's lifetime."""

    submitted: int = 0
    completed: int = 0
    #: Runs actually simulated (cache misses).
    executed: int = 0
    cache_hits: int = 0
    cache_stores: int = 0
    #: Worker failures observed (each is retried once in the parent).
    failures: int = 0
    retries: int = 0

    def summary(self) -> str:
        parts = [f"{self.executed} executed", f"{self.cache_hits} cached"]
        if self.failures:
            parts.append(f"{self.failures} failed/{self.retries} retried")
        return ", ".join(parts)


@dataclass(frozen=True)
class ProgressEvent:
    """Emitted once per completed run (cache hit, pool run, or retry)."""

    index: int  # position in the submitted batch
    done: int  # runs completed so far (this batch)
    total: int  # batch size
    source: str  # "cache" | "run" | "retry"
    spec: RunSpec


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class ParallelRunner:
    """Execute batches of :class:`RunSpec` with pooling and caching.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs in-process with no
        pool overhead — the exact serial semantics every caller had
        before this layer existed.
    cache:
        Optional :class:`ResultCache`; completed runs are stored and
        matching future runs are served without simulating.
    progress:
        Optional callback invoked with a :class:`ProgressEvent` after
        every completed run (from the parent process only).
    start_method:
        Forwarded to :func:`multiprocessing.get_context`; None uses the
        platform default.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        cache: Optional[ResultCache] = None,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
        start_method: Optional[str] = None,
    ):
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.start_method = start_method
        self.metrics = RunnerMetrics()
        #: Per-run metric snapshots (and the runner's own counters)
        #: aggregate into the registry current at construction time.
        self.registry: MetricsRegistry = _metrics_registry()
        self._metric_scope = self.registry.scope("runtime.runner")

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[RunSpec]) -> List[Any]:
        """Execute every spec; results in submission order."""
        specs = list(specs)
        total = len(specs)
        self.metrics.submitted += total
        self._metric_scope.counter("submitted").inc(total)
        results: List[Any] = [None] * total
        done = 0

        # Serve what we can from the cache.
        pending: List[Tuple[int, RunSpec, Optional[str]]] = []
        for index, spec in enumerate(specs):
            key = spec.key if self.cache is not None else None
            hit = self.cache.get(key) if key is not None else None
            if hit is not None:
                results[index] = hit
                self.metrics.cache_hits += 1
                self.metrics.completed += 1
                self._metric_scope.counter("cache_hits").inc()
                self._metric_scope.counter("completed").inc()
                done += 1
                self._emit(index, done, total, "cache", spec)
            else:
                pending.append((index, spec, key))

        # Execute the misses.
        failed: List[Tuple[int, RunSpec, Optional[str], str]] = []

        def complete(
            index: int,
            spec: RunSpec,
            key: Optional[str],
            result: Any,
            source: str,
            snapshot: Optional[Dict[str, Any]] = None,
        ) -> None:
            nonlocal done
            results[index] = result
            self.metrics.executed += 1
            self.metrics.completed += 1
            self._metric_scope.counter("executed").inc()
            self._metric_scope.counter("completed").inc()
            if snapshot is not None:
                self.registry.merge(snapshot)
            done += 1
            if key is not None and self.cache is not None:
                self.cache.put(key, result)
                self.metrics.cache_stores += 1
            self._emit(index, done, total, source, spec)

        if self.jobs > 1 and len(pending) > 1:
            by_index = {index: (spec, key) for index, spec, key in pending}
            context = multiprocessing.get_context(self.start_method)
            workers = min(self.jobs, len(pending))
            with context.Pool(processes=workers) as pool:
                outcomes = pool.imap_unordered(
                    _pool_worker, [(index, spec) for index, spec, _ in pending]
                )
                for index, ok, payload, snapshot in outcomes:
                    spec, key = by_index[index]
                    if ok:
                        complete(index, spec, key, payload, "run", snapshot)
                    else:
                        self.metrics.failures += 1
                        self._metric_scope.counter("failures").inc()
                        failed.append((index, spec, key, payload))
        else:
            for index, spec, key in pending:
                try:
                    result, snapshot = _execute_instrumented(spec)
                except Exception:
                    self.metrics.failures += 1
                    self._metric_scope.counter("failures").inc()
                    failed.append((index, spec, key, traceback.format_exc()))
                else:
                    complete(index, spec, key, result, "run", snapshot)

        # Retry each failure once, serially in the parent (deterministic
        # and debuggable: a second failure surfaces the real traceback).
        for index, spec, key, first_traceback in failed:
            self.metrics.retries += 1
            self._metric_scope.counter("retries").inc()
            try:
                result, snapshot = _execute_instrumented(spec)
            except Exception as retry_error:
                raise ExecutionError(
                    f"run {spec.kind}{dict(spec.params)!r} failed twice; "
                    f"first failure:\n{first_traceback}"
                ) from retry_error
            complete(index, spec, key, result, "retry", snapshot)

        return results

    # ------------------------------------------------------------------
    # Typed conveniences
    # ------------------------------------------------------------------
    def run_characterizations(
        self, config: Any, grid: Sequence[Mapping[str, Any]]
    ) -> List[Any]:
        """Batch :func:`run_characterization` over parameter dicts."""
        return self.run([characterization_spec(config, **params) for params in grid])

    def run_finite_cpuburns(
        self, specs: Sequence[Tuple[Any, Mapping[str, Any]]]
    ) -> List[Any]:
        """Batch :func:`run_finite_cpuburn` over (config, params) pairs
        (configs vary per run in the validation experiments)."""
        return self.run(
            [finite_cpuburn_spec(config, **params) for config, params in specs]
        )

    # ------------------------------------------------------------------
    def _emit(self, index: int, done: int, total: int, source: str, spec: RunSpec) -> None:
        if self.progress is not None:
            self.progress(ProgressEvent(index=index, done=done, total=total, source=source, spec=spec))
