"""Structured failure records for graceful-degradation sweeps.

Under ``--keep-going`` a terminal run failure no longer aborts the
sweep; it lands here instead.  The report also keeps *recovered*
attempt failures (a crash retried successfully, a hang killed at its
deadline and re-run), so a chaos run can assert that exactly the
injected faults — and nothing else — were observed.

The report is plain data: :meth:`FailureReport.to_dict` goes straight
into the :class:`~repro.telemetry.RunManifest`, and
:func:`repro.experiments.reporting.format_failure_report` renders it
for humans.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Mapping, Optional


@dataclasses.dataclass
class RunFailure:
    """One failed attempt of one run."""

    #: Submission index of the run within its batch.
    index: int
    #: RunSpec kind ("characterization", ...).
    kind: str
    #: The run's parameters (stringified for the manifest).
    params: Dict[str, Any]
    #: The run's cache key, when one was computed.
    key: Optional[str]
    #: Exception type name ("ConfigurationError", "RunTimeoutError", ...).
    error_type: str
    #: str(exception).
    message: str
    #: RetryPolicy verdict: "transient" | "permanent" | "timeout".
    classification: str
    #: 1-based attempt number that failed.
    attempt: int
    #: Whether a later attempt of the same run succeeded.
    recovered: bool = False
    #: Formatted traceback of the failing attempt, when available.
    traceback: Optional[str] = None

    def describe(self) -> str:
        fate = "recovered" if self.recovered else "FAILED"
        return (
            f"run {self.index} ({self.kind}) attempt {self.attempt}: "
            f"{self.error_type} [{self.classification}] — {fate}"
        )


@dataclasses.dataclass
class FailureReport:
    """Every failed attempt a runner observed, recovered or not."""

    failures: List[RunFailure] = dataclasses.field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.failures)

    def __len__(self) -> int:
        return len(self.failures)

    # ------------------------------------------------------------------
    def record(
        self,
        *,
        index: int,
        kind: str,
        params: Mapping[str, Any],
        key: Optional[str],
        error_type: str,
        message: str,
        classification: str,
        attempt: int,
        traceback: Optional[str] = None,
    ) -> RunFailure:
        failure = RunFailure(
            index=index,
            kind=kind,
            params={str(k): repr(v) for k, v in dict(params).items()},
            key=key,
            error_type=error_type,
            message=message,
            classification=classification,
            attempt=attempt,
            traceback=traceback,
        )
        self.failures.append(failure)
        return failure

    def mark_recovered(self, index: int) -> None:
        """Flag every recorded attempt of run ``index`` as recovered."""
        for failure in self.failures:
            if failure.index == index:
                failure.recovered = True

    # ------------------------------------------------------------------
    @property
    def fatal(self) -> List[RunFailure]:
        """Failures whose run never completed."""
        return [f for f in self.failures if not f.recovered]

    @property
    def recovered(self) -> List[RunFailure]:
        """Attempt failures whose run later succeeded."""
        return [f for f in self.failures if f.recovered]

    @property
    def fatal_indices(self) -> List[int]:
        return sorted({f.index for f in self.fatal})

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The manifest payload (tracebacks trimmed to their last line)."""
        def compact(failure: RunFailure) -> Dict[str, Any]:
            entry = dataclasses.asdict(failure)
            if entry["traceback"]:
                entry["traceback"] = entry["traceback"].strip().splitlines()[-1]
            return entry

        return {
            "attempts_failed": len(self.failures),
            "fatal": len(self.fatal),
            "recovered": len(self.recovered),
            "failures": [compact(f) for f in self.failures],
        }
