"""Stable cache keys for experiment runs.

A cached result is only valid if *everything that determines it* is
unchanged: the :class:`~repro.experiments.config.ExperimentConfig`
(including its nested thermal/power/C-state parameter dataclasses), the
run's own parameters, and the simulation source code itself.  This
module canonicalises the first two (:func:`freeze`) and fingerprints
the third (:func:`code_fingerprint`), then folds them into one SHA-256
key (:func:`spec_key`).

The code fingerprint deliberately covers only the packages whose
source determines simulation *outcomes* (see :data:`PHYSICS_MODULES`).
Editing documentation, benchmarks, the CLI, or this runtime layer
leaves every cached result valid; editing the scheduler or the thermal
model invalidates the whole cache.

Rack-cell runs (:mod:`repro.fleet.cells`) additionally depend on the
fleet, scheduling, health, and SLO-analysis layers, which the base
fingerprint deliberately excludes (editing them must not invalidate
figure sweeps).  :func:`fleet_fingerprint` covers those packages
(:data:`FLEET_MODULES`); rack-cell specs fold it in through
:func:`spec_key`'s ``extra_code`` parameter, so a fleet code edit
invalidates exactly the rack-cell entries and nothing else.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from pathlib import Path
from typing import Any, Optional

import numpy as np

from ..errors import ConfigurationError

#: Bump when the cached-result payload layout changes.
CACHE_SCHEMA_VERSION = 1

#: Paths (relative to the ``repro`` package) whose source determines
#: simulation outcomes and therefore participates in the fingerprint.
PHYSICS_MODULES = (
    "sim",
    "sched",
    "cpu",
    "thermal",
    "core",
    "workloads",
    "instruments",
    "experiments",
    "units.py",
    "errors.py",
)

#: Paths (relative to the ``repro`` package) that rack-cell runs
#: additionally depend on: the fleet layer (machines, balancers,
#: scheduling policies, the experiments themselves), health monitoring,
#: and the SLO scorer.  Kept separate from :data:`PHYSICS_MODULES` so
#: editing the fleet layer never invalidates cached figure sweeps.
FLEET_MODULES = (
    "fleet",
    "health",
    "analysis",
)

_fingerprint_cache: Optional[str] = None
_fleet_fingerprint_cache: Optional[str] = None


def freeze(value: Any) -> Any:
    """Canonicalise ``value`` into JSON-serialisable primitives.

    Dataclasses become tagged field dicts, enums become
    ``[class, member]`` pairs, numpy scalars/arrays collapse to Python
    numbers/lists, and dict keys are stringified (JSON sorts them at
    dump time).  Anything else is rejected loudly rather than hashed by
    repr, which would silently vary across processes.
    """
    if isinstance(value, enum.Enum):
        return [type(value).__name__, value.name]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        frozen = {"__type__": type(value).__name__}
        for f in dataclasses.fields(value):
            frozen[f.name] = freeze(getattr(value, f.name))
        return frozen
    if isinstance(value, dict):
        return {str(k): freeze(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [freeze(v) for v in value]
    if isinstance(value, np.ndarray):
        return [freeze(v) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        f"cannot build a stable cache key from a {type(value).__name__} value"
    )


def _hash_modules(entries) -> str:
    """SHA-256 over the named package source trees.

    Files are hashed in sorted relative-path order together with their
    paths, so renames and content edits both change the fingerprint.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for entry in entries:
        path = package_root / entry
        if path.is_file():
            files = [path]
        elif path.is_dir():
            files = sorted(path.rglob("*.py"))
        else:  # pragma: no cover - only on a broken install
            continue
        for source in files:
            digest.update(str(source.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(source.read_bytes())
            digest.update(b"\0")
    return digest.hexdigest()


def code_fingerprint() -> str:
    """SHA-256 over the simulation-relevant source files (memoised)."""
    global _fingerprint_cache
    if _fingerprint_cache is None:
        _fingerprint_cache = _hash_modules(PHYSICS_MODULES)
    return _fingerprint_cache


def fleet_fingerprint() -> str:
    """SHA-256 over the fleet/health/analysis source files (memoised).

    Folded into rack-cell cache keys (see :mod:`repro.fleet.cells`), so
    editing a balancer, scheduling policy, health monitor, or the SLO
    scorer invalidates cached rack cells without touching the far more
    expensive figure-sweep entries.
    """
    global _fleet_fingerprint_cache
    if _fleet_fingerprint_cache is None:
        _fleet_fingerprint_cache = _hash_modules(FLEET_MODULES)
    return _fleet_fingerprint_cache


def config_hash(config: Any) -> str:
    """SHA-256 over a frozen config — the manifest's config identity.

    Unlike :func:`spec_key` this covers only the configuration, not the
    code fingerprint or run parameters, so it answers "same settings?"
    across code versions.
    """
    blob = json.dumps(freeze(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def spec_key(
    kind: str, config: Any, params: Any, *, extra_code: Optional[str] = None
) -> str:
    """The cache key for one run: hash of (schema, code, kind, inputs).

    ``extra_code``, when given, is an additional code fingerprint the
    run depends on (rack cells pass :func:`fleet_fingerprint`).  It is
    folded into the document only when present, so keys of runs without
    one are unchanged from earlier layouts.
    """
    document = {
        "schema": CACHE_SCHEMA_VERSION,
        "code": code_fingerprint(),
        "kind": kind,
        "config": freeze(config),
        "params": freeze(params),
    }
    if extra_code is not None:
        document["extra_code"] = extra_code
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()
