"""Crash-safe sweep journal: an append-only JSONL record of run completions.

The on-disk :class:`~repro.runtime.cache.ResultCache` is global and
content-addressed; the journal is the *sweep-scoped* complement — a
durable record of which run keys of the current sweep finished (and
which failed terminally), written as one fsync'd JSON line per event.
Together they give ``--resume`` semantics: after a crash or SIGINT
mid-sweep, a resumed invocation replays every journaled run from the
cache and executes only the remainder.

Durability model:

- Each record is a single ``write()`` of one ``\\n``-terminated JSON
  line, followed by ``flush()`` + ``os.fsync()`` — an append either
  lands completely or (on a crash between write and fsync) may be
  truncated, never interleaved.
- The loader tolerates a truncated final line (the one crash artefact
  the append protocol admits) by skipping unparseable lines; a
  half-written record simply means that run re-executes on resume.
- A fresh (non-resume) sweep truncates any stale journal first, so
  records never leak between unrelated sweeps.

Record shapes::

    {"status": "done", "key": <sha256>, "source": "run"|"retry"|"cache"|"replay"}
    {"status": "failed", "key": <sha256>, "error_type": ..., "message": ...}
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Optional, Set, Union


class SweepJournal:
    """Append-only JSONL journal of one sweep's completed run keys."""

    def __init__(self, path: Union[str, Path], *, resume: bool = False):
        self.path = Path(path)
        self.resume = resume
        self._handle = None
        self._completed: Set[str] = set()
        if resume:
            for entry in self.read_entries(self.path):
                if entry.get("status") == "done" and "key" in entry:
                    self._completed.add(entry["key"])
        elif self.path.exists():
            self.path.unlink()
        #: Keys already journaled as done when this journal was opened —
        #: the set a resumed runner replays rather than re-executes.
        self.replayable: FrozenSet[str] = frozenset(self._completed)

    # ------------------------------------------------------------------
    @property
    def completed_keys(self) -> FrozenSet[str]:
        """Every key journaled as done so far (pre-existing + this run)."""
        return frozenset(self._completed)

    def record_done(self, key: str, source: str) -> None:
        """Journal one completed run (idempotent per key)."""
        if key in self._completed:
            return
        self._append({"status": "done", "key": key, "source": source})
        self._completed.add(key)

    def record_failure(self, key: Optional[str], error_type: str, message: str) -> None:
        """Journal one terminal (unrecovered) run failure."""
        self._append(
            {
                "status": "failed",
                "key": key,
                "error_type": error_type,
                "message": message,
            }
        )

    # ------------------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.flush()

    def flush(self) -> None:
        if self._handle is None:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    @staticmethod
    def read_entries(path: Union[str, Path]) -> List[Dict[str, Any]]:
        """Every parseable record in ``path`` (missing file: none).

        Unparseable lines — in practice only a final line truncated by
        a crash between ``write`` and ``fsync`` — are skipped, not
        fatal: losing the tail record only costs re-executing that run.
        """
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return []
        entries: List[Dict[str, Any]] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if isinstance(entry, dict):
                entries.append(entry)
        return entries

    @staticmethod
    def completed_in(path: Union[str, Path]) -> FrozenSet[str]:
        """The done-run keys recorded in ``path`` (for tooling/tests)."""
        return frozenset(
            entry["key"]
            for entry in SweepJournal.read_entries(path)
            if entry.get("status") == "done" and "key" in entry
        )
