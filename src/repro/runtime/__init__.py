"""Batch execution runtime: parallel fan-out and on-disk result caching.

Every figure and table of the evaluation is assembled from dozens of
*independent* characterization / finite runs.  This package executes
those batches:

- :class:`ParallelRunner` fans :class:`RunSpec` batches out over a
  ``multiprocessing`` pool (results always returned in submission
  order, so outputs are bit-identical to a serial run);
- :class:`ResultCache` persists results on disk keyed by a stable hash
  of ``(config, run parameters, simulation-code fingerprint)`` so
  repeating a sweep is a cache hit;
- :class:`RunnerMetrics` / progress hooks report runs completed, cache
  hits, and worker failures (each failed run is retried once).

See ``docs/running-experiments.md`` for usage.
"""

from .cache import CacheStats, ResultCache
from .hashing import (
    CACHE_SCHEMA_VERSION,
    code_fingerprint,
    config_hash,
    freeze,
    spec_key,
)
from .parallel import (
    ParallelRunner,
    ProgressEvent,
    RunnerMetrics,
    RunSpec,
    characterization_spec,
    finite_cpuburn_spec,
    register_executor,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "ParallelRunner",
    "ProgressEvent",
    "ResultCache",
    "RunSpec",
    "RunnerMetrics",
    "characterization_spec",
    "code_fingerprint",
    "config_hash",
    "finite_cpuburn_spec",
    "freeze",
    "register_executor",
    "spec_key",
]
