"""Batch execution runtime: parallel fan-out, caching, fault tolerance.

Every figure and table of the evaluation is assembled from dozens of
*independent* characterization / finite runs.  This package executes
those batches:

- :class:`ParallelRunner` fans :class:`RunSpec` batches out over
  worker processes (results always returned in submission order, so
  outputs are bit-identical to a serial run), enforces per-run
  wall-clock deadlines by killing hung workers, retries transient
  failures under a :class:`RetryPolicy` (exponential backoff,
  deterministic jitter, permanent errors fail fast), and can keep
  going past terminal failures, collecting them into a
  :class:`FailureReport`;
- :class:`ResultCache` persists results on disk keyed by a stable hash
  of ``(config, run parameters, simulation-code fingerprint)`` —
  stores are fsync'd-atomic and corrupt entries are quarantined;
- :class:`SweepJournal` is the crash-safe record of completed run
  keys (append-only fsync'd JSONL) behind ``--resume``;
- :class:`RunnerMetrics` / progress hooks report runs completed, cache
  hits/replays, retries, timeouts, and abandoned runs.

Fault injection for all of the above lives in :mod:`repro.faults`.
See ``docs/running-experiments.md`` and ``docs/robustness.md``.
"""

from .cache import CacheStats, ResultCache, register_result_codec
from .failures import FailureReport, RunFailure
from .hashing import (
    CACHE_SCHEMA_VERSION,
    code_fingerprint,
    config_hash,
    fleet_fingerprint,
    freeze,
    spec_key,
)
from .journal import SweepJournal
from .parallel import (
    ParallelRunner,
    ProgressEvent,
    RunnerMetrics,
    RunSpec,
    characterization_spec,
    finite_cpuburn_spec,
    register_executor,
)
from .policy import PERMANENT, PERMANENT_ERROR_TYPES, TIMEOUT, TRANSIENT, RetryPolicy

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "FailureReport",
    "PERMANENT",
    "PERMANENT_ERROR_TYPES",
    "ParallelRunner",
    "ProgressEvent",
    "ResultCache",
    "RetryPolicy",
    "RunFailure",
    "RunSpec",
    "RunnerMetrics",
    "SweepJournal",
    "TIMEOUT",
    "TRANSIENT",
    "characterization_spec",
    "code_fingerprint",
    "config_hash",
    "finite_cpuburn_spec",
    "fleet_fingerprint",
    "freeze",
    "register_executor",
    "register_result_codec",
    "spec_key",
]
