"""On-disk result cache for characterization and finite runs.

Results are stored one JSON file per key under ``<root>/<key[:2]>/``.
Python's ``repr``-based float serialisation round-trips exactly, so a
result loaded from cache is bit-identical to the one that was stored.

Lookups never raise on a bad entry, but the *reason* a lookup failed is
not flattened into one bucket: :class:`CacheStats` (and the
``runtime.cache`` telemetry scope) distinguish a true miss (no file), a
corrupt entry (truncated/garbled JSON or a payload that no longer
rebuilds), and a schema-stale entry (written by an older cache layout).

Stores are crash-safe: the payload is written to a ``.tmp-*`` file,
fsync'd, and only then renamed over the target — a crash at any point
leaves either the complete old state or the complete new entry, never
a zero-byte or truncated file posing as a result.  A corrupt entry
found by :meth:`ResultCache.get` is *quarantined* (renamed to
``*.corrupt`` for post-mortems) rather than left in place, so the next
lookup is an honest miss instead of re-parsing the same garbage.  A
run killed mid-store can leave a temp file behind, which is never
counted as an entry and is swept up (with quarantined files) by
:meth:`ResultCache.clear`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Tuple, Union

from ..telemetry.registry import registry as _metrics_registry
from .hashing import CACHE_SCHEMA_VERSION


@dataclasses.dataclass
class CacheStats:
    """Lookup/store counters for one :class:`ResultCache`."""

    hits: int = 0
    #: Lookups that found no entry at all.
    misses: int = 0
    #: Lookups that found an unreadable or unrebuildable entry.
    corrupt: int = 0
    #: Lookups that found an entry written under another schema version.
    schema_stale: int = 0
    #: Corrupt entries renamed to ``*.corrupt`` instead of re-missed.
    quarantined: int = 0
    stores: int = 0

    @property
    def total_misses(self) -> int:
        """Every lookup that did not produce a result, whatever the cause."""
        return self.misses + self.corrupt + self.schema_stale


class _SchemaMismatch(ValueError):
    """Internal: the entry was written under a different schema version
    (or a result kind this process has no codec for — stale either way,
    never quarantined as corrupt)."""


#: result type -> kind, and kind -> (encode, decode).  The built-in
#: experiment result kinds register lazily (below); other layers —
#: the fleet's rack cells — register theirs at import time through
#: :func:`register_result_codec`.
_ENCODER_KINDS: Dict[type, str] = {}
_CODECS: Dict[str, Tuple[Callable[[Any], dict], Callable[[dict], Any]]] = {}


def register_result_codec(
    kind: str,
    cls: type,
    *,
    encode: Callable[[Any], dict],
    decode: Callable[[dict], Any],
) -> None:
    """Register a cacheable result type.

    ``encode`` must produce a JSON-serialisable dict whose round trip
    through ``json.dumps``/``json.loads`` and ``decode`` rebuilds a
    result equal to the original — cached replay is only bit-identical
    if the codec is.
    """
    _ENCODER_KINDS[cls] = kind
    _CODECS[kind] = (encode, decode)


def _ensure_builtin_codecs() -> None:
    # Imported here (not at module top) so the runtime package never
    # holds an import-time edge back into repro.experiments.
    from ..experiments.runner import CharacterizationResult, FiniteRunResult

    if CharacterizationResult not in _ENCODER_KINDS:
        register_result_codec(
            "characterization",
            CharacterizationResult,
            encode=dataclasses.asdict,
            decode=lambda d: CharacterizationResult(**d),
        )
    if FiniteRunResult not in _ENCODER_KINDS:
        register_result_codec(
            "finite_cpuburn",
            FiniteRunResult,
            encode=dataclasses.asdict,
            decode=lambda d: FiniteRunResult(**d),
        )


def _encode(result: Any) -> dict:
    """Serialise a result to a tagged JSON payload via its codec."""
    _ensure_builtin_codecs()
    kind = _ENCODER_KINDS.get(type(result))
    if kind is None:
        raise TypeError(
            f"cannot cache a {type(result).__name__}; register a codec for it"
        )
    encode, _ = _CODECS[kind]
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": kind,
        "result": encode(result),
    }


def _decode(payload: dict) -> Any:
    """Rebuild a result from :func:`_encode` output."""
    _ensure_builtin_codecs()
    if payload.get("schema") != CACHE_SCHEMA_VERSION:
        raise _SchemaMismatch("cache schema mismatch")
    codec = _CODECS.get(payload["kind"])
    if codec is None:
        # A valid entry written by a process that had more codecs
        # loaded; stale for us, not corrupt — do not quarantine it.
        raise _SchemaMismatch(f"no codec for result kind {payload['kind']!r}")
    _, decode = codec
    return decode(payload["result"])


class ResultCache:
    """A content-addressed store of experiment results on disk."""

    def __init__(self, root: Union[str, Path]):
        # The directory is created lazily on first store, so pointing a
        # runner at a cache it never uses leaves no trace on disk.
        self.root = Path(root)
        self.stats = CacheStats()
        scope = _metrics_registry().scope("runtime.cache")
        self._metric_hits = scope.counter("hits")
        self._metric_misses = scope.counter("misses")
        self._metric_corrupt = scope.counter("corrupt")
        self._metric_schema_stale = scope.counter("schema_stale")
        self._metric_quarantined = scope.counter("quarantined")
        self._metric_stores = scope.counter("stores")

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Any]:
        """The cached result for ``key``, or None.

        Any failed lookup returns None; the stats/telemetry record
        whether it was a miss, a corrupt entry, or a schema-stale one.
        """
        try:
            with self.path(key).open() as handle:
                payload = json.load(handle)
        except OSError:
            self.stats.misses += 1
            self._metric_misses.inc()
            return None
        except ValueError:
            return self._quarantine(key)
        try:
            result = _decode(payload)
        except _SchemaMismatch:
            self.stats.schema_stale += 1
            self._metric_schema_stale.inc()
            return None
        except (AttributeError, KeyError, TypeError, ValueError):
            return self._quarantine(key)
        self.stats.hits += 1
        self._metric_hits.inc()
        return result

    def _quarantine(self, key: str) -> None:
        """Move a corrupt entry aside (``<key>.json.corrupt``).

        The garbage stays on disk for post-mortems but no longer
        shadows the key: the next lookup is a plain miss and the run
        re-executes.  Returns None (the lookup result).
        """
        self.stats.corrupt += 1
        self._metric_corrupt.inc()
        path = self.path(key)
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:  # pragma: no cover - raced with another process
            return None
        self.stats.quarantined += 1
        self._metric_quarantined.inc()
        return None

    def put(self, key: str, result: Any) -> None:
        """Store ``result`` under ``key`` (crash-safe: write, fsync,
        rename).  Without the fsync a crash after the rename could
        still leave a zero-byte or truncated entry — the data may sit
        in page cache while the rename is already durable."""
        target = self.path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=target.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(_encode(result), handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        self._metric_stores.inc()

    # ------------------------------------------------------------------
    def _files(self) -> Iterator[Path]:
        """All entry, temp, and quarantine files under the shard dirs.

        ``pathlib``'s glob matches dotfiles (unlike the ``glob``
        module), so ``.tmp-*.json`` stragglers from killed runs show up
        here; ``*.json.corrupt`` quarantines do too.  Callers must
        check :func:`_is_entry`.
        """
        yield from self.root.glob("*/*.json")
        yield from self.root.glob("*/*.json.corrupt")

    @staticmethod
    def _is_entry(path: Path) -> bool:
        return not path.name.startswith(".") and path.name.endswith(".json")

    def __len__(self) -> int:
        """Number of stored entries (in-flight temp files excluded)."""
        return sum(1 for path in self._files() if self._is_entry(path))

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed.

        Temp-file stragglers (``.tmp-*.json`` left by a run killed
        mid-store) and ``*.json.corrupt`` quarantines are swept up
        too, but not counted as entries.
        """
        removed = 0
        for path in self._files():
            path.unlink()
            if self._is_entry(path):
                removed += 1
        return removed
