"""On-disk result cache for characterization and finite runs.

Results are stored one JSON file per key under ``<root>/<key[:2]>/``.
Python's ``repr``-based float serialisation round-trips exactly, so a
result loaded from cache is bit-identical to the one that was stored.
Corrupt or truncated files (e.g. from a killed run) are treated as
misses, never as errors.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional, Union

from .hashing import CACHE_SCHEMA_VERSION


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


def _encode(result: Any) -> dict:
    """Serialise a result dataclass to a tagged JSON payload."""
    # Imported here (not at module top) so the runtime package never
    # holds an import-time edge back into repro.experiments.
    from ..experiments.runner import CharacterizationResult, FiniteRunResult

    kinds = {
        CharacterizationResult: "characterization",
        FiniteRunResult: "finite_cpuburn",
    }
    kind = kinds.get(type(result))
    if kind is None:
        raise TypeError(
            f"cannot cache a {type(result).__name__}; register a codec for it"
        )
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": kind,
        "result": dataclasses.asdict(result),
    }


def _decode(payload: dict) -> Any:
    """Rebuild a result dataclass from :func:`_encode` output."""
    from ..experiments.runner import CharacterizationResult, FiniteRunResult

    if payload.get("schema") != CACHE_SCHEMA_VERSION:
        raise ValueError("cache schema mismatch")
    classes = {
        "characterization": CharacterizationResult,
        "finite_cpuburn": FiniteRunResult,
    }
    return classes[payload["kind"]](**payload["result"])


class ResultCache:
    """A content-addressed store of experiment results on disk."""

    def __init__(self, root: Union[str, Path]):
        # The directory is created lazily on first store, so pointing a
        # runner at a cache it never uses leaves no trace on disk.
        self.root = Path(root)
        self.stats = CacheStats()

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Any]:
        """The cached result for ``key``, or None (counted as a miss)."""
        try:
            with self.path(key).open() as handle:
                payload = json.load(handle)
            result = _decode(payload)
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: Any) -> None:
        """Store ``result`` under ``key`` (atomic: write + rename)."""
        target = self.path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=target.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(_encode(result), handle)
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for entry in self.root.glob("*/*.json"):
            entry.unlink()
            removed += 1
        return removed
