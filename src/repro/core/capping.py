"""Power capping via forced idleness (Gandhi et al., WEED '09).

§4: "Gandhi et al. proposed the use of a similar scheduler-level idling
technique for power-capping in data centers; Google recently introduced
this mechanism into the Linux kernel.  Dimetrodon and this final
technique target different domains (heat and power), but rearchitecting
the power-capping mechanism to use shorter idle quanta would provide
thermally-beneficial side-effects."

This controller closes the loop on *measured package power* instead of
temperature, actuating the injection probability at a fixed quantum
length.  The ablation bench compares quantum lengths at an identical
cap and confirms the paper's conjecture: the cap compliance is the
same, but shorter quanta leave the package measurably cooler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import ConfigurationError
from ..instruments.powermeter import PowerMeter
from ..sim.engine import Simulator
from ..sim.process import PeriodicTask

if False:  # pragma: no cover - import cycle breaker, type hints only
    from ..sched.syscalls import DimetrodonControl


@dataclass
class CapSample:
    time: float
    power: float
    error: float
    p: float


class PowerCapController:
    """Holds package power at or below a cap by modulating p."""

    def __init__(
        self,
        sim: Simulator,
        control: "DimetrodonControl",
        meter: PowerMeter,
        *,
        cap_watts: float,
        idle_quantum: float = 0.010,
        period: float = 1.0,
        kp: float = 0.004,
        ki: float = 0.012,
        p_max: float = 0.95,
    ):
        if cap_watts <= 0:
            raise ConfigurationError("cap must be positive")
        if idle_quantum <= 0 or period <= 0:
            raise ConfigurationError("idle_quantum and period must be positive")
        self.control = control
        self.meter = meter
        self.cap_watts = float(cap_watts)
        self.idle_quantum = float(idle_quantum)
        self.period = float(period)
        self.kp = kp
        self.ki = ki
        self.p_max = p_max
        self.p = 0.0
        self._integral = 0.0
        self.history: List[CapSample] = []
        self._sim = sim
        self._task = PeriodicTask(sim, period, self._step)

    def stop(self) -> None:
        self._task.cancel()

    def _step(self) -> None:
        now = self._sim.now
        power = self.meter.average_power(max(0.0, now - self.period), now)
        error = power - self.cap_watts  # positive = over the cap
        self._integral = float(np.clip(self._integral + self.ki * error, 0.0, self.p_max))
        self.p = float(np.clip(self.kp * error + self._integral, 0.0, self.p_max))
        self.control.set_global_policy(self.p, self.idle_quantum, deterministic=True)
        self.history.append(CapSample(time=now, power=power, error=error, p=self.p))

    # ------------------------------------------------------------------
    def compliance(self, *, tolerance: float = 1.0, skip: int = 10) -> float:
        """Fraction of (post-transient) samples at or below cap+tolerance."""
        samples = self.history[skip:]
        if not samples:
            return 0.0
        within = sum(1 for s in samples if s.power <= self.cap_watts + tolerance)
        return within / len(samples)

    def mean_power(self, *, skip: int = 10) -> float:
        samples = self.history[skip:]
        if not samples:
            return float("nan")
        return float(np.mean([s.power for s in samples]))
