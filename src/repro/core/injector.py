"""The Dimetrodon scheduler hook.

The injector sits in the scheduler's dispatch path.  For every thread
about to be dispatched it consults the policy table and either lets the
dispatch proceed or orders an idle quantum, during which the preempted
thread is pinned off the runqueue (so no other core runs it) and the
core runs the kernel idle thread.

Two idle mechanisms are supported, matching §2.1:

- ``HALT`` — the core enters the platform's idle states (C1 then C1E).
  This is the paper's implementation on its C1E-capable Xeon.
- ``SPIN`` — the core executes a low-activity nop loop.  "On processors
  that do not support low power idle states or clock gating, Dimetrodon
  is still useful as executing an idle loop of nop equivalents allows
  many functional units within the processor to cool."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..sched.thread import Thread, ThreadKind
from ..telemetry.registry import registry as _metrics_registry
from .policy import InjectionPolicy, PolicyTable


class IdleMode(enum.Enum):
    """What the core does during an injected idle quantum."""

    HALT = "halt"
    SPIN = "spin"


@dataclass(frozen=True)
class InjectionDecision:
    """Order to idle the core instead of dispatching a thread."""

    #: Length of the idle quantum, seconds.
    length: float
    #: Idle mechanism to use.
    mode: IdleMode
    #: Also idle sibling SMT contexts so the whole core can reach the
    #: deep state (§3.2's "co-scheduling idle quanta").
    co_schedule: bool = False


@dataclass
class InjectorStats:
    """Aggregate counters across all threads."""

    decisions: int = 0
    injections: int = 0
    injected_time: float = 0.0

    @property
    def injection_fraction(self) -> float:
        """Fraction of scheduling decisions that injected idle."""
        if self.decisions == 0:
            return 0.0
        return self.injections / self.decisions


class IdleInjector:
    """Consults the policy table at each scheduling decision."""

    def __init__(
        self,
        table: Optional[PolicyTable] = None,
        *,
        exempt_kernel_threads: bool = True,
        mode: IdleMode = IdleMode.HALT,
        co_schedule_smt: bool = False,
    ):
        self.table = table or PolicyTable()
        #: §3.1: preempting kernel threads can double-delay interrupt
        #: processing, so they are exempt by default (ablatable).
        self.exempt_kernel_threads = exempt_kernel_threads
        self.mode = mode
        #: Under SMT, idle the sibling contexts together with the
        #: injected one so the core can halt fully (§3.2).
        self.co_schedule_smt = co_schedule_smt
        self.stats = InjectorStats()
        scope = _metrics_registry().scope("core.injector")
        self._metric_decisions = scope.counter("decisions")
        self._metric_injections = scope.counter("injections")
        self._metric_injected_time = scope.counter("injected_time")

    def decide(self, thread: Thread, now: float) -> Optional[InjectionDecision]:
        """Return an injection order, or None to dispatch normally."""
        if self.exempt_kernel_threads and thread.kind is ThreadKind.KERNEL:
            return None
        self.stats.decisions += 1
        self._metric_decisions.inc()
        policy = self.table.lookup(thread.tid)
        if not policy.should_inject(thread.tid):
            return None
        self.stats.injections += 1
        self.stats.injected_time += policy.idle_quantum
        self._metric_injections.inc()
        self._metric_injected_time.inc(policy.idle_quantum)
        return InjectionDecision(
            length=policy.idle_quantum,
            mode=self.mode,
            co_schedule=self.co_schedule_smt,
        )

    # ------------------------------------------------------------------
    # Convenience pass-throughs (the paper's syscall surface).
    # ------------------------------------------------------------------
    def set_thread_policy(self, thread: Thread, policy: InjectionPolicy) -> None:
        self.table.set_thread_policy(thread.tid, policy)

    def set_default_policy(self, policy: InjectionPolicy) -> None:
        self.table.set_default(policy)

    def exempt(self, thread: Thread) -> None:
        self.table.exempt_thread(thread.tid)
